"""In-breadth characterization tour of a datacenter trace.

Exercises the per-subsystem analysis stack the surveyed papers built:

* storage: Gulati-style I/O profile + Sankar-style state model,
* CPU: windowed utilization, Abrahao pattern classification,
* network: Feitelson distribution fitting, burstiness, self-similarity,
* memory: bank distribution + Moro-style ECHMM on the address stream,
* cross-subsystem: Li-style model-based clustering of request vectors.

Run:  python examples/trace_characterization.py
"""

import numpy as np

from repro import run_gfs_workload
from repro.breadth import (
    CpuUtilizationModel,
    EchmmMemoryModel,
    MemoryAccessModel,
    NetworkTrafficModel,
    StorageModel,
    StorageProfile,
    utilization_series,
)
from repro.core import extract_request_features
from repro.stats import select_components_bic


def main() -> None:
    rng = np.random.default_rng(0)
    print("collecting traces (GFS, web-serving-like mix)...")
    from repro.workloads import web_serving_mix

    run = run_gfs_workload(
        n_requests=3000, seed=13, mix_factory=web_serving_mix, arrival_rate=60.0
    )
    traces = run.traces

    # -- storage ---------------------------------------------------------
    profile = StorageProfile.characterize(traces.storage)
    print("\nstorage profile (Gulati et al. features):")
    print(f"  I/Os: {profile.n_ios}, read fraction: {profile.read_fraction:.2f}")
    print(f"  mean size: {profile.mean_size / 1024:.1f} KiB "
          f"(p95 {profile.p95_size / 1024:.1f} KiB)")
    print(f"  sequential fraction: {profile.sequential_fraction:.2f}, "
          f"mean |seek|: {profile.mean_abs_seek:.0f} blocks")
    storage_model = StorageModel().fit(traces.storage)
    synthetic_ios = storage_model.generate(1000, rng)
    generated = StorageProfile.characterize(synthetic_ios)
    print(f"  state-model synthetic trace: read fraction "
          f"{generated.read_fraction:.2f}, mean size "
          f"{generated.mean_size / 1024:.1f} KiB")

    # -- CPU ---------------------------------------------------------------
    series = utilization_series(traces.cpu, window=0.25, cores=8)
    cpu_model = CpuUtilizationModel().fit(series)
    print("\nCPU utilization (Abrahao et al.):")
    print(f"  windows: {series.size}, mean: {series.mean() * 100:.1f}%")
    print(f"  pattern class: {cpu_model.pattern}")
    print(f"  chain stationary mean: {cpu_model.stationary_mean() * 100:.1f}%")

    # -- network ---------------------------------------------------------
    network_model = NetworkTrafficModel().fit(traces.network)
    ch = network_model.characterization
    print("\nnetwork arrivals (Feitelson / Sengupta):")
    print(f"  rate: {ch.mean_rate:.1f} msg/s, interarrival CoV: "
          f"{ch.interarrival_cov:.2f}")
    print(f"  best-fit family: {ch.best_fit_family} "
          f"(KS={ch.ks_statistic:.3f})")
    print(f"  Hurst estimate: {ch.hurst:.2f}  "
          f"(~0.5 = short-range dependent)")

    # -- memory ------------------------------------------------------------
    memory_model = MemoryAccessModel().fit(traces.memory)
    banks = memory_model.bank_distribution()
    top = sorted(banks.items(), key=lambda kv: -kv[1])[:3]
    print("\nmemory accesses (bank model + Moro ECHMM):")
    print("  hottest banks: "
          + ", ".join(f"bank {b}: {p * 100:.0f}%" for b, p in top))
    addresses = [
        (r.bank * 4096 + i) for i, r in enumerate(traces.memory[:2000])
    ]
    echmm = EchmmMemoryModel(n_states=3, max_iter=15).fit(addresses, rng)
    synthetic_addresses = echmm.generate(500)
    print(f"  ECHMM synthetic address range: "
          f"[{synthetic_addresses.min()}, {synthetic_addresses.max()}]")

    # -- cross-subsystem clustering (Li) ---------------------------------
    features = extract_request_features(traces)
    X = np.array(
        [[np.log2(f.storage_bytes), f.cpu_utilization * 100] for f in features]
    )
    mixture = select_components_bic(X, rng, max_components=6)
    print("\nmodel-based clustering of request vectors (Li):")
    print(f"  BIC selects {mixture.n_components} components "
          f"(the workload has {len(set(f.request_class for f in features))} "
          f"request classes)")


if __name__ == "__main__":
    main()
