"""Multi-machine effects: incast fan-in and a streaming-media service.

Two §5 scenarios the model infrastructure supports:

1. **Incast** — stripe one large read over many chunkservers; with a
   slow client link the synchronized responses serialize on the client
   NIC and striping stops helping (the TCP-incast fan-in bottleneck).
2. **MediSyn streaming** — drive the GFS cluster with a Tang-style
   media workload (Zipf popularity, diurnal arrivals, partial viewing)
   and characterize what the diurnal non-stationarity does to the
   arrival stream.

Run:  python examples/multi_machine_effects.py
"""

import numpy as np

from repro.datacenter import GfsCluster, GfsRequest, GfsSpec, MachineSpec
from repro.datacenter.devices import NicSpec
from repro.simulation import Environment, RandomStreams
from repro.stats import index_of_dispersion, stationarity_pvalue
from repro.tracing import READ, Tracer
from repro.workloads import MediSynSpec, MediSynWorkload


def incast_study() -> None:
    print("study 1: striped reads and the incast fan-in bottleneck")
    print(f"  {'width':>5} | {'10GbE client':>12} | {'1GbE client':>11}")
    for width in (1, 2, 4, 8):
        row = []
        for bandwidth in (1.25e9, 125e6):
            env = Environment()
            tracer = Tracer()
            cluster = GfsCluster(
                env,
                GfsSpec(chunkservers=8, master_cache_hit=1.0),
                RandomStreams(width),
                tracer,
                MachineSpec(nic=NicSpec(bandwidth=bandwidth)),
            )
            request = GfsRequest("stripe", READ, 8 << 20, 0, 65536)
            record = env.run(env.process(cluster.striped_read(request, width)))
            row.append(record.latency * 1e3)
        print(f"  {width:>5} | {row[0]:>10.1f}ms | {row[1]:>9.1f}ms")
    print("  -> on the slow link, fan-in keeps latency pinned to the")
    print("     serialized client transfer no matter the stripe width")


def media_study() -> None:
    print("\nstudy 2: MediSyn streaming workload on GFS")
    rng = np.random.default_rng(0)
    workload = MediSynWorkload(
        MediSynSpec(diurnal_amplitude=0.7, diurnal_period=120.0), rng
    )
    sessions = workload.sessions(3000)
    histogram = workload.popularity_histogram(sessions)
    print(
        f"  {len(sessions)} sessions over {sessions[-1].start_time:.0f}s, "
        f"{int((histogram > 0).sum())} objects touched"
    )
    print(
        f"  top-10 objects take {histogram[:10].sum() / histogram.sum() * 100:.0f}% "
        f"of accesses (Zipf popularity)"
    )
    times = np.array([s.start_time for s in sessions])
    idc = index_of_dispersion(times, bin_width=10.0)
    counts, edges = np.histogram(times, bins=int(times[-1] // 10))
    p = stationarity_pvalue(counts.astype(float))
    print(f"  arrival IDC at 10s timescale: {idc:.1f} (Poisson would be 1.0)")
    print(f"  stationarity p-value of the rate series: {p:.3f} "
          f"({'non-stationary' if p < 0.05 else 'stationary'})")

    # Drive the cluster with the sessions (first 400, to keep it fast).
    env = Environment()
    tracer = Tracer()
    cluster = GfsCluster(
        env, GfsSpec(chunkservers=4), RandomStreams(1), tracer
    )

    def driver(env):
        t = 0.0
        for start, request in workload.to_gfs_requests(sessions[:400]):
            delay = start - t
            if delay > 0:
                yield env.timeout(delay)
                t = start
            env.process(cluster.client_request(request))

    env.process(driver(env))
    env.run()
    latencies = [r.latency for r in tracer.traces.completed_requests()]
    print(
        f"  served {len(latencies)} streams: mean start latency "
        f"{np.mean(latencies) * 1e3:.1f} ms, p99 "
        f"{np.percentile(latencies, 99) * 1e3:.1f} ms"
    )


def main() -> None:
    incast_study()
    media_study()


if __name__ == "__main__":
    main()
