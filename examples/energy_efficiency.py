"""Energy studies with the performance & power model (paper §5).

Two studies, both driven entirely by models (no application access):

1. **Small cores** — replay the KOOZA-modeled workload on baseline and
   wimpy-core servers and compare joules per request.
2. **DVFS** — use the CPU-utilization Markov model to predict quiet
   windows and drop to a low-power state (Huang et al.), comparing
   energy and SLA violations against static policies.

Run:  python examples/energy_efficiency.py
"""

import numpy as np

from repro import KoozaTrainer, MachineSpec, ReplayHarness, run_gfs_workload
from repro.breadth import CpuUtilizationModel, utilization_series
from repro.core import extract_request_features
from repro.datacenter import (
    DvfsSetting,
    MachinePowerSpec,
    PowerModel,
    evaluate_dvfs_policy,
    model_guided_policy,
)
from repro.datacenter.devices import CpuSpec


def small_core_study(model) -> None:
    print("study 1: small cores (replay-based, no application access)")
    synthetic = model.synthesize(1500, np.random.default_rng(1))
    configs = (
        ("baseline", MachineSpec(), MachinePowerSpec()),
        (
            "wimpy 0.4x",
            MachineSpec(cpu=CpuSpec(speed_factor=0.4)),
            MachinePowerSpec(cpu_idle=20.0, cpu_peak=60.0, platform=35.0),
        ),
    )
    for name, machine_spec, power_spec in configs:
        harness = ReplayHarness(machine_spec=machine_spec, seed=3)
        traces = harness.replay(synthetic)
        features = extract_request_features(traces)
        latency = np.mean([f.latency for f in features])
        power = PowerModel(power_spec)
        joules = power.energy_per_request(harness.machines, len(features))
        print(
            f"  {name:>11}: mean latency {latency * 1e3:6.2f} ms, "
            f"{power.report(harness.machines[0]).mean_power:6.1f} W, "
            f"{joules:.3f} J/request"
        )


def dvfs_study() -> None:
    """A compute-heavier service with bursty (MMPP) traffic: the
    utilization model predicts quiet windows; the guided policy saves
    nearly as much as always-low with none of its SLA violations."""
    print("\nstudy 2: model-guided DVFS (Huang et al.)")
    from repro.datacenter import GfsSpec
    from repro.queueing import MMPPArrivals
    from repro.tracing import READ
    from repro.workloads import RequestClass, WorkloadMix

    def compute_mix(rng):
        return WorkloadMix(
            [RequestClass("read_64K", READ, 64 * 1024, 16 * 1024,
                          mean_run_length=8.0)],
            rng,
        )

    rng = np.random.default_rng(3)
    run = run_gfs_workload(
        n_requests=6000,
        seed=9,
        arrivals=MMPPArrivals([15.0, 300.0], [2.0, 1.0], rng),
        mix_factory=compute_mix,
        gfs_spec=GfsSpec(read_byte_work=3e-8),  # compute-heavy service
        machine_spec=MachineSpec(cpu=CpuSpec(cores=2)),
    )
    chunk_cpu = [
        r for r in run.traces.cpu if r.server.startswith("chunkserver")
    ]
    series = utilization_series(chunk_cpu, window=0.25, cores=2)
    cpu_model = CpuUtilizationModel(n_levels=4).fit(series)
    settings = [
        DvfsSetting("high", 1.0, idle_power=60.0, peak_power=180.0),
        DvfsSetting("mid", 0.6, idle_power=40.0, peak_power=100.0),
        DvfsSetting("low", 0.3, idle_power=25.0, peak_power=60.0),
    ]
    policies = {
        "always-high": lambda history: 0,
        "always-low": lambda history: 2,
        "model-guided": model_guided_policy(cpu_model, settings, headroom=1.4),
    }
    for name, policy in policies.items():
        result = evaluate_dvfs_policy(series, settings, policy, window=0.25)
        print(
            f"  {name:>12}: {result.energy_joules:8.1f} J, "
            f"violations {result.violations:3d}/{result.n_windows} "
            f"({result.violation_rate * 100:.1f}%)"
        )


def main() -> None:
    print("collecting traces + training KOOZA...")
    run = run_gfs_workload(n_requests=2000, seed=7)
    model = KoozaTrainer().fit(run.traces)
    small_core_study(model)
    dvfs_study()


if __name__ == "__main__":
    main()
