"""Operations on a live cluster: profiling, bottlenecks, fault hunting.

The in-depth tooling chapter of the paper (Dapper, GWP) as a working
loop:

1. **GWP-style continuous profiling** — sample every machine while the
   cluster serves traffic; find the hottest device and machine, and
   attribute CPU time to request classes.
2. **Bottleneck identification** — learn per-stage duration profiles
   from span traces; name the stage dominating latency.
3. **Fault hunting** — degrade one chunkserver's disk, rerun, and let
   the anomaly detector localize the fault per-request.

Run:  python examples/operations_toolkit.py
"""

import numpy as np

from repro.datacenter import GfsCluster, GfsSpec, MachineSpec
from repro.datacenter.devices import DiskSpec
from repro.depth import AnomalyDetector
from repro.queueing import PoissonArrivals
from repro.simulation import Environment, RandomStreams
from repro.tracing import ClusterProfiler, Tracer
from repro.workloads import OpenLoopClient, table2_mix


def run_cluster(disk_spec=None, n_requests=1200, seed=5):
    """Serve traffic on a 2-chunkserver cluster, profiled throughout."""
    env = Environment()
    tracer = Tracer()
    streams = RandomStreams(seed)
    cluster = GfsCluster(
        env,
        GfsSpec(chunkservers=2),
        streams,
        tracer,
        MachineSpec(disk=disk_spec) if disk_spec else None,
    )
    # Horizon matched to the traffic (n/rate), so idle tail samples
    # don't dilute the utilization means.
    profiler = ClusterProfiler(
        env, cluster.chunkservers, tracer, interval=0.5,
        horizon=n_requests / 45.0,
    )
    mix = table2_mix(streams.get("mix"))
    client = OpenLoopClient(
        env,
        cluster.client_request,
        mix.make_request,
        PoissonArrivals(45.0, streams.get("arrivals")),
    )
    client.start(n_requests)
    env.run()
    return tracer.traces, profiler


def main() -> None:
    print("serving traffic on a healthy 2-chunkserver cluster...")
    traces, profiler = run_cluster()

    # -- 1. GWP-style profiling -------------------------------------------
    print("\ncontinuous profiling (GWP):")
    for device in ("disk", "cpu", "nic"):
        ranked = profiler.hottest_machines(device, top=1)
        machine, utilization = ranked[0]
        print(f"  hottest {device:>4}: {machine} at "
              f"{utilization * 100:.1f}% mean utilization")
    shares = profiler.cpu_share_by_class()
    print("  CPU time by request class: "
          + ", ".join(f"{cls}={share * 100:.0f}%"
                      for cls, share in sorted(shares.items())))

    # -- 2. bottleneck identification ----------------------------------------
    detector = AnomalyDetector(threshold_sigmas=4.0).fit(traces.trace_trees())
    bottleneck = detector.bottleneck()
    print(f"\nbottleneck stage: {bottleneck.stage} "
          f"(mean {bottleneck.mean * 1e3:.2f} ms/request, "
          f"p99 {bottleneck.p99 * 1e3:.2f} ms)")

    # -- 3. fault hunting -----------------------------------------------------
    print("\ninjecting a fault: chunkserver disks degrade "
          "(4x seeks, write cache dies)...")
    sick_traces, _ = run_cluster(
        disk_spec=DiskSpec(min_seek=1.6e-3, max_seek=32e-3, write_cache=False),
        seed=6,
    )
    verdicts = detector.scan(sick_traces.trace_trees())
    total = len(sick_traces.trace_trees())
    stages = [v.worst_stage for v in verdicts]
    localized = stages.count("storage") / len(stages) if stages else 0.0
    print(f"  flagged {len(verdicts)}/{total} requests as anomalous")
    print(f"  fault localized to the storage stage in "
          f"{localized * 100:.0f}% of detections")
    worst = max(verdicts, key=lambda v: v.worst_zscore)
    print(f"  worst case: request {worst.trace_id}, storage stage at "
          f"{worst.worst_zscore:.0f} sigma above the healthy profile")


if __name__ == "__main__":
    main()
