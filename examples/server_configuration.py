"""Server-configuration studies without application access (paper §5).

"An obvious case of the opportunities this methodology offers is
evaluating different server configurations without access to real DC
application source-code."

We train KOOZA once on traces from the production configuration, then
replay the *model's* synthetic workload on candidate hardware — wimpy
cores, a faster network, a disk without write cache — and compare
latency and efficiency, never touching the original application again.

Run:  python examples/server_configuration.py
"""

import numpy as np

from repro import KoozaTrainer, MachineSpec, ReplayHarness, run_gfs_workload
from repro.core import extract_request_features
from repro.datacenter.devices import CpuSpec, DiskSpec, NicSpec


def evaluate(name: str, machine_spec: MachineSpec, synthetic) -> dict:
    """Replay the synthetic workload on one candidate configuration."""
    traces = ReplayHarness(machine_spec=machine_spec, seed=17).replay(synthetic)
    features = extract_request_features(traces)
    latencies = np.array([f.latency for f in features])
    return {
        "config": name,
        "mean_ms": latencies.mean() * 1e3,
        "p95_ms": np.percentile(latencies, 95) * 1e3,
        "p99_ms": np.percentile(latencies, 99) * 1e3,
    }


def main() -> None:
    # Train once, on the baseline configuration's traces.
    print("training KOOZA on the production configuration...")
    run = run_gfs_workload(n_requests=2000, seed=7)
    model = KoozaTrainer().fit(run.traces)
    synthetic = model.synthesize(2000, np.random.default_rng(1))

    candidates = {
        "baseline": MachineSpec(),
        "wimpy-cores (0.4x)": MachineSpec(cpu=CpuSpec(speed_factor=0.4)),
        "beefy-cores (2x)": MachineSpec(cpu=CpuSpec(speed_factor=2.0)),
        "1GbE network": MachineSpec(nic=NicSpec(bandwidth=125e6)),
        "no write cache": MachineSpec(disk=DiskSpec(write_cache=False)),
        "fast disk (15k rpm)": MachineSpec(
            disk=DiskSpec(rpm=15000, min_seek=0.2e-3, max_seek=4e-3)
        ),
    }

    print(f"\n{'configuration':>20} | {'mean ms':>8} | {'p95 ms':>8} | {'p99 ms':>8}")
    print("-" * 56)
    rows = [evaluate(name, spec, synthetic) for name, spec in candidates.items()]
    for row in rows:
        print(
            f"{row['config']:>20} | {row['mean_ms']:>8.2f} | "
            f"{row['p95_ms']:>8.2f} | {row['p99_ms']:>8.2f}"
        )

    baseline = rows[0]["mean_ms"]
    print("\nfindings:")
    for row in rows[1:]:
        delta = (row["mean_ms"] - baseline) / baseline * 100
        direction = "slower" if delta > 0 else "faster"
        print(f"  {row['config']}: {abs(delta):.0f}% {direction} than baseline")


if __name__ == "__main__":
    main()
