"""Capacity planning with the in-depth model + queueing analytics.

The in-depth family's home turf: given traces of the 3-tier web
application, fit the queueing-network model, then (a) predict latency
at higher load without re-running the application, and (b) use M/M/c
analytics to size each tier for a latency SLA.

Run:  python examples/capacity_planning.py
"""

import numpy as np

from repro import run_webapp_workload
from repro.core import extract_request_features
from repro.depth import InDepthModel
from repro.queueing import MMc, PoissonArrivals, QueueingNetwork, Station


def main() -> None:
    print("collecting 3-tier web application traces...")
    traces = run_webapp_workload(n_requests=2000, seed=3, arrival_rate=80.0)
    features = extract_request_features(traces)
    observed = np.array([f.latency for f in features])
    print(f"  observed mean latency: {observed.mean() * 1e3:.2f} ms "
          f"at 80 req/s")

    model = InDepthModel(exponential_services=False).fit(traces)
    print(f"  fitted route: {' -> '.join(model.route)}")
    demands = model.mean_service_demand()
    for station, demand in sorted(demands.items(), key=lambda kv: -kv[1]):
        print(f"    {station:>7}: {demand * 1e3:.3f} ms/visit")

    # -- what-if: load sweep without the application -----------------------
    print("\nlatency vs offered load (model prediction):")
    base_rate = len(features) / (features[-1].arrival_time or 1.0)
    for multiplier in (1.0, 1.5, 2.0, 2.5):
        rng = np.random.default_rng(int(multiplier * 10))
        network = model.build_network(rng)
        arrivals = PoissonArrivals(base_rate * multiplier, rng)
        results = network.run_open(arrivals, lambda _r: "request", 4000)
        latencies = np.array([r.latency for r in results])
        print(f"  {multiplier:>3.1f}x load ({base_rate * multiplier:5.0f}/s): "
              f"mean {latencies.mean() * 1e3:6.2f} ms, "
              f"p95 {np.percentile(latencies, 95) * 1e3:6.2f} ms")

    # -- sizing with M/M/c ---------------------------------------------------
    print("\nsizing the disk tier for a 20 ms mean-wait SLA (M/M/c):")
    disk_demand = demands["disk"]
    service_rate = 1.0 / disk_demand
    visits_per_request = model.route.count("disk")
    for target_rate in (100.0, 200.0, 400.0):
        disk_arrivals = target_rate * visits_per_request
        for servers in range(1, 33):
            if disk_arrivals / (servers * service_rate) >= 1.0:
                continue
            metrics = MMc(disk_arrivals, service_rate, servers)
            if metrics.mean_wait <= 0.020:
                print(f"  {target_rate:5.0f} req/s -> {servers} disk server(s) "
                      f"(util {metrics.utilization * 100:.0f}%, "
                      f"wait {metrics.mean_wait * 1e3:.1f} ms)")
                break
        else:
            print(f"  {target_rate:5.0f} req/s -> >32 servers needed")


if __name__ == "__main__":
    main()
