"""Quickstart: the full KOOZA pipeline in one page.

1. Run a simulated GFS cluster under a mixed workload, collecting
   subsystem traces and Dapper-style span trees.
2. Train a KOOZA model (four subsystem models + dependency queue).
3. Generate a synthetic workload from the model.
4. Replay it on the same simulated hardware.
5. Validate: request features and latency, Table-2 style.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    KoozaTrainer,
    ReplayHarness,
    compare_workloads,
    run_gfs_workload,
)


def main() -> None:
    # 1. Collect traces from the "real" application.
    print("collecting traces from the simulated GFS cluster...")
    run = run_gfs_workload(n_requests=2000, seed=7)
    print(f"  traces: {run.traces.summary()}")
    print(f"  throughput: {run.throughput():.1f} req/s")

    # 2. Train KOOZA.
    model = KoozaTrainer().fit(run.traces)
    print(
        f"\ntrained KOOZA on {model.n_training_requests} requests "
        f"({model.n_parameters} transition parameters)"
    )
    print(
        "dependency queue: "
        + " -> ".join(model.dependency_queue.default)
    )

    # 3. Generate a synthetic workload.
    synthetic = model.synthesize(2000, np.random.default_rng(42))
    print(f"\ngenerated {len(synthetic)} synthetic requests")

    # 4. Replay it on the same (simulated) server hardware.
    replayed = ReplayHarness(seed=99).replay(synthetic)

    # 5. Compare original vs synthetic.
    report = compare_workloads(run.traces, replayed)
    print("\nvalidation (paper Table 2 layout):")
    print(report.to_table())
    print(
        f"\nworst feature deviation: "
        f"{report.worst_feature_deviation_pct:.2f}%  "
        f"(paper: <= 1%)"
    )
    print(
        f"worst latency deviation: "
        f"{report.worst_latency_deviation_pct:.2f}%  (paper: <= 6.6%)"
    )


if __name__ == "__main__":
    main()
