"""Reproduce the paper's GFS experiment end to end, with persistence.

The paper's validation workflow (Section 4 / Table 2), including the
intermediate artifacts a practitioner would keep: traces are saved to
disk after collection, reloaded for training (trace collection and
modeling are separate jobs in a real pipeline), and the trained model
structure (Figure 2) is printed.

Run:  python examples/gfs_modeling.py [trace_dir]
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import (
    KoozaTrainer,
    ReplayHarness,
    compare_workloads,
    load_traces,
    run_gfs_workload,
    save_traces,
)
from repro.core import KoozaConfig


def main() -> None:
    trace_dir = Path(
        sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(prefix="gfs-")
    )

    # -- phase 1: trace collection (a cluster-side job) ---------------------
    print("phase 1: collecting traces from the GFS cluster")
    run = run_gfs_workload(n_requests=2000, seed=7)
    save_traces(run.traces, trace_dir)
    print(f"  saved {sum(run.traces.summary().values())} records "
          f"to {trace_dir}")

    # -- phase 2: model training (an offline analysis job) ------------------
    print("\nphase 2: training KOOZA from the saved traces")
    traces = load_traces(trace_dir)
    config = KoozaConfig(
        storage_size_bins=6, storage_seek_bins=6, cpu_utilization_bins=8
    )
    model = KoozaTrainer(config).fit(traces)
    print("\ntrained model structure (the paper's Figure 2):")
    print(model.describe())

    # -- phase 3: synthesis + replay validation ----------------------------
    print("\nphase 3: synthesize, replay, validate (the paper's Table 2)")
    synthetic = model.synthesize(2000, np.random.default_rng(42))
    replayed = ReplayHarness(seed=99).replay(synthetic)
    report = compare_workloads(traces, replayed)
    print(report.to_table())

    verdict = (
        "PASS"
        if report.worst_feature_deviation_pct < 1.0
        and report.worst_latency_deviation_pct < 10.0
        else "FAIL"
    )
    print(f"\npaper criteria (features <= 1%, latency <= ~7%): {verdict}")


if __name__ == "__main__":
    main()
