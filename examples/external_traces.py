"""Working from external traces (SPC block traces, cluster job logs).

The trace-driven studies the paper surveys start from files like
these.  This example fabricates a small SPC-format block trace and a
cluster job log (stand-ins for the public UMass/MSR and Google-style
datasets), then runs the library's pipeline on them:

* SPC trace -> Gulati profile -> Sankar state model -> synthetic trace,
* job log -> interarrival fitting + model-based clustering of job
  shapes (Li's pipeline on external data).

Run:  python examples/external_traces.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.breadth import StorageModel, StorageProfile
from repro.queueing import fit_distribution
from repro.stats import select_components_bic
from repro.tracing import (
    RequestRecord,
    read_cluster_jobs,
    read_spc_trace,
    write_cluster_jobs,
)


def fabricate_spc_trace(path: Path, n_ios: int = 2000) -> None:
    """An OLTP-flavoured block trace: hot random region + log writes."""
    rng = np.random.default_rng(7)
    t = 0.0
    log_lba = 10_000_000
    with path.open("w") as fh:
        fh.write("# fabricated SPC trace: ASU,LBA,Size,Opcode,Timestamp\n")
        for _ in range(n_ios):
            t += float(rng.exponential(0.002))
            if rng.random() < 0.7:  # random reads in the hot region
                lba = int(rng.integers(0, 2_000_000))
                fh.write(f"0,{lba},8192,R,{t:.6f}\n")
            else:  # sequential log writes
                fh.write(f"1,{log_lba},4096,W,{t:.6f}\n")
                log_lba += 8


def fabricate_job_log(path: Path, n_jobs: int = 400) -> None:
    """Two job populations: short interactive + long batch."""
    rng = np.random.default_rng(8)
    records = []
    t = 0.0
    for i in range(n_jobs):
        t += float(rng.exponential(30.0))
        if rng.random() < 0.75:
            duration = float(rng.lognormal(2.0, 0.4))  # ~short
            memory = int(rng.integers(1, 4)) << 28
        else:
            duration = float(rng.lognormal(6.0, 0.5))  # ~long batch
            memory = int(rng.integers(8, 32)) << 28
        records.append(
            RequestRecord(
                request_id=i,
                request_class="job",
                server="cluster",
                arrival_time=t,
                completion_time=t + duration,
                cpu_busy_seconds=duration * 0.6,
                memory_bytes=memory,
            )
        )
    write_cluster_jobs(records, path)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="external-"))

    # -- storage trace ----------------------------------------------------
    spc_path = workdir / "oltp.spc"
    fabricate_spc_trace(spc_path)
    records = read_spc_trace(spc_path)
    profile = StorageProfile.characterize(records)
    print(f"SPC trace {spc_path.name}: {profile.n_ios} I/Os")
    print(f"  read fraction {profile.read_fraction:.2f}, "
          f"sequential fraction {profile.sequential_fraction:.2f}")
    model = StorageModel().fit(records)
    synthetic = model.generate(2000, np.random.default_rng(1))
    generated = StorageProfile.characterize(synthetic)
    print(f"  state-model synthetic: read fraction "
          f"{generated.read_fraction:.2f}, mean size "
          f"{generated.mean_size / 1024:.1f} KiB "
          f"(original {profile.mean_size / 1024:.1f} KiB)")

    # -- job log -----------------------------------------------------------
    job_path = workdir / "jobs.csv"
    fabricate_job_log(job_path)
    jobs = read_cluster_jobs(job_path)
    gaps = np.diff([j.arrival_time for j in jobs])
    fit = fit_distribution(gaps)
    print(f"\njob log {job_path.name}: {len(jobs)} jobs")
    print(f"  interarrival fit: {fit.describe()}")
    X = np.column_stack(
        [
            np.log10([j.latency for j in jobs]),
            np.log2([j.memory_bytes for j in jobs]),
        ]
    )
    mixture = select_components_bic(X, np.random.default_rng(2),
                                    max_components=5)
    print(f"  model-based clustering finds {mixture.n_components} job "
          f"populations (fabricated with 2)")


if __name__ == "__main__":
    main()
