"""Soak tests: the engine and pipeline at 10x the usual scale.

Keeps the whole stack honest about algorithmic complexity — a heap
regression or accidental O(n^2) in record handling shows up here as a
timeout long before it would be diagnosed elsewhere.
"""

import time

import numpy as np

from repro.core import KoozaTrainer, ReplayHarness, compare_workloads
from repro.datacenter import GfsSpec, run_gfs_workload
from repro.queueing import PoissonArrivals, QueueingNetwork, Station
from repro.simulation import Environment


def test_engine_handles_hundred_thousand_events_quickly():
    env = Environment()
    done = [0]

    def proc(env, delay):
        yield env.timeout(delay)
        done[0] += 1

    rng = np.random.default_rng(0)
    start = time.perf_counter()
    for d in rng.random(20_000):
        env.process(proc(env, float(d)))
    env.run()
    elapsed = time.perf_counter() - start
    assert done[0] == 20_000
    assert elapsed < 10.0


def test_queueing_network_soak():
    env = Environment()
    network = QueueingNetwork(
        env,
        [Station("s", 4, lambda _c, r: float(r.exponential(0.002)))],
        {"j": ["s"]},
        np.random.default_rng(1),
    )
    start = time.perf_counter()
    results = network.run_open(
        PoissonArrivals(1000.0, np.random.default_rng(2)),
        lambda _r: "j",
        30_000,
    )
    elapsed = time.perf_counter() - start
    assert len(results) == 30_000
    assert elapsed < 20.0


def test_full_pipeline_soak():
    """10k requests end to end: simulate, train, generate, replay,
    validate — in well under a minute."""
    start = time.perf_counter()
    run = run_gfs_workload(
        n_requests=10_000,
        seed=3,
        arrival_rate=50.0,
        gfs_spec=GfsSpec(chunkservers=2),
    )
    model = KoozaTrainer().fit(run.traces)
    synthetic = model.synthesize(10_000, np.random.default_rng(4))
    replayed = ReplayHarness(seed=5, n_servers=2).replay(synthetic)
    report = compare_workloads(run.traces, replayed)
    elapsed = time.perf_counter() - start
    assert len(run.traces.completed_requests()) == 10_000
    assert report.worst_feature_deviation_pct < 1.0
    assert elapsed < 60.0
