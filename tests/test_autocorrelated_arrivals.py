"""Tests for the Gaussian-copula AR(p) arrival model."""

import numpy as np
import pytest

from repro.core import KoozaConfig, KoozaTrainer, model_from_dict, model_to_dict
from repro.datacenter import run_gfs_workload
from repro.queueing import (
    BModelArrivals,
    CopulaArrivals,
    MMPPArrivals,
    PoissonArrivals,
    fit_ar_coefficients,
)
from repro.stats import acf, interarrival_cov


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def test_ar_coefficients_recover_ar1(rng):
    # Simulate AR(1) with phi = 0.7 and recover it.
    phi = 0.7
    z = np.zeros(5000)
    for t in range(1, z.size):
        z[t] = phi * z[t - 1] + rng.normal(0, 1)
    coefficients = fit_ar_coefficients(z, order=1)
    assert coefficients[0] == pytest.approx(phi, abs=0.05)


def test_ar_coefficients_white_noise_near_zero(rng):
    coefficients = fit_ar_coefficients(rng.normal(0, 1, 4000), order=4)
    assert np.all(np.abs(coefficients) < 0.1)


def test_ar_coefficients_always_stationary(rng):
    # A near-unit-root series must still yield a stationary fit.
    z = np.cumsum(rng.normal(0, 1, 2000))
    coefficients = fit_ar_coefficients(z, order=3)
    companion = np.zeros((3, 3))
    companion[0] = coefficients
    companion[1:, :-1] = np.eye(2)
    assert np.max(np.abs(np.linalg.eigvals(companion))) < 1.0


def test_ar_coefficients_validation(rng):
    with pytest.raises(ValueError):
        fit_ar_coefficients([1.0, 2.0], order=1)
    with pytest.raises(ValueError):
        fit_ar_coefficients(rng.normal(0, 1, 100), order=0)


def test_copula_preserves_marginal_quantiles(rng):
    gaps = rng.exponential(0.01, 4000)
    copula = CopulaArrivals(gaps, rng, order=4)
    synthetic = copula.sample(4000)
    for q in (25, 50, 75, 95):
        assert np.percentile(synthetic, q) == pytest.approx(
            np.percentile(gaps, q), rel=0.15
        )


def test_copula_matches_autocorrelation(rng):
    truth = BModelArrivals(100.0, rng, bias=0.8).sample(15_000)
    copula = CopulaArrivals(truth, np.random.default_rng(1), order=8)
    synthetic = copula.sample(15_000)
    true_acf1 = acf(truth, 1)[1]
    syn_acf1 = acf(synthetic, 1)[1]
    assert syn_acf1 == pytest.approx(true_acf1, abs=0.1)
    assert syn_acf1 > 0.1  # genuinely correlated


def test_copula_on_poisson_is_uncorrelated(rng):
    gaps = PoissonArrivals(50.0, rng).sample(5000)
    copula = CopulaArrivals(gaps, np.random.default_rng(2), order=4)
    synthetic = copula.sample(5000)
    assert abs(acf(synthetic, 1)[1]) < 0.08
    assert interarrival_cov(synthetic) == pytest.approx(1.0, abs=0.15)


def test_copula_mean_rate(rng):
    gaps = rng.exponential(0.02, 2000)
    copula = CopulaArrivals(gaps, rng)
    assert copula.mean_rate == pytest.approx(1.0 / gaps.mean(), rel=0.01)


def test_copula_validation(rng):
    with pytest.raises(ValueError):
        CopulaArrivals([0.1] * 5, rng)


# -- KOOZA integration ---------------------------------------------------


@pytest.fixture(scope="module")
def bursty_run():
    rng = np.random.default_rng(51)
    return run_gfs_workload(
        n_requests=1200,
        seed=37,
        arrivals=MMPPArrivals([8.0, 80.0], [1.5, 0.5], rng),
    )


def test_kooza_arrival_model_config_validation():
    with pytest.raises(ValueError):
        KoozaConfig(arrival_model="fractal")


def test_kooza_autocorrelated_arrivals_keep_burstiness(bursty_run):
    arrivals = np.sort(
        [r.arrival_time for r in bursty_run.traces.completed_requests()]
    )
    true_gaps = np.diff(arrivals)
    true_cov = interarrival_cov(true_gaps[true_gaps > 0])

    model = KoozaTrainer(
        KoozaConfig(arrival_model="autocorrelated")
    ).fit(bursty_run.traces)
    synthetic = model.synthesize(1200, np.random.default_rng(3))
    gaps = np.diff([r.arrival_time for r in synthetic])
    cov = interarrival_cov(gaps[gaps > 0])
    assert cov > 1.2  # bursty, like the MMPP input
    assert cov == pytest.approx(true_cov, rel=0.4)


def test_kooza_empirical_arrival_model(bursty_run):
    model = KoozaTrainer(
        KoozaConfig(arrival_model="empirical")
    ).fit(bursty_run.traces)
    synthetic = model.synthesize(200, np.random.default_rng(4))
    gaps = np.diff([r.arrival_time for r in synthetic])
    observed = set(np.round(model.arrival_gaps, 12))
    assert all(round(g, 12) in observed for g in gaps if g > 0)


def test_arrival_model_survives_serialization(bursty_run):
    model = KoozaTrainer(
        KoozaConfig(arrival_model="autocorrelated")
    ).fit(bursty_run.traces)
    restored = model_from_dict(model_to_dict(model))
    assert restored.config.arrival_model == "autocorrelated"
    a = restored.synthesize(50, np.random.default_rng(5))
    b = model.synthesize(50, np.random.default_rng(5))
    assert [r.arrival_time for r in a] == [r.arrival_time for r in b]
