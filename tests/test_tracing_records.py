"""Unit tests for trace records and their serialization."""

import pytest

from repro.tracing import (
    READ,
    WRITE,
    CpuRecord,
    MemoryRecord,
    NetworkRecord,
    RequestRecord,
    StorageRecord,
)


def test_network_record_round_trip():
    record = NetworkRecord(1, "s1", 0.5, 4096, "rx")
    assert NetworkRecord.from_dict(record.to_dict()) == record


def test_cpu_record_round_trip():
    record = CpuRecord(2, "s1", 1.5, 0.001, "lookup")
    assert CpuRecord.from_dict(record.to_dict()) == record


def test_memory_record_round_trip():
    record = MemoryRecord(3, "s1", 2.0, 5, 16384, WRITE, 1e-6)
    assert MemoryRecord.from_dict(record.to_dict()) == record


def test_storage_record_round_trip():
    record = StorageRecord(4, "s1", 3.0, 1000, 65536, READ, 0.005, 2)
    assert StorageRecord.from_dict(record.to_dict()) == record


def test_request_record_latency():
    record = RequestRecord(
        request_id=5,
        request_class="read_64K",
        server="s1",
        arrival_time=1.0,
        completion_time=1.012,
    )
    assert record.latency == pytest.approx(0.012)


def test_request_record_cpu_utilization():
    record = RequestRecord(
        request_id=6,
        request_class="x",
        server="s1",
        arrival_time=0.0,
        completion_time=0.010,
        cpu_busy_seconds=0.001,
    )
    assert record.cpu_utilization == pytest.approx(0.1)


def test_request_record_zero_latency_utilization():
    record = RequestRecord(
        request_id=7, request_class="x", server="s1", arrival_time=1.0
    )
    assert record.cpu_utilization == 0.0


def test_request_record_round_trip():
    record = RequestRecord(
        request_id=8,
        request_class="write_4M",
        server="cs-0",
        arrival_time=0.0,
        completion_time=0.016,
        network_bytes=4 << 20,
        cpu_busy_seconds=8e-4,
        memory_bytes=256 << 10,
        memory_op=WRITE,
        storage_bytes=4 << 20,
        storage_op=WRITE,
        extra={"replicas": 2},
    )
    restored = RequestRecord.from_dict(record.to_dict())
    assert restored == record
    assert restored.extra["replicas"] == 2
