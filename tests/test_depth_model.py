"""Tests for the in-depth queueing-network model."""

import numpy as np
import pytest

from repro.core import extract_request_features
from repro.datacenter import run_gfs_workload, run_webapp_workload
from repro.depth import InDepthModel
from repro.tracing import TraceSet


@pytest.fixture(scope="module")
def gfs_run():
    return run_gfs_workload(n_requests=800, seed=31)


@pytest.fixture(scope="module")
def fitted(gfs_run):
    return InDepthModel().fit(gfs_run.traces)


def test_route_recovers_figure1_stations(fitted):
    assert fitted.route == ["nic", "cpu", "memory", "disk", "cpu", "nic"]


def test_service_demands_positive(fitted):
    demands = fitted.mean_service_demand()
    assert set(demands) == {"nic", "cpu", "memory", "disk"}
    assert all(v > 0 for v in demands.values())
    # Disk dominates service demand for this workload.
    assert demands["disk"] == max(demands.values())


def test_predicted_latency_right_magnitude(gfs_run, fitted):
    original = np.array(
        [f.latency for f in extract_request_features(gfs_run.traces)]
    )
    predicted = fitted.predict_latencies(2000, np.random.default_rng(0))
    assert len(predicted) == 2000
    # In-depth gets the scale of latency right (same order of
    # magnitude) even though it knows nothing about request features.
    assert 0.3 < predicted.mean() / original.mean() < 3.0


def test_bootstrap_services_closer_than_exponential(gfs_run):
    original = np.array(
        [f.latency for f in extract_request_features(gfs_run.traces)]
    )
    exponential = InDepthModel(exponential_services=True).fit(gfs_run.traces)
    bootstrap = InDepthModel(exponential_services=False).fit(gfs_run.traces)
    rng1, rng2 = np.random.default_rng(1), np.random.default_rng(1)
    err_exp = abs(
        exponential.predict_latencies(2000, rng1).mean() - original.mean()
    )
    err_boot = abs(
        bootstrap.predict_latencies(2000, rng2).mean() - original.mean()
    )
    assert err_boot <= err_exp * 1.5  # bootstrap at least comparable


def test_in_depth_has_no_feature_api(fitted):
    # The defining limitation (paper Table 1): no synthesize() of
    # request features, only latency prediction.
    assert not hasattr(fitted, "synthesize")


def test_fit_requires_spans():
    traces = run_gfs_workload(n_requests=100, seed=1).traces
    stripped = TraceSet(requests=traces.requests)  # no spans
    with pytest.raises(ValueError):
        InDepthModel().fit(stripped)


def test_fit_requires_requests():
    with pytest.raises(ValueError):
        InDepthModel().fit(TraceSet())


def test_predict_validation(fitted):
    with pytest.raises(ValueError):
        fitted.predict_latencies(0, np.random.default_rng(0))
    with pytest.raises(RuntimeError):
        InDepthModel().predict_latencies(10, np.random.default_rng(0))


def test_webapp_route_has_three_cpu_visits():
    traces = run_webapp_workload(n_requests=200, seed=12)
    model = InDepthModel().fit(traces)
    assert model.route.count("cpu") == 6  # 3 lookup + 3 aggregate
    assert model.route.count("disk") == 1
