"""Tests for self-similarity, burstiness, ACF and pattern classification."""

import numpy as np
import pytest

from repro.stats import (
    acf,
    arrivals_to_counts,
    classify_utilization_pattern,
    cross_correlation,
    dominant_period,
    hurst_aggregated_variance,
    hurst_rs,
    index_of_dispersion,
    interarrival_cov,
    peak_to_mean,
    stationarity_pvalue,
)


def test_arrivals_to_counts_totals():
    counts = arrivals_to_counts([0.1, 0.2, 1.1, 2.5], bin_width=1.0)
    assert counts.sum() == 4


def test_arrivals_to_counts_validation():
    with pytest.raises(ValueError):
        arrivals_to_counts([], 1.0)
    with pytest.raises(ValueError):
        arrivals_to_counts([1.0], 0.0)


def test_hurst_poisson_near_half():
    rng = np.random.default_rng(0)
    arrivals = np.cumsum(rng.exponential(0.01, 50_000))
    counts = arrivals_to_counts(arrivals, 0.1)
    assert 0.4 < hurst_rs(counts) < 0.65
    assert 0.35 < hurst_aggregated_variance(counts) < 0.65


def test_hurst_lrd_series_is_high():
    # A random-walk-modulated rate gives strong long-range dependence.
    rng = np.random.default_rng(1)
    rates = np.abs(np.cumsum(rng.normal(0, 1, 4096))) + 1
    counts = rng.poisson(rates)
    assert hurst_rs(counts) > 0.75


def test_hurst_validation():
    with pytest.raises(ValueError):
        hurst_rs([1.0] * 8)


def test_interarrival_cov_poisson_one():
    rng = np.random.default_rng(2)
    cov = interarrival_cov(rng.exponential(1.0, 20_000))
    assert cov == pytest.approx(1.0, abs=0.05)


def test_interarrival_cov_deterministic_zero():
    assert interarrival_cov([1.0] * 100) == pytest.approx(0.0)


def test_index_of_dispersion_poisson_one():
    rng = np.random.default_rng(3)
    arrivals = np.cumsum(rng.exponential(0.01, 50_000))
    idc = index_of_dispersion(arrivals, 0.1)
    assert idc == pytest.approx(1.0, abs=0.15)


def test_peak_to_mean_uniform_near_one():
    arrivals = np.arange(0, 100, 0.1)
    assert peak_to_mean(arrivals, 1.0) == pytest.approx(1.0, abs=0.05)


def test_stationarity_detects_level_shift():
    rng = np.random.default_rng(4)
    series = np.concatenate([rng.normal(1, 0.1, 200), rng.normal(5, 0.1, 200)])
    assert stationarity_pvalue(series) < 1e-6


def test_stationarity_accepts_stable_series():
    rng = np.random.default_rng(5)
    assert stationarity_pvalue(rng.normal(1, 0.1, 400)) > 0.01


def test_acf_lag_zero_is_one():
    rng = np.random.default_rng(6)
    values = acf(rng.normal(0, 1, 500), max_lag=20)
    assert values[0] == 1.0
    assert np.all(np.abs(values[1:]) < 0.2)  # white noise decorrelates


def test_acf_periodic_signal_peaks_at_period():
    series = np.sin(np.arange(400) * 2 * np.pi / 20)
    values = acf(series, max_lag=40)
    assert values[20] > 0.9


def test_acf_validation():
    with pytest.raises(ValueError):
        acf([1.0], max_lag=1)
    with pytest.raises(ValueError):
        acf([1.0, 2.0, 3.0], max_lag=5)


def test_cross_correlation_perfect_and_none():
    x = np.arange(100, dtype=float)
    assert cross_correlation(x, 2 * x + 1) == pytest.approx(1.0)
    assert cross_correlation(x, np.ones(100)) == 0.0


def test_cross_correlation_length_mismatch():
    with pytest.raises(ValueError):
        cross_correlation([1, 2, 3], [1, 2])


def test_dominant_period_found():
    series = 5 + np.sin(np.arange(256) * 2 * np.pi / 16)
    assert dominant_period(series) == 16


def test_dominant_period_none_for_noise():
    rng = np.random.default_rng(7)
    assert dominant_period(rng.normal(0, 1, 256)) is None


def test_classify_periodic():
    series = 0.3 + 0.2 * np.sin(np.arange(128) * 2 * np.pi / 8)
    assert classify_utilization_pattern(series) == "periodic"


def test_classify_spiky():
    rng = np.random.default_rng(10)
    series = np.full(200, 0.1)
    # Aperiodic spikes: high p99/median but no dominant frequency.
    series[rng.choice(200, size=5, replace=False)] = 0.9
    assert classify_utilization_pattern(series) == "spiky"


def test_classify_noisy():
    rng = np.random.default_rng(8)
    series = np.clip(rng.normal(0.5, 0.2, 256), 0, 1)
    assert classify_utilization_pattern(series) == "noisy"


def test_classify_flat():
    rng = np.random.default_rng(9)
    series = np.clip(rng.normal(0.5, 0.01, 256), 0, 1)
    assert classify_utilization_pattern(series) == "flat"
