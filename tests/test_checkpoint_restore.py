"""Engine checkpoint/restore, the unified snapshot protocol, and forking.

Covers the acceptance contract of the checkpoint subsystem:

* the shared ``repro.snapshot`` protocol (typed errors, atomic save/load,
  deprecation shims over the old per-module versions);
* RNG snapshot fidelity, including spawned substreams and the
  never-drawn-generator pitfall;
* run / checkpoint / restore / run byte-identity for all three standard
  workloads;
* deterministic forking from a warmed-up checkpoint;
* windowed collection (``--windows N``) merging byte-identically to a
  single-shot collect, and kill-mid-replica resume equivalence.
"""

import gzip
import json
import warnings
from pathlib import Path

import pytest

from repro.datacenter import (
    ReplicaSession,
    ReplicaSpec,
    collect_fleet_to_store,
    resume_fleet_collection,
)
from repro.simulation import RandomStreams, engine_digest, verify_engine_digest
from repro.snapshot import (
    SNAPSHOT_VERSION,
    SnapshotError,
    SnapshotFormatError,
    SnapshotMismatchError,
    SnapshotVersionError,
    Snapshotable,
    check_state,
    load_snapshot,
    make_state,
    save_snapshot,
)
from repro.stats.streaming import ReservoirQuantile
from repro.store import ShardStore
from repro.tracing.tracer import STREAM_NAMES

APPS = ("gfs", "webapp", "mapreduce")


def spec_for(app, index=0, seed=11, n_requests=80):
    rate = {"gfs": 25.0, "webapp": 120.0, "mapreduce": None}[app]
    return ReplicaSpec(
        app=app,
        index=index,
        seed=seed,
        n_requests=n_requests,
        arrival_rate=rate,
        sample_every=1,
    )


def stream_dicts(traces):
    return {
        stream: [r.to_dict() for r in traces.iter_records(stream)]
        for stream in STREAM_NAMES
    }


# -- snapshot protocol --------------------------------------------------------


def test_make_and_check_state_round_trip():
    state = make_state("thing", {"x": 1.5})
    assert state["kind"] == "thing"
    assert state["version"] == SNAPSHOT_VERSION
    check_state(state, "thing")  # does not raise


def test_check_state_typed_errors():
    with pytest.raises(SnapshotFormatError, match="state"):
        check_state(None, "thing")
    with pytest.raises(SnapshotFormatError, match="expected 'thing'"):
        check_state({"kind": "other", "version": 1}, "thing")
    with pytest.raises(SnapshotVersionError, match="version"):
        check_state({"kind": "thing", "version": 99}, "thing")
    # Typed errors stay catchable as the legacy ValueError.
    with pytest.raises(ValueError):
        check_state({"kind": "thing", "version": 99}, "thing")
    assert issubclass(SnapshotVersionError, SnapshotError)
    assert issubclass(SnapshotMismatchError, SnapshotError)


def test_save_load_snapshot_plain_and_gz(tmp_path):
    state = make_state("thing", {"b": [1, 2], "a": 0.1})
    plain = save_snapshot(state, tmp_path / "s.json")
    zipped = save_snapshot(state, tmp_path / "s.json.gz")
    assert load_snapshot(plain) == state
    assert load_snapshot(zipped) == state
    # Canonical gzip (fixed mtime) => byte-identical rewrites.
    before = zipped.read_bytes()
    save_snapshot(state, zipped)
    assert zipped.read_bytes() == before
    assert gzip.decompress(before).decode() == plain.read_text()


def test_load_snapshot_rejects_non_snapshot(tmp_path):
    path = tmp_path / "junk.json"
    path.write_text("not json")
    with pytest.raises(SnapshotFormatError):
        load_snapshot(path)
    path.write_text("[1, 2]")
    with pytest.raises(SnapshotFormatError):
        load_snapshot(path)


def test_deprecated_streaming_aliases_warn():
    import repro.stats.streaming as streaming

    with pytest.warns(DeprecationWarning, match="repro.snapshot"):
        assert streaming.STREAMING_STATE_VERSION == SNAPSHOT_VERSION
    with pytest.warns(DeprecationWarning, match="repro.snapshot"):
        assert streaming.check_state is check_state


def test_deprecated_serve_state_version_warns():
    import repro.serve.state as serve_state

    with pytest.warns(DeprecationWarning, match="repro.snapshot"):
        assert serve_state.SERVE_STATE_VERSION == SNAPSHOT_VERSION


def test_package_level_aliases_do_not_warn():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        from repro.serve import SERVE_STATE_VERSION
        from repro.stats import STREAMING_STATE_VERSION
    assert STREAMING_STATE_VERSION == SERVE_STATE_VERSION == SNAPSHOT_VERSION


# -- RNG snapshots ------------------------------------------------------------


def rng_json(streams):
    return json.dumps(streams.state(), sort_keys=True)


def test_random_streams_round_trip_with_substreams():
    rs = RandomStreams(5)
    rs.get("a").random(3)
    child = rs.spawn("replica").spawn("2")
    child.get("workload/arrivals").random(7)
    state = json.loads(rng_json(rs))
    restored = RandomStreams.from_state(state)
    assert rng_json(restored) == rng_json(rs)
    # Identical draws after restore, at both levels of the tree.
    a = rs.get("a").random(4).tolist()
    b = restored.get("a").random(4).tolist()
    assert a == b
    c = rs.spawn("replica").spawn("2").get("workload/arrivals").random(4)
    d = restored.spawn("replica").spawn("2").get("workload/arrivals").random(4)
    assert c.tolist() == d.tolist()


def test_random_streams_never_drawn_restores_identically():
    # A generator created but never drawn from must serialize exactly as
    # a fresh one, or restore-validation would reject pristine state.
    rs = RandomStreams(3)
    rs.get("untouched")
    restored = RandomStreams.from_state(json.loads(rng_json(rs)))
    fresh = RandomStreams(3)
    fresh.get("untouched")
    assert rng_json(restored) == rng_json(fresh) == rng_json(rs)
    assert (
        restored.get("untouched").random(4).tolist()
        == fresh.get("untouched").random(4).tolist()
    )


def test_spawn_is_memoized():
    rs = RandomStreams(1)
    assert rs.spawn("replica") is rs.spawn("replica")
    # Memoization makes the substream tree snapshot-representable: two
    # handles to one path share state instead of diverging silently.
    g1 = rs.spawn("replica").get("x")
    g2 = rs.spawn("replica").get("x")
    assert g1 is g2


def test_reservoir_quantile_never_drawn_round_trip():
    res = ReservoirQuantile(capacity=8, seed=3)
    restored = ReservoirQuantile.from_state(res.state())
    assert json.dumps(restored.state(), sort_keys=True) == json.dumps(
        res.state(), sort_keys=True
    )
    fresh = ReservoirQuantile(capacity=8, seed=3)
    for r in (res, restored, fresh):
        for v in range(20):
            r.add(float(v))
    assert restored.quantile(0.5) == fresh.quantile(0.5) == res.quantile(0.5)


# -- engine digests -----------------------------------------------------------


def test_engine_digest_detects_divergence():
    session = ReplicaSession(spec_for("gfs"))
    session.advance_progress(10)
    digest = engine_digest(session.env)
    verify_engine_digest(session.env, digest)  # matches itself
    session.env.step()
    with pytest.raises(SnapshotMismatchError, match="diverged"):
        verify_engine_digest(session.env, digest)


# -- run / checkpoint / restore / run ----------------------------------------


@pytest.mark.parametrize("app", APPS)
def test_run_restore_run_byte_identity(app):
    n = 60 if app != "mapreduce" else 80
    reference = ReplicaSession(spec_for(app, n_requests=n))
    reference.run_to_completion()

    session = ReplicaSession(spec_for(app, n_requests=n))
    session.advance_progress(session.total_progress // 2)
    state = session.checkpoint()
    # The checkpoint must survive a JSON round trip (what save/load do).
    state = json.loads(json.dumps(state))
    restored = ReplicaSession.restore(state)
    restored.run_to_completion()

    assert stream_dicts(restored.traces) == stream_dicts(reference.traces)
    assert restored.env.now == reference.env.now
    assert restored.env.steps == reference.env.steps
    assert rng_json(restored.streams) == rng_json(reference.streams)


def test_checkpoint_save_load_file_round_trip(tmp_path):
    session = ReplicaSession(spec_for("gfs"))
    session.advance_progress(20)
    path = save_snapshot(session.checkpoint(), tmp_path / "ckpt.json")
    restored = ReplicaSession.restore(load_snapshot(path))
    restored.run_to_completion()
    reference = ReplicaSession(spec_for("gfs"))
    reference.run_to_completion()
    assert stream_dicts(restored.traces) == stream_dicts(reference.traces)


def test_restore_rejects_tampered_checkpoint():
    session = ReplicaSession(spec_for("gfs"))
    session.advance_progress(15)
    state = json.loads(json.dumps(session.checkpoint()))
    state["engine"]["queue_sha"] = "0" * 64
    with pytest.raises(SnapshotMismatchError, match="diverged"):
        ReplicaSession.restore(state)


def test_restore_rejects_changed_inputs():
    session = ReplicaSession(spec_for("gfs", seed=1))
    session.advance_progress(15)
    state = json.loads(json.dumps(session.checkpoint()))
    state["spec"]["seed"] = 2  # replay under a different seed drifts
    with pytest.raises(SnapshotMismatchError):
        ReplicaSession.restore(state)


# -- forking ------------------------------------------------------------------


def test_fork_determinism_from_shared_checkpoint():
    base = ReplicaSession(spec_for("gfs"))
    base.advance_progress(base.total_progress // 2)
    state = json.loads(json.dumps(base.checkpoint()))
    shared = stream_dicts(base.traces)

    def branch(key):
        session = ReplicaSession.restore(state).fork(key)
        session.run_to_completion()
        return stream_dicts(session.traces)

    a1, a2, b = branch("alpha"), branch("alpha"), branch("beta")
    # Same key => bit-identical branch; different key => divergence.
    assert a1 == a2
    assert a1 != b
    # Both branches share the pre-fork history verbatim.
    for branch_traces in (a1, b):
        for stream in STREAM_NAMES:
            done = shared[stream]
            if stream == "spans":  # open spans mutate (end backfilled)
                done = [s for s in done if s["end"] == s["end"]]
                prefix = branch_traces[stream][: len(done)]
                assert [s["span_id"] for s in prefix] == [
                    s["span_id"] for s in done
                ]
                continue
            assert branch_traces[stream][: len(done)] == done


def test_forked_session_checkpoints_restore():
    session = ReplicaSession(spec_for("gfs"))
    session.advance_progress(10)
    session.fork("branch-a")
    session.advance_progress(30)
    state = json.loads(json.dumps(session.checkpoint()))
    restored = ReplicaSession.restore(state)
    restored.run_to_completion()
    session.run_to_completion()
    assert stream_dicts(restored.traces) == stream_dicts(session.traces)
    assert rng_json(restored.streams) == rng_json(session.streams)


def test_fork_requires_distinct_keys_to_diverge():
    a = RandomStreams(9).fork("x")
    b = RandomStreams(9).fork("x")
    c = RandomStreams(9).fork("y")
    assert a.get("s").random(3).tolist() == b.get("s").random(3).tolist()
    assert a.get("s").random(3).tolist() != c.get("s").random(3).tolist()


# -- windowed collection ------------------------------------------------------


@pytest.mark.parametrize("app", ("gfs", "webapp"))
def test_windowed_collect_merges_identically(tmp_path, app):
    kwargs = dict(app=app, replicas=2, seed=7, n_requests=60)
    collect_fleet_to_store(directory=tmp_path / "single", **kwargs)
    collect_fleet_to_store(directory=tmp_path / "windowed", windows=3, **kwargs)
    single = ShardStore(tmp_path / "single")
    windowed = ShardStore(tmp_path / "windowed")
    assert len(windowed.manifests) == 6
    assert [m.continues for m in windowed.manifests] == [
        False, True, True, False, True, True,
    ]
    assert windowed.extent() == pytest.approx(single.extent(), abs=1e-12)
    assert stream_dicts(windowed) == stream_dicts(single)
    # Each window is its own collection round across all replicas.
    assert {r: [m.index for m in ms] for r, ms in windowed.rounds().items()} == {
        0: [0, 3], 1: [1, 4], 2: [2, 5],
    }


def _store_files(directory):
    return {
        str(p.relative_to(directory)): p.read_bytes()
        for p in sorted(Path(directory).rglob("*"))
        if p.is_file() and "_checkpoints" not in p.parts
    }


def test_kill_mid_replica_resume_equivalence(tmp_path, monkeypatch):
    import repro.datacenter.fleet as fleet

    kwargs = dict(app="gfs", replicas=2, seed=3, n_requests=60)
    collect_fleet_to_store(directory=tmp_path / "full", windows=3, **kwargs)

    class Kill(Exception):
        pass

    # Die on the third snapshot write (1: fleet plan, 2: window-0
    # checkpoint, 3: window-1 checkpoint) *before* it lands: window 1's
    # shard is on disk but the checkpoint still says one window done —
    # exactly the torn state a SIGKILL between finalize and checkpoint
    # leaves behind.
    real_save = fleet.save_snapshot
    calls = []

    def dying_save(state, path):
        calls.append(path)
        if len(calls) == 3:
            raise Kill()
        return real_save(state, path)

    monkeypatch.setattr(fleet, "save_snapshot", dying_save)
    with pytest.raises(Kill):
        collect_fleet_to_store(directory=tmp_path / "cut", windows=3, **kwargs)
    monkeypatch.setattr(fleet, "save_snapshot", real_save)

    resumed = resume_fleet_collection(tmp_path / "cut", workers=1)
    assert len(resumed.manifests) == 6
    assert _store_files(tmp_path / "cut") == _store_files(tmp_path / "full")
    # Resume is idempotent: a second pass re-reads manifests untouched.
    resume_fleet_collection(tmp_path / "cut", workers=1)
    assert _store_files(tmp_path / "cut") == _store_files(tmp_path / "full")


def test_windowed_append_continues_replica_numbering(tmp_path):
    kwargs = dict(app="gfs", seed=7, n_requests=40)
    collect_fleet_to_store(directory=tmp_path / "w", windows=2, replicas=2, **kwargs)
    collect_fleet_to_store(
        directory=tmp_path / "w", windows=2, replicas=1, append=True, **kwargs
    )
    collect_fleet_to_store(directory=tmp_path / "flat", replicas=3, **kwargs)
    windowed = ShardStore(tmp_path / "w")
    flat = ShardStore(tmp_path / "flat")
    assert len(windowed.manifests) == 6
    # Appended replica 2 reuses the same substream as single-shot replica 2.
    assert stream_dicts(windowed) == stream_dicts(flat)


# -- protocol conformance -----------------------------------------------------


def test_snapshotable_protocol_members():
    from repro.serve.state import ServeState
    from repro.stats.streaming import MomentsAccumulator

    assert isinstance(RandomStreams(0), Snapshotable)
    assert isinstance(MomentsAccumulator(), Snapshotable)
    assert isinstance(ReservoirQuantile(), Snapshotable)
    assert hasattr(ServeState, "state") and hasattr(ServeState, "from_state")
