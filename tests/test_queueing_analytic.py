"""Tests for closed-form queueing results, cross-checked by simulation."""

import numpy as np
import pytest

from repro.queueing import (
    MG1,
    MM1,
    MMc,
    PoissonArrivals,
    QueueingNetwork,
    Station,
    erlang_c,
)
from repro.simulation import Environment


def test_mm1_textbook_values():
    m = MM1(arrival_rate=8.0, service_rate=10.0)
    assert m.utilization == pytest.approx(0.8)
    assert m.mean_number_in_system == pytest.approx(4.0)
    assert m.mean_response == pytest.approx(0.5)


def test_mm1_unstable_rejected():
    with pytest.raises(ValueError):
        MM1(10.0, 10.0)
    with pytest.raises(ValueError):
        MM1(12.0, 10.0)


def test_mmc_single_server_equals_mm1():
    a = MM1(5.0, 10.0)
    b = MMc(5.0, 10.0, servers=1)
    assert b.mean_wait == pytest.approx(a.mean_wait, rel=1e-9)


def test_mmc_more_servers_less_waiting():
    one = MMc(15.0, 10.0, servers=2)
    many = MMc(15.0, 10.0, servers=8)
    assert many.mean_wait < one.mean_wait


def test_erlang_c_bounds():
    p = erlang_c(4, 2.0)
    assert 0.0 < p < 1.0
    assert erlang_c(1, 0.5) == pytest.approx(0.5)


def test_erlang_c_validation():
    with pytest.raises(ValueError):
        erlang_c(0, 1.0)
    with pytest.raises(ValueError):
        erlang_c(2, 2.0)  # a == c is unstable


def test_mg1_reduces_to_mm1_at_scv_one():
    a = MM1(6.0, 10.0)
    b = MG1(6.0, mean_service=0.1, service_scv=1.0)
    assert b.mean_wait == pytest.approx(a.mean_wait, rel=1e-9)


def test_mg1_deterministic_halves_waiting():
    exponential = MG1(6.0, 0.1, service_scv=1.0)
    deterministic = MG1(6.0, 0.1, service_scv=0.0)
    assert deterministic.mean_wait == pytest.approx(
        exponential.mean_wait / 2.0, rel=1e-9
    )


def test_mm1_simulation_agrees_with_formula():
    rng = np.random.default_rng(7)
    env = Environment()
    network = QueueingNetwork(
        env,
        [Station("s", 1, lambda _cls, r: float(r.exponential(0.01)))],
        {"job": ["s"]},
        rng,
    )
    results = network.run_open(
        PoissonArrivals(70.0, np.random.default_rng(8)),
        lambda _rng: "job",
        20_000,
    )
    simulated = np.mean([r.latency for r in results])
    analytic = MM1(70.0, 100.0).mean_response
    assert simulated == pytest.approx(analytic, rel=0.1)


def test_mmc_simulation_agrees_with_formula():
    rng = np.random.default_rng(9)
    env = Environment()
    network = QueueingNetwork(
        env,
        [Station("s", 3, lambda _cls, r: float(r.exponential(0.03)))],
        {"job": ["s"]},
        rng,
    )
    results = network.run_open(
        PoissonArrivals(80.0, np.random.default_rng(10)),
        lambda _rng: "job",
        20_000,
    )
    simulated = np.mean([r.latency for r in results])
    analytic = MMc(80.0, 1 / 0.03, servers=3).mean_response
    assert simulated == pytest.approx(analytic, rel=0.1)

# -- saturation-aware variants and erlang_c regression ------------------------


def test_erlang_c_rejects_offered_load_at_or_past_servers():
    # Regression: a >= c used to reach the c - a denominator; it must be
    # rejected up front for every overload, not just a == c.
    with pytest.raises(ValueError):
        erlang_c(2, 2.0)
    with pytest.raises(ValueError):
        erlang_c(2, 3.5)
    with pytest.raises(ValueError):
        erlang_c(1, 1.0)


def test_erlang_c_rejects_nan_and_negative():
    with pytest.raises(ValueError):
        erlang_c(2, float("nan"))
    with pytest.raises(ValueError):
        erlang_c(2, -1.0)


def test_erlang_c_saturating_clamps_to_one():
    from repro.queueing import erlang_c_saturating

    assert erlang_c_saturating(2, 2.0) == 1.0
    assert erlang_c_saturating(2, 100.0) == 1.0
    # Below saturation it is exactly erlang_c.
    assert erlang_c_saturating(4, 2.0) == pytest.approx(erlang_c(4, 2.0))


def test_mmc_single_server_matches_mm1_across_rate_grid():
    from repro.queueing import MM1_saturating, MMc_saturating

    for rate in (0.5, 2.0, 5.0, 7.5, 9.0, 9.9):
        a = MM1(rate, 10.0)
        b = MMc(rate, 10.0, servers=1)
        assert b.utilization == pytest.approx(a.utilization, rel=1e-12)
        assert b.mean_wait == pytest.approx(a.mean_wait, rel=1e-9)
        assert b.mean_response == pytest.approx(a.mean_response, rel=1e-9)
        assert b.mean_number_in_system == pytest.approx(
            a.mean_number_in_system, rel=1e-9
        )
    # The saturating variants agree too, including past the knee.
    for rate in (5.0, 10.0, 15.0):
        a = MM1_saturating(rate, 10.0)
        b = MMc_saturating(rate, 10.0, servers=1)
        assert b.utilization == pytest.approx(a.utilization, rel=1e-12)
        assert b.saturated == a.saturated


def test_saturating_wrappers_at_and_past_rho_one():
    import math

    from repro.queueing import (
        MG1_saturating,
        MM1_saturating,
        MMc_saturating,
    )

    # Exactly at rho = 1 and just past it: a QueueMetrics with the true
    # utilization and infinite delays, never an exception.
    for rate in (10.0, 10.0 + 1e-9, 25.0):
        for metrics in (
            MM1_saturating(rate, 10.0),
            MMc_saturating(2.0 * rate, 10.0, servers=2),
            MG1_saturating(rate, mean_service=0.1, service_scv=1.0),
        ):
            assert metrics.saturated
            assert metrics.utilization == pytest.approx(rate / 10.0)
            assert math.isinf(metrics.mean_wait)
            assert math.isinf(metrics.mean_response)
            assert math.isinf(metrics.mean_number_in_system)


def test_saturating_wrappers_match_exact_below_knee():
    from repro.queueing import (
        MG1_saturating,
        MM1_saturating,
        MMc_saturating,
    )

    assert MM1_saturating(8.0, 10.0) == MM1(8.0, 10.0)
    assert MMc_saturating(15.0, 10.0, 2) == MMc(15.0, 10.0, 2)
    assert MG1_saturating(6.0, 0.1, 1.0) == MG1(6.0, 0.1, 1.0)
    assert not MM1_saturating(8.0, 10.0).saturated


def test_saturated_metrics_helper():
    import math

    from repro.queueing import saturated_metrics

    m = saturated_metrics(1.7)
    assert m.utilization == pytest.approx(1.7)
    assert m.saturated
    assert math.isinf(m.mean_queue_length)
