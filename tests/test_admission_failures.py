"""Tests for admission control (Yaksha) and fault injection."""

import numpy as np
import pytest

from repro.datacenter import (
    DiskFault,
    FaultInjector,
    GfsCluster,
    GfsSpec,
)
from repro.datacenter.devices import DiskSpec
from repro.depth import AdmissionController, AnomalyDetector
from repro.queueing import PoissonArrivals
from repro.simulation import Environment, RandomStreams, Resource
from repro.tracing import Tracer
from repro.workloads import OpenLoopClient, table2_mix

DEGRADED = DiskSpec(min_seek=1.6e-3, max_seek=32e-3, write_cache=False)


# -- admission control ---------------------------------------------------


def _overloaded_station(env, service_time=0.02):
    """A single server that saturates at 50 req/s."""
    resource = Resource(env, capacity=1)

    def service():
        with resource.request() as req:
            yield req
            yield env.timeout(service_time)

    return service


def test_admission_controller_sheds_under_overload():
    env = Environment()
    rng = np.random.default_rng(0)
    service = _overloaded_station(env)
    controller = AdmissionController(
        env, target_latency=0.08, rng=rng, control_interval=0.5
    )

    def source(env):
        arrivals = PoissonArrivals(120.0, np.random.default_rng(1))
        for _ in range(3000):  # 2.4x overload
            yield env.timeout(arrivals.next_interarrival())
            env.process(controller.submit(service))

    env.process(source(env))
    env.run(until=30.0)
    controller.stop()
    env.run()
    stats = controller.stats
    assert stats.rejected > 0
    assert stats.admission_rate < 0.75  # sheds a meaningful fraction
    # The held latency is in the neighbourhood of the target, not the
    # unbounded queue growth an uncontrolled system would see.
    assert stats.mean_latency < 4 * 0.08


def test_admission_controller_admits_all_when_underloaded():
    env = Environment()
    rng = np.random.default_rng(2)
    service = _overloaded_station(env, service_time=0.005)
    controller = AdmissionController(env, target_latency=0.1, rng=rng)

    def source(env):
        arrivals = PoissonArrivals(50.0, np.random.default_rng(3))
        for _ in range(500):
            yield env.timeout(arrivals.next_interarrival())
            env.process(controller.submit(service))

    env.process(source(env))
    env.run(until=15.0)
    controller.stop()
    env.run()
    assert controller.stats.rejected == 0
    assert controller.admission_probability == pytest.approx(1.0)


def test_admission_controller_recovers_after_burst():
    env = Environment()
    rng = np.random.default_rng(4)
    service = _overloaded_station(env)
    controller = AdmissionController(
        env, target_latency=0.08, rng=rng, control_interval=0.5
    )

    def source(env):
        burst = PoissonArrivals(150.0, np.random.default_rng(5))
        calm = PoissonArrivals(20.0, np.random.default_rng(6))
        for _ in range(600):
            yield env.timeout(burst.next_interarrival())
            env.process(controller.submit(service))
        for _ in range(600):
            yield env.timeout(calm.next_interarrival())
            env.process(controller.submit(service))

    env.process(source(env))
    env.run(until=60.0)
    controller.stop()
    env.run()
    # After the calm phase the controller opens back up.
    assert controller.admission_probability > 0.8


def test_admission_controller_validation():
    env = Environment()
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        AdmissionController(env, target_latency=0.0, rng=rng)
    with pytest.raises(ValueError):
        AdmissionController(env, 0.1, rng, control_interval=0.0)
    with pytest.raises(ValueError):
        AdmissionController(env, 0.1, rng, min_admission=0.0)


# -- fault injection -----------------------------------------------------------


def _run_with_fault(fault_start=10.0, repair=None, n_requests=900):
    env = Environment()
    tracer = Tracer()
    streams = RandomStreams(7)
    cluster = GfsCluster(env, GfsSpec(), streams, tracer)
    faults = [
        DiskFault(
            machine="chunkserver-0",
            start_time=fault_start,
            degraded_spec=DEGRADED,
            repair_time=repair,
        )
    ]
    injector = FaultInjector(env, cluster.chunkservers, faults)
    mix = table2_mix(streams.get("mix"))
    client = OpenLoopClient(
        env,
        cluster.client_request,
        mix.make_request,
        PoissonArrivals(30.0, streams.get("arrivals")),
    )
    client.start(n_requests)
    env.run()
    return tracer.traces, injector


def test_fault_injector_logs_events():
    _, injector = _run_with_fault(fault_start=5.0, repair=15.0)
    events = [(round(t), what) for t, _, what in injector.log]
    assert events == [(5, "degraded"), (15, "repaired")]


def test_fault_onset_visible_in_latencies():
    traces, _ = _run_with_fault(fault_start=10.0)
    before = [
        r.latency
        for r in traces.completed_requests()
        if r.arrival_time < 9.0
    ]
    after = [
        r.latency
        for r in traces.completed_requests()
        if r.arrival_time > 11.0
    ]
    assert np.mean(after) > 1.5 * np.mean(before)


def test_detector_localizes_onset_in_time():
    traces, _ = _run_with_fault(fault_start=10.0)
    trees = traces.trace_trees()
    healthy = [t for t in trees if t.root.start < 9.0]
    detector = AnomalyDetector(threshold_sigmas=4.0).fit(healthy)
    verdicts = [detector.judge(t) for t in trees]
    flagged_times = [
        t.root.start
        for t, v in zip(trees, verdicts)
        if v.is_anomalous and v.worst_stage == "storage"
    ]
    assert flagged_times  # the incident is detected
    # Most storage anomalies occur after the fault started.
    after = sum(1 for t in flagged_times if t >= 10.0)
    assert after / len(flagged_times) > 0.9


def test_repair_restores_latency():
    traces, _ = _run_with_fault(fault_start=8.0, repair=16.0, n_requests=900)
    records = traces.completed_requests()
    during = [
        r.latency for r in records if 9.0 < r.arrival_time < 15.0
    ]
    after_repair = [
        r.latency for r in records if r.arrival_time > 17.0
    ]
    assert np.mean(after_repair) < 0.6 * np.mean(during)


def test_fault_validation():
    env = Environment()
    streams = RandomStreams(1)
    cluster = GfsCluster(env, GfsSpec(), streams, Tracer())
    with pytest.raises(ValueError):
        DiskFault("x", start_time=-1.0, degraded_spec=DEGRADED)
    with pytest.raises(ValueError):
        DiskFault("x", start_time=5.0, degraded_spec=DEGRADED, repair_time=5.0)
    with pytest.raises(ValueError):
        FaultInjector(
            env,
            cluster.chunkservers,
            [DiskFault("ghost", 1.0, DEGRADED)],
        )
