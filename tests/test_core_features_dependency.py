"""Tests for feature extraction and dependency-queue mining."""

import numpy as np
import pytest

from repro.core import extract_request_features, mine_dependency_queue, profile_key
from repro.core.dependency import DependencyQueue
from repro.datacenter import run_gfs_workload, run_webapp_workload
from repro.tracing import READ, WRITE


@pytest.fixture(scope="module")
def gfs_run():
    return run_gfs_workload(n_requests=400, seed=21)


def test_features_cover_all_completed_requests(gfs_run):
    features = extract_request_features(gfs_run.traces)
    assert len(features) == len(gfs_run.traces.completed_requests())


def test_features_sorted_by_arrival(gfs_run):
    features = extract_request_features(gfs_run.traces)
    arrivals = [f.arrival_time for f in features]
    assert arrivals == sorted(arrivals)


def test_features_match_request_classes(gfs_run):
    features = extract_request_features(gfs_run.traces)
    for f in features:
        if f.request_class == "read_64K":
            assert f.network_bytes == 64 * 1024
            assert f.storage_bytes == 64 * 1024
            assert f.memory_bytes == 16 * 1024
            assert f.storage_op == READ and f.memory_op == READ
        else:
            assert f.request_class == "write_4M"
            assert f.network_bytes == 4 << 20
            assert f.memory_bytes == 256 * 1024
            assert f.storage_op == WRITE and f.memory_op == WRITE


def test_features_cpu_split_positive(gfs_run):
    features = extract_request_features(gfs_run.traces)
    for f in features[:50]:
        assert f.cpu_lookup_busy > 0
        assert f.cpu_aggregate_busy > 0
        assert 0 < f.cpu_utilization < 1


def test_features_storage_delta_mixes_sequential_and_jumps(gfs_run):
    features = extract_request_features(gfs_run.traces)
    deltas = np.array([f.storage_delta for f in features])
    assert np.any(deltas == 0) or np.any(np.abs(deltas) < 100)
    assert np.any(np.abs(deltas) > 10_000)


def test_profile_key_groups_by_op_and_size(gfs_run):
    features = extract_request_features(gfs_run.traces)
    keys = {profile_key(f) for f in features}
    assert keys == {(READ, 16), (WRITE, 22)}


def test_features_master_excluded(gfs_run):
    features = extract_request_features(gfs_run.traces)
    # Master lookup work must not leak into data-path network bytes:
    # every read request's payload is exactly the class size.
    reads = [f for f in features if f.request_class == "read_64K"]
    assert all(f.network_bytes == 64 * 1024 for f in reads)


def test_mine_dependency_queue_gfs(gfs_run):
    trees = gfs_run.traces.trace_trees()
    queue = mine_dependency_queue(trees)
    assert queue.default == (
        "network_rx",
        "cpu_lookup",
        "memory",
        "storage",
        "cpu_aggregate",
        "network_tx",
    )


def test_mine_dependency_queue_per_profile(gfs_run):
    trees = gfs_run.traces.trace_trees()
    features = extract_request_features(gfs_run.traces)
    profile_of = {f.request_id: f.request_class for f in features}
    queue = mine_dependency_queue(trees, profile_of)
    assert queue.n_profiles == 2
    assert queue.sequence_for("read_64K") == queue.default


def test_mine_dependency_queue_webapp_differs():
    traces = run_webapp_workload(n_requests=120, seed=9)
    queue = mine_dependency_queue(traces.trace_trees())
    assert queue.default.count("cpu_lookup") == 3
    assert queue.default.count("cpu_aggregate") == 3


def test_dependency_queue_unknown_profile_falls_back():
    queue = DependencyQueue(
        sequences={"a": ("x", "y")}, supports={"a": 3}, default=("x",)
    )
    assert queue.sequence_for("never-seen") == ("x",)
    assert queue.sequence_for("a") == ("x", "y")


def test_dependency_queue_validation():
    with pytest.raises(ValueError):
        DependencyQueue({}, {}, default=())
    with pytest.raises(ValueError):
        mine_dependency_queue([])


def test_dependency_queue_describe(gfs_run):
    queue = mine_dependency_queue(gfs_run.traces.trace_trees())
    text = queue.describe()
    assert "network_rx -> cpu_lookup" in text
