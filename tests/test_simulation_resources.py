"""Unit tests for Resource, Store and utilization accounting."""

import pytest

from repro.simulation import Environment, Resource, Store


def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    active = []

    def user(env, res, name):
        with res.request() as req:
            yield req
            active.append((env.now, name))
            yield env.timeout(10.0)

    for name in "abc":
        env.process(user(env, res, name))
    env.run()
    times = dict((name, t) for t, name in active)
    assert times["a"] == 0.0
    assert times["b"] == 0.0
    assert times["c"] == 10.0  # third user waits for a slot


def test_resource_fifo_order():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(env, res, name, start):
        yield env.timeout(start)
        with res.request() as req:
            yield req
            order.append(name)
            yield env.timeout(5.0)

    env.process(user(env, res, "first", 0.0))
    env.process(user(env, res, "second", 1.0))
    env.process(user(env, res, "third", 2.0))
    env.run()
    assert order == ["first", "second", "third"]


def test_resource_priority_order():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def holder(env, res):
        with res.request() as req:
            yield req
            yield env.timeout(10.0)

    def user(env, res, name, prio):
        yield env.timeout(1.0)
        with res.request(priority=prio) as req:
            yield req
            order.append(name)
            yield env.timeout(1.0)

    env.process(holder(env, res))
    env.process(user(env, res, "low", 5.0))
    env.process(user(env, res, "high", 0.0))
    env.run()
    assert order == ["high", "low"]


def test_resource_wait_time_accounting():
    env = Environment()
    res = Resource(env, capacity=1)

    def user(env, res, hold):
        with res.request() as req:
            yield req
            yield env.timeout(hold)

    env.process(user(env, res, 4.0))
    env.process(user(env, res, 1.0))
    env.run()
    assert res.total_requests == 2
    assert res.total_wait == pytest.approx(4.0)


def test_resource_utilization_fraction():
    env = Environment()
    res = Resource(env, capacity=1)

    def user(env, res):
        with res.request() as req:
            yield req
            yield env.timeout(3.0)

    env.process(user(env, res))
    env.run(until=10.0)
    assert res.utilization() == pytest.approx(0.3)


def test_resource_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_queue_length():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder(env, res):
        with res.request() as req:
            yield req
            yield env.timeout(10.0)

    def waiter(env, res):
        with res.request() as req:
            yield req

    env.process(holder(env, res))
    env.process(waiter(env, res))
    env.process(waiter(env, res))
    env.run(until=5.0)
    assert res.count == 1
    assert res.queue_length == 2


def test_store_put_then_get():
    env = Environment()
    store = Store(env)
    store.put("x")
    got = []

    def consumer(env, store):
        item = yield store.get()
        got.append(item)

    env.process(consumer(env, store))
    env.run()
    assert got == ["x"]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env, store):
        item = yield store.get()
        got.append((env.now, item))

    def producer(env, store):
        yield env.timeout(7.0)
        store.put("late")

    env.process(consumer(env, store))
    env.process(producer(env, store))
    env.run()
    assert got == [(7.0, "late")]


def test_store_fifo_items_and_consumers():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env, store, name):
        item = yield store.get()
        got.append((name, item))

    env.process(consumer(env, store, "c1"))
    env.process(consumer(env, store, "c2"))

    def producer(env, store):
        yield env.timeout(1.0)
        store.put(1)
        store.put(2)

    env.process(producer(env, store))
    env.run()
    assert got == [("c1", 1), ("c2", 2)]


def test_store_len_counts_buffered_items():
    env = Environment()
    store = Store(env)
    store.put("a")
    store.put("b")
    assert len(store) == 2
