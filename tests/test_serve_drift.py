"""Drift-math tests for the serve subsystem (PR 7, satellite d).

Pins down the arithmetic the `/drift` endpoint rides on: the
:class:`SlidingWindowCounter` horizon (eviction, late events, the
``first_seen`` anchor that keeps a mid-timeline attach from averaging
over empty prehistory, snapshot round-trips); :class:`Alarm` hysteresis
(a signal hovering at the threshold cannot flap the alarm); and the
:class:`DriftMonitor` end-to-end contracts from the issue — KS against
the window's own source stays near zero and raises nothing, a class-mix
or rate shift trips its alarm within one window, and a steady-then-
shifted soak fires exactly the shifted signal.
"""

import json
import math
from dataclasses import dataclass

import numpy as np
import pytest

from repro.serve import (
    Alarm,
    DriftBaseline,
    DriftMonitor,
    DriftThresholds,
)
from repro.serve.drift import mix_distance
from repro.stats import STREAMING_STATE_VERSION, SlidingWindowCounter


# -- sliding-window counter --------------------------------------------------


def test_sliding_counter_counts_and_rate():
    counter = SlidingWindowCounter(window=1.0, keep=3)
    for t in (0.2, 0.5, 1.1, 2.7):
        counter.add(t)
    assert counter.n_active == 4
    assert counter.n_windows == 3
    assert counter.span == pytest.approx(3.0)
    assert counter.rate() == pytest.approx(4 / 3)
    assert counter.series().tolist() == [2.0, 1.0, 1.0]


def test_sliding_counter_evicts_behind_horizon():
    counter = SlidingWindowCounter(window=1.0, keep=3)
    for t in (0.2, 0.5, 1.1, 2.7):
        counter.add(t)
    counter.add(5.5)  # latest window 5 -> windows < 3 fall off
    assert counter.n_active == 1
    assert counter.n_evicted == 4
    assert sorted(counter.bins) == [5]
    # A late event older than the kept horizon goes straight to the
    # evicted tally instead of resurrecting its window.
    counter.add(0.1)
    assert counter.n_active == 1
    assert counter.n_evicted == 5


def test_sliding_counter_first_seen_anchors_mid_timeline_attach():
    # A counter first fed at t~100 (daemon attaching to a long-lived
    # store) must not average its rate over 60 mostly-empty windows.
    counter = SlidingWindowCounter(window=1.0, keep=60)
    counter.add(100.5)
    counter.add(101.2)
    assert counter.n_windows == 2
    assert counter.rate() == pytest.approx(1.0)


def test_sliding_counter_evict_before():
    counter = SlidingWindowCounter(window=1.0, keep=10)
    for t in (0.5, 1.5, 2.5):
        counter.add(t)
    counter.evict_before(2.0)
    assert counter.n_active == 1
    assert counter.n_evicted == 2


def test_sliding_counter_validation():
    with pytest.raises(ValueError):
        SlidingWindowCounter(window=0.0, keep=3)
    with pytest.raises(ValueError):
        SlidingWindowCounter(window=1.0, keep=0)
    counter = SlidingWindowCounter(window=1.0, keep=3, origin=10.0)
    with pytest.raises(ValueError):
        counter.add(9.5)


def test_sliding_counter_state_roundtrip():
    counter = SlidingWindowCounter(window=0.5, keep=4, origin=1.0)
    counter.update_batch([1.2, 1.9, 3.4, 4.9])
    counter.add(0.0 + 6.0, weight=2.5)
    # Through JSON, like the ServeState checkpoint stores it.
    state = json.loads(json.dumps(counter.state()))
    restored = SlidingWindowCounter.from_state(state)
    for attr in ("window", "keep", "origin", "bins", "counts", "latest",
                 "first_seen", "n_evicted", "weight_evicted"):
        assert getattr(restored, attr) == getattr(counter, attr), attr
    assert restored.rate() == pytest.approx(counter.rate())
    restored.add(7.0)
    counter.add(7.0)
    assert restored.n_active == counter.n_active


def test_sliding_counter_rejects_newer_state_version():
    state = SlidingWindowCounter(window=1.0, keep=2).state()
    state["version"] = STREAMING_STATE_VERSION + 1
    with pytest.raises(ValueError):
        SlidingWindowCounter.from_state(state)


def test_sliding_counter_empty():
    counter = SlidingWindowCounter(window=1.0, keep=3)
    assert counter.n_active == 0
    assert counter.n_windows == 0
    assert counter.rate() == 0.0
    assert counter.series().size == 0


# -- hysteresis alarms -------------------------------------------------------


def test_alarm_trips_strictly_above_high():
    alarm = Alarm("ks", high=0.25, low=0.20)
    assert not alarm.update(0.25)  # at the threshold: no trip
    assert alarm.update(0.251)
    assert alarm.transitions == 1


def test_alarm_hovering_at_threshold_does_not_flap():
    alarm = Alarm("ks", high=0.25, low=0.20)
    # Noise oscillating around the trip level: one fire edge, no flaps,
    # because clearing requires dropping below the *low* threshold.
    for value in (0.26, 0.24, 0.26, 0.23, 0.26, 0.21):
        alarm.update(value)
    assert alarm.firing
    assert alarm.transitions == 1
    alarm.update(0.19)  # below low: clears (second edge)
    assert not alarm.firing
    assert alarm.transitions == 2


def test_alarm_rejects_inverted_thresholds():
    with pytest.raises(ValueError):
        Alarm("bad", high=0.2, low=0.3)


def test_alarm_state_roundtrip():
    alarm = Alarm("mix", high=0.35, low=0.28)
    alarm.update(0.5)
    restored = Alarm.from_state(json.loads(json.dumps(alarm.state())))
    assert restored.firing
    assert restored.transitions == 1
    assert restored.value == pytest.approx(0.5)
    restored.update(0.1)
    assert not restored.firing


# -- drift monitor -----------------------------------------------------------


@dataclass
class _Req:
    """The slice of a request record :meth:`DriftMonitor.observe` reads."""

    arrival_time: float
    completion_time: float
    request_class: str

    @property
    def latency(self) -> float:
        return self.completion_time - self.arrival_time


def _baseline(rng, n=2000, mix=None, mean_rate=100.0):
    latencies = rng.exponential(0.01, n)
    return DriftBaseline(
        latencies=latencies,
        mix=dict(mix or {"read": 1.0}),
        mean_rate=mean_rate,
        source="history",
    )


def _feed(monitor, completions, latencies, classes):
    for t, lat, cls_name in zip(completions, latencies, classes):
        monitor.observe(_Req(t - lat, t, cls_name))


def test_monitor_not_ready_below_min_window():
    rng = np.random.default_rng(0)
    monitor = DriftMonitor(_baseline(rng), window_requests=256)
    _feed(monitor, [0.1, 0.2], [0.01, 0.01], ["read", "read"])
    report = monitor.check()
    assert not report.ready
    assert not report.firing
    assert report.window_n == 2


def test_monitor_ignores_incomplete_requests():
    rng = np.random.default_rng(0)
    monitor = DriftMonitor(_baseline(rng), window_requests=16)
    monitor.observe(_Req(1.0, 1.0, "read"))  # never completed
    assert monitor.n_observed == 0
    assert len(monitor.window) == 0


def test_ks_against_own_source_is_quiet():
    """Traffic resampled from the baseline raises nothing (issue d1)."""
    rng = np.random.default_rng(7)
    baseline = _baseline(rng, mean_rate=100.0)
    monitor = DriftMonitor(baseline, window_requests=256)
    # 300 completions at exactly the baseline rate (100/s over [0, 3)),
    # latencies resampled from the baseline's own empirical sample.
    completions = np.arange(300) / 100.0
    latencies = rng.choice(baseline.latencies, size=300)
    _feed(monitor, completions, latencies, ["read"] * 300)
    report = monitor.check()
    assert report.ready
    assert report.ks < 0.15
    assert report.mix_distance == pytest.approx(0.0)
    assert abs(report.rate_zscore) < 2.0
    assert not report.firing
    assert report.alarms == {
        "latency_ks": False, "class_mix": False, "request_rate": False,
    }


def test_mix_shift_trips_within_one_window():
    """A 50/50 mix collapsing to one class fires class_mix (issue d2)."""
    rng = np.random.default_rng(3)
    baseline = _baseline(rng, mix={"read": 0.5, "write": 0.5}, mean_rate=64.0)
    monitor = DriftMonitor(baseline, window_requests=64)
    completions = np.arange(64) / 64.0
    latencies = rng.choice(baseline.latencies, size=64)
    _feed(monitor, completions, latencies, ["read"] * 64)  # all one class
    report = monitor.check()
    assert report.ready
    assert report.mix_distance == pytest.approx(0.5)
    assert report.alarms["class_mix"]
    assert not report.alarms["latency_ks"]


def test_rate_shift_trips():
    """10x the baseline rate fires request_rate (issue d2)."""
    rng = np.random.default_rng(5)
    baseline = _baseline(rng, mean_rate=50.0)
    monitor = DriftMonitor(baseline, window_requests=64)
    completions = np.arange(500) / 1000.0  # 500 events inside one second
    latencies = rng.choice(baseline.latencies, size=500)
    _feed(monitor, completions, latencies, ["read"] * 500)
    report = monitor.check()
    assert report.ready
    assert abs(report.rate_zscore) > DriftThresholds().rate_sigmas
    assert report.alarms["request_rate"]


def test_soak_steady_then_latency_shift():
    """Steady traffic never fires; a 5x latency shift does (issue d3)."""
    rng = np.random.default_rng(11)
    baseline = _baseline(rng, mean_rate=100.0)
    monitor = DriftMonitor(baseline, window_requests=128)
    t = 0.0
    for _ in range(5):  # five quiet rounds of on-baseline traffic
        completions = t + np.arange(100) / 100.0
        latencies = rng.choice(baseline.latencies, size=100)
        _feed(monitor, completions, latencies, ["read"] * 100)
        report = monitor.check()
        assert report.ready
        assert not report.firing, report.to_dict()
        t += 1.0
    for name, alarm in monitor.alarms.items():
        assert alarm.transitions == 0, name
    completions = t + np.arange(128) / 100.0
    latencies = 5.0 * rng.choice(baseline.latencies, size=128)
    _feed(monitor, completions, latencies, ["read"] * 128)
    report = monitor.check()
    assert report.alarms["latency_ks"]
    assert report.firing
    assert monitor.alarms["latency_ks"].transitions == 1


def test_monitor_empty_baseline_never_ready():
    baseline = DriftBaseline(
        latencies=np.zeros(0), mix={}, mean_rate=0.0, source="history"
    )
    monitor = DriftMonitor(baseline, window_requests=8)
    _feed(monitor, np.arange(40) / 10.0, [0.01] * 40, ["read"] * 40)
    report = monitor.check()
    assert not report.ready
    assert not report.firing


def test_monitor_state_roundtrip_and_window_guard():
    rng = np.random.default_rng(2)
    baseline = _baseline(rng)
    monitor = DriftMonitor(baseline, window_requests=64)
    completions = np.arange(64) / 100.0
    _feed(monitor, completions, rng.choice(baseline.latencies, 64), ["read"] * 64)
    monitor.check()
    state = json.loads(json.dumps(monitor.state()))

    restored = DriftMonitor(baseline, window_requests=64)
    restored.restore(state)
    assert restored.n_observed == monitor.n_observed
    assert [
        (float(t), float(lat), cls_name) for t, lat, cls_name in restored.window
    ] == [
        (float(t), float(lat), cls_name) for t, lat, cls_name in monitor.window
    ]
    assert restored.check().to_dict() == monitor.check().to_dict()

    resized = DriftMonitor(baseline, window_requests=32)
    with pytest.raises(ValueError):
        resized.restore(state)
    with pytest.raises(ValueError):
        restored.restore({"kind": "something-else"})


def test_mix_distance_basics():
    assert mix_distance({}, {}) == 0.0
    assert mix_distance({"a": 1.0}, {"a": 1.0}) == 0.0
    assert mix_distance({"a": 1.0}, {"b": 1.0}) == pytest.approx(1.0)
    assert mix_distance(
        {"a": 0.5, "b": 0.5}, {"a": 1.0}
    ) == pytest.approx(0.5)


def test_thresholds_to_dict_and_rate_profile():
    thresholds = DriftThresholds(ks=0.3)
    assert thresholds.to_dict()["ks"] == 0.3
    baseline = DriftBaseline(
        latencies=np.ones(10), mix={"read": 1.0}, mean_rate=100.0
    )
    profile = baseline.rate_profile(span=4.0)
    assert profile.mean == pytest.approx(400.0)
    assert profile.std == pytest.approx(math.sqrt(400.0))
    # The p99 bound uses the true normal z (2.326...), not 3-sigma:
    # mean + 3*std would be the ~p99.87 point mislabeled as p99.
    assert profile.p99 == pytest.approx(400.0 + 2.3263478740408408 * 20.0)
    assert profile.p99 < 400.0 + 3.0 * 20.0
    # 400 observed against 400 expected: dead center.
    assert profile.zscore(400.0) == pytest.approx(0.0)
