"""Tests for the sharded parallel runner and the fleet trace collector."""

import math

import pytest

from repro.datacenter import FleetSpec, collect_fleet, run_replica
from repro.datacenter.fleet import merge_replicas, replica_streams
from repro.simulation import RandomStreams, resolve_workers, run_sharded
from repro.tracing import TraceSet
from repro.tracing.records import NetworkRecord, RequestRecord
from repro.tracing.span import Span


def _square(x):
    return x * x


# -- run_sharded -------------------------------------------------------------


def test_run_sharded_preserves_spec_order():
    assert run_sharded(_square, [3, 1, 2], workers=1) == [9, 1, 4]


def test_run_sharded_empty():
    assert run_sharded(_square, [], workers=4) == []


def test_run_sharded_multiprocess_matches_inline():
    specs = list(range(12))
    assert run_sharded(_square, specs, workers=3) == [_square(s) for s in specs]


def test_resolve_workers():
    assert resolve_workers(1, 10) == 1
    assert resolve_workers(8, 3) == 3  # never more workers than tasks
    assert resolve_workers(0, 4) >= 1  # 0 = all cores
    assert resolve_workers(-1, 1) == 1


def test_run_sharded_propagates_exceptions():
    with pytest.raises(ZeroDivisionError):
        run_sharded(_reciprocal, [1, 0, 2], workers=1)


def _reciprocal(x):
    return 1 / x


# -- TraceSet.shifted --------------------------------------------------------


def _tiny_traceset():
    return TraceSet(
        network=[NetworkRecord(1, "s0", 0.5, 100, "rx")],
        requests=[
            RequestRecord(1, "r", "s0", arrival_time=0.5, completion_time=2.0)
        ],
        spans=[
            Span(trace_id=1, span_id=1, parent_id=None, name="a", server="s0",
                 start=0.5, end=2.0),
            Span(trace_id=1, span_id=2, parent_id=1, name="b", server="s0",
                 start=0.7, end=1.1),
        ],
    )


def test_shifted_offsets_times_and_ids():
    shifted = _tiny_traceset().shifted(
        time_offset=10.0, request_id_offset=5, span_id_offset=7
    )
    assert shifted.network[0].timestamp == 10.5
    assert shifted.network[0].request_id == 6
    assert shifted.requests[0].arrival_time == 10.5
    assert shifted.requests[0].completion_time == 12.0
    root, child = shifted.spans
    assert (root.trace_id, root.span_id, root.parent_id) == (6, 8, None)
    assert (child.trace_id, child.span_id, child.parent_id) == (6, 9, 8)
    assert child.start == 10.7


def test_shifted_keeps_unfinished_span_nan():
    ts = TraceSet(spans=[
        Span(trace_id=1, span_id=1, parent_id=None, name="a", server="s",
             start=0.0)
    ])
    assert math.isnan(ts.shifted(time_offset=3.0).spans[0].end)


def test_shifted_noop_is_identity():
    ts = _tiny_traceset()
    shifted = ts.shifted()
    assert [r.to_dict() for r in shifted.requests] == [
        r.to_dict() for r in ts.requests
    ]


# -- fleet -------------------------------------------------------------------


def test_fleet_spec_validation():
    with pytest.raises(ValueError):
        FleetSpec(app="nosuch")
    with pytest.raises(ValueError):
        FleetSpec(replicas=0)
    with pytest.raises(ValueError):
        FleetSpec(n_requests=0)
    with pytest.raises(TypeError):
        collect_fleet(FleetSpec(), replicas=2)


def test_replica_streams_disjoint_across_replicas():
    a = replica_streams(0, 0).get("workload/arrivals").random(5)
    b = replica_streams(0, 1).get("workload/arrivals").random(5)
    root = RandomStreams(0).get("workload/arrivals").random(5)
    assert not (a == b).all()
    assert not (a == root).all()


def test_replica_is_pure_function_of_spec():
    spec = FleetSpec(app="gfs", replicas=2, seed=3, n_requests=40)
    a = run_replica(spec.replica(1))
    b = run_replica(spec.replica(1))
    assert [r.to_dict() for r in a.traces.requests] == [
        r.to_dict() for r in b.traces.requests
    ]
    assert a.duration == b.duration


def test_merge_monotonic_offsets_and_unique_ids():
    spec = FleetSpec(app="gfs", replicas=3, seed=0, n_requests=30)
    results = [run_replica(spec.replica(k)) for k in range(3)]
    merged = merge_replicas(results)

    # Replica blocks are laid out end-to-end: each replica's earliest
    # arrival is at or after the previous replica's latest completion.
    n = 30
    blocks = [merged.requests[i * n:(i + 1) * n] for i in range(3)]
    for earlier, later in zip(blocks, blocks[1:]):
        assert max(r.completion_time for r in earlier) <= min(
            r.arrival_time for r in later
        )

    ids = [r.request_id for r in merged.requests]
    assert len(ids) == len(set(ids))
    span_ids = [s.span_id for s in merged.spans]
    assert len(span_ids) == len(set(span_ids))
    # Span trees survive the id shifting intact.
    assert len(merged.trace_trees()) == len(
        [t for r in results for t in r.traces.trace_trees()]
    )


@pytest.mark.parametrize("app", ["gfs", "webapp", "mapreduce"])
def test_fleet_identical_across_worker_counts(app):
    kwargs = dict(app=app, replicas=2, seed=7, n_requests=25)
    serial = collect_fleet(workers=1, **kwargs)
    parallel = collect_fleet(workers=2, **kwargs)
    for stream in ("network", "cpu", "memory", "storage", "requests", "spans"):
        assert [r.to_dict() for r in getattr(serial.traces, stream)] == [
            r.to_dict() for r in getattr(parallel.traces, stream)
        ], f"{app}:{stream} diverged between worker counts"
    assert serial.replica_durations == parallel.replica_durations


def test_fleet_mapreduce_aggregates_job_results():
    result = collect_fleet(app="mapreduce", replicas=2, seed=1, workers=1)
    assert len(result.job_results) == 16  # 8 default jobs per replica
    assert result.total_simulated_time == sum(result.replica_durations)
