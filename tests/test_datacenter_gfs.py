"""Integration tests for the GFS application simulation."""

import numpy as np
import pytest

from repro.datacenter import (
    GfsCluster,
    GfsRequest,
    GfsSpec,
    MachineSpec,
    run_gfs_workload,
)
from repro.datacenter.devices import CpuSpec
from repro.simulation import Environment, RandomStreams
from repro.tracing import READ, WRITE, Tracer
from repro.workloads import table2_mix


def _single_request(op=READ, size=65536, spec=None, seed=0):
    env = Environment()
    tracer = Tracer()
    cluster = GfsCluster(env, spec or GfsSpec(), RandomStreams(seed), tracer)
    request = GfsRequest(
        request_class="t", op=op, size_bytes=size, lbn=1000, memory_bytes=16384
    )
    p = env.process(cluster.client_request(request))
    record = env.run(p)
    return record, tracer.traces, env


def test_read_request_completes_with_all_subsystems():
    record, traces, _ = _single_request()
    assert record.latency > 0
    assert len(traces.storage) == 1
    assert len(traces.memory) == 1
    assert len(traces.cpu) == 2  # lookup + aggregate
    assert len(traces.network) == 2  # rx + tx


def test_read_carries_data_on_tx():
    _, traces, _ = _single_request(op=READ, size=65536)
    tx = [r for r in traces.network if r.direction == "tx"][0]
    rx = [r for r in traces.network if r.direction == "rx"][0]
    assert tx.size_bytes == 65536
    assert rx.size_bytes < 1024  # header only


def test_write_carries_data_on_rx():
    _, traces, _ = _single_request(op=WRITE, size=1 << 20)
    rx = [r for r in traces.network if r.direction == "rx"][0]
    tx = [r for r in traces.network if r.direction == "tx"][0]
    assert rx.size_bytes == 1 << 20
    assert tx.size_bytes < 1024


def test_large_io_split_at_max_io():
    spec = GfsSpec(max_io_bytes=1 << 20)
    _, traces, _ = _single_request(op=READ, size=4 << 20, spec=spec)
    assert len(traces.storage) == 4
    assert sum(r.size_bytes for r in traces.storage) == 4 << 20


def test_span_tree_matches_figure_1():
    _, traces, _ = _single_request(seed=123)
    trees = traces.trace_trees()
    assert len(trees) == 1
    sequence = [s for s in trees[0].stage_sequence() if s != "master_lookup"]
    assert sequence == [
        "network_rx",
        "cpu_lookup",
        "memory",
        "storage",
        "cpu_aggregate",
        "network_tx",
    ]


def test_replicated_write_touches_multiple_chunkservers():
    env = Environment()
    tracer = Tracer()
    spec = GfsSpec(chunkservers=3, replication=3, master_cache_hit=1.0)
    cluster = GfsCluster(env, spec, RandomStreams(1), tracer)
    request = GfsRequest(
        request_class="w", op=WRITE, size_bytes=65536, lbn=0, memory_bytes=4096
    )
    p = env.process(cluster.client_request(request))
    env.run(p)
    servers = {r.server for r in tracer.traces.storage}
    assert len(servers) == 3


def test_replication_validation():
    with pytest.raises(ValueError):
        GfsCluster(
            Environment(),
            GfsSpec(chunkservers=1, replication=2),
            RandomStreams(0),
            Tracer(),
        )


def test_placement_is_deterministic():
    env = Environment()
    cluster = GfsCluster(
        env, GfsSpec(chunkservers=4), RandomStreams(0), Tracer()
    )
    assert cluster.place(100) == cluster.place(100)
    assert 0 <= cluster.place(123456789) < 4


def test_request_validation():
    with pytest.raises(ValueError):
        GfsRequest("x", "delete", 1024, 0, 512)
    with pytest.raises(ValueError):
        GfsRequest("x", READ, 0, 0, 512)


def test_cpu_work_scales_latency_on_wimpy_cores():
    fast_spec = MachineSpec(cpu=CpuSpec(speed_factor=1.0, work_jitter=0.0))
    slow_spec = MachineSpec(cpu=CpuSpec(speed_factor=0.25, work_jitter=0.0))

    def run_with(machine_spec):
        env = Environment()
        tracer = Tracer()
        cluster = GfsCluster(
            env, GfsSpec(master_cache_hit=1.0), RandomStreams(9), tracer,
            machine_spec,
        )
        request = GfsRequest(
            request_class="r", op=READ, size_bytes=65536, lbn=0,
            memory_bytes=16384,
        )
        return env.run(env.process(cluster.client_request(request)))

    assert run_with(slow_spec).cpu_busy_seconds > run_with(
        fast_spec
    ).cpu_busy_seconds


def test_run_gfs_workload_end_to_end():
    run = run_gfs_workload(n_requests=200, seed=11)
    assert len(run.traces.completed_requests()) == 200
    assert run.throughput() > 0
    classes = set(run.traces.requests_by_class())
    assert classes == {"read_64K", "write_4M"}


def test_run_gfs_workload_deterministic():
    a = run_gfs_workload(n_requests=50, seed=5)
    b = run_gfs_workload(n_requests=50, seed=5)
    lat_a = [r.latency for r in a.traces.completed_requests()]
    lat_b = [r.latency for r in b.traces.completed_requests()]
    assert lat_a == lat_b


def test_run_gfs_workload_seed_changes_outcome():
    a = run_gfs_workload(n_requests=50, seed=5)
    b = run_gfs_workload(n_requests=50, seed=6)
    lat_a = [r.latency for r in a.traces.completed_requests()]
    lat_b = [r.latency for r in b.traces.completed_requests()]
    assert lat_a != lat_b


def test_table2_shape_read_faster_but_lower_util_than_write():
    run = run_gfs_workload(n_requests=1200, seed=2)
    grouped = run.traces.requests_by_class()
    read_lat = np.median([r.latency for r in grouped["read_64K"]])
    write_lat = np.median([r.latency for r in grouped["write_4M"]])
    read_util = np.median([r.cpu_utilization for r in grouped["read_64K"]])
    write_util = np.median([r.cpu_utilization for r in grouped["write_4M"]])
    # The paper's Table 2 shape: the 4 MiB write has both higher latency
    # and higher CPU utilization than the 64 KiB read.
    assert write_lat > read_lat
    assert write_util > read_util


def test_throughput_counts_only_post_settle_completions():
    # Regression: with settle_time > 0, throughput() used to divide ALL
    # completions by the settle-adjusted duration, overstating it.
    run = run_gfs_workload(n_requests=300, seed=9)
    settle = run.env.now / 2.0
    settled = run_gfs_workload(n_requests=300, seed=9, settle_time=settle)
    assert settled.env.now == run.env.now  # same simulation, same seed

    post_settle = sum(
        1
        for r in settled.traces.completed_requests()
        if r.completion_time > settle
    )
    expected = post_settle / (settled.env.now - settle)
    assert settled.throughput() == pytest.approx(expected)
    # The buggy accounting would have divided all 300 completions by the
    # shortened window, a strictly larger number.
    overstated = len(settled.traces.completed_requests()) / (
        settled.env.now - settle
    )
    assert settled.throughput() < overstated


def test_throughput_unchanged_without_settle_time():
    run = run_gfs_workload(n_requests=200, seed=11)
    completed = len(run.traces.completed_requests())
    assert run.throughput() == pytest.approx(completed / run.env.now)
