"""Tests for PCA, clustering, VU-lists and sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import (
    PCA,
    GaussianMixture,
    KMeans,
    VUList,
    reservoir_sample,
    select_components_bic,
    systematic_sample,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


# -- PCA ------------------------------------------------------------------


def test_pca_orders_components_by_variance(rng):
    X = rng.normal(0, 1, (400, 3)) * np.array([10.0, 1.0, 0.1])
    pca = PCA().fit(X)
    assert np.all(np.diff(pca.explained_variance_) <= 1e-9)
    assert pca.explained_variance_ratio_[0] > 0.9


def test_pca_round_trip_full_rank(rng):
    X = rng.normal(0, 1, (50, 4))
    pca = PCA(4).fit(X)
    reconstructed = pca.inverse_transform(pca.transform(X))
    assert np.allclose(reconstructed, X, atol=1e-8)


def test_pca_reconstruction_error_decreases_with_components(rng):
    X = rng.normal(0, 1, (300, 5)) @ rng.normal(0, 1, (5, 5))
    errors = [PCA(k).fit(X).reconstruction_error(X) for k in (1, 3, 5)]
    assert errors[0] >= errors[1] >= errors[2]
    assert errors[2] == pytest.approx(0.0, abs=1e-12)


def test_pca_validation(rng):
    with pytest.raises(ValueError):
        PCA(0)
    with pytest.raises(ValueError):
        PCA().fit(np.zeros((1, 3)))
    with pytest.raises(ValueError):
        PCA(10).fit(rng.normal(0, 1, (5, 3)))
    with pytest.raises(RuntimeError):
        PCA(1).transform([[1.0, 2.0]])


def test_pca_components_orthonormal(rng):
    X = rng.normal(0, 1, (200, 4))
    pca = PCA(3).fit(X)
    gram = pca.components_ @ pca.components_.T
    assert np.allclose(gram, np.eye(3), atol=1e-8)


# -- KMeans --------------------------------------------------------------


def test_kmeans_recovers_separated_clusters(rng):
    centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
    X = np.vstack([rng.normal(c, 0.3, (60, 2)) for c in centers])
    km = KMeans(3, rng).fit(X)
    found = km.centers_[np.argsort(km.centers_.sum(axis=1))]
    expected = centers[np.argsort(centers.sum(axis=1))]
    assert np.allclose(found, expected, atol=0.5)


def test_kmeans_predict_consistent_with_fit(rng):
    X = np.vstack([rng.normal(0, 0.1, (30, 2)), rng.normal(5, 0.1, (30, 2))])
    km = KMeans(2, rng).fit(X)
    assert np.array_equal(km.predict(X), km.labels_)


def test_kmeans_validation(rng):
    with pytest.raises(ValueError):
        KMeans(0, rng)
    with pytest.raises(ValueError):
        KMeans(5, rng).fit(np.zeros((3, 2)))
    with pytest.raises(RuntimeError):
        KMeans(2, rng).predict([[0.0, 0.0]])


# -- GaussianMixture -------------------------------------------------------


def test_gmm_fits_bimodal_data(rng):
    X = np.concatenate([rng.normal(0, 1, 300), rng.normal(12, 1, 300)])[:, None]
    gm = GaussianMixture(2, rng).fit(X)
    means = np.sort(gm.means_.ravel())
    assert means[0] == pytest.approx(0.0, abs=0.5)
    assert means[1] == pytest.approx(12.0, abs=0.5)


def test_gmm_sample_matches_fit(rng):
    X = np.concatenate([rng.normal(0, 1, 400), rng.normal(20, 1, 400)])[:, None]
    gm = GaussianMixture(2, rng).fit(X)
    synthetic = gm.sample(2000).ravel()
    # Synthetic data should be bimodal at roughly the same locations.
    low = synthetic[synthetic < 10]
    high = synthetic[synthetic >= 10]
    assert abs(low.mean() - 0.0) < 0.6
    assert abs(high.mean() - 20.0) < 0.6


def test_bic_selects_correct_component_count(rng):
    X = np.concatenate(
        [rng.normal(0, 0.5, 250), rng.normal(6, 0.5, 250), rng.normal(12, 0.5, 250)]
    )[:, None]
    gm = select_components_bic(X, rng, max_components=6)
    assert gm.n_components == 3


def test_gmm_validation(rng):
    with pytest.raises(ValueError):
        GaussianMixture(0, rng)
    with pytest.raises(ValueError):
        GaussianMixture(5, rng).fit(np.zeros((2, 1)))


# -- VUList ----------------------------------------------------------------


def test_vulist_frequencies_sum_to_one(rng):
    X = rng.normal(0, 1, (500, 2))
    vu = VUList(["x", "y"], bins_per_feature=8).fit(X)
    _, probs = vu.marginal("x")
    assert probs.sum() == pytest.approx(1.0)
    assert vu.total == 500


def test_vulist_preserves_correlation(rng):
    x = rng.normal(0, 1, 1000)
    X = np.column_stack([x, 2 * x + rng.normal(0, 0.1, 1000)])
    vu = VUList(["a", "b"], bins_per_feature=12).fit(X)
    synthetic = vu.sample(1000, rng)
    corr = np.corrcoef(synthetic[:, 0], synthetic[:, 1])[0, 1]
    assert corr > 0.9


def test_vulist_frequency_of_dense_cell(rng):
    X = np.zeros((100, 1))
    vu = VUList(["v"], bins_per_feature=4).fit(X)
    assert vu.frequency([0.0]) == pytest.approx(1.0)
    assert vu.n_cells == 1


def test_vulist_validation(rng):
    with pytest.raises(ValueError):
        VUList([], 4)
    with pytest.raises(RuntimeError):
        VUList(["x"], 4).sample(1, rng)
    vu = VUList(["x"], 4)
    with pytest.raises(ValueError):
        vu.fit(np.zeros((10, 2)))


# -- sampling ---------------------------------------------------------------


def test_reservoir_sample_size(rng):
    sample = reservoir_sample(range(1000), 10, rng)
    assert len(sample) == 10
    assert all(0 <= x < 1000 for x in sample)


def test_reservoir_sample_short_stream(rng):
    assert sorted(reservoir_sample(range(3), 10, rng)) == [0, 1, 2]


@settings(max_examples=25)
@given(st.integers(min_value=1, max_value=20), st.integers(min_value=0, max_value=500))
def test_reservoir_sample_uniformity_property(k, seed):
    rng = np.random.default_rng(seed)
    sample = reservoir_sample(range(100), k, rng)
    assert len(sample) == min(k, 100)
    assert len(set(sample)) == len(sample)  # no duplicates


def test_systematic_sample():
    assert systematic_sample(list(range(10)), every=3) == [0, 3, 6, 9]
    assert systematic_sample(list(range(10)), every=3, offset=1) == [1, 4, 7]


def test_systematic_sample_validation():
    with pytest.raises(ValueError):
        systematic_sample([1, 2], every=0)
    with pytest.raises(ValueError):
        systematic_sample([1, 2], every=2, offset=2)
