"""Tests for the validation framework and capability matrix."""

import numpy as np
import pytest

from repro.core import (
    CAPABILITIES,
    capability_table,
    compare_workloads,
    KoozaTrainer,
    ReplayHarness,
)
from repro.core.validation import ProfileComparison, _pct_deviation
from repro.datacenter import run_gfs_workload
from repro.tracing import TraceSet


def test_pct_deviation_basic():
    assert _pct_deviation(100.0, 106.0) == pytest.approx(6.0)
    assert _pct_deviation(100.0, 100.0) == 0.0
    assert _pct_deviation(0.0, 0.0) == 0.0
    assert _pct_deviation(0.0, 1.0) == float("inf")


def _comparison(**overrides):
    defaults = dict(
        profile=("read", 16),
        n_original=100,
        n_synthetic=100,
        network_bytes=(65536.0, 65536.0),
        cpu_utilization=(0.021, 0.023),
        memory_bytes=(16384.0, 16384.0),
        storage_bytes=(65536.0, 65536.0),
        latency=(0.0114, 0.01185),
        latency_p95=(0.020, 0.021),
        memory_op_match=1.0,
        storage_op_match=1.0,
    )
    defaults.update(overrides)
    return ProfileComparison(**defaults)


def test_profile_comparison_matches_paper_conventions():
    # The paper's Table 2 row 1: util 2.1% -> 2.3% = "0.2%" deviation;
    # latency 11.4ms -> 11.85ms = 3.9%.
    p = _comparison()
    assert p.cpu_utilization_deviation_pp == pytest.approx(0.2)
    assert p.latency_deviation_pct == pytest.approx(3.947, abs=0.01)
    assert p.max_feature_deviation_pct == 0.0


def test_profile_comparison_worst_feature():
    p = _comparison(memory_bytes=(16384.0, 17000.0))
    assert p.max_feature_deviation_pct == pytest.approx(3.76, abs=0.01)


def test_profile_comparison_tail_deviation():
    p = _comparison(latency_p95=(0.020, 0.025))
    assert p.latency_p95_deviation_pct == pytest.approx(25.0)


def test_compare_workloads_same_traces_near_zero():
    run = run_gfs_workload(n_requests=300, seed=41)
    report = compare_workloads(run.traces, run.traces)
    assert report.worst_feature_deviation_pct == 0.0
    assert report.worst_latency_deviation_pct == 0.0
    assert report.latency_ks == 0.0
    assert report.joint_correlation_error == 0.0


def test_compare_workloads_requires_data():
    with pytest.raises(ValueError):
        compare_workloads(TraceSet(), TraceSet())


def test_compare_workloads_min_profile_count():
    run = run_gfs_workload(n_requests=300, seed=42)
    with pytest.raises(ValueError):
        compare_workloads(run.traces, run.traces, min_profile_count=10_000)


def test_report_mean_weighted_by_profile_size():
    run = run_gfs_workload(n_requests=400, seed=43)
    model = KoozaTrainer().fit(run.traces)
    replayed = ReplayHarness(seed=3).replay(
        model.synthesize(400, np.random.default_rng(2))
    )
    report = compare_workloads(run.traces, replayed)
    values = [p.latency_deviation_pct for p in report.profiles]
    assert min(values) <= report.mean_latency_deviation_pct <= max(values)


# -- Table 1 -----------------------------------------------------------------


def test_capability_matrix_rows():
    approaches = [c.approach for c in CAPABILITIES]
    assert approaches == ["in-breadth", "in-depth", "KOOZA"]


def test_capability_matrix_paper_claims():
    by_name = {c.approach: c for c in CAPABILITIES}
    assert by_name["in-breadth"].request_features
    assert not by_name["in-breadth"].time_dependencies
    assert by_name["in-depth"].time_dependencies
    assert not by_name["in-depth"].request_features
    kooza = by_name["KOOZA"]
    assert kooza.request_features and kooza.time_dependencies
    assert kooza.completeness


def test_only_kooza_is_complete():
    complete = [c.approach for c in CAPABILITIES if c.completeness]
    assert complete == ["KOOZA"]


def test_capability_table_renders():
    table = capability_table()
    assert "KOOZA" in table
    assert "in-breadth" in table
    assert "ease-of-use" in table


def test_capability_grades_cover_all_criteria():
    from repro.core.capabilities import CRITERIA

    for cap in CAPABILITIES:
        grades = cap.grades()
        assert set(grades) == set(CRITERIA)
