"""Cross-module integration tests: whole pipelines under varied setups."""

import numpy as np
import pytest

from repro.cli import main
from repro.core import (
    KoozaTrainer,
    ReplayHarness,
    compare_workloads,
    extract_request_features,
)
from repro.datacenter import (
    GfsCluster,
    GfsSpec,
    MachineSpec,
    run_gfs_workload,
)
from repro.datacenter.devices import DiskSpec, NicSpec
from repro.queueing import MMPPArrivals
from repro.simulation import Environment, RandomStreams
from repro.stats import hill_estimator
from repro.tracing import Tracer, save_traces
from repro.workloads import (
    ClosedLoopClient,
    SurgeSpec,
    SurgeWorkload,
    oltp_mix,
)


def test_run_driver_custom_arrivals_and_sampling():
    rng = np.random.default_rng(0)
    run = run_gfs_workload(
        n_requests=300,
        seed=5,
        arrivals=MMPPArrivals([10.0, 60.0], [1.0, 0.5], rng),
        sample_every=10,
    )
    assert len(run.traces.completed_requests()) == 300
    assert len(run.traces.trace_trees()) == 30  # 1-in-10 sampled


def test_run_driver_machine_spec_changes_latency():
    slow_nic = MachineSpec(nic=NicSpec(bandwidth=50e6))
    fast = run_gfs_workload(n_requests=200, seed=6)
    slow = run_gfs_workload(n_requests=200, seed=6, machine_spec=slow_nic)
    fast_lat = np.mean([r.latency for r in fast.traces.completed_requests()])
    slow_lat = np.mean([r.latency for r in slow.traces.completed_requests()])
    assert slow_lat > 2 * fast_lat


def test_kooza_on_closed_loop_workload():
    """The full loop works on closed-loop (think-time) traffic too."""
    env = Environment()
    tracer = Tracer()
    streams = RandomStreams(11)
    cluster = GfsCluster(env, GfsSpec(), streams, tracer)
    mix = oltp_mix(streams.get("mix"))
    client = ClosedLoopClient(
        env,
        cluster.client_request,
        mix.make_request,
        n_users=8,
        think_time_sampler=lambda rng: float(rng.exponential(0.02)),
        rng=streams.get("think"),
    )
    client.start(requests_per_user=60)
    env.run()
    model = KoozaTrainer().fit(tracer.traces)
    replayed = ReplayHarness(seed=13).replay(
        model.synthesize(480, np.random.default_rng(1))
    )
    report = compare_workloads(tracer.traces, replayed)
    assert report.worst_feature_deviation_pct < 1.0


def test_kooza_on_surge_heavy_tailed_workload():
    """Continuous (heavy-tailed) sizes: quantile bins keep deviations
    moderate rather than exact — the configurable-detail trade-off."""
    env = Environment()
    tracer = Tracer()
    streams = RandomStreams(17)
    cluster = GfsCluster(env, GfsSpec(), streams, tracer)
    surge = SurgeWorkload(
        env,
        cluster.client_request,
        SurgeSpec(user_equivalents=12, pages_per_session=25),
        streams.get("surge"),
    )
    surge.start()
    env.run()
    n = len(tracer.traces.completed_requests())
    assert n > 300
    model = KoozaTrainer().fit(tracer.traces)
    synthetic = model.synthesize(n, np.random.default_rng(2))
    # Heavy tail of object sizes survives generation.
    sizes = [r.network_bytes for r in synthetic]
    assert hill_estimator(sizes, tail_fraction=0.3) < 4.0
    replayed = ReplayHarness(seed=19).replay(synthetic)
    features = extract_request_features(replayed)
    orig = extract_request_features(tracer.traces)
    # Aggregate footprint within ~15% despite binning.
    assert np.mean([f.storage_bytes for f in features]) == pytest.approx(
        np.mean([f.storage_bytes for f in orig]), rel=0.15
    )


def test_replication_raises_write_cost():
    def run(replication):
        return run_gfs_workload(
            n_requests=250,
            seed=23,
            arrival_rate=15.0,
            gfs_spec=GfsSpec(chunkservers=3, replication=replication),
        )

    single = run(1)
    triple = run(3)

    def write_latency(r):
        writes = r.traces.requests_by_class()["write_4M"]
        return np.mean([w.latency for w in writes])

    assert write_latency(triple) > write_latency(single)
    assert len(triple.traces.storage) > len(single.traces.storage)


def test_master_cache_miss_adds_latency():
    hits = run_gfs_workload(
        n_requests=250, seed=29, gfs_spec=GfsSpec(master_cache_hit=1.0)
    )
    misses = run_gfs_workload(
        n_requests=250, seed=29, gfs_spec=GfsSpec(master_cache_hit=0.0)
    )
    hit_lat = np.mean([r.latency for r in hits.traces.completed_requests()])
    miss_lat = np.mean([r.latency for r in misses.traces.completed_requests()])
    assert miss_lat > hit_lat
    # Master records exist only in the miss run.
    assert not any(r.server == "master" for r in hits.traces.cpu)
    assert any(r.server == "master" for r in misses.traces.cpu)


def test_replay_multi_server_spreads_load():
    run = run_gfs_workload(n_requests=400, seed=31)
    model = KoozaTrainer().fit(run.traces)
    harness = ReplayHarness(seed=33, n_servers=3)
    traces = harness.replay(model.synthesize(300, np.random.default_rng(3)))
    servers = {r.server for r in traces.requests}
    assert servers == {"replay-0", "replay-1", "replay-2"}
    assert len(harness.machines) == 3


def test_replay_is_deterministic():
    run = run_gfs_workload(n_requests=200, seed=37)
    model = KoozaTrainer().fit(run.traces)
    synthetic = model.synthesize(150, np.random.default_rng(4))
    a = ReplayHarness(seed=41).replay(synthetic)
    b = ReplayHarness(seed=41).replay(synthetic)
    assert [r.latency for r in a.completed_requests()] == [
        r.latency for r in b.completed_requests()
    ]


def test_degraded_replay_hardware_changes_predictions():
    """§5: the same model predicts different latency on different
    storage hardware — without re-collecting traces."""
    run = run_gfs_workload(n_requests=400, seed=43)
    model = KoozaTrainer().fit(run.traces)
    synthetic = model.synthesize(300, np.random.default_rng(5))
    baseline = ReplayHarness(seed=47).replay(synthetic)
    slow_disk = ReplayHarness(
        seed=47,
        machine_spec=MachineSpec(
            disk=DiskSpec(rpm=5400, max_seek=16e-3, write_cache=False)
        ),
    ).replay(synthetic)
    base_lat = np.mean([r.latency for r in baseline.completed_requests()])
    slow_lat = np.mean([r.latency for r in slow_disk.completed_requests()])
    assert slow_lat > 1.5 * base_lat


def test_cli_validate_failure_exit_code(tmp_path):
    """A model trained on one workload fails validation against another."""
    gfs = run_gfs_workload(n_requests=300, seed=53)
    other = run_gfs_workload(
        n_requests=300,
        seed=54,
        mix_factory=lambda rng: oltp_mix(rng),
    )
    from repro.core import save_model

    model = KoozaTrainer().fit(gfs.traces)
    model_path = save_model(model, tmp_path / "gfs-model.json")
    traces_dir = save_traces(other.traces, tmp_path / "oltp-traces")
    exit_code = main(
        [
            "validate",
            str(traces_dir),
            "--model",
            str(model_path),
            "--feature-limit",
            "1.0",
        ]
    )
    assert exit_code == 1


def test_cli_collect_webapp(tmp_path):
    out = tmp_path / "web"
    assert main(
        ["collect", "--app", "webapp", "--requests", "150", "--out", str(out)]
    ) == 0
    assert (out / "requests.jsonl").exists()
