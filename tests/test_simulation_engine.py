"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.simulation import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    SimulationError,
)


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(5.0)
        return "done"

    p = env.process(proc(env))
    result = env.run(p)
    assert result == "done"
    assert env.now == 5.0


def test_zero_delay_timeout_runs_same_time():
    env = Environment()
    order = []

    def proc(env, name):
        yield env.timeout(0.0)
        order.append(name)

    env.process(proc(env, "a"))
    env.process(proc(env, "b"))
    env.run()
    assert order == ["a", "b"]
    assert env.now == 0.0


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_process_join_returns_value():
    env = Environment()

    def child(env):
        yield env.timeout(3.0)
        return 42

    def parent(env):
        value = yield env.process(child(env))
        return value + 1

    assert env.run(env.process(parent(env))) == 43


def test_events_fire_in_time_order():
    env = Environment()
    seen = []

    def proc(env, delay):
        yield env.timeout(delay)
        seen.append(delay)

    for d in (5.0, 1.0, 3.0):
        env.process(proc(env, d))
    env.run()
    assert seen == [1.0, 3.0, 5.0]


def test_fifo_at_equal_timestamps():
    env = Environment()
    seen = []

    def proc(env, name):
        yield env.timeout(2.0)
        seen.append(name)

    for name in "abc":
        env.process(proc(env, name))
    env.run()
    assert seen == ["a", "b", "c"]


def test_run_until_time_stops_clock():
    env = Environment()

    def proc(env):
        while True:
            yield env.timeout(1.0)

    env.process(proc(env))
    env.run(until=10.5)
    assert env.now == 10.5


def test_run_until_past_raises():
    env = Environment()
    env.run(until=5.0)
    with pytest.raises(ValueError):
        env.run(until=1.0)


def test_event_succeed_wakes_waiter():
    env = Environment()
    gate = env.event()
    got = []

    def waiter(env):
        value = yield gate
        got.append(value)

    def opener(env):
        yield env.timeout(2.0)
        gate.succeed("open")

    env.process(waiter(env))
    env.process(opener(env))
    env.run()
    assert got == ["open"]


def test_event_double_trigger_rejected():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_event_fail_propagates_to_waiter():
    env = Environment()
    gate = env.event()

    def waiter(env):
        with pytest.raises(RuntimeError, match="boom"):
            yield gate
        return "handled"

    def failer(env):
        yield env.timeout(1.0)
        gate.fail(RuntimeError("boom"))

    p = env.process(waiter(env))
    env.process(failer(env))
    assert env.run(p) == "handled"


def test_unhandled_process_exception_escapes_run():
    env = Environment()

    def bad(env):
        yield env.timeout(1.0)
        raise ValueError("kaput")

    env.process(bad(env))
    with pytest.raises(ValueError, match="kaput"):
        env.run()


def test_yield_non_event_raises():
    env = Environment()

    def bad(env):
        yield 7

    env.process(bad(env))
    with pytest.raises(SimulationError):
        env.run()


def test_all_of_waits_for_all():
    env = Environment()

    def proc(env):
        results = yield AllOf(env, [env.timeout(1.0, "a"), env.timeout(4.0, "b")])
        return sorted(results.values())

    p = env.process(proc(env))
    assert env.run(p) == ["a", "b"]
    assert env.now == 4.0


def test_any_of_fires_on_first():
    env = Environment()

    def proc(env):
        results = yield AnyOf(env, [env.timeout(1.0, "fast"), env.timeout(9.0, "slow")])
        return list(results.values())

    p = env.process(proc(env))
    assert env.run(p) == ["fast"]
    assert env.now == 1.0


def test_all_of_with_pretriggered_events():
    env = Environment()

    def proc(env):
        t = env.timeout(0.0, "x")
        yield env.timeout(1.0)  # t fires while we sleep
        results = yield AllOf(env, [t])
        return results[0]

    assert env.run(env.process(proc(env))) == "x"


def test_interrupt_delivers_cause():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as err:
            log.append(err.cause)
            yield env.timeout(1.0)
        return "recovered"

    def interrupter(env, victim):
        yield env.timeout(5.0)
        victim.interrupt(cause="wake up")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    assert env.run(victim) == "recovered"
    assert log == ["wake up"]
    assert env.now == 6.0


def test_interrupt_terminated_process_rejected():
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_peek_and_step():
    env = Environment()

    def empty(env):
        return
        yield  # pragma: no cover - makes this a generator function

    env.process(empty(env))
    env.timeout(3.0)
    assert env.peek() == 0.0  # process initialization is scheduled now


def test_process_rejects_non_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process([1, 2, 3])


def test_run_until_event_out_of_events_raises():
    env = Environment()
    never = env.event()
    with pytest.raises(SimulationError):
        env.run(never)


def test_nested_processes_chain():
    env = Environment()

    def level3(env):
        yield env.timeout(1.0)
        return 3

    def level2(env):
        v = yield env.process(level3(env))
        yield env.timeout(1.0)
        return v + 2

    def level1(env):
        v = yield env.process(level2(env))
        return v + 1

    assert env.run(env.process(level1(env))) == 6
    assert env.now == 2.0


def test_process_is_alive_lifecycle():
    env = Environment()

    def proc(env):
        yield env.timeout(2.0)

    p = env.process(proc(env))
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_many_processes_complete():
    env = Environment()
    done = []

    def proc(env, i):
        yield env.timeout(i % 17 * 0.1)
        done.append(i)

    for i in range(500):
        env.process(proc(env, i))
    env.run()
    assert len(done) == 500


def test_empty_any_of_succeeds_immediately():
    # Regression: ``any([]) is False`` left an empty AnyOf untriggered
    # forever, silently deadlocking the process that yielded it.
    env = Environment()
    cond = env.any_of([])
    assert cond.triggered

    def proc(env):
        result = yield env.any_of([])
        yield env.timeout(1.0)
        return result

    p = env.process(proc(env))
    env.run()
    assert not p.is_alive
    assert p.value == {}
    assert env.now == 1.0


def test_empty_all_of_succeeds_immediately():
    env = Environment()
    cond = env.all_of([])
    assert cond.triggered

    def proc(env):
        result = yield env.all_of([])
        return result

    p = env.process(proc(env))
    env.run()
    assert p.value == {}


def test_run_until_boundary_executes_events_at_limit():
    # run(until=t) is inclusive of t: events scheduled exactly at t run
    # before returning, so each window owns its right edge.
    env = Environment()
    fired = []

    def proc(env):
        yield env.timeout(5.0)
        fired.append(env.now)

    env.process(proc(env))
    env.run(until=5.0)
    assert fired == [5.0]
    assert env.now == 5.0

    # The next window starts strictly after the shared edge: re-running
    # to the same bound executes nothing further.
    env.run(until=5.0)
    assert fired == [5.0]


# -- optimized-kernel edge cases ---------------------------------------------


def test_wide_fanout_conditions_complete_in_linear_time():
    # Regression: Condition._check used to re-scan every sub-event on
    # every trigger, making an n-event AllOf O(n^2); with the
    # remaining-count this finishes in O(n).  The bound is generous so
    # a slow machine never trips it, but the quadratic kernel (tens of
    # millions of scans at this width) cannot get under it.
    import time

    n = 10_000
    env = Environment()
    events = [env.timeout(float(i % 7), value=i) for i in range(n)]
    all_done = env.all_of(events)
    any_done = env.any_of([env.timeout(float(i % 5)) for i in range(n)])
    start = time.perf_counter()
    env.run()
    elapsed = time.perf_counter() - start
    assert all_done.ok and len(all_done.value) == n
    assert any_done.ok
    assert elapsed < 3.0, f"wide-fanout conditions took {elapsed:.2f}s"


def test_run_until_failed_event_raises_exactly_once():
    # run(until=event) must own the event's failure: it is raised from
    # run() and marked defused so step() does not surface the same
    # exception a second time as an unhandled process failure.
    env = Environment()

    def failer(env):
        yield env.timeout(1.0)
        raise RuntimeError("boom")

    def bystander(env):
        yield env.timeout(5.0)

    p = env.process(failer(env))
    env.process(bystander(env))
    with pytest.raises(RuntimeError, match="boom"):
        env.run(until=p)
    assert p.triggered and not p.ok
    assert p._defused
    # The failure was consumed: the rest of the simulation drains
    # cleanly instead of re-raising "boom".
    env.run()
    assert env.now == 5.0


def test_run_until_already_failed_event_raises_without_stepping():
    env = Environment()

    def failer(env):
        yield env.timeout(1.0)
        raise ValueError("late")

    p = env.process(failer(env))
    with pytest.raises(ValueError, match="late"):
        env.run(until=p)
    steps = env.steps
    # A second run(until=p) must re-raise from the processed event
    # without executing anything further.
    with pytest.raises(ValueError, match="late"):
        env.run(until=p)
    assert env.steps == steps


def test_interrupt_while_waiting_on_fast_path_timeout():
    # The resume loop registers fresh Timeouts via a fast path; an
    # interrupt arriving mid-wait must still detach the process from
    # that timeout so its later firing cannot resume the process twice.
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(10.0)
            log.append("slept")
        except Interrupt as interrupt:
            log.append(("interrupted", env.now, interrupt.cause))
            yield env.timeout(1.0)
            log.append(("resumed", env.now))

    p = env.process(sleeper(env))

    def interrupter(env):
        yield env.timeout(3.0)
        p.interrupt("wake")

    env.process(interrupter(env))
    env.run()
    assert log == [("interrupted", 3.0, "wake"), ("resumed", 4.0)]
    # The abandoned 10s timeout still pops harmlessly at its slot.
    assert env.now == 10.0


def test_replay_mid_all_of_reaches_identical_digest():
    # Checkpoint restore re-simulates to a step count and verifies the
    # engine digest; a countdown-based AllOf that is partially complete
    # at that step must replay to the identical queue fingerprint.
    from repro.simulation.checkpoint import engine_digest

    def program(env, results):
        def worker(env, i):
            yield env.timeout(float(i + 1))
            return i

        procs = [env.process(worker(env, i)) for i in range(10)]

        def waiter(env):
            got = yield env.all_of(procs)
            results.append(sorted(got.values()))

        env.process(waiter(env))

    first_results = []
    first = Environment()
    program(first, first_results)
    for _ in range(25):  # lands with several workers done, several not
        first.step()
    digest = engine_digest(first)

    replay_results = []
    replay = Environment()
    program(replay, replay_results)
    for _ in range(25):
        replay.step()
    assert engine_digest(replay) == digest

    first.run()
    replay.run()
    assert first_results == replay_results == [list(range(10))]
