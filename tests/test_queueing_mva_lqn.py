"""Tests for the analytic solvers (Jackson, MVA) and the LQN simulator."""

import numpy as np
import pytest

from repro.queueing import (
    Activity,
    AnalyticStation,
    LqnSimulator,
    LqnTask,
    MM1,
    PoissonArrivals,
    solve_jackson,
    solve_mva,
)


# -- AnalyticStation -----------------------------------------------------


def test_station_demand():
    s = AnalyticStation("db", visits=2.0, service_time=0.005)
    assert s.demand == pytest.approx(0.01)


def test_station_validation():
    with pytest.raises(ValueError):
        AnalyticStation("x", visits=1.0, service_time=0.0)
    with pytest.raises(ValueError):
        AnalyticStation("x", visits=-1.0, service_time=0.1)


# -- Jackson ------------------------------------------------------------


def test_jackson_single_station_equals_mm1():
    solution = solve_jackson(
        [AnalyticStation("s", 1.0, 0.01)], arrival_rate=80.0
    )
    assert solution.mean_latency == pytest.approx(
        MM1(80.0, 100.0).mean_response, rel=1e-9
    )


def test_jackson_visits_multiply_load():
    # 2 visits at rate 40 loads the station like 1 visit at rate 80.
    two_visits = solve_jackson([AnalyticStation("s", 2.0, 0.01)], 40.0)
    one_visit = solve_jackson([AnalyticStation("s", 1.0, 0.01)], 80.0)
    assert two_visits.station_utilization["s"] == pytest.approx(
        one_visit.station_utilization["s"]
    )


def test_jackson_bottleneck_identification():
    solution = solve_jackson(
        [
            AnalyticStation("cpu", 1.0, 0.002, servers=8),
            AnalyticStation("disk", 1.0, 0.008),
        ],
        arrival_rate=50.0,
    )
    assert solution.bottleneck == "disk"


def test_jackson_saturation_rejected():
    with pytest.raises(ValueError):
        solve_jackson([AnalyticStation("s", 1.0, 0.01)], arrival_rate=150.0)


def test_jackson_validation():
    with pytest.raises(ValueError):
        solve_jackson([AnalyticStation("s", 1.0, 0.01)], arrival_rate=0.0)


# -- MVA ---------------------------------------------------------------


def test_mva_single_customer_no_queueing():
    stations = [
        AnalyticStation("a", 1.0, 0.01),
        AnalyticStation("b", 1.0, 0.02),
    ]
    solution = solve_mva(stations, n_customers=1, think_time=0.0)
    assert solution.response_time == pytest.approx(0.03)
    assert solution.throughput == pytest.approx(1.0 / 0.03)


def test_mva_asymptotic_throughput_bound():
    # Throughput can never exceed 1/max-demand.
    stations = [AnalyticStation("disk", 1.0, 0.008)]
    solution = solve_mva(stations, n_customers=50, think_time=0.05)
    assert solution.throughput <= 1.0 / 0.008 + 1e-9
    assert solution.throughput == pytest.approx(1.0 / 0.008, rel=0.01)


def test_mva_think_time_reduces_congestion():
    stations = [AnalyticStation("s", 1.0, 0.01)]
    busy = solve_mva(stations, n_customers=10, think_time=0.0)
    idle = solve_mva(stations, n_customers=10, think_time=1.0)
    assert idle.response_time < busy.response_time


def test_mva_queue_lengths_sum_to_population():
    stations = [
        AnalyticStation("a", 1.0, 0.01),
        AnalyticStation("b", 1.0, 0.03),
    ]
    solution = solve_mva(stations, n_customers=12, think_time=0.0)
    assert sum(solution.queue_lengths.values()) == pytest.approx(12.0, rel=0.01)


def test_mva_matches_mm1_open_limit():
    # Large N with long think time approximates an open M/M/1.
    stations = [AnalyticStation("s", 1.0, 0.01)]
    n, think = 200, 2.5  # offered rate ~ N/(Z+R) ~ 75/s
    solution = solve_mva(stations, n_customers=n, think_time=think)
    rate = solution.throughput
    open_r = MM1(rate, 100.0).mean_response
    assert solution.response_time == pytest.approx(open_r, rel=0.1)


def test_mva_validation():
    with pytest.raises(ValueError):
        solve_mva([AnalyticStation("s", 1.0, 0.01)], n_customers=0)
    with pytest.raises(ValueError):
        solve_mva([AnalyticStation("s", 1.0, 0.01)], 5, think_time=-1.0)


# -- LQN ----------------------------------------------------------------


def _rng():
    return np.random.default_rng(0)


def test_lqn_nested_call_holds_parent():
    """While web calls db, the web server stays busy: with multiplicity
    1 at both layers, web utilization >= db utilization."""
    tasks = [
        LqnTask("web", 1, (Activity(0.001, "db"),)),
        LqnTask("db", 1, (Activity(0.004),)),
    ]
    result = LqnSimulator(tasks, "web").run(
        PoissonArrivals(50.0, _rng()), 2000, _rng()
    )
    assert result.task_utilization["web"] > result.task_utilization["db"]
    # Web is held for its own demand plus the whole db call.
    assert result.task_utilization["web"] == pytest.approx(
        50.0 * 0.005, rel=0.1
    )


def test_lqn_threads_relieve_blocking():
    def build(threads):
        return LqnSimulator(
            [
                LqnTask("app", threads, (Activity(0.002, "db"),)),
                LqnTask("db", 4, (Activity(0.004),)),
            ],
            "app",
        )

    few = build(1).run(PoissonArrivals(120.0, _rng()), 3000, _rng())
    many = build(8).run(PoissonArrivals(120.0, _rng()), 3000, _rng())
    assert many.mean_latency < few.mean_latency


def test_lqn_latency_includes_all_layers():
    tasks = [
        LqnTask("a", 4, (Activity(0.001, "b"), Activity(0.001))),
        LqnTask("b", 4, (Activity(0.002),)),
    ]
    result = LqnSimulator(tasks, "a").run(
        PoissonArrivals(1.0, _rng()), 100, _rng()
    )
    assert result.mean_latency == pytest.approx(0.004, rel=0.05)


def test_lqn_node_count():
    tasks = [
        LqnTask("a", 1, (Activity(0.001, "b"), Activity(0.001))),
        LqnTask("b", 1, (Activity(0.002),)),
    ]
    assert LqnSimulator(tasks, "a").n_nodes == 5


def test_lqn_cycle_rejected():
    tasks = [
        LqnTask("a", 1, (Activity(0.001, "b"),)),
        LqnTask("b", 1, (Activity(0.001, "a"),)),
    ]
    with pytest.raises(ValueError):
        LqnSimulator(tasks, "a")


def test_lqn_validation():
    with pytest.raises(ValueError):
        LqnTask("x", 0, (Activity(0.001),))
    with pytest.raises(ValueError):
        LqnTask("x", 1, ())
    with pytest.raises(ValueError):
        Activity(-1.0)
    tasks = [LqnTask("a", 1, (Activity(0.001, "ghost"),))]
    with pytest.raises(ValueError):
        LqnSimulator(tasks, "a")
    with pytest.raises(ValueError):
        LqnSimulator([LqnTask("a", 1, (Activity(0.001),))], "missing")


# -- saturation-aware solving and MVA regressions ----------------------------


def test_jackson_saturating_below_knee_matches_exact():
    from repro.queueing import solve_jackson_saturating

    stations = [
        AnalyticStation("cpu", 1.0, 0.004, servers=2),
        AnalyticStation("disk", 0.6, 0.010),
    ]
    exact = solve_jackson(stations, 50.0)
    soft = solve_jackson_saturating(stations, 50.0)
    assert soft.feasible
    assert soft.saturated_stations == []
    assert soft.mean_latency == pytest.approx(exact.mean_latency, rel=1e-12)
    assert soft.station_utilization == pytest.approx(exact.station_utilization)


def test_jackson_saturating_past_knee_reports_instead_of_raising():
    import math

    from repro.queueing import solve_jackson_saturating

    stations = [
        AnalyticStation("cpu", 1.0, 0.004, servers=2),
        AnalyticStation("disk", 0.6, 0.010),  # saturates at 1/0.006
    ]
    rate = 400.0
    with pytest.raises(ValueError):
        solve_jackson(stations, rate)
    solution = solve_jackson_saturating(stations, rate)
    assert not solution.feasible
    assert solution.saturated_stations == ["disk"]
    assert solution.bottleneck == "disk"
    # True offered utilization, not clamped: 400 * 0.6 * 0.01 = 2.4.
    assert solution.station_utilization["disk"] == pytest.approx(2.4)
    assert solution.station_utilization["cpu"] == pytest.approx(0.8)
    assert math.isinf(solution.mean_latency)
    assert math.isinf(solution.station_response["disk"])
    assert math.isfinite(solution.station_response["cpu"])


def test_jackson_saturating_exactly_at_rho_one():
    import math

    from repro.queueing import solve_jackson_saturating

    stations = [AnalyticStation("disk", 1.0, 0.010)]
    solution = solve_jackson_saturating(stations, 100.0)
    assert not solution.feasible
    assert solution.station_utilization["disk"] == pytest.approx(1.0)
    assert math.isinf(solution.mean_latency)
    # Just below the knee the exact solver still works.
    assert solve_jackson(stations, 99.999).feasible


def test_jackson_saturating_rejects_nonpositive_rate():
    from repro.queueing import solve_jackson_saturating

    with pytest.raises(ValueError):
        solve_jackson_saturating([AnalyticStation("s", 1.0, 0.01)], 0.0)


def test_mva_throughput_monotone_in_population():
    stations = [
        AnalyticStation("cpu", 1.0, 0.02, servers=2),
        AnalyticStation("disk", 1.0, 0.03),
    ]
    curve = [
        solve_mva(stations, n, think_time=0.1).throughput
        for n in range(1, 40)
    ]
    # Nondecreasing everywhere (floats plateau once converged), strictly
    # increasing before the asymptote, and never past the bound 1/Dmax.
    assert all(b >= a for a, b in zip(curve, curve[1:]))
    assert curve[5] > curve[0]
    assert curve[-1] <= 1.0 / 0.03 + 1e-9


def test_mva_response_time_single_customer_is_total_demand():
    # Regression for the dead n_customers == 0 branch: the n=1 response
    # is the sum of per-server demands (no queueing), computed through
    # the live N/X - Z arm.
    stations = [
        AnalyticStation("cpu", 1.0, 0.02, servers=2),
        AnalyticStation("disk", 1.0, 0.03),
    ]
    solution = solve_mva(stations, 1, think_time=0.5)
    assert solution.response_time == pytest.approx(0.02 / 2 + 0.03, rel=1e-12)
    assert solution.cycle_time == pytest.approx(0.5 + 0.04, rel=1e-12)


def test_mva_cycle_time_infinite_at_zero_throughput():
    import math

    from repro.queueing import MvaSolution

    stalled = MvaSolution(
        n_customers=4, throughput=0.0, response_time=0.0, queue_lengths={}
    )
    assert math.isinf(stalled.cycle_time)
