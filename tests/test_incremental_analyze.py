"""Tests for incremental re-analysis (PR 5).

Pins down the acceptance contract: every streaming accumulator's
``state()``/``from_state()`` snapshot is behaviorally identical to the
live object (empty, NaN/inf-bearing, and merge-after-restore cases);
snapshots from a newer schema version are rejected with ``ValueError``;
``collect`` + ``append`` produces byte-identical stream files to one
larger collection; ``compact_store`` folds round manifests into one
idempotent index; warm cache-backed analysis equals the cold run
exactly; workers are spawned only for new or invalidated shards
(proved by monkeypatching the worker entry point); editing one shard
invalidates exactly that shard; and stale-schema or corrupt cache
entries are silent misses, never crashes.
"""

import json
import warnings
from pathlib import Path

import numpy as np
import pytest

import repro.store.analyze as analyze_mod
from repro.cli import main
from repro.core import (
    WorkloadFeatureStats,
    WorkloadProfileBuilder,
    extract_request_features,
    model_to_dict,
)
from repro.datacenter import FleetSpec, collect_fleet_to_store, run_gfs_workload
from repro.stats import (
    STREAMING_STATE_VERSION,
    CategoricalCounter,
    CoMomentsAccumulator,
    ExactQuantiles,
    FixedHistogram,
    InterarrivalStats,
    MomentsAccumulator,
    P2Quantile,
    ReservoirQuantile,
    SeekStats,
    WindowedCounter,
)
from repro.store import (
    ShardStore,
    analyze_source,
    compact_store,
    load_store_index,
    load_store_rounds,
    train_per_class,
)

# -- accumulator snapshots ---------------------------------------------------

# Each case: (constructor, ordered add-argument tuples).  The sequences
# are ordered so the seam-aware accumulators (InterarrivalStats,
# SeekStats) can be split at any point and merged back exactly; the
# moments/quantile sequences include inf and NaN to pin down that
# snapshots survive non-finite floats (JSON Infinity/NaN round-trip).
CASES = [
    (
        "moments",
        MomentsAccumulator,
        [(v,) for v in (3.0, -1.5, 0.0, float("inf"), 2.25, 7.5)],
    ),
    (
        "co-moments",
        CoMomentsAccumulator,
        [(v, 2.0 * v - 1.0) for v in (3.0, -1.5, 0.0, float("nan"), 2.25)],
    ),
    (
        "fixed-histogram",
        lambda: FixedHistogram([-10.0, 0.0, 1.0, 2.5, 12.0]),
        [(v,) for v in (3.0, -1.5, 0.5, float("inf"), -99.0, 2.5)],
    ),
    (
        "exact-quantiles",
        ExactQuantiles,
        [(v,) for v in (3.0, -1.5, 0.0, float("inf"), 2.25, 7.5)],
    ),
    (
        "p2-quantile",
        lambda: P2Quantile(0.9),
        [(float(v),) for v in range(12)],
    ),
    (
        "reservoir-quantile",
        lambda: ReservoirQuantile(capacity=4, seed=3),
        [(float(v),) for v in range(10)],
    ),
    (
        "categorical-counter",
        CategoricalCounter,
        [(k,) for k in ("read", "write", "read", "seek", "read")],
    ),
    (
        "windowed-counter",
        lambda: WindowedCounter(0.5),
        [(t, 1.0, 0.1) for t in (0.0, 0.2, 0.9, 1.4, 3.3)],
    ),
    (
        "interarrival-stats",
        InterarrivalStats,
        [(t,) for t in (0.0, 0.1, 0.1, 0.45, 1.2, 1.7)],
    ),
    (
        "seek-stats",
        SeekStats,
        [(lbn, size) for lbn, size in ((0, 4096), (1, 8192), (100, 512), (3, 4096))],
    ),
]

IDS = [case[0] for case in CASES]


def snap(acc) -> str:
    """Canonical snapshot text: NaN-safe state comparison."""
    return json.dumps(acc.state(), sort_keys=True)


def restore(acc):
    """JSON round-trip through ``state()``/``from_state()``."""
    return type(acc).from_state(json.loads(snap(acc)))


@pytest.mark.parametrize("name,make,samples", CASES, ids=IDS)
def test_state_roundtrip_empty(name, make, samples):
    acc = make()
    assert snap(restore(acc)) == snap(acc)


@pytest.mark.parametrize("name,make,samples", CASES, ids=IDS)
def test_state_roundtrip_is_behaviorally_identical(name, make, samples):
    acc = make()
    for args in samples[:-2]:
        acc.add(*args)
    restored = restore(acc)
    assert snap(restored) == snap(acc)
    # Snapshot/restore must be invisible to future adds: feeding both
    # the same continuation (including the reservoir's RNG draws)
    # yields the same state again.
    for args in samples[-2:]:
        acc.add(*args)
        restored.add(*args)
    assert snap(restored) == snap(acc)


@pytest.mark.parametrize("name,make,samples", CASES, ids=IDS)
def test_merge_after_restore_matches_merge_before(name, make, samples):
    if name == "p2-quantile":
        pytest.skip("P2Quantile is single-stream (merge raises)")
    left, right = make(), make()
    for args in samples[:3]:
        left.add(*args)
    for args in samples[3:]:
        right.add(*args)
    reference = make()
    for args in samples[:3]:
        reference.add(*args)
    tail = make()
    for args in samples[3:]:
        tail.add(*args)
    reference.merge(tail)
    merged = restore(left).merge(restore(right))
    assert snap(merged) == snap(reference)


@pytest.mark.parametrize("name,make,samples", CASES, ids=IDS)
def test_newer_schema_version_is_rejected(name, make, samples):
    acc = make()
    for args in samples:
        acc.add(*args)
    state = acc.state()
    state["version"] = STREAMING_STATE_VERSION + 1
    with pytest.raises(ValueError, match="version"):
        type(acc).from_state(state)
    state["version"] = STREAMING_STATE_VERSION
    state["kind"] = "definitely-not-this"
    with pytest.raises(ValueError, match="state"):
        type(acc).from_state(state)


def test_exact_quantiles_degrades_to_reservoir():
    acc = ExactQuantiles(max_values=8)
    with pytest.warns(RuntimeWarning, match="max_values"):
        for v in range(20):
            acc.add(float(v))
    assert acc.degraded
    # Counts and means stay exact after degradation; quantiles become
    # a uniform-sample estimate but remain in range.
    assert acc.n == 20
    assert acc.mean == pytest.approx(float(np.mean(np.arange(20.0))))
    assert 0.0 <= acc.quantile(0.5) <= 19.0
    assert len(acc.array()) == 8
    # The warning fires once per accumulator, not per add.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        acc.add(99.0)
    # Degraded state snapshots round-trip, RNG stream included.
    restored = restore(acc)
    assert restored.degraded
    acc.add(-3.5)
    restored.add(-3.5)
    assert snap(restored) == snap(acc)


def test_exact_quantiles_merge_propagates_degradation():
    bounded = ExactQuantiles(max_values=4)
    with pytest.warns(RuntimeWarning):
        for v in range(10):
            bounded.add(float(v))
    plain = ExactQuantiles()
    plain.add(100.0)
    with pytest.warns(RuntimeWarning):
        plain.merge(bounded)
    assert plain.degraded
    assert plain.n == 11


# -- composite snapshots -----------------------------------------------------


@pytest.fixture(scope="module")
def gfs_traces():
    return run_gfs_workload(n_requests=60, seed=3).traces


def test_profile_builder_state_roundtrip(gfs_traces):
    builder = WorkloadProfileBuilder(window=0.25, cores=8)
    builder.add_source(gfs_traces)
    restored = WorkloadProfileBuilder.from_state(
        json.loads(json.dumps(builder.state()))
    )
    assert json.dumps(restored.state(), sort_keys=True) == json.dumps(
        builder.state(), sort_keys=True
    )
    assert restored.profile() == builder.profile()


def test_profile_builder_rejects_newer_schema(gfs_traces):
    builder = WorkloadProfileBuilder()
    builder.add_source(gfs_traces)
    state = builder.state()
    state["version"] = STREAMING_STATE_VERSION + 1
    with pytest.raises(ValueError, match="version"):
        WorkloadProfileBuilder.from_state(state)


def test_feature_stats_state_roundtrip(gfs_traces):
    stats = WorkloadFeatureStats.from_features(
        extract_request_features(gfs_traces)
    )
    restored = WorkloadFeatureStats.from_state(
        json.loads(json.dumps(stats.state()))
    )
    assert json.dumps(restored.state(), sort_keys=True) == json.dumps(
        stats.state(), sort_keys=True
    )
    assert restored.n == stats.n
    assert sorted(restored.profiles) == sorted(stats.profiles)


# -- append rounds -----------------------------------------------------------


def make_store(directory, replicas=2, n_requests=50, seed=11, **kwargs):
    return collect_fleet_to_store(
        FleetSpec(app="gfs", replicas=replicas, seed=seed, n_requests=n_requests),
        directory=directory,
        **kwargs,
    )


def read_streams(directory) -> dict:
    return {
        p.relative_to(directory).as_posix(): p.read_bytes()
        for p in sorted(Path(directory).rglob("*.jsonl"))
        if "_cache" not in p.parts
    }


def test_append_matches_single_collection(tmp_path):
    once = tmp_path / "once"
    make_store(once, replicas=4)
    steps = tmp_path / "steps"
    first = make_store(steps, replicas=2)
    second = make_store(steps, replicas=2, append=True)
    assert first.round == 0
    assert second.round == 1
    # Replica RNG streams are pure functions of (seed, replica index),
    # and appended replicas continue past the existing indices — so
    # collect 2 + append 2 is byte-identical to collect 4.
    assert read_streams(steps) == read_streams(once)
    store = ShardStore(steps)
    assert [m.round for m in store.manifests] == [0, 0, 1, 1]
    rounds = store.rounds()
    assert {r: [m.index for m in ms] for r, ms in rounds.items()} == {
        0: [0, 1],
        1: [2, 3],
    }
    assert load_store_rounds(steps) == {0: [0, 1], 1: [2, 3]}
    assert store.verify() == {}


def test_append_error_cases(tmp_path):
    with pytest.raises(FileNotFoundError):
        make_store(tmp_path / "missing", append=True)
    make_store(tmp_path / "taken")
    with pytest.raises(FileExistsError, match="append"):
        make_store(tmp_path / "taken")


def test_compact_store_folds_rounds_into_index(tmp_path):
    directory = tmp_path / "store"
    make_store(directory, replicas=2)
    make_store(directory, replicas=1, seed=19, append=True)
    rounds_before = load_store_rounds(directory)
    assert rounds_before == {0: [0, 1], 1: [2]}
    index = compact_store(directory)
    assert index.rounds == rounds_before
    assert sorted(index.shard_digests) == [0, 1, 2]
    assert all(index.shard_digests.values())
    # Round files are folded away; the index carries their content.
    assert not list(directory.glob("round-*.json"))
    assert load_store_index(directory).to_dict() == index.to_dict()
    # Idempotent, and the store (incl. per-manifest rounds) still loads.
    assert compact_store(directory).to_dict() == index.to_dict()
    assert sorted(ShardStore(directory).rounds()) == [0, 1]


# -- the analysis cache ------------------------------------------------------


@pytest.fixture()
def cached_store(tmp_path):
    directory = tmp_path / "cstore"
    make_store(directory, replicas=2, n_requests=50)
    return directory


def test_warm_analysis_equals_cold(cached_store):
    cold = analyze_source(cached_store, cache=True)
    assert (cold.cache_hits, cold.cache_misses) == (0, 2)
    warm = analyze_source(cached_store, cache=True)
    assert (warm.cache_hits, warm.cache_misses) == (2, 0)
    # JSON float snapshots are shortest-repr exact, so the warm result
    # is *equal* to the cold one — not merely close.
    assert warm.profile == cold.profile
    assert json.dumps(warm.features.state(), sort_keys=True) == json.dumps(
        cold.features.state(), sort_keys=True
    )
    assert sorted(warm.per_class) == sorted(cold.per_class)
    uncached = analyze_source(cached_store, cache=False)
    assert uncached.profile == cold.profile
    assert (uncached.cache_hits, uncached.cache_misses) == (0, 0)


def test_workers_spawn_only_for_the_new_round(cached_store, monkeypatch):
    analyze_source(cached_store, cache=True)
    make_store(cached_store, replicas=1, seed=99, n_requests=40, append=True)
    calls: list[int] = []
    real = analyze_mod.analyze_shard

    def counting(task):
        calls.append(task.shard_index)
        return real(task)

    monkeypatch.setattr(analyze_mod, "analyze_shard", counting)
    grown = analyze_source(cached_store, cache=True)
    assert calls == [2], "only the appended shard may be re-folded"
    assert (grown.cache_hits, grown.cache_misses) == (2, 1)
    calls.clear()
    warm = analyze_source(cached_store, cache=True)
    assert calls == []
    assert (warm.cache_hits, warm.cache_misses) == (3, 0)
    assert warm.profile == grown.profile
    # The warm merged result equals a cache-free full re-analysis.
    monkeypatch.setattr(analyze_mod, "analyze_shard", real)
    assert analyze_source(cached_store, cache=False).profile == warm.profile


def test_shard_edit_invalidates_only_that_shard(cached_store):
    analyze_source(cached_store, cache=True)
    target = cached_store / "shard-00000001" / "requests.jsonl"
    with open(target, "a") as fh:
        fh.write("\n")  # changes bytes, parses identically
    assert ShardStore(cached_store).verify() == {1: ["requests"]}
    warm = analyze_source(cached_store, cache=True)
    assert (warm.cache_hits, warm.cache_misses) == (1, 1)
    again = analyze_source(cached_store, cache=True)
    assert (again.cache_hits, again.cache_misses) == (2, 0)


def test_stale_or_corrupt_cache_entries_are_misses(cached_store):
    analyze_source(cached_store, cache=True)
    entries = sorted((cached_store / "_cache").rglob("profile-*.json"))
    assert len(entries) == 2
    # A schema bump (newer writer) must be skipped, not crashed on.
    data = json.loads(entries[0].read_text())
    data["schema"] = STREAMING_STATE_VERSION + 1
    entries[0].write_text(json.dumps(data))
    warm = analyze_source(cached_store, cache=True)
    assert (warm.cache_hits, warm.cache_misses) == (1, 1)
    # Corruption likewise: the entry is rebuilt in place.
    entries[0].write_text("{not json")
    warm = analyze_source(cached_store, cache=True)
    assert (warm.cache_hits, warm.cache_misses) == (1, 1)
    assert (
        analyze_source(cached_store, cache=True).cache_hits,
    ) == (2,)


def test_analysis_key_separates_parameterizations(cached_store):
    analyze_source(cached_store, cache=True)
    other = analyze_source(cached_store, cache=True, window=0.5)
    assert (other.cache_hits, other.cache_misses) == (0, 2)
    again = analyze_source(cached_store, cache=True, window=0.5)
    assert (again.cache_hits, again.cache_misses) == (2, 0)


def test_bounded_quantiles_flow_through_analysis(cached_store):
    with pytest.warns(RuntimeWarning, match="max_values"):
        analysis = analyze_source(
            cached_store, cache=True, max_quantile_values=16
        )
    assert analysis.cache_misses == 2
    # The warm run restores degraded states from the cache; the driver
    # merge still (correctly) warns as its own accumulators degrade.
    with pytest.warns(RuntimeWarning, match="max_values"):
        warm = analyze_source(
            cached_store, cache=True, max_quantile_values=16
        )
    assert (warm.cache_hits, warm.cache_misses) == (2, 0)
    assert warm.profile == analysis.profile


def test_model_cache_hits_on_unchanged_store(cached_store):
    store = ShardStore(cached_store)
    cold = train_per_class(store, cache=True)
    assert cold.cache_hits == 0
    assert cold.cache_misses == len(cold.models)
    warm = train_per_class(store, cache=True)
    assert warm.cache_misses == 0
    assert warm.cache_hits == len(cold.models)
    assert {c: model_to_dict(m) for c, m in warm.models.items()} == {
        c: model_to_dict(m) for c, m in cold.models.items()
    }
    # Any shard change — here an appended round — invalidates the
    # whole-model cache (fits are not incrementally mergeable).
    make_store(cached_store, replicas=1, seed=77, n_requests=40, append=True)
    grown = train_per_class(ShardStore(cached_store), cache=True)
    assert grown.cache_hits == 0


# -- CLI ---------------------------------------------------------------------


def test_cli_append_compact_and_cache(tmp_path, capsys):
    store = str(tmp_path / "store")
    base = ["--app", "gfs", "--replicas", "2", "--requests", "40"]
    assert main(["collect", *base, "--out", store]) == 0
    capsys.readouterr()

    assert main(["characterize", "--in", store]) == 0
    cold = capsys.readouterr()
    assert "cache: 0 hits, 2 misses" in cold.err
    assert main(["characterize", "--in", store]) == 0
    warm = capsys.readouterr()
    assert "cache: 2 hits, 0 misses" in warm.err
    assert main(["characterize", "--in", store, "--no-cache"]) == 0
    plain = capsys.readouterr()
    assert "cache:" not in plain.err
    # Cache statistics go to stderr precisely so these are identical.
    assert cold.out == warm.out == plain.out

    assert (
        main(["append", "--app", "gfs", "--replicas", "1", "--seed", "9",
              "--requests", "40", "--out", store])
        == 0
    )
    assert "appended round 1 to shard store" in capsys.readouterr().out
    assert main(["characterize", "--in", store]) == 0
    assert "cache: 2 hits, 1 misses" in capsys.readouterr().err

    assert main(["compact", "--in", store]) == 0
    out = capsys.readouterr().out
    assert "compacted" in out and "2 rounds" in out

    with pytest.raises(SystemExit, match="append"):
        main(["collect", *base, "--out", store])
    with pytest.raises(SystemExit, match="--flat"):
        main(["collect", *base, "--flat", "--append", "--out", store])
