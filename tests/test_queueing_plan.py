"""Tests for the capacity-planning subsystem (repro plan)."""

import json
import math

import pytest

from repro.cli import main
from repro.datacenter import FleetSpec, collect_fleet_to_store
from repro.queueing import (
    cross_validate,
    fit_cluster_model,
    parse_multipliers,
    plan_sweep,
    solve_point,
)
from repro.store import load_per_class_models, save_per_class_models, train_per_class


@pytest.fixture(scope="module")
def tiny_store(tmp_path_factory):
    directory = tmp_path_factory.mktemp("plan-store") / "store"
    spec = FleetSpec(app="gfs", replicas=2, seed=7, n_requests=200)
    result = collect_fleet_to_store(spec, directory=directory, workers=1)
    return result.store(), spec


@pytest.fixture(scope="module")
def cluster(tiny_store):
    store, _ = tiny_store
    return fit_cluster_model(store, seed=42, max_per_class=64)


# -- multiplier grids --------------------------------------------------------


def test_parse_multipliers_geometric_grid():
    grid = parse_multipliers("0.5:100:17")
    assert len(grid) == 17
    assert grid[0] == pytest.approx(0.5)
    assert grid[-1] == pytest.approx(100.0)
    ratios = [b / a for a, b in zip(grid, grid[1:])]
    assert all(r == pytest.approx(ratios[0]) for r in ratios)


def test_parse_multipliers_explicit_list_sorted_deduped():
    assert parse_multipliers("5,1,2,2") == [1.0, 2.0, 5.0]


def test_parse_multipliers_rejects_garbage():
    for bad in ("", "bogus", "1:2", "1:2:3:4", "0:10:5", "-1,2", "5:1:4",
                "1:10:1"):
        with pytest.raises(ValueError):
            parse_multipliers(bad)


# -- fitting -----------------------------------------------------------------


def test_fit_cluster_model_from_store(cluster):
    assert cluster.fit_source == "store"
    assert cluster.base_rate > 0
    assert [name for name, _ in cluster.stations] == [
        "cpu", "memory", "disk", "nic",
    ]
    demands = cluster.aggregate_demands()
    # A GFS workload exercises every device.
    assert all(demands[name] > 0 for name in ("cpu", "disk", "nic"))
    assert cluster.bottleneck in demands
    assert math.isfinite(cluster.saturation_rate)
    for cls in cluster.classes:
        assert cls.arrival_rate > 0
        assert cls.n_fit >= 1
        assert cls.replay_latency > 0
        assert cls.observed_latency is not None


def test_fit_cluster_model_is_deterministic(tiny_store):
    store, _ = tiny_store
    a = fit_cluster_model(store, seed=42, max_per_class=64)
    b = fit_cluster_model(store, seed=42, max_per_class=64)
    assert a == b


def test_fit_cluster_model_from_bare_models(tiny_store, tmp_path):
    store, _ = tiny_store
    fit = train_per_class(store)
    path = tmp_path / "classes.json"
    save_per_class_models(fit.models, path)
    cluster = fit_cluster_model(
        models=load_per_class_models(path), base_rate=25.0, max_per_class=64
    )
    assert cluster.fit_source == "model"
    assert cluster.base_rate == pytest.approx(25.0)
    # Rates split by training mix, no observations to report.
    assert all(c.observed_latency is None for c in cluster.classes)
    assert sum(c.arrival_rate for c in cluster.classes) == pytest.approx(25.0)


def test_fit_cluster_model_requires_rate_with_bare_models(tiny_store):
    store, _ = tiny_store
    fit = train_per_class(store)
    with pytest.raises(ValueError):
        fit_cluster_model(models=fit.models)


def test_fit_cluster_model_requires_some_input():
    with pytest.raises(ValueError):
        fit_cluster_model()


# -- sweeping ----------------------------------------------------------------


def test_sweep_crossing_saturation_completes(cluster):
    plan = plan_sweep(cluster, parse_multipliers("0.5:100:9"))
    assert len(plan.points) == 9
    assert plan.points[0].feasible
    assert not plan.points[-1].feasible
    knee = plan.knee_multiplier
    assert knee is not None
    assert plan.bottleneck == cluster.bottleneck
    # The knee splits the grid: feasible strictly before, infeasible after.
    for point in plan.points:
        assert point.feasible == (point.multiplier < knee)
    saturated = [p for p in plan.points if not p.feasible]
    assert all(math.isinf(p.mean_latency) for p in saturated)
    # Utilization is reported truthfully past the knee (>= 1, not clamped).
    assert all(p.bottleneck_utilization >= 1.0 for p in saturated)
    # Grid knee brackets the exact demand-bound knee.
    assert plan.max_feasible_multiplier < plan.exact_knee_multiplier <= knee


def test_sweep_latency_monotone_while_feasible(cluster):
    plan = plan_sweep(cluster, parse_multipliers("0.5:100:9"))
    feasible = [p.mean_latency for p in plan.points if p.feasible]
    assert all(b > a for a, b in zip(feasible, feasible[1:]))


def test_sweep_mva_solver_self_throttles(cluster):
    plan = plan_sweep(
        cluster,
        [1.0, 8.0, 64.0],
        solver="mva",
        customers=4,
        think_time=0.05,
    )
    # Closed networks never produce infinite latency; saturation shows
    # as throughput pinned at the bottleneck bound.
    assert all(math.isfinite(p.mean_latency) for p in plan.points)
    assert plan.points[0].n_customers == 4
    assert plan.points[-1].n_customers == 256
    rates = [p.arrival_rate for p in plan.points]
    assert all(b >= a for a, b in zip(rates, rates[1:]))
    assert rates[-1] <= cluster.saturation_rate * (1 + 1e-9)
    assert plan.knee_multiplier is not None


def test_sweep_mva_solver_requires_population(cluster):
    with pytest.raises(ValueError):
        plan_sweep(cluster, [1.0], solver="mva")


def test_solve_point_rejects_bad_inputs(cluster):
    with pytest.raises(ValueError):
        solve_point(cluster, 0.0)
    with pytest.raises(ValueError):
        solve_point(cluster, 1.0, solver="petri-net")


def test_plan_to_dict_json_round_trips(cluster):
    plan = plan_sweep(cluster, parse_multipliers("0.5:100:5"))
    payload = json.loads(json.dumps(plan.to_dict()))
    assert payload["bottleneck"] == cluster.bottleneck
    assert len(payload["points"]) == 5
    # Infinite latencies serialize as null, not as Infinity.
    assert payload["points"][-1]["mean_latency"] is None
    assert payload["points"][-1]["feasible"] is False


def test_plan_text_is_byte_stable(cluster):
    grid = parse_multipliers("0.5:100:9")
    first = plan_sweep(cluster, grid).to_text()
    second = plan_sweep(cluster, grid).to_text()
    assert first == second
    assert "knee: first infeasible multiplier" in first
    assert "SATURATED" in first


# -- cross-validation --------------------------------------------------------


def test_cross_validate_reports_relative_error(tiny_store, cluster):
    _, spec = tiny_store
    points = cross_validate(cluster, [1.0], spec, workers=1)
    assert len(points) == 1
    point = points[0]
    assert point.analytic_feasible
    assert point.simulated_latency > 0
    assert math.isfinite(point.relative_error_pct)
    # The analytic model should land within Table-2-style bounds of the
    # simulation at the fitted operating point.
    assert point.relative_error_pct < 50.0
    payload = json.loads(json.dumps(point.to_dict()))
    assert payload["relative_error_pct"] == pytest.approx(
        point.relative_error_pct
    )


def test_cross_validate_rejects_rateless_app(cluster):
    spec = FleetSpec(app="mapreduce", replicas=1, seed=3)
    with pytest.raises(ValueError):
        cross_validate(cluster, [1.0], spec)


# -- CLI ---------------------------------------------------------------------


@pytest.fixture(scope="module")
def cli_store(tmp_path_factory):
    directory = tmp_path_factory.mktemp("plan-cli") / "store"
    spec = FleetSpec(app="gfs", replicas=2, seed=7, n_requests=200)
    collect_fleet_to_store(spec, directory=directory, workers=1)
    return directory


def test_cli_plan_sweep_with_validation(cli_store, capsys):
    assert main([
        "plan", "--in", str(cli_store), "--scale", "0.5:10:5",
        "--validate-at", "1", "--max-per-class", "64",
    ]) == 0
    out = capsys.readouterr().out
    assert "knee:" in out
    assert "cross-validation" in out
    assert "rel err%" in out


def test_cli_plan_json_parses_and_is_byte_stable(cli_store, capsys):
    argv = [
        "plan", "--in", str(cli_store), "--scale", "0.5:10:5",
        "--max-per-class", "64", "--json",
    ]
    assert main(argv) == 0
    first = capsys.readouterr().out
    payload = json.loads(first)
    assert payload["plan"]["knee_multiplier"] is not None
    assert payload["validation"] == []
    assert main(argv) == 0
    assert capsys.readouterr().out == first


def test_cli_plan_model_file_needs_rate(cli_store, tmp_path, capsys):
    model_path = tmp_path / "classes.json"
    assert main([
        "train", "--in", str(cli_store), "--per-class",
        "--model", str(model_path),
    ]) == 0
    capsys.readouterr()
    with pytest.raises(SystemExit):
        main(["plan", "--in", str(model_path), "--scale", "1,2"])
    assert main([
        "plan", "--in", str(model_path), "--rate", "25",
        "--scale", "1,2,50", "--max-per-class", "64",
    ]) == 0
    assert "fit from model" in capsys.readouterr().out


def test_cli_plan_corrupt_model_exits_nonzero(tmp_path):
    corrupt = tmp_path / "corrupt.json"
    corrupt.write_text('{"not": "a model"}')
    with pytest.raises(SystemExit) as excinfo:
        main(["plan", "--in", str(corrupt), "--rate", "25"])
    assert excinfo.value.code != 0
    truncated = tmp_path / "truncated.json"
    truncated.write_text('{"format": "kooza-per-class", "classes"')
    with pytest.raises(SystemExit):
        main(["plan", "--in", str(truncated), "--rate", "25"])


def test_cli_plan_rejects_bad_grid(cli_store):
    with pytest.raises(SystemExit):
        main(["plan", "--in", str(cli_store), "--scale", "bogus"])
