"""Tests for the KOOZA model: training, generation, replay, validation.

These are the repository's primary integration tests: they exercise
the full paper pipeline (trace -> train -> synthesize -> replay ->
compare) and assert the Table 2 shape.
"""

import numpy as np
import pytest

from repro.core import (
    KoozaConfig,
    KoozaTrainer,
    ReplayHarness,
    compare_workloads,
    extract_request_features,
)
from repro.core.synthetic import Stage, SyntheticRequest
from repro.datacenter import run_gfs_workload, run_webapp_workload
from repro.tracing import READ, WRITE


@pytest.fixture(scope="module")
def gfs_run():
    return run_gfs_workload(n_requests=1200, seed=7)


@pytest.fixture(scope="module")
def kooza(gfs_run):
    return KoozaTrainer().fit(gfs_run.traces)


@pytest.fixture(scope="module")
def report(gfs_run, kooza):
    synthetic = kooza.synthesize(1200, np.random.default_rng(42))
    replayed = ReplayHarness(seed=99).replay(synthetic)
    return compare_workloads(gfs_run.traces, replayed)


def test_trainer_requires_enough_requests():
    from repro.tracing import TraceSet

    with pytest.raises(ValueError):
        KoozaTrainer().fit(TraceSet())


def test_model_is_fitted(kooza):
    assert kooza.is_fitted()
    assert kooza.n_training_requests == 1200
    assert kooza.n_parameters > 0


def test_model_network_states_cover_both_sizes(kooza):
    reps = [
        kooza.network_sizes.representative(s)
        for s in range(kooza.network_sizes.effective_bins)
    ]
    assert 64 * 1024 in reps
    assert 4 << 20 in reps


def test_dependency_queue_learned(kooza):
    assert kooza.dependency_queue.default == (
        "network_rx",
        "cpu_lookup",
        "memory",
        "storage",
        "cpu_aggregate",
        "network_tx",
    )


def test_synthesize_produces_structured_requests(kooza):
    requests = kooza.synthesize(50, np.random.default_rng(0))
    assert len(requests) == 50
    for r in requests:
        kinds = r.stage_order()
        assert kinds[0] == "network_rx"
        assert kinds[-1] == "network_tx"
        assert "storage" in kinds and "memory" in kinds
        assert r.arrival_time >= 0


def test_synthesize_arrival_times_increase(kooza):
    requests = kooza.synthesize(100, np.random.default_rng(1))
    times = [r.arrival_time for r in requests]
    assert all(b >= a for a, b in zip(times, times[1:]))


def test_synthesize_coupling_keeps_features_coherent(kooza):
    requests = kooza.synthesize(300, np.random.default_rng(2))
    for r in requests:
        storage = r.storage_stage
        memory = r.memory_stage
        if storage.op == WRITE:
            # 4 MiB writes carry 256 KiB memory writes (Table 2 row 2).
            assert storage.size_bytes == 4 << 20
            assert memory.op == WRITE
            assert memory.size_bytes == 256 * 1024
        else:
            assert storage.size_bytes == 64 * 1024
            assert memory.op == READ
            assert memory.size_bytes == 16 * 1024


def test_synthesize_validation(kooza):
    with pytest.raises(ValueError):
        kooza.synthesize(0, np.random.default_rng(0))


def test_replay_completes_all_requests(kooza):
    requests = kooza.synthesize(100, np.random.default_rng(3))
    traces = ReplayHarness(seed=5).replay(requests)
    assert len(traces.completed_requests()) == 100
    assert len(extract_request_features(traces)) == 100


def test_replay_empty_rejected():
    with pytest.raises(ValueError):
        ReplayHarness().replay([])


def test_replay_splits_large_ios():
    request = SyntheticRequest(
        arrival_time=0.0,
        stages=[Stage("storage", op=READ, size_bytes=8 << 20, lbn=0)],
    )
    traces = ReplayHarness(max_io_bytes=1 << 20).replay([request])
    assert len(traces.storage) == 8


# -- Table 2 shape assertions (the headline reproduction) ---------------------


def test_table2_feature_deviation_under_one_percent(report):
    assert report.worst_feature_deviation_pct < 1.0


def test_table2_cpu_deviation_small(report):
    for p in report.profiles:
        assert p.cpu_utilization_deviation_pp < 2.0


def test_table2_latency_deviation_under_ten_percent(report):
    # Paper reports 3.7% and 6.6%; allow headroom for simulator noise.
    assert report.worst_latency_deviation_pct < 10.0


def test_table2_op_types_match_exactly(report):
    for p in report.profiles:
        assert p.memory_op_match == 1.0
        assert p.storage_op_match == 1.0


def test_table2_both_profiles_present(report):
    assert {p.profile for p in report.profiles} == {(READ, 16), (WRITE, 22)}


def test_joint_correlation_preserved(report):
    assert report.joint_correlation_error < 0.1


def test_report_table_renders(report):
    table = report.to_table()
    assert "lat dev%" in table
    assert "read@2^16" in table


# -- ablation behaviour -------------------------------------------------------


def test_uncoupled_model_breaks_joint_features(gfs_run):
    config = KoozaConfig(couple_subsystems=False)
    model = KoozaTrainer(config).fit(gfs_run.traces)
    requests = model.synthesize(400, np.random.default_rng(4))
    mismatched = 0
    for r in requests:
        storage = r.storage_stage
        memory = r.memory_stage
        coherent = (storage.op == WRITE and memory.size_bytes == 256 * 1024) or (
            storage.op == READ and memory.size_bytes == 16 * 1024
        )
        if not coherent:
            mismatched += 1
    assert mismatched > 20  # independence visibly breaks coherence


def test_no_dependency_queue_changes_stage_order(gfs_run):
    config = KoozaConfig(use_dependency_queue=False)
    model = KoozaTrainer(config).fit(gfs_run.traces)
    requests = model.synthesize(5, np.random.default_rng(5))
    for r in requests:
        assert r.stage_order() != [
            "network_rx",
            "cpu",
            "memory",
            "storage",
            "cpu",
            "network_tx",
        ]


def test_hierarchical_storage_option(gfs_run):
    config = KoozaConfig(hierarchical_storage=True)
    model = KoozaTrainer(config).fit(gfs_run.traces)
    assert model.storage_hierarchy is not None
    assert set(model.storage_hierarchy.group_chain.states) == {READ, WRITE}


def test_describe_renders_figure2_structure(kooza):
    text = kooza.describe()
    assert "[network]" in text
    assert "[cpu]" in text
    assert "[memory]" in text
    assert "[storage]" in text
    assert "DependencyQueue" in text


def test_config_validation():
    with pytest.raises(ValueError):
        KoozaConfig(network_size_bins=0)


def test_kooza_generalizes_to_webapp():
    # Moderate load: at high utilization, queueing amplifies small
    # service-time modeling errors (the paper validates one server at
    # low load; the multi-tier case is our extension, so the latency
    # bound is looser than Table 2's).
    traces = run_webapp_workload(n_requests=700, seed=3, arrival_rate=80.0)
    model = KoozaTrainer().fit(traces)
    synthetic = model.synthesize(700, np.random.default_rng(6))
    replayed = ReplayHarness(seed=8).replay(synthetic)
    report = compare_workloads(traces, replayed)
    assert report.worst_feature_deviation_pct < 1.0
    assert report.mean_latency_deviation_pct < 30.0
