"""Unit tests for the Tracer, TraceSet and trace persistence."""

import pytest

from repro.tracing import (
    READ,
    NetworkRecord,
    RequestRecord,
    StorageRecord,
    Tracer,
    TraceSet,
    load_traces,
    save_traces,
)


def test_tracer_allocates_unique_request_ids():
    tracer = Tracer()
    ids = [tracer.new_request_id() for _ in range(100)]
    assert len(set(ids)) == 100


def test_sampling_one_in_n():
    tracer = Tracer(sample_every=10)
    ids = [tracer.new_request_id() for _ in range(100)]
    sampled = [i for i in ids if tracer.is_sampled(i)]
    assert len(sampled) == 10


def test_sample_every_validation():
    with pytest.raises(ValueError):
        Tracer(sample_every=0)


def test_unsampled_request_gets_no_spans():
    tracer = Tracer(sample_every=2)
    first = tracer.new_request_id()
    second = tracer.new_request_id()
    assert tracer.start_span(first, "request", "s1", 0.0) is not None
    assert tracer.start_span(second, "request", "s1", 0.0) is None


def test_span_parenting():
    tracer = Tracer()
    rid = tracer.new_request_id()
    root = tracer.start_span(rid, "request", "s1", 0.0)
    child = tracer.start_span(rid, "storage", "s1", 0.1, parent=root)
    assert child.parent_id == root.span_id
    tracer.end_span(child, 0.5)
    tracer.end_span(root, 1.0)
    trees = tracer.traces.trace_trees()
    assert trees[0].span_count() == 2


def test_end_span_tolerates_none():
    tracer = Tracer()
    tracer.end_span(None, 1.0)  # must not raise


def test_traceset_completed_requests_filters_unfinished():
    traces = TraceSet()
    traces.requests.append(
        RequestRecord(1, "a", "s", arrival_time=0.0, completion_time=1.0)
    )
    traces.requests.append(
        RequestRecord(2, "a", "s", arrival_time=5.0)  # never completed
    )
    assert len(traces.completed_requests()) == 1


def test_traceset_requests_by_class():
    traces = TraceSet()
    for i, cls in enumerate(["a", "b", "a"]):
        traces.requests.append(
            RequestRecord(i, cls, "s", arrival_time=0.0, completion_time=1.0)
        )
    grouped = traces.requests_by_class()
    assert sorted(grouped) == ["a", "b"]
    assert len(grouped["a"]) == 2


def test_traceset_merge():
    a = TraceSet(network=[NetworkRecord(1, "s", 0.0, 10, "rx")])
    b = TraceSet(network=[NetworkRecord(2, "s", 1.0, 20, "rx")])
    merged = a.merge(b)
    assert len(merged.network) == 2
    assert len(a.network) == 1  # originals untouched


def test_traceset_summary_counts():
    traces = TraceSet(storage=[StorageRecord(1, "s", 0.0, 0, 4096, READ)])
    summary = traces.summary()
    assert summary["storage"] == 1
    assert summary["network"] == 0


def test_save_and_load_round_trip(tmp_path):
    tracer = Tracer()
    rid = tracer.new_request_id()
    tracer.record_network(NetworkRecord(rid, "s1", 0.0, 64, "rx"))
    tracer.record_storage(StorageRecord(rid, "s1", 0.1, 5, 4096, READ, 0.004, 1))
    span = tracer.start_span(rid, "request", "s1", 0.0)
    tracer.end_span(span, 0.2)
    tracer.record_request(
        RequestRecord(rid, "read_4K", "s1", arrival_time=0.0, completion_time=0.2)
    )
    save_traces(tracer.traces, tmp_path / "run1")
    loaded = load_traces(tmp_path / "run1")
    assert loaded.summary() == tracer.traces.summary()
    assert loaded.storage[0].lbn == 5
    assert loaded.spans[0].name == "request"


def test_load_missing_streams_is_empty(tmp_path):
    traces = load_traces(tmp_path)  # nothing saved here
    assert traces.summary() == {
        "network": 0,
        "cpu": 0,
        "memory": 0,
        "storage": 0,
        "requests": 0,
        "spans": 0,
    }
