"""Golden-store diffs: collect output is byte-pinned across kernel changes.

The strongest invariant the collection hot path has: optimizing the
engine, the RNG layer, or the tracer emission path must not move a
single byte of ``repro collect`` output.  These tests re-collect a
small grid of stores (jsonl and columnar, windowed and single-shot,
gzip and plain, all three apps) and compare every file against sha256
digests pinned in ``tests/golden/collect_golden.json`` — digests that
were recorded on the *pre-optimization* seed kernel, so any drift the
byte-identity refactors introduce fails loudly, file by file.

``ReplicaSession.checkpoint()`` payloads are pinned the same way: the
canonical-JSON digest of a mid-run checkpoint must not move either.

Regenerate (only when output is *supposed* to change, e.g. a manifest
format bump) with::

    PYTHONPATH=src python tests/test_golden_collect.py --regenerate
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro.datacenter import FleetSpec, collect_fleet_to_store
from repro.datacenter.fleet import ReplicaSpec
from repro.datacenter.session import ReplicaSession

GOLDEN_PATH = Path(__file__).resolve().parent / "golden" / "collect_golden.json"

#: Files whose bytes legitimately differ between runs (absolute paths).
EXCLUDED = {"_checkpoints/fleet.json"}

#: The golden grid: name -> collect_fleet_to_store arguments.
GRID = {
    "gfs-jsonl": dict(
        spec=dict(app="gfs", replicas=1, seed=7, n_requests=200),
    ),
    "gfs-jsonl-windowed": dict(
        spec=dict(app="gfs", replicas=2, seed=7, n_requests=120),
        windows=2,
    ),
    "gfs-jsonl-gzip": dict(
        spec=dict(app="gfs", replicas=1, seed=7, n_requests=120),
        compress=True,
    ),
    "gfs-columnar": dict(
        spec=dict(app="gfs", replicas=1, seed=7, n_requests=200),
        codec="columnar",
    ),
    "webapp-jsonl": dict(
        spec=dict(app="webapp", replicas=1, seed=7, n_requests=150),
    ),
    "mapreduce-jsonl": dict(
        spec=dict(app="mapreduce", replicas=1, seed=7, n_requests=1),
    ),
}


def store_digests(directory: Path) -> dict[str, str]:
    """Per-file sha256 digests of a store, keyed by relative path."""
    digests = {}
    for path in sorted(directory.rglob("*")):
        if not path.is_file():
            continue
        rel = path.relative_to(directory).as_posix()
        if rel in EXCLUDED:
            continue
        digests[rel] = hashlib.sha256(path.read_bytes()).hexdigest()
    return digests


def collect_store(name: str, directory: Path) -> dict[str, str]:
    """Run one golden grid entry and return its file digests."""
    args = dict(GRID[name])
    spec = FleetSpec(**args.pop("spec"))
    collect_fleet_to_store(spec, directory=directory, **args)
    return store_digests(directory)


def checkpoint_digest() -> str:
    """Canonical-JSON digest of a mid-run gfs session checkpoint."""
    spec = ReplicaSpec(
        app="gfs", index=0, seed=7, n_requests=200, arrival_rate=25.0,
        sample_every=1,
    )
    session = ReplicaSession(spec)
    session.advance_progress(100)
    state = session.checkpoint()
    canonical = json.dumps(state, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def _generate() -> dict:
    import tempfile

    golden: dict = {"stores": {}}
    with tempfile.TemporaryDirectory() as td:
        for name in GRID:
            golden["stores"][name] = collect_store(name, Path(td) / name)
    golden["checkpoint_sha256"] = checkpoint_digest()
    return golden


@pytest.fixture(scope="module")
def golden() -> dict:
    assert GOLDEN_PATH.exists(), (
        f"golden digests missing: {GOLDEN_PATH}; regenerate with "
        "`python tests/test_golden_collect.py --regenerate`"
    )
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("name", sorted(GRID))
def test_store_bytes_match_golden(name, golden, tmp_path):
    recorded = golden["stores"][name]
    actual = collect_store(name, tmp_path / name)
    missing = sorted(set(recorded) - set(actual))
    extra = sorted(set(actual) - set(recorded))
    assert not missing and not extra, (
        f"{name}: store layout drifted (missing files: {missing}, "
        f"unexpected files: {extra})"
    )
    drifted = sorted(
        rel for rel, sha in recorded.items() if actual[rel] != sha
    )
    assert not drifted, (
        f"{name}: collect output is no longer byte-identical to the "
        f"pre-optimization golden store; drifted files: {drifted}"
    )


def test_checkpoint_digest_matches_golden(golden):
    assert checkpoint_digest() == golden["checkpoint_sha256"], (
        "ReplicaSession.checkpoint() payload drifted from the "
        "pre-optimization golden digest"
    )


if __name__ == "__main__":
    import sys

    if "--regenerate" not in sys.argv:
        sys.exit("usage: python tests/test_golden_collect.py --regenerate")
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(_generate(), indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")
