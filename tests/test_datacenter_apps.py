"""Integration tests for the 3-tier web app and MapReduce simulations."""

import numpy as np
import pytest

from repro.datacenter import (
    MapReduceJob,
    MapReduceSpec,
    WebAppSpec,
    run_mapreduce_jobs,
    run_webapp_workload,
)


def test_webapp_requests_complete():
    traces = run_webapp_workload(n_requests=150, seed=1)
    assert len(traces.completed_requests()) == 150
    classes = set(traces.requests_by_class())
    assert classes == {"browse", "search", "order"}


def test_webapp_traverses_three_tiers():
    traces = run_webapp_workload(n_requests=50, seed=2)
    servers = {r.server for r in traces.cpu}
    tiers = {s.split("-")[0] for s in servers}
    assert tiers == {"web", "app", "db"}


def test_webapp_only_db_does_storage():
    traces = run_webapp_workload(n_requests=50, seed=3)
    storage_servers = {r.server for r in traces.storage}
    assert all(s.startswith("db-") for s in storage_servers)


def test_webapp_stage_sequence_shows_tiering():
    traces = run_webapp_workload(n_requests=30, seed=4)
    sequence = traces.trace_trees()[0].stage_sequence()
    assert sequence.count("cpu_lookup") == 3  # one per tier
    assert sequence.count("storage") == 1
    assert sequence[-1] == "network_tx"


def test_webapp_order_class_writes():
    traces = run_webapp_workload(n_requests=300, seed=5)
    orders = traces.requests_by_class()["order"]
    assert all(r.storage_op == "write" for r in orders)


def test_webapp_spec_validation():
    with pytest.raises(ValueError):
        WebAppSpec(web_servers=0)
    with pytest.raises(ValueError):
        WebAppSpec(classes=())


def test_mapreduce_jobs_complete_with_results():
    jobs = [
        MapReduceJob("j0", input_bytes=64 << 20, n_map=4, n_reduce=2),
        MapReduceJob("j1", input_bytes=16 << 20, n_map=2, n_reduce=1),
    ]
    traces, results = run_mapreduce_jobs(jobs=jobs, seed=1)
    assert len(results) == 2
    assert all(r.execution_time > 0 for r in results)
    # 4+2 tasks for j0 and 2+1 for j1.
    assert len(traces.requests) == 9


def test_mapreduce_bigger_job_takes_longer():
    jobs = [
        MapReduceJob("small", input_bytes=16 << 20, n_map=2, n_reduce=1),
        MapReduceJob("big", input_bytes=256 << 20, n_map=2, n_reduce=1),
    ]
    _, results = run_mapreduce_jobs(jobs=jobs, seed=2)
    by_name = {r.job.name: r.execution_time for r in results}
    assert by_name["big"] > by_name["small"]


def test_mapreduce_parallelism_speeds_up_job():
    jobs = [
        MapReduceJob("serial", input_bytes=128 << 20, n_map=1, n_reduce=1),
        MapReduceJob("parallel", input_bytes=128 << 20, n_map=4, n_reduce=1),
    ]
    _, results = run_mapreduce_jobs(
        jobs=jobs, seed=3, spec=MapReduceSpec(workers=4)
    )
    by_name = {r.job.name: r.execution_time for r in results}
    assert by_name["parallel"] < by_name["serial"]


def test_mapreduce_feature_vector():
    jobs = [MapReduceJob("j", input_bytes=32 << 20, n_map=2, n_reduce=2)]
    _, results = run_mapreduce_jobs(jobs=jobs, seed=4)
    vector = results[0].feature_vector()
    assert vector.shape == (4,)
    assert vector[0] == 32 << 20


def test_mapreduce_job_validation():
    with pytest.raises(ValueError):
        MapReduceJob("bad", input_bytes=0, n_map=1, n_reduce=1)
    with pytest.raises(ValueError):
        MapReduceSpec(workers=0)


def test_mapreduce_task_classes():
    jobs = [MapReduceJob("j", input_bytes=32 << 20, n_map=3, n_reduce=2)]
    traces, _ = run_mapreduce_jobs(jobs=jobs, seed=6)
    grouped = traces.requests_by_class()
    assert len(grouped["map"]) == 3
    assert len(grouped["reduce"]) == 2


def test_mapreduce_default_jobs_drawn_from_named_substream():
    # Regression: default jobs used to come from a raw
    # np.random.default_rng(seed), bypassing the RandomStreams
    # invariant.  They must be exactly the draws of the
    # "workload/jobs" substream.
    from repro.datacenter import default_mapreduce_jobs
    from repro.simulation import RandomStreams

    _, results = run_mapreduce_jobs(seed=17)
    expected = default_mapreduce_jobs(RandomStreams(17).get("workload/jobs"))
    assert [r.job.name for r in results] == [j.name for j in expected]
    assert [r.job.input_bytes for r in results] == [j.input_bytes for j in expected]
    assert [r.job.n_map for r in results] == [j.n_map for j in expected]
    assert [r.job.n_reduce for r in results] == [j.n_reduce for j in expected]


def test_mapreduce_default_jobs_reproducible_per_seed():
    _, a = run_mapreduce_jobs(seed=17)
    _, b = run_mapreduce_jobs(seed=17)
    _, c = run_mapreduce_jobs(seed=18)
    assert [r.job.input_bytes for r in a] == [r.job.input_bytes for r in b]
    assert [r.job.input_bytes for r in a] != [r.job.input_bytes for r in c]


def test_run_helpers_accept_injected_streams():
    from repro.simulation import RandomStreams

    jobs = [MapReduceJob("j0", input_bytes=16 << 20, n_map=2, n_reduce=1)]
    t1, _ = run_mapreduce_jobs(jobs=jobs, streams=RandomStreams(5).spawn("x"))
    t2, _ = run_mapreduce_jobs(jobs=jobs, streams=RandomStreams(5).spawn("x"))
    t3, _ = run_mapreduce_jobs(jobs=jobs, streams=RandomStreams(5).spawn("y"))
    ts1 = [r.completion_time for r in t1.requests]
    assert ts1 == [r.completion_time for r in t2.requests]
    assert ts1 != [r.completion_time for r in t3.requests]
