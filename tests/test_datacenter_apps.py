"""Integration tests for the 3-tier web app and MapReduce simulations."""

import numpy as np
import pytest

from repro.datacenter import (
    MapReduceJob,
    MapReduceSpec,
    WebAppSpec,
    run_mapreduce_jobs,
    run_webapp_workload,
)


def test_webapp_requests_complete():
    traces = run_webapp_workload(n_requests=150, seed=1)
    assert len(traces.completed_requests()) == 150
    classes = set(traces.requests_by_class())
    assert classes == {"browse", "search", "order"}


def test_webapp_traverses_three_tiers():
    traces = run_webapp_workload(n_requests=50, seed=2)
    servers = {r.server for r in traces.cpu}
    tiers = {s.split("-")[0] for s in servers}
    assert tiers == {"web", "app", "db"}


def test_webapp_only_db_does_storage():
    traces = run_webapp_workload(n_requests=50, seed=3)
    storage_servers = {r.server for r in traces.storage}
    assert all(s.startswith("db-") for s in storage_servers)


def test_webapp_stage_sequence_shows_tiering():
    traces = run_webapp_workload(n_requests=30, seed=4)
    sequence = traces.trace_trees()[0].stage_sequence()
    assert sequence.count("cpu_lookup") == 3  # one per tier
    assert sequence.count("storage") == 1
    assert sequence[-1] == "network_tx"


def test_webapp_order_class_writes():
    traces = run_webapp_workload(n_requests=300, seed=5)
    orders = traces.requests_by_class()["order"]
    assert all(r.storage_op == "write" for r in orders)


def test_webapp_spec_validation():
    with pytest.raises(ValueError):
        WebAppSpec(web_servers=0)
    with pytest.raises(ValueError):
        WebAppSpec(classes=())


def test_mapreduce_jobs_complete_with_results():
    jobs = [
        MapReduceJob("j0", input_bytes=64 << 20, n_map=4, n_reduce=2),
        MapReduceJob("j1", input_bytes=16 << 20, n_map=2, n_reduce=1),
    ]
    traces, results = run_mapreduce_jobs(jobs=jobs, seed=1)
    assert len(results) == 2
    assert all(r.execution_time > 0 for r in results)
    # 4+2 tasks for j0 and 2+1 for j1.
    assert len(traces.requests) == 9


def test_mapreduce_bigger_job_takes_longer():
    jobs = [
        MapReduceJob("small", input_bytes=16 << 20, n_map=2, n_reduce=1),
        MapReduceJob("big", input_bytes=256 << 20, n_map=2, n_reduce=1),
    ]
    _, results = run_mapreduce_jobs(jobs=jobs, seed=2)
    by_name = {r.job.name: r.execution_time for r in results}
    assert by_name["big"] > by_name["small"]


def test_mapreduce_parallelism_speeds_up_job():
    jobs = [
        MapReduceJob("serial", input_bytes=128 << 20, n_map=1, n_reduce=1),
        MapReduceJob("parallel", input_bytes=128 << 20, n_map=4, n_reduce=1),
    ]
    _, results = run_mapreduce_jobs(
        jobs=jobs, seed=3, spec=MapReduceSpec(workers=4)
    )
    by_name = {r.job.name: r.execution_time for r in results}
    assert by_name["parallel"] < by_name["serial"]


def test_mapreduce_feature_vector():
    jobs = [MapReduceJob("j", input_bytes=32 << 20, n_map=2, n_reduce=2)]
    _, results = run_mapreduce_jobs(jobs=jobs, seed=4)
    vector = results[0].feature_vector()
    assert vector.shape == (4,)
    assert vector[0] == 32 << 20


def test_mapreduce_job_validation():
    with pytest.raises(ValueError):
        MapReduceJob("bad", input_bytes=0, n_map=1, n_reduce=1)
    with pytest.raises(ValueError):
        MapReduceSpec(workers=0)


def test_mapreduce_task_classes():
    jobs = [MapReduceJob("j", input_bytes=32 << 20, n_map=3, n_reduce=2)]
    traces, _ = run_mapreduce_jobs(jobs=jobs, seed=6)
    grouped = traces.requests_by_class()
    assert len(grouped["map"]) == 3
    assert len(grouped["reduce"]) == 2
