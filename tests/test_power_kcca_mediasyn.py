"""Tests for the power model, KCCA, MediSyn and striped reads."""

import numpy as np
import pytest

from repro.breadth import KccaModel, rbf_kernel
from repro.datacenter import (
    GfsCluster,
    GfsRequest,
    GfsSpec,
    MachinePowerSpec,
    MapReduceJob,
    PowerModel,
    run_gfs_workload,
    run_mapreduce_jobs,
)
from repro.simulation import Environment, RandomStreams
from repro.stats import hill_estimator
from repro.tracing import READ, Tracer
from repro.workloads import MediSynSpec, MediSynWorkload


@pytest.fixture
def rng():
    return np.random.default_rng(0)


# -- power ---------------------------------------------------------------


def test_power_spec_idle_peak():
    spec = MachinePowerSpec()
    assert spec.idle_power < spec.peak_power
    assert spec.idle_power > 100.0  # servers of the era idle high


def test_power_spec_validation():
    with pytest.raises(ValueError):
        MachinePowerSpec(cpu_idle=200.0, cpu_peak=100.0)


def test_device_power_interpolates():
    model = PowerModel()
    idle = model.device_power("cpu", 0.0)
    half = model.device_power("cpu", 0.5)
    peak = model.device_power("cpu", 1.0)
    assert idle < half < peak
    assert half == pytest.approx((idle + peak) / 2)


def test_device_power_validation():
    with pytest.raises(ValueError):
        PowerModel().device_power("cpu", 1.5)


def test_energy_report_from_workload():
    run = run_gfs_workload(n_requests=300, seed=51)
    model = PowerModel()
    report = model.report(run.cluster.chunkservers[0])
    assert report.window == pytest.approx(run.env.now)
    assert (
        MachinePowerSpec().idle_power
        <= report.mean_power
        <= MachinePowerSpec().peak_power
    )
    assert report.energy_joules == pytest.approx(
        report.mean_power * report.window
    )
    assert "W" in report.describe()


def test_busier_server_draws_more_power():
    light = run_gfs_workload(n_requests=300, seed=52, arrival_rate=10.0)
    heavy = run_gfs_workload(n_requests=300, seed=52, arrival_rate=60.0)
    model = PowerModel()
    light_power = model.report(light.cluster.chunkservers[0]).mean_power
    heavy_power = model.report(heavy.cluster.chunkservers[0]).mean_power
    assert heavy_power > light_power


def test_energy_per_request():
    run = run_gfs_workload(n_requests=400, seed=53)
    model = PowerModel()
    joules = model.energy_per_request(run.cluster.chunkservers, 400)
    assert joules > 0
    with pytest.raises(ValueError):
        model.energy_per_request(run.cluster.chunkservers, 0)


# -- KCCA ---------------------------------------------------------------


def test_rbf_kernel_properties(rng):
    X = rng.normal(0, 1, (20, 3))
    K = rbf_kernel(X, X, bandwidth=1.0)
    assert np.allclose(np.diag(K), 1.0)
    assert np.allclose(K, K.T)
    assert np.all((K > 0) & (K <= 1.0 + 1e-12))


def test_rbf_kernel_validation(rng):
    with pytest.raises(ValueError):
        rbf_kernel(rng.normal(0, 1, (3, 2)), rng.normal(0, 1, (3, 2)), 0.0)


def test_kcca_finds_correlated_subspace(rng):
    X = rng.normal(0, 1, (60, 3))
    y = (2 * X[:, 0] + 0.5 * X[:, 1])[:, None]
    model = KccaModel(n_components=1).fit(X, y)
    assert model.correlations_[0] > 0.8


def test_kcca_prediction_beats_mean_baseline(rng):
    jobs = [
        MapReduceJob(
            f"j{i}",
            input_bytes=int(s) << 20,
            n_map=int(m),
            n_reduce=int(r),
        )
        for i, (s, m, r) in enumerate(
            zip(
                rng.integers(16, 256, 40),
                rng.integers(2, 9, 40),
                rng.integers(1, 5, 40),
            )
        )
    ]
    _, results = run_mapreduce_jobs(jobs=jobs, seed=3)
    X = np.array([r.feature_vector() for r in results])
    y = np.array([[r.execution_time] for r in results])
    model = KccaModel(n_components=2).fit(X[:30], y[:30])
    predictions = model.predict(X[30:]).ravel()
    truth = y[30:].ravel()
    kcca_error = np.mean(np.abs(predictions - truth))
    mean_error = np.mean(np.abs(y[:30].mean() - truth))
    assert kcca_error < mean_error


def test_kcca_validation(rng):
    with pytest.raises(ValueError):
        KccaModel(n_components=0)
    with pytest.raises(ValueError):
        KccaModel().fit(rng.normal(0, 1, (3, 2)), rng.normal(0, 1, (3, 1)))
    with pytest.raises(ValueError):
        KccaModel().fit(rng.normal(0, 1, (10, 2)), rng.normal(0, 1, (9, 1)))
    with pytest.raises(RuntimeError):
        KccaModel().predict([[1.0, 2.0]])


# -- MediSyn -----------------------------------------------------------------


def test_medisyn_sessions_ordered_and_sized(rng):
    workload = MediSynWorkload(MediSynSpec(), rng)
    sessions = workload.sessions(500)
    assert len(sessions) == 500
    times = [s.start_time for s in sessions]
    assert times == sorted(times)
    assert all(s.bytes_streamed > 0 for s in sessions)


def test_medisyn_popularity_is_skewed(rng):
    workload = MediSynWorkload(MediSynSpec(zipf_alpha=0.9), rng)
    sessions = workload.sessions(3000)
    histogram = workload.popularity_histogram(sessions)
    top10_share = histogram[:10].sum() / histogram.sum()
    assert top10_share > 0.5  # Zipf: few objects dominate


def test_medisyn_diurnal_rate_varies(rng):
    spec = MediSynSpec(diurnal_amplitude=0.8, diurnal_period=100.0)
    workload = MediSynWorkload(spec, rng)
    sessions = workload.sessions(4000)
    times = np.array([s.start_time for s in sessions])
    # Compare arrival counts in peak vs trough quarter-periods.
    phase = (times % 100.0) / 100.0
    peak = np.sum((phase > 0.15) & (phase < 0.35))  # around sin max
    trough = np.sum((phase > 0.65) & (phase < 0.85))  # around sin min
    assert peak > 1.5 * trough


def test_medisyn_to_gfs_requests(rng):
    workload = MediSynWorkload(MediSynSpec(), rng)
    sessions = workload.sessions(50)
    pairs = workload.to_gfs_requests(sessions)
    assert len(pairs) == 50
    for t, request in pairs:
        assert request.op == READ
        assert request.size_bytes > 0


def test_medisyn_validation(rng):
    with pytest.raises(ValueError):
        MediSynSpec(n_objects=0)
    with pytest.raises(ValueError):
        MediSynSpec(diurnal_amplitude=1.0)
    with pytest.raises(ValueError):
        MediSynWorkload(MediSynSpec(), rng).sessions(0)


# -- striped reads / incast --------------------------------------------------


def _cluster(seed=1, **spec_kwargs):
    env = Environment()
    tracer = Tracer()
    spec = GfsSpec(chunkservers=8, master_cache_hit=1.0, **spec_kwargs)
    return env, tracer, GfsCluster(env, spec, RandomStreams(seed), tracer)


def test_striped_read_uses_width_servers():
    env, tracer, cluster = _cluster()
    request = GfsRequest("s", READ, 8 << 20, 0, 65536)
    record = env.run(env.process(cluster.striped_read(request, 4)))
    servers = {r.server for r in tracer.traces.storage}
    assert len(servers) == 4
    assert record.latency > 0


def test_striped_read_responses_cross_client_link():
    env, tracer, cluster = _cluster()
    request = GfsRequest("s", READ, 4 << 20, 0, 65536)
    env.run(env.process(cluster.striped_read(request, 4)))
    client_rx = [
        r for r in tracer.traces.network
        if r.server == "client" and r.direction == "rx"
    ]
    assert len(client_rx) == 4


def test_striped_read_validation():
    env, _, cluster = _cluster()
    request = GfsRequest("s", READ, 1 << 20, 0, 4096)
    with pytest.raises(ValueError):
        env.run(env.process(cluster.striped_read(request, 99)))
