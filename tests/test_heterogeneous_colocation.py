"""Tests for shared machines, heterogeneous clusters and colocation."""

import numpy as np
import pytest

from repro.core import MultiServerKooza
from repro.datacenter import (
    GfsCluster,
    GfsSpec,
    Machine,
    MachineSpec,
    MapReduceCluster,
    MapReduceJob,
    MapReduceSpec,
)
from repro.datacenter.devices import DiskSpec
from repro.queueing import PoissonArrivals
from repro.simulation import Environment, RandomStreams
from repro.tracing import Tracer
from repro.workloads import OpenLoopClient, table2_mix


def _heterogeneous_cluster(seed=3):
    """Two chunkservers: one with a fast disk, one with a slow disk."""
    env = Environment()
    tracer = Tracer()
    streams = RandomStreams(seed)
    fast = Machine(
        env,
        "chunkserver-0",
        MachineSpec(disk=DiskSpec(rpm=15000, min_seek=0.2e-3, max_seek=4e-3)),
        streams,
        tracer,
    )
    slow = Machine(
        env,
        "chunkserver-1",
        MachineSpec(disk=DiskSpec(rpm=5400, max_seek=16e-3, write_cache=False)),
        streams,
        tracer,
    )
    cluster = GfsCluster(
        env,
        GfsSpec(chunkservers=2),
        streams,
        tracer,
        machines=[fast, slow],
    )
    return env, tracer, cluster


def test_machines_param_validation():
    env = Environment()
    streams = RandomStreams(1)
    tracer = Tracer()
    machine = Machine(env, "m0", MachineSpec(), streams, tracer)
    with pytest.raises(ValueError):
        GfsCluster(env, GfsSpec(chunkservers=2), streams, tracer,
                   machines=[machine])
    with pytest.raises(ValueError):
        MapReduceCluster(env, MapReduceSpec(workers=4), streams, tracer,
                         machines=[machine])


def test_heterogeneous_cluster_per_server_latency_differs():
    env, tracer, cluster = _heterogeneous_cluster()
    mix = table2_mix(RandomStreams(9).get("mix"))
    client = OpenLoopClient(
        env,
        cluster.client_request,
        mix.make_request,
        PoissonArrivals(30.0, RandomStreams(9).get("arrivals")),
    )
    client.start(800)
    env.run()
    by_server = {}
    for r in tracer.traces.completed_requests():
        by_server.setdefault(r.server, []).append(r.latency)
    assert set(by_server) == {"chunkserver-0", "chunkserver-1"}
    assert np.mean(by_server["chunkserver-1"]) > 1.3 * np.mean(
        by_server["chunkserver-0"]
    )


def test_multi_server_kooza_captures_heterogeneity():
    """Per-server instances learn each server's latency regime."""
    env, tracer, cluster = _heterogeneous_cluster(seed=5)
    mix = table2_mix(RandomStreams(11).get("mix"))
    client = OpenLoopClient(
        env,
        cluster.client_request,
        mix.make_request,
        PoissonArrivals(30.0, RandomStreams(11).get("arrivals")),
    )
    client.start(1200)
    env.run()
    msk = MultiServerKooza().fit(tracer.traces)
    assert msk.n_instances == 2
    # The slow server's model carries visibly longer interarrival-
    # independent service evidence: compare mean latency of training
    # features through the per-server trace split.
    from repro.core import extract_request_features, split_traces_by_server

    parts = split_traces_by_server(tracer.traces)
    means = {
        server: np.mean([f.latency for f in extract_request_features(part)])
        for server, part in parts.items()
    }
    assert means["chunkserver-1"] > means["chunkserver-0"]


def test_colocated_batch_shares_devices():
    env = Environment()
    tracer = Tracer()
    streams = RandomStreams(21)
    gfs = GfsCluster(env, GfsSpec(chunkservers=2), streams, tracer)
    batch = MapReduceCluster(
        env,
        MapReduceSpec(workers=2),
        streams,
        tracer,
        machines=gfs.chunkservers,
    )
    assert batch.workers is not None
    assert batch.workers[0] is gfs.chunkservers[0]

    def driver(env):
        yield env.process(
            batch.run_job(MapReduceJob("j", input_bytes=32 << 20, n_map=2,
                                       n_reduce=1))
        )

    env.process(driver(env))
    env.run()
    # Batch task records carry the serving machines' names.
    servers = {r.server for r in tracer.traces.storage}
    assert servers <= {"chunkserver-0", "chunkserver-1"}
