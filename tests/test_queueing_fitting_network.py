"""Tests for distribution fitting and the queueing-network simulator."""

import numpy as np
import pytest

from repro.queueing import (
    CANDIDATE_FAMILIES,
    PoissonArrivals,
    QueueingNetwork,
    Station,
    fit_distribution,
)
from repro.simulation import Environment


@pytest.fixture
def rng():
    return np.random.default_rng(0)


# -- fitting -----------------------------------------------------------------


def test_fit_recovers_exponential_family_shape(rng):
    data = rng.exponential(0.02, 3000)
    fit = fit_distribution(data)
    assert fit.family in CANDIDATE_FAMILIES
    assert fit.mean == pytest.approx(0.02, rel=0.1)
    assert fit.ks_statistic < 0.05


def test_fit_lognormal_identified(rng):
    data = rng.lognormal(mean=-3.0, sigma=1.0, size=4000)
    fit = fit_distribution(data, families=("expon", "lognorm"))
    assert fit.family == "lognorm"


def test_fit_sampling_matches_mean(rng):
    data = rng.gamma(3.0, 0.01, 3000)
    fit = fit_distribution(data)
    synthetic = fit.sample(5000, rng)
    assert synthetic.mean() == pytest.approx(data.mean(), rel=0.1)


def test_fit_validation(rng):
    with pytest.raises(ValueError):
        fit_distribution([1.0, 2.0])  # too few
    with pytest.raises(ValueError):
        fit_distribution([3.0] * 100)  # constant
    with pytest.raises(ValueError):
        fit_distribution([-1.0] * 100)  # nothing positive


def test_fit_describe_readable(rng):
    fit = fit_distribution(rng.exponential(1.0, 500))
    assert "KS=" in fit.describe()


# -- queueing network ---------------------------------------------------------


def _constant(value):
    return lambda _cls, _rng: value


def test_network_routes_by_class(rng):
    env = Environment()
    network = QueueingNetwork(
        env,
        [
            Station("web", 1, _constant(0.001)),
            Station("db", 1, _constant(0.004)),
        ],
        {"static": ["web"], "dynamic": ["web", "db"]},
        rng,
    )

    def driver(env):
        r1 = yield env.process(network.submit("static"))
        r2 = yield env.process(network.submit("dynamic"))
        return r1, r2

    r1, r2 = env.run(env.process(driver(env)))
    assert [v.station for v in r1.visits] == ["web"]
    assert [v.station for v in r2.visits] == ["web", "db"]
    assert r2.latency == pytest.approx(0.005)


def test_network_queueing_wait_measured(rng):
    env = Environment()
    network = QueueingNetwork(
        env, [Station("s", 1, _constant(0.01))], {"j": ["s"]}, rng
    )
    env.process(network.submit("j"))
    env.process(network.submit("j"))
    env.run()
    waits = sorted(v.wait for r in network.results for v in r.visits)
    assert waits[0] == pytest.approx(0.0)
    assert waits[1] == pytest.approx(0.01)


def test_network_station_utilization(rng):
    env = Environment()
    network = QueueingNetwork(
        env, [Station("s", 1, _constant(0.5))], {"j": ["s"]}, rng
    )
    env.process(network.submit("j"))
    env.run(until=1.0)
    assert network.station_utilization("s") == pytest.approx(0.5)


def test_network_run_open_completes_all(rng):
    env = Environment()
    network = QueueingNetwork(
        env, [Station("s", 2, _constant(0.001))], {"j": ["s"]}, rng
    )
    results = network.run_open(
        PoissonArrivals(100.0, np.random.default_rng(1)),
        lambda _rng: "j",
        500,
    )
    assert len(results) == 500


def test_network_validation(rng):
    env = Environment()
    with pytest.raises(ValueError):
        QueueingNetwork(
            env, [Station("s", 1, _constant(1.0))], {"j": ["missing"]}, rng
        )
    with pytest.raises(ValueError):
        QueueingNetwork(
            env,
            [Station("s", 1, _constant(1.0)), Station("s", 1, _constant(1.0))],
            {"j": ["s"]},
            rng,
        )
    with pytest.raises(ValueError):
        Station("bad", 0, _constant(1.0))


def test_network_unknown_class_raises(rng):
    env = Environment()
    network = QueueingNetwork(
        env, [Station("s", 1, _constant(1.0))], {"j": ["s"]}, rng
    )
    with pytest.raises(KeyError):
        next(network.submit("nope"))
