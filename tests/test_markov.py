"""Tests for Markov chains, discretization, hierarchy and the HMM."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.markov import (
    GaussianHMM,
    HierarchicalMarkovChain,
    MarkovChain,
    QuantileDiscretizer,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


# -- MarkovChain ---------------------------------------------------------


def test_from_sequence_recovers_transition_probs(rng):
    truth = MarkovChain(
        ["a", "b"], np.array([[0.9, 0.1], [0.4, 0.6]]), np.array([1.0, 0.0])
    )
    path = truth.sample_path(20_000, rng)
    estimated = MarkovChain.from_sequence(path)
    i, j = estimated.index_of("a"), estimated.index_of("b")
    assert estimated.transition_matrix[i, j] == pytest.approx(0.1, abs=0.02)
    assert estimated.transition_matrix[j, i] == pytest.approx(0.4, abs=0.02)


def test_rows_sum_to_one_validation():
    with pytest.raises(ValueError):
        MarkovChain(["a", "b"], np.array([[0.5, 0.2], [0.5, 0.5]]))


def test_negative_probability_rejected():
    with pytest.raises(ValueError):
        MarkovChain(["a", "b"], np.array([[1.5, -0.5], [0.5, 0.5]]))


def test_stationary_distribution_two_state():
    chain = MarkovChain(
        ["a", "b"], np.array([[0.9, 0.1], [0.3, 0.7]])
    )
    pi = chain.stationary_distribution()
    # Detailed balance: pi = [0.75, 0.25].
    assert pi[chain.index_of("a")] == pytest.approx(0.75, abs=1e-9)


def test_stationary_is_fixed_point(rng):
    seq = list(rng.choice(4, size=5000))
    chain = MarkovChain.from_sequence(seq)
    pi = chain.stationary_distribution()
    assert np.allclose(pi @ chain.transition_matrix, pi, atol=1e-9)


def test_sample_path_stays_in_state_space(rng):
    chain = MarkovChain.from_sequence(["x", "y", "z", "x", "y", "z"])
    path = chain.sample_path(100, rng)
    assert set(path) <= {"x", "y", "z"}


def test_sample_path_start_state(rng):
    chain = MarkovChain.from_sequence(["x", "y", "x", "y"])
    path = chain.sample_path(5, rng, start="y")
    assert path[0] == "y"


def test_absorbing_by_truncation_gets_self_loop():
    chain = MarkovChain.from_sequence(["a", "a", "b"])  # b never left
    i = chain.index_of("b")
    assert chain.transition_matrix[i, i] == 1.0


def test_smoothing_gives_unseen_transitions_mass():
    chain = MarkovChain.from_sequence(["a", "a", "b", "a"], smoothing=1.0)
    i, j = chain.index_of("b"), chain.index_of("b")
    assert chain.transition_matrix[i, j] > 0


def test_log_likelihood_prefers_generating_chain(rng):
    chain = MarkovChain(
        ["a", "b"], np.array([[0.95, 0.05], [0.5, 0.5]]), np.array([1.0, 0.0])
    )
    other = MarkovChain(
        ["a", "b"], np.array([[0.05, 0.95], [0.5, 0.5]]), np.array([1.0, 0.0])
    )
    path = chain.sample_path(500, rng)
    assert chain.log_likelihood(path) > other.log_likelihood(path)


def test_short_sequence_rejected():
    with pytest.raises(ValueError):
        MarkovChain.from_sequence(["only"])


def test_describe_mentions_states():
    chain = MarkovChain.from_sequence(["u", "v", "u", "v"])
    text = chain.describe()
    assert "u" in text and "v" in text


# -- QuantileDiscretizer ----------------------------------------------------


def test_discretizer_low_cardinality_exact_bins():
    d = QuantileDiscretizer(8).fit([64.0] * 10 + [4096.0] * 5)
    assert d.effective_bins == 2
    assert d.representative(d.transform_one(64.0)) == pytest.approx(64.0)
    assert d.representative(d.transform_one(4096.0)) == pytest.approx(4096.0)


def test_discretizer_continuous_quantile_bins(rng):
    data = rng.exponential(1.0, 5000)
    d = QuantileDiscretizer(8).fit(data)
    assert d.effective_bins == 8
    counts = np.bincount(d.transform(data), minlength=8)
    # Quantile bins: roughly equal occupancy.
    assert counts.min() > 0.5 * counts.max()


def test_discretizer_representative_within_bin(rng):
    data = rng.normal(0, 1, 1000)
    d = QuantileDiscretizer(4).fit(data)
    for b in range(d.effective_bins):
        rep = d.representative(b)
        assert d.edges_[b] <= rep <= d.edges_[b + 1]


def test_discretizer_constant_data():
    d = QuantileDiscretizer(4).fit([5.0, 5.0, 5.0])
    assert d.effective_bins == 1
    assert d.representative(0) == pytest.approx(5.0)


def test_discretizer_validation():
    with pytest.raises(ValueError):
        QuantileDiscretizer(0)
    with pytest.raises(ValueError):
        QuantileDiscretizer(4).fit([])
    d = QuantileDiscretizer(4).fit([1.0, 2.0])
    with pytest.raises(IndexError):
        d.representative(99)
    with pytest.raises(RuntimeError):
        QuantileDiscretizer(4).transform([1.0])


@settings(max_examples=30)
@given(
    st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=100,
    )
)
def test_discretizer_transform_in_range_property(values):
    d = QuantileDiscretizer(6).fit(values)
    indices = d.transform(values)
    assert np.all(indices >= 0)
    assert np.all(indices < d.effective_bins)


# -- HierarchicalMarkovChain -------------------------------------------------


def test_hierarchical_matches_groups(rng):
    seq = list(rng.choice(["r4", "r8", "w4", "w8"], size=2000))
    h = HierarchicalMarkovChain.from_sequence(seq, group_of=lambda s: s[0])
    assert set(h.group_chain.states) == {"r", "w"}
    assert set(h.sub_chains["r"].states) == {"r4", "r8"}


def test_hierarchical_sample_respects_groups(rng):
    seq = ["a1", "a2", "b1", "a1", "a2", "b1"] * 50
    h = HierarchicalMarkovChain.from_sequence(seq, group_of=lambda s: s[0])
    path = h.sample_path(200, rng)
    for state in path:
        assert state in {"a1", "a2", "b1"}


def test_hierarchical_fewer_parameters_than_flat(rng):
    states = [f"{g}{i}" for g in "abcd" for i in range(4)]
    seq = list(rng.choice(states, size=4000))
    flat = MarkovChain.from_sequence(seq)
    hier = HierarchicalMarkovChain.from_sequence(seq, group_of=lambda s: s[0])
    flat_params = flat.n_states * (flat.n_states - 1)
    assert hier.n_parameters < flat_params


def test_hierarchical_single_observation_group():
    h = HierarchicalMarkovChain.from_sequence(
        ["a", "b", "a", "a"], group_of=lambda s: s
    )
    assert h.sub_chains["b"].n_states == 1


def test_hierarchical_validation():
    with pytest.raises(ValueError):
        HierarchicalMarkovChain.from_sequence(["x"], group_of=lambda s: s)


# -- GaussianHMM -----------------------------------------------------------


def test_hmm_separates_two_regimes(rng):
    obs = np.concatenate([rng.normal(0, 1, 300), rng.normal(15, 1, 300)])
    hmm = GaussianHMM(2, rng, max_iter=25).fit(obs)
    means = np.sort(hmm.means_)
    assert means[0] == pytest.approx(0.0, abs=0.8)
    assert means[1] == pytest.approx(15.0, abs=0.8)


def test_hmm_viterbi_recovers_switch_point(rng):
    obs = np.concatenate([rng.normal(0, 0.5, 200), rng.normal(10, 0.5, 200)])
    hmm = GaussianHMM(2, rng, max_iter=25).fit(obs)
    path = hmm.viterbi(obs)
    assert path[0] != path[-1]
    assert len(np.unique(path[:190])) == 1
    assert len(np.unique(path[210:])) == 1


def test_hmm_sample_reproduces_spread(rng):
    obs = np.concatenate([rng.normal(0, 1, 400), rng.normal(20, 1, 400)])
    hmm = GaussianHMM(2, rng, max_iter=25).fit(obs)
    synthetic = hmm.sample(2000)
    assert synthetic.min() < 5
    assert synthetic.max() > 15


def test_hmm_score_favors_training_regime(rng):
    obs = rng.normal(0, 1, 400)
    hmm = GaussianHMM(2, rng, max_iter=15).fit(obs)
    good = hmm.score(rng.normal(0, 1, 100))
    bad = hmm.score(rng.normal(50, 1, 100))
    assert good > bad


def test_hmm_em_increases_likelihood(rng):
    obs = np.concatenate([rng.normal(0, 1, 200), rng.normal(8, 1, 200)])
    short = GaussianHMM(2, np.random.default_rng(1), max_iter=1).fit(obs)
    long = GaussianHMM(2, np.random.default_rng(1), max_iter=25).fit(obs)
    assert long.log_likelihood_ >= short.log_likelihood_ - 1e-6


def test_hmm_validation(rng):
    with pytest.raises(ValueError):
        GaussianHMM(0, rng)
    with pytest.raises(ValueError):
        GaussianHMM(4, rng).fit([1.0, 2.0])
    with pytest.raises(RuntimeError):
        GaussianHMM(2, rng).sample(10)
