"""Unit tests for Dapper-style spans and trace-tree reassembly."""

import pytest

from repro.tracing import Span, build_trace_trees


def _span(trace_id, span_id, parent_id, name, start, end):
    return Span(
        trace_id=trace_id,
        span_id=span_id,
        parent_id=parent_id,
        name=name,
        server="s1",
        start=start,
        end=end,
    )


def _gfs_trace(trace_id=1, offset=0.0):
    """A Figure-1 shaped trace: root with six stage children."""
    stages = [
        ("network_rx", 0.0, 0.1),
        ("cpu_lookup", 0.1, 0.2),
        ("memory", 0.2, 0.3),
        ("storage", 0.3, 0.8),
        ("cpu_aggregate", 0.8, 0.9),
        ("network_tx", 0.9, 1.0),
    ]
    spans = [_span(trace_id, 100 * trace_id, None, "request", offset, offset + 1.0)]
    for i, (name, s, e) in enumerate(stages):
        spans.append(
            _span(trace_id, 100 * trace_id + i + 1, 100 * trace_id, name,
                  offset + s, offset + e)
        )
    return spans


def test_build_single_tree():
    trees = build_trace_trees(_gfs_trace())
    assert len(trees) == 1
    assert trees[0].root.name == "request"
    assert trees[0].span_count() == 7


def test_stage_sequence_matches_figure_1():
    tree = build_trace_trees(_gfs_trace())[0]
    assert tree.stage_sequence() == [
        "network_rx",
        "cpu_lookup",
        "memory",
        "storage",
        "cpu_aggregate",
        "network_tx",
    ]


def test_multiple_traces_grouped():
    spans = _gfs_trace(1) + _gfs_trace(2, offset=5.0)
    trees = build_trace_trees(spans)
    assert [t.trace_id for t in trees] == [1, 2]


def test_orphan_spans_dropped():
    spans = _gfs_trace()
    spans.append(_span(1, 999, 888, "lost_child", 0.0, 0.1))  # parent 888 missing
    tree = build_trace_trees(spans)[0]
    assert tree.span_count() == 7  # orphan excluded


def test_trace_without_root_skipped():
    spans = [_span(3, 1, 42, "floating", 0.0, 1.0)]
    assert build_trace_trees(spans) == []


def test_trace_with_two_roots_skipped():
    spans = [
        _span(4, 1, None, "root_a", 0.0, 1.0),
        _span(4, 2, None, "root_b", 0.0, 1.0),
    ]
    assert build_trace_trees(spans) == []


def test_critical_path_follows_longest_child():
    tree = build_trace_trees(_gfs_trace())[0]
    path = tree.critical_path()
    assert [s.name for s in path] == ["request", "storage"]


def test_span_duration_and_annotation():
    span = _span(1, 1, None, "x", 2.0, 3.5)
    span.annotate(2.1, "cache miss")
    assert span.duration == pytest.approx(1.5)
    assert span.annotations[0].message == "cache miss"


def test_span_dict_round_trip():
    span = _span(1, 2, 1, "storage", 0.0, 0.5)
    span.annotate(0.2, "seek")
    restored = Span.from_dict(span.to_dict())
    assert restored.name == span.name
    assert restored.annotations[0].timestamp == pytest.approx(0.2)


def test_children_ordered_by_start():
    tree = build_trace_trees(_gfs_trace())[0]
    children = tree.children_of(tree.root)
    starts = [c.start for c in children]
    assert starts == sorted(starts)
