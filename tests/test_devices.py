"""Unit tests for the device models (disk, CPU, memory, NIC)."""

import numpy as np
import pytest

from repro.datacenter.devices import (
    Cpu,
    CpuSpec,
    Disk,
    DiskModel,
    DiskSpec,
    Memory,
    MemorySpec,
    Nic,
    NicSpec,
)
from repro.simulation import Environment
from repro.tracing import READ, WRITE, Tracer


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def tracer():
    return Tracer()


@pytest.fixture
def rng():
    return np.random.default_rng(0)


# -- DiskModel (analytic) ---------------------------------------------------


def test_sequential_reads_faster_than_random(rng):
    spec = DiskSpec()
    model = DiskModel(spec, rng)
    model.service_time(1000, 65536, READ)  # position the head
    sequential = model.service_time(1016, 65536, READ)

    model2 = DiskModel(spec, np.random.default_rng(1))
    model2.service_time(1000, 65536, READ)
    random = model2.service_time(10_000_000, 65536, READ)
    assert sequential < random


def test_larger_io_takes_longer_at_media_rate(rng):
    spec = DiskSpec(write_cache=False)
    m1 = DiskModel(spec, np.random.default_rng(2))
    m2 = DiskModel(spec, np.random.default_rng(2))
    small = m1.service_time(0, 4096, READ)
    large = m2.service_time(0, 4 << 20, READ)
    assert large > small


def test_write_cache_absorbs_writes(rng):
    cached = DiskModel(DiskSpec(cache_flush_probability=0.0), rng)
    t = cached.service_time(12345678, 1 << 20, WRITE)
    spec = cached.spec
    expected = spec.controller_overhead + (1 << 20) / spec.cache_transfer_rate
    assert t == pytest.approx(expected)


def test_uncached_write_pays_positioning(rng):
    model = DiskModel(DiskSpec(write_cache=False), rng)
    model.service_time(0, 4096, READ)
    t = model.service_time(50_000_000, 65536, WRITE)
    assert t > model.spec.min_seek


def test_rotation_period_from_rpm():
    assert DiskSpec(rpm=7200).rotation_period == pytest.approx(60.0 / 7200)


def test_seek_time_monotone_in_distance(rng):
    model = DiskModel(DiskSpec(), rng)
    near = model._seek_time(10)
    far = model._seek_time(10_000_000)
    assert 0 < near < far <= model.spec.max_seek


# -- Disk (simulated) -----------------------------------------------------


def test_disk_serializes_ios_and_records(env, tracer, rng):
    disk = Disk(env, "s1", DiskSpec(), rng, tracer)

    def issue(env, disk):
        yield env.process(disk.io(1, 0, 65536, READ))
        yield env.process(disk.io(2, 16, 65536, READ))

    env.process(issue(env, disk))
    env.run()
    assert len(tracer.traces.storage) == 2
    assert tracer.traces.storage[0].duration > 0
    assert env.now > 0


def test_disk_queue_depth_recorded(env, tracer, rng):
    disk = Disk(env, "s1", DiskSpec(), rng, tracer)
    for i in range(3):
        env.process(disk.io(i, i * 1000000, 1 << 20, READ))
    env.run()
    depths = sorted(r.queue_depth for r in tracer.traces.storage)
    assert depths == [0, 1, 2]


# -- Cpu -----------------------------------------------------------------


def test_cpu_compute_emits_record(env, tracer, rng):
    cpu = Cpu(env, "s1", CpuSpec(work_jitter=0.0), rng, tracer)

    def work(env, cpu):
        busy = yield env.process(cpu.compute(1, 0.002, "lookup"))
        assert busy == pytest.approx(0.002)

    env.process(work(env, cpu))
    env.run()
    assert tracer.traces.cpu[0].busy_seconds == pytest.approx(0.002)
    assert tracer.traces.cpu[0].phase == "lookup"


def test_cpu_speed_factor_scales_time(env, tracer, rng):
    slow = Cpu(env, "s1", CpuSpec(speed_factor=0.5, work_jitter=0.0), rng, tracer)

    def work(env, cpu):
        busy = yield env.process(cpu.compute(1, 0.001, "x"))
        return busy

    p = env.process(work(env, slow))
    assert env.run(p) == pytest.approx(0.002)


def test_cpu_cores_limit_parallelism(env, tracer, rng):
    cpu = Cpu(env, "s1", CpuSpec(cores=2, work_jitter=0.0), rng, tracer)
    for i in range(4):
        env.process(cpu.compute(i, 0.01, "x"))
    env.run()
    # Two waves of two parallel bursts.
    assert env.now == pytest.approx(0.02)


def test_cpu_rejects_negative_work(env, tracer, rng):
    cpu = Cpu(env, "s1", CpuSpec(), rng, tracer)
    env.process(cpu.compute(1, -1.0, "x"))
    with pytest.raises(ValueError):
        env.run()


def test_cpu_spec_validation(env, tracer, rng):
    with pytest.raises(ValueError):
        Cpu(env, "s1", CpuSpec(cores=0), rng, tracer)
    with pytest.raises(ValueError):
        Cpu(env, "s1", CpuSpec(speed_factor=0.0), rng, tracer)


# -- Memory ------------------------------------------------------------------


def test_memory_access_emits_record_with_bank(env, tracer, rng):
    spec = MemorySpec()
    memory = Memory(env, "s1", spec, rng, tracer)
    address = 3 * spec.bank_interleave  # bank 3

    def access(env, memory):
        yield env.process(memory.access(1, address, 16384, READ))

    env.process(access(env, memory))
    env.run()
    record = tracer.traces.memory[0]
    assert record.bank == 3
    assert record.duration > 0


def test_memory_row_hit_faster_than_miss(env, tracer, rng):
    memory = Memory(env, "s1", MemorySpec(), rng, tracer)

    def accesses(env, memory):
        first = yield env.process(memory.access(1, 0, 4096, READ))  # row miss
        second = yield env.process(memory.access(2, 64, 4096, READ))  # row hit
        assert second < first

    env.process(accesses(env, memory))
    env.run()


def test_memory_bank_mapping_wraps():
    spec = MemorySpec(banks=4, bank_interleave=4096)
    assert spec.bank_of(0) == 0
    assert spec.bank_of(4096 * 5) == 1


def test_memory_rejects_non_positive_size(env, tracer, rng):
    memory = Memory(env, "s1", MemorySpec(), rng, tracer)
    env.process(memory.access(1, 0, 0, READ))
    with pytest.raises(ValueError):
        env.run()


# -- Nic -----------------------------------------------------------------


def test_nic_transfer_time_includes_bandwidth(env, tracer, rng):
    spec = NicSpec(bandwidth=1e9, propagation=0.0, per_message_overhead=0.0)
    nic = Nic(env, "s1", spec, rng, tracer)

    def send(env, nic):
        duration = yield env.process(nic.transfer(1, 10_000_000, "tx"))
        assert duration == pytest.approx(0.01)

    env.process(send(env, nic))
    env.run()


def test_nic_records_direction(env, tracer, rng):
    nic = Nic(env, "s1", NicSpec(), rng, tracer)
    env.process(nic.transfer(1, 64, "rx"))
    env.run()
    assert tracer.traces.network[0].direction == "rx"


def test_nic_rejects_bad_direction(env, tracer, rng):
    nic = Nic(env, "s1", NicSpec(), rng, tracer)
    env.process(nic.transfer(1, 64, "sideways"))
    with pytest.raises(ValueError):
        env.run()


def test_nic_serializes_messages(env, tracer, rng):
    spec = NicSpec(bandwidth=1e6, propagation=0.0, per_message_overhead=0.0)
    nic = Nic(env, "s1", spec, rng, tracer)
    env.process(nic.transfer(1, 1_000_000, "tx"))
    env.process(nic.transfer(2, 1_000_000, "tx"))
    env.run()
    assert env.now == pytest.approx(2.0)
