"""Tests for the in-breadth per-subsystem models."""

import numpy as np
import pytest

from repro.breadth import (
    CpuUtilizationModel,
    EchmmMemoryModel,
    MemoryAccessModel,
    NetworkCharacterization,
    NetworkTrafficModel,
    StorageModel,
    StorageProfile,
    seek_distances,
    utilization_series,
)
from repro.tracing import (
    READ,
    WRITE,
    CpuRecord,
    MemoryRecord,
    NetworkRecord,
    StorageRecord,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def _storage_trace(rng, n=400, sequential=True):
    records = []
    lbn = 0
    t = 0.0
    for i in range(n):
        if not sequential and rng.random() < 0.5:
            lbn = int(rng.integers(0, 1 << 22))
        size = int(rng.choice([4096, 65536]))
        t += float(rng.exponential(0.01))
        op = READ if rng.random() < 0.7 else WRITE
        records.append(StorageRecord(i, "s1", t, lbn, size, op))
        lbn += max(1, size // 4096)
    return records


# -- storage -----------------------------------------------------------------


def test_seek_distances_sequential_zero(rng):
    records = [
        StorageRecord(i, "s", i * 0.01, i * 16, 65536, READ) for i in range(10)
    ]
    assert np.all(seek_distances(records) == 0)


def test_storage_profile_read_fraction(rng):
    records = _storage_trace(rng)
    profile = StorageProfile.characterize(records)
    assert 0.6 < profile.read_fraction < 0.8
    assert profile.n_ios == 400
    assert profile.mean_interarrival > 0


def test_storage_profile_sequentiality_discriminates(rng):
    seq = StorageProfile.characterize(_storage_trace(rng, sequential=True))
    rand = StorageProfile.characterize(
        _storage_trace(np.random.default_rng(1), sequential=False)
    )
    assert seq.sequential_fraction > rand.sequential_fraction
    assert rand.mean_abs_seek > seq.mean_abs_seek


def test_storage_model_generates_similar_profile(rng):
    records = _storage_trace(rng, n=800, sequential=False)
    model = StorageModel().fit(records)
    synthetic = model.generate(800, rng)
    original = StorageProfile.characterize(records)
    generated = StorageProfile.characterize(synthetic)
    assert generated.read_fraction == pytest.approx(
        original.read_fraction, abs=0.1
    )
    assert generated.mean_size == pytest.approx(original.mean_size, rel=0.25)


def test_storage_model_validation(rng):
    with pytest.raises(ValueError):
        StorageModel().fit([])
    with pytest.raises(RuntimeError):
        StorageModel().generate(5, rng)


# -- cpu ---------------------------------------------------------------------


def test_utilization_series_windows():
    records = [CpuRecord(i, "s", t, 0.5, "x") for i, t in enumerate([0.1, 1.1, 1.2])]
    series = utilization_series(records, window=1.0, cores=1, end_time=3.0)
    assert series.shape == (3,)
    assert series[0] == pytest.approx(0.5)
    assert series[1] == pytest.approx(1.0)  # clipped at capacity


def test_utilization_series_validation():
    with pytest.raises(ValueError):
        utilization_series([], 1.0)


def test_cpu_model_stationary_mean_close_to_data(rng):
    series = np.clip(0.4 + 0.1 * rng.standard_normal(500), 0, 1)
    model = CpuUtilizationModel().fit(series)
    assert model.stationary_mean() == pytest.approx(series.mean(), abs=0.05)


def test_cpu_model_generates_in_range(rng):
    series = np.clip(rng.beta(2, 5, 400), 0, 1)
    model = CpuUtilizationModel().fit(series)
    synthetic = model.generate(300, rng)
    assert np.all((synthetic >= 0) & (synthetic <= 1))
    assert synthetic.mean() == pytest.approx(series.mean(), abs=0.07)


def test_cpu_model_pattern_label(rng):
    periodic = 0.4 + 0.2 * np.sin(np.arange(256) * 2 * np.pi / 16)
    model = CpuUtilizationModel().fit(np.clip(periodic, 0, 1))
    assert model.pattern == "periodic"


def test_cpu_model_predict_next_tracks_persistence(rng):
    # A sticky two-level series: prediction should stay near the level.
    series = np.concatenate([np.full(200, 0.2), np.full(200, 0.8)])
    series += rng.normal(0, 0.01, 400)
    model = CpuUtilizationModel(n_levels=4).fit(np.clip(series, 0, 1))
    assert model.predict_next([0.8]) > 0.5
    assert model.predict_next([0.2]) < 0.5


def test_cpu_model_validation(rng):
    with pytest.raises(ValueError):
        CpuUtilizationModel().fit([0.5] * 4)
    with pytest.raises(ValueError):
        CpuUtilizationModel().fit([2.0] * 20)
    with pytest.raises(RuntimeError):
        CpuUtilizationModel().generate(5, rng)


# -- memory -----------------------------------------------------------------


def _memory_trace(rng, n=300):
    records = []
    for i in range(n):
        bank = int(i % 4)
        size = int(rng.choice([4096, 16384]))
        op = READ if bank < 3 else WRITE
        records.append(MemoryRecord(i, "s", i * 0.001, bank, size, op))
    return records


def test_memory_model_bank_distribution(rng):
    model = MemoryAccessModel().fit(_memory_trace(rng))
    banks = model.bank_distribution()
    assert set(banks) == {0, 1, 2, 3}
    assert sum(banks.values()) == pytest.approx(1.0)
    # Round-robin trace: equal mass per bank.
    for p in banks.values():
        assert p == pytest.approx(0.25, abs=0.05)


def test_memory_model_generation_shape(rng):
    model = MemoryAccessModel().fit(_memory_trace(rng))
    tuples = model.generate(100, rng)
    assert len(tuples) == 100
    for op, size, bank in tuples:
        assert op in (READ, WRITE)
        assert size > 0
        assert 0 <= bank < 4


def test_echmm_separates_address_regions(rng):
    addresses = np.concatenate(
        [rng.integers(0, 1000, 300), rng.integers(1_000_000, 1_001_000, 300)]
    )
    model = EchmmMemoryModel(n_states=2, max_iter=20).fit(addresses, rng)
    synthetic = model.generate(1000)
    assert synthetic.min() < 10_000
    assert synthetic.max() > 500_000


def test_echmm_score_prefers_similar_traces(rng):
    addresses = rng.integers(0, 1000, 400)
    model = EchmmMemoryModel(n_states=2, max_iter=15).fit(addresses, rng)
    near = model.score(rng.integers(0, 1000, 100))
    far = model.score(rng.integers(10_000_000, 10_001_000, 100))
    assert near > far


def test_echmm_validation(rng):
    with pytest.raises(ValueError):
        EchmmMemoryModel(n_states=4).fit([1, 2, 3], rng)
    with pytest.raises(RuntimeError):
        EchmmMemoryModel().generate(5)


# -- network ------------------------------------------------------------------


def _network_trace(rng, n=500, rate=100.0):
    t = 0.0
    records = []
    for i in range(n):
        t += float(rng.exponential(1.0 / rate))
        size = int(rng.choice([4096, 65536], p=[0.8, 0.2]))
        records.append(NetworkRecord(i, "s", t, size, "rx"))
        records.append(NetworkRecord(i, "s", t + 0.001, 256, "tx"))
    return records


def test_network_model_characterization(rng):
    model = NetworkTrafficModel().fit(_network_trace(rng))
    ch = model.characterization
    assert isinstance(ch, NetworkCharacterization)
    assert ch.n_messages == 500  # rx only
    assert ch.mean_rate == pytest.approx(100.0, rel=0.15)
    assert ch.poissonness == pytest.approx(1.0, abs=0.5)


def test_network_model_generation_rate(rng):
    model = NetworkTrafficModel().fit(_network_trace(rng, n=2000))
    pairs = model.generate(2000, rng)
    times = np.array([t for t, _ in pairs])
    rate = len(pairs) / times[-1]
    assert rate == pytest.approx(100.0, rel=0.2)
    sizes = {s for _, s in pairs}
    assert sizes <= {4096, 65536}


def test_network_model_arrival_process(rng):
    model = NetworkTrafficModel().fit(_network_trace(rng, n=1000))
    process = model.arrival_process(rng)
    gaps = process.sample(2000)
    assert gaps.mean() == pytest.approx(0.01, rel=0.2)


def test_network_model_validation(rng):
    with pytest.raises(ValueError):
        NetworkTrafficModel().fit([])
    with pytest.raises(RuntimeError):
        NetworkTrafficModel().generate(5, rng)
