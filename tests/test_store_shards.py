"""Tests for the on-disk trace shard store (repro.store).

Covers the acceptance contract of the subsystem: manifest round-trips,
shard-merge byte-identity against the in-memory ``merge_replicas`` path
for several worker counts, sweep-grid replica derivation, empty-replica
stitching, the shared flat/v1/v2/gzip reader path, and shard-parallel
per-class KOOZA training matching single-process fits.
"""

import json
import math

import pytest

from repro.cli import main
from repro.core import KoozaTrainer, model_to_dict, split_traces_by_class
from repro.datacenter import (
    FleetSpec,
    collect_fleet,
    collect_fleet_to_store,
    collect_replicas,
    merge_replicas,
    sweep_grid,
    sweep_replica_specs,
)
from repro.datacenter.fleet import ReplicaResult
from repro.store import (
    ShardManifest,
    ShardStore,
    ShardWriter,
    is_shard_store,
    load_per_class_models,
    max_request_id,
    max_span_id,
    offsets_for,
    save_per_class_models,
    trace_extent,
    train_per_class,
)
from repro.tracing import (
    READ,
    NetworkRecord,
    RequestRecord,
    StorageRecord,
    Tracer,
    TraceSet,
    as_trace_set,
    load_traces,
    save_traces,
)
from repro.tracing.span import Span

STREAMS = ("network", "cpu", "memory", "storage", "requests", "spans")


def _dicts(traces, stream):
    return [r.to_dict() for r in getattr(traces, stream)]


def _assert_traces_equal(a, b, context=""):
    for stream in STREAMS:
        assert _dicts(a, stream) == _dicts(b, stream), f"{context}:{stream}"


# -- manifest ----------------------------------------------------------------


def test_manifest_round_trip(tmp_path):
    manifest = ShardManifest(
        index=3,
        app="gfs",
        seed=11,
        params={"n_requests": 50, "arrival_rate": 25.0, "sample_every": 1},
        duration=4.25,
        extent=4.5,
        counts={"requests": 50, "spans": 120},
        max_request_id=50,
        max_span_id=120,
        request_classes={"read_64K": 30, "write_4M": 20},
        compress=True,
    )
    manifest.save(tmp_path)
    loaded = ShardManifest.load(tmp_path)
    assert loaded == manifest
    assert loaded.stitch_part() == (4.5, 50, 120, False)
    assert loaded.param("arrival_rate") == 25.0
    assert loaded.param("app") == "gfs"
    assert loaded.n_records == 170


def test_manifest_rejects_foreign_and_future_formats(tmp_path):
    with pytest.raises(ValueError):
        ShardManifest.from_dict({"format": "something-else", "index": 0})
    with pytest.raises(ValueError):
        ShardManifest.from_dict(
            {"format": "repro-shard", "index": 0, "version": 99}
        )


# -- writer ------------------------------------------------------------------


def test_shard_writer_tracks_stitch_quantities(tmp_path):
    writer = ShardWriter(tmp_path / "shard-00000", index=0, app="t", seed=1)
    writer.write("network", NetworkRecord(1, "s0", 0.5, 64, "rx"))
    writer.write(
        "requests",
        RequestRecord(2, "read", "s0", arrival_time=0.6, completion_time=3.5),
    )
    writer.write(
        "spans",
        Span(trace_id=2, span_id=4, parent_id=None, name="a", server="s0",
             start=0.6, end=float("nan")),
    )
    manifest = writer.finalize(duration=1.0)
    # NaN span end is ignored; the request completion dominates.
    assert manifest.extent == 3.5
    assert manifest.max_request_id == 2
    assert manifest.max_span_id == 4
    assert manifest.counts["network"] == 1
    assert manifest.request_classes == {"read": 1}
    # Quantities match the stitch helpers applied to the same records.
    reloaded = load_traces(tmp_path)
    assert trace_extent(reloaded, 1.0) == manifest.extent
    assert max_request_id(reloaded) == manifest.max_request_id
    assert max_span_id(reloaded) == manifest.max_span_id


def test_shard_writer_is_a_tracer_sink(tmp_path):
    writer = ShardWriter(tmp_path / "shard-00000", index=0)
    tracer = Tracer(sample_every=1, sink=writer, keep_records=False)
    rid = tracer.new_request_id()
    tracer.record_storage(StorageRecord(rid, "s0", 0.1, 7, 4096, READ))
    span = tracer.start_span(rid, "req", "s0", 0.0)
    tracer.end_span(span, 0.4)
    tracer.record_request(
        RequestRecord(rid, "read", "s0", arrival_time=0.0, completion_time=0.4)
    )
    # Diverted streams stay out of memory; spans are held until close().
    assert tracer.traces.requests == []
    assert len(tracer.traces.spans) == 1
    tracer.close()
    manifest = writer.finalize(duration=0.4)
    assert manifest.counts["spans"] == 1
    # load_traces opens the store lazily; as_trace_set materializes.
    loaded = as_trace_set(load_traces(tmp_path))
    assert loaded.storage[0].lbn == 7
    assert loaded.spans[0].end == 0.4


def test_tracer_rejects_memoryless_collection_without_sink():
    with pytest.raises(ValueError):
        Tracer(keep_records=False)


# -- store vs in-memory merge ------------------------------------------------


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_store_merge_byte_identical_to_in_memory(tmp_path, workers):
    kwargs = dict(app="gfs", replicas=4, seed=9, n_requests=30)
    reference = collect_fleet(workers=1, **kwargs)
    out = tmp_path / f"w{workers}"
    result = collect_fleet_to_store(
        FleetSpec(**kwargs), directory=out, workers=workers
    )
    assert [m.index for m in result.manifests] == [0, 1, 2, 3]
    store = ShardStore(out)
    _assert_traces_equal(reference.traces, store.merged(), f"workers={workers}")
    # load_traces recognizes the store layout — one reader path.  It
    # returns the store itself (a lazy TraceSource) since 0.3.
    loaded = load_traces(out)
    assert isinstance(loaded, ShardStore)
    _assert_traces_equal(reference.traces, as_trace_set(loaded), "load_traces")


def test_store_merge_matches_for_webapp(tmp_path):
    kwargs = dict(app="webapp", replicas=2, seed=3, n_requests=25)
    reference = collect_fleet(workers=1, **kwargs)
    collect_fleet_to_store(FleetSpec(**kwargs), directory=tmp_path, workers=2)
    _assert_traces_equal(reference.traces, ShardStore(tmp_path).merged())


def test_save_merged_streams_flat_dump(tmp_path):
    kwargs = dict(app="gfs", replicas=2, seed=1, n_requests=25)
    collect_fleet_to_store(FleetSpec(**kwargs), directory=tmp_path / "s")
    store = ShardStore(tmp_path / "s")
    store.save_merged(tmp_path / "flat")
    _assert_traces_equal(store.merged(), load_traces(tmp_path / "flat"))


def test_store_requires_manifests(tmp_path):
    with pytest.raises(FileNotFoundError):
        ShardStore(tmp_path)
    assert not is_shard_store(tmp_path)


# -- empty replicas ----------------------------------------------------------


def _replica_with_one_request(index, request_id=1):
    traces = TraceSet(
        network=[NetworkRecord(request_id, "s0", 0.25, 64, "rx")],
        requests=[
            RequestRecord(
                request_id, "read", "s0", arrival_time=0.25, completion_time=2.0
            )
        ],
    )
    return ReplicaResult(index, traces, 2.0)


def test_empty_replica_keeps_timeline_slot_and_ids():
    # An empty replica with a known duration must advance the merged
    # timeline by that duration and burn no identifier space.
    results = [
        _replica_with_one_request(0),
        ReplicaResult(1, TraceSet(), 5.0),
        _replica_with_one_request(2),
    ]
    merged = merge_replicas(results)
    assert [r.request_id for r in merged.requests] == [1, 2]
    # Replica 2 starts after replica 0's extent (2.0) + the empty
    # replica's duration (5.0).
    assert merged.requests[1].arrival_time == pytest.approx(7.25)
    # The store path stitches the same way from manifests alone.
    parts = [(2.0, 1, 0), (5.0, 0, 0), (2.0, 1, 0)]
    offsets = offsets_for(parts)
    assert [o.time for o in offsets] == [0.0, 2.0, 7.0]
    assert [o.request_id for o in offsets] == [0, 1, 1]


def test_incomplete_requests_count_toward_extent():
    # A replica whose requests never completed must still span its
    # arrivals — previously its extent collapsed to zero and the next
    # replica's records interleaved before them.
    never_done = TraceSet(
        requests=[
            RequestRecord(1, "read", "s0", arrival_time=3.0, completion_time=0.0)
        ]
    )
    assert trace_extent(never_done) == 3.0
    merged = merge_replicas(
        [ReplicaResult(0, never_done, 0.0), _replica_with_one_request(1)]
    )
    assert merged.requests[1].arrival_time >= 3.0
    ids = [r.request_id for r in merged.requests]
    assert len(ids) == len(set(ids))


def test_extent_ignores_nan_span_end_but_counts_finite_end():
    open_span = TraceSet(
        spans=[Span(1, 1, None, "a", "s", start=1.0, end=float("nan"))]
    )
    assert trace_extent(open_span) == 1.0
    closed_span = TraceSet(
        spans=[Span(1, 1, None, "a", "s", start=1.0, end=9.0)]
    )
    assert trace_extent(closed_span) == 9.0


def test_empty_shard_round_trips_through_store(tmp_path):
    writer = ShardWriter(tmp_path / "shard-00000", index=0, app="webapp")
    writer.finalize(duration=4.0)
    writer2 = ShardWriter(tmp_path / "shard-00001", index=1, app="webapp")
    writer2.write("network", NetworkRecord(1, "s0", 0.5, 64, "rx"))
    writer2.finalize(duration=1.0)
    store = ShardStore(tmp_path)
    assert store.manifests[0].counts["network"] == 0
    merged = store.merged()
    # The empty shard holds its 4.0s slot: the next shard's record lands
    # at 4.0 + 0.5.
    assert merged.network[0].timestamp == 4.5


# -- sweeps ------------------------------------------------------------------


def test_sweep_grid_cross_product_and_validation():
    grid = sweep_grid(arrival_rate=[10.0, 20.0], n_requests=[100, 200])
    assert grid == [
        {"arrival_rate": 10.0, "n_requests": 100},
        {"arrival_rate": 10.0, "n_requests": 200},
        {"arrival_rate": 20.0, "n_requests": 100},
        {"arrival_rate": 20.0, "n_requests": 200},
    ]
    with pytest.raises(ValueError):
        sweep_grid(seed=[1, 2])  # seed is not sweepable


def test_sweep_replica_specs_enumerate_grid_times_repeats():
    base = FleetSpec(app="gfs", replicas=2, seed=4, n_requests=50)
    specs = sweep_replica_specs(base, [{"arrival_rate": 10.0}, {"arrival_rate": 40.0}])
    assert [s.index for s in specs] == [0, 1, 2, 3]
    assert [s.arrival_rate for s in specs] == [10.0, 10.0, 40.0, 40.0]
    assert all(s.seed == 4 and s.n_requests == 50 for s in specs)
    with pytest.raises(ValueError):
        sweep_replica_specs(base, [])
    with pytest.raises(ValueError):
        sweep_replica_specs(base, [{"app": "nosuch"}])
    with pytest.raises(ValueError):
        sweep_replica_specs(base, [{"arrival_rate": 10.0}], repeats=0)


def test_sweep_defaults_arrival_rate_per_app():
    base = FleetSpec(app="gfs", replicas=1, seed=0, n_requests=10)
    specs = sweep_replica_specs(base, [{"app": "webapp"}, {"app": "gfs"}])
    assert specs[0].app == "webapp" and specs[0].arrival_rate == 120.0
    assert specs[1].app == "gfs" and specs[1].arrival_rate == 25.0


def test_sweep_manifests_group_by_parameters(tmp_path):
    base = FleetSpec(app="gfs", replicas=2, seed=2, n_requests=20)
    specs = sweep_replica_specs(
        base, [{"arrival_rate": 10.0}, {"arrival_rate": 40.0}]
    )
    collect_fleet_to_store(
        replica_specs=specs, directory=tmp_path, workers=2
    )
    store = ShardStore(tmp_path)
    groups = store.group_by("arrival_rate")
    assert {k: sorted(m.index for m in v) for k, v in groups.items()} == {
        10.0: [0, 1],
        40.0: [2, 3],
    }
    # Sweep store stitches identically to the in-memory merge of the
    # same replica list.
    reference = merge_replicas(collect_replicas(specs, workers=1))
    _assert_traces_equal(reference, store.merged(), "sweep")


# -- flat dump formats -------------------------------------------------------


def test_save_load_round_trip_gzip(tmp_path, gfs_run=None):
    tracer = Tracer()
    rid = tracer.new_request_id()
    tracer.record_network(NetworkRecord(rid, "s1", 0.0, 64, "rx"))
    tracer.record_request(
        RequestRecord(rid, "read", "s1", arrival_time=0.0, completion_time=0.2)
    )
    save_traces(tracer.traces, tmp_path / "gz", compress=True)
    assert (tmp_path / "gz" / "network.jsonl.gz").exists()
    loaded = load_traces(tmp_path / "gz")
    assert loaded.summary() == tracer.traces.summary()
    assert loaded.network[0].size_bytes == 64


def test_v2_dumps_carry_format_header(tmp_path):
    save_traces(TraceSet(), tmp_path)
    first = (tmp_path / "requests.jsonl").read_text().splitlines()[0]
    header = json.loads(first)
    assert header["format"] == "repro-traces"
    assert header["version"] == 2
    assert header["stream"] == "requests"


def test_legacy_headerless_dumps_still_load(tmp_path):
    record = RequestRecord(
        1, "read", "s0", arrival_time=0.0, completion_time=1.0
    )
    (tmp_path / "requests.jsonl").write_text(
        json.dumps(record.to_dict()) + "\n"
    )
    loaded = load_traces(tmp_path)
    assert loaded.requests[0].to_dict() == record.to_dict()


def test_future_format_version_rejected(tmp_path):
    (tmp_path / "requests.jsonl").write_text(
        json.dumps({"format": "repro-traces", "version": 99, "stream": "requests"})
        + "\n"
    )
    with pytest.raises(ValueError):
        load_traces(tmp_path)


# -- shard-parallel per-class training ---------------------------------------


@pytest.fixture(scope="module")
def trained_store(tmp_path_factory):
    directory = tmp_path_factory.mktemp("store")
    collect_fleet_to_store(
        FleetSpec(app="gfs", replicas=3, seed=5, n_requests=60),
        directory=directory,
        workers=2,
    )
    return directory


def _model_json(model):
    return json.dumps(model_to_dict(model), sort_keys=True)


def test_per_class_training_parallel_matches_serial(trained_store):
    serial = train_per_class(trained_store, workers=1)
    pooled = train_per_class(trained_store, workers=2)
    assert serial.models.keys() == pooled.models.keys()
    assert serial.models  # gfs table2 mix has >= 2 trainable classes
    for cls in serial.models:
        assert _model_json(serial.models[cls]) == _model_json(
            pooled.models[cls]
        ), f"{cls} fit diverged between worker counts"


def test_per_class_training_matches_split_fit(trained_store):
    # The shard-parallel fit equals a single-process fit on the same
    # per-class partition of the fully merged traces.
    fit = train_per_class(trained_store, workers=2)
    merged = ShardStore(trained_store).merged()
    per_class = split_traces_by_class(merged)
    for cls, model in fit.models.items():
        reference = KoozaTrainer().fit(per_class[cls])
        assert _model_json(reference) == _model_json(model), cls


def test_per_class_training_skips_undertrained_classes(trained_store):
    counts = ShardStore(trained_store).request_class_counts()
    threshold = max(counts.values()) + 1
    fit = train_per_class(trained_store, workers=1, min_requests=threshold)
    assert fit.models == {}
    assert fit.skipped == counts


def test_per_class_models_round_trip(trained_store, tmp_path):
    fit = train_per_class(trained_store, workers=1)
    path = save_per_class_models(fit.models, tmp_path / "classes.json")
    loaded = load_per_class_models(path)
    assert loaded.keys() == fit.models.keys()
    for cls in loaded:
        assert _model_json(loaded[cls]) == _model_json(fit.models[cls])


def test_cli_train_per_class(trained_store, tmp_path, capsys):
    model_path = tmp_path / "classes.json"
    assert main(
        ["train", str(trained_store), "--per-class", "--workers", "2",
         "--model", str(model_path)]
    ) == 0
    assert "per-class models" in capsys.readouterr().out
    assert load_per_class_models(model_path)


def test_cli_train_per_class_requires_shard_store(tmp_path):
    save_traces(TraceSet(), tmp_path / "flat")
    with pytest.raises(SystemExit):
        main(
            ["train", str(tmp_path / "flat"), "--per-class", "--model",
             str(tmp_path / "m.json")]
        )


def test_cli_sweep_collect_records_parameters(tmp_path, capsys):
    out = tmp_path / "sweep"
    assert main(
        ["collect", "--app", "gfs", "--requests", "20", "--replicas", "1",
         "--sweep-rate", "10,40", "--out", str(out)]
    ) == 0
    assert "2 shards" in capsys.readouterr().out
    groups = ShardStore(out).group_by("arrival_rate")
    assert set(groups) == {10.0, 40.0}
