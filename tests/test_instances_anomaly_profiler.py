"""Tests for MultiServerKooza, anomaly detection and the profiler."""

import numpy as np
import pytest

from repro.core import MultiServerKooza, split_traces_by_server
from repro.datacenter import (
    GfsCluster,
    GfsSpec,
    MachineSpec,
    run_gfs_workload,
)
from repro.datacenter.devices import DiskSpec
from repro.depth import AnomalyDetector
from repro.simulation import Environment, RandomStreams
from repro.queueing import PoissonArrivals
from repro.tracing import ClusterProfiler, Tracer, TraceSet
from repro.workloads import OpenLoopClient, table2_mix


@pytest.fixture(scope="module")
def multi_run():
    return run_gfs_workload(
        n_requests=1600,
        seed=71,
        arrival_rate=50.0,
        gfs_spec=GfsSpec(chunkservers=2),
    )


# -- split + MultiServerKooza --------------------------------------------


def test_split_covers_all_requests(multi_run):
    parts = split_traces_by_server(multi_run.traces)
    assert set(parts) == {"chunkserver-0", "chunkserver-1"}
    total = sum(len(p.requests) for p in parts.values())
    assert total == len(multi_run.traces.requests)


def test_split_keeps_streams_consistent(multi_run):
    parts = split_traces_by_server(multi_run.traces)
    for part in parts.values():
        request_ids = {r.request_id for r in part.requests}
        assert {r.request_id for r in part.storage} <= request_ids
        assert {s.trace_id for s in part.spans} <= request_ids


def test_multi_server_one_model_per_server(multi_run):
    msk = MultiServerKooza().fit(multi_run.traces)
    assert msk.n_instances == 2
    assert not msk.skipped


def test_multi_server_validation_fidelity(multi_run):
    msk = MultiServerKooza().fit(multi_run.traces)
    reports = msk.validate(multi_run.traces, np.random.default_rng(3))
    assert set(reports) == set(msk.models)
    for report in reports.values():
        assert report.worst_feature_deviation_pct < 1.0
        assert report.mean_latency_deviation_pct < 20.0


def test_multi_server_synthesize_shape(multi_run):
    msk = MultiServerKooza().fit(multi_run.traces)
    workloads = msk.synthesize(40, np.random.default_rng(4))
    assert all(len(reqs) == 40 for reqs in workloads.values())


def test_multi_server_min_requests_skips(multi_run):
    msk = MultiServerKooza(min_requests=10**9)
    with pytest.raises(ValueError):
        msk.fit(multi_run.traces)


def test_multi_server_unfitted_rejected():
    msk = MultiServerKooza()
    with pytest.raises(RuntimeError):
        msk.synthesize(5, np.random.default_rng(0))
    with pytest.raises(ValueError):
        msk.fit(TraceSet())


# -- anomaly detection -----------------------------------------------------


def _run_with_disk(disk_spec, n=300, seed=81):
    return run_gfs_workload(
        n_requests=n,
        seed=seed,
        machine_spec=MachineSpec(disk=disk_spec),
    ).traces


def test_anomaly_detector_clean_traces_mostly_quiet():
    traces = _run_with_disk(DiskSpec())
    trees = traces.trace_trees()
    detector = AnomalyDetector(threshold_sigmas=6.0).fit(trees)
    anomalies = detector.scan(trees)
    assert len(anomalies) < len(trees) * 0.02


def test_anomaly_detector_flags_degraded_disk():
    healthy = _run_with_disk(DiskSpec()).trace_trees()
    detector = AnomalyDetector(threshold_sigmas=4.0).fit(healthy)
    # A sick disk: 4x seek times and no write cache.
    degraded = _run_with_disk(
        DiskSpec(min_seek=1.6e-3, max_seek=32e-3, write_cache=False),
        seed=82,
    ).trace_trees()
    verdicts = detector.scan(degraded)
    assert len(verdicts) > len(degraded) * 0.2
    # The suspect stage is storage — the actual fault site.
    stages = [v.worst_stage for v in verdicts]
    assert stages.count("storage") > len(stages) * 0.8


def test_anomaly_detector_bottleneck_is_storage():
    traces = _run_with_disk(DiskSpec())
    detector = AnomalyDetector().fit(traces.trace_trees())
    assert detector.bottleneck().stage in ("storage", "network_rx")


def test_anomaly_detector_validation():
    with pytest.raises(ValueError):
        AnomalyDetector(threshold_sigmas=0.0)
    with pytest.raises(ValueError):
        AnomalyDetector().fit([])
    with pytest.raises(RuntimeError):
        traces = _run_with_disk(DiskSpec(), n=50)
        AnomalyDetector().judge(traces.trace_trees()[0])


# -- profiler ----------------------------------------------------------------


def _profiled_run(n_requests=300, interval=0.5):
    env = Environment()
    tracer = Tracer()
    streams = RandomStreams(91)
    cluster = GfsCluster(env, GfsSpec(chunkservers=2), streams, tracer)
    profiler = ClusterProfiler(
        env,
        cluster.chunkservers,
        tracer,
        interval=interval,
        horizon=60.0,
    )
    mix = table2_mix(streams.get("mix"))
    client = OpenLoopClient(
        env,
        cluster.client_request,
        mix.make_request,
        PoissonArrivals(40.0, streams.get("arrivals")),
    )
    client.start(n_requests)
    env.run()
    return profiler


def test_profiler_collects_samples_per_machine():
    profiler = _profiled_run()
    machines = {s.machine for s in profiler.samples}
    assert machines == {"chunkserver-0", "chunkserver-1"}
    series = profiler.utilization_series("chunkserver-0", "disk")
    assert series.size > 5
    assert np.all((series >= 0) & (series <= 1.0 + 1e-9))


def test_profiler_disk_hotter_than_memory():
    profiler = _profiled_run()
    disk = profiler.utilization_series("chunkserver-0", "disk").mean()
    memory = profiler.utilization_series("chunkserver-0", "memory").mean()
    assert disk > memory


def test_profiler_hottest_machines_ranking():
    profiler = _profiled_run()
    ranked = profiler.hottest_machines("disk", top=2)
    assert len(ranked) == 2
    assert ranked[0][1] >= ranked[1][1]


def test_profiler_cpu_share_by_class():
    profiler = _profiled_run()
    shares = profiler.cpu_share_by_class()
    assert set(shares) >= {"read_64K", "write_4M"}
    assert sum(shares.values()) == pytest.approx(1.0)


def test_profiler_stop_halts_sampling():
    env = Environment()
    tracer = Tracer()
    streams = RandomStreams(92)
    cluster = GfsCluster(env, GfsSpec(), streams, tracer)
    profiler = ClusterProfiler(
        env, cluster.chunkservers, tracer, interval=0.1, horizon=100.0
    )

    def stopper(env):
        yield env.timeout(1.0)
        profiler.stop()

    env.process(stopper(env))
    env.run()
    assert env.now == pytest.approx(1.0, abs=0.2)
    assert len(profiler.samples) <= 11


def test_profiler_validation():
    env = Environment()
    tracer = Tracer()
    streams = RandomStreams(93)
    cluster = GfsCluster(env, GfsSpec(), streams, tracer)
    with pytest.raises(ValueError):
        ClusterProfiler(env, [], tracer)
    with pytest.raises(ValueError):
        ClusterProfiler(env, cluster.chunkservers, tracer, interval=0.0)
    with pytest.raises(ValueError):
        ClusterProfiler(env, cluster.chunkservers, tracer, horizon=-1.0)
    profiler = ClusterProfiler(env, cluster.chunkservers, tracer, horizon=1.0)
    env.run()
    with pytest.raises(ValueError):
        profiler.utilization_series("ghost", "cpu")
