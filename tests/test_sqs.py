"""Tests for the SQS (statistical-sampling queueing simulation) module."""

import numpy as np
import pytest

from repro.datacenter import run_gfs_workload
from repro.depth import SqsEvaluator, SqsWorkloadModel
from repro.queueing import MM1
from repro.tracing import RequestRecord, TraceSet


def _synthetic_traces(rate=80.0, service=0.005, n=2000, seed=0):
    """Requests from a known M/M/1-ish system, for analytic checks."""
    rng = np.random.default_rng(seed)
    traces = TraceSet()
    t = 0.0
    for i in range(n):
        t += float(rng.exponential(1.0 / rate))
        latency = float(rng.exponential(service))
        traces.requests.append(
            RequestRecord(
                request_id=i,
                request_class="r",
                server="s",
                arrival_time=t,
                completion_time=t + latency,
            )
        )
    return traces


def test_characterization_recovers_rate():
    traces = _synthetic_traces(rate=80.0)
    model = SqsWorkloadModel.characterize(traces)
    assert model.arrival_rate == pytest.approx(80.0, rel=0.1)
    assert model.interarrivals.size > 1000
    assert model.mean_service > 0


def test_characterization_validation():
    with pytest.raises(ValueError):
        SqsWorkloadModel.characterize(TraceSet())


def test_evaluator_converges_with_ci():
    traces = _synthetic_traces()
    model = SqsWorkloadModel.characterize(traces)
    evaluator = SqsEvaluator(model, relative_tolerance=0.1)
    result = evaluator.evaluate(np.random.default_rng(1))
    assert result.converged
    assert result.relative_halfwidth <= 0.1
    assert result.batches >= evaluator.min_batches
    assert result.mean_latency > 0


def test_evaluator_tighter_tolerance_needs_more_batches():
    traces = _synthetic_traces()
    model = SqsWorkloadModel.characterize(traces)
    loose = SqsEvaluator(model, relative_tolerance=0.2).evaluate(
        np.random.default_rng(2)
    )
    tight = SqsEvaluator(model, relative_tolerance=0.03).evaluate(
        np.random.default_rng(2)
    )
    assert tight.batches >= loose.batches


def test_evaluator_tracks_analytic_mm1():
    """SQS on a synthetic M/M/1 workload should approach the analytic
    response time once queueing is included."""
    rate, service = 60.0, 0.008  # rho = 0.48
    traces = _synthetic_traces(rate=rate, service=service, n=4000, seed=3)
    model = SqsWorkloadModel.characterize(traces)
    evaluator = SqsEvaluator(model, relative_tolerance=0.05)
    result = evaluator.evaluate(np.random.default_rng(4))
    # The service-time estimate (fastest-half latencies) biases low for
    # high-variance services — these synthetic traces embed *no*
    # queueing, the worst case for that heuristic — so the check is a
    # scale check, not a tight one.
    analytic = MM1(rate, 1.0 / service).mean_response
    assert 0.1 * analytic < result.mean_latency < 1.5 * analytic


def test_evaluator_on_simulated_gfs_traces():
    run = run_gfs_workload(n_requests=1000, seed=63)
    model = SqsWorkloadModel.characterize(run.traces)
    result = SqsEvaluator(
        model, relative_tolerance=0.1, batch_size=300
    ).evaluate(np.random.default_rng(5))
    assert result.converged
    observed = np.mean(
        [r.latency for r in run.traces.completed_requests()]
    )
    # Same scale as the observed application latency.
    assert 0.2 * observed < result.mean_latency < 3.0 * observed


def test_evaluator_reports_non_convergence():
    traces = _synthetic_traces(n=100)
    model = SqsWorkloadModel.characterize(traces)
    evaluator = SqsEvaluator(
        model,
        relative_tolerance=0.001,  # unreachable in max_batches
        max_batches=5,
        batch_size=50,
    )
    result = evaluator.evaluate(np.random.default_rng(6))
    assert not result.converged
    assert result.batches == 5


def test_evaluator_validation():
    traces = _synthetic_traces(n=100)
    model = SqsWorkloadModel.characterize(traces)
    with pytest.raises(ValueError):
        SqsEvaluator(model, batch_size=5)
    with pytest.raises(ValueError):
        SqsEvaluator(model, relative_tolerance=1.5)
    with pytest.raises(ValueError):
        SqsEvaluator(model, confidence=0.3)
    with pytest.raises(ValueError):
        SqsEvaluator(model, min_batches=1)
