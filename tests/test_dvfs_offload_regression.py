"""Tests for the DVFS evaluator, protocol-offload model and regression."""

import numpy as np
import pytest

from repro.breadth import CpuBreakdown, CpuUtilizationModel, OffloadModel
from repro.datacenter import (
    DvfsSetting,
    evaluate_dvfs_policy,
    model_guided_policy,
)
from repro.stats import LinearRegression

HIGH = DvfsSetting("high", frequency=1.0, idle_power=60.0, peak_power=180.0)
LOW = DvfsSetting("low", frequency=0.5, idle_power=30.0, peak_power=80.0)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


# -- DVFS ---------------------------------------------------------------


def test_dvfs_setting_power_interpolates():
    assert HIGH.power(0.0) == 60.0
    assert HIGH.power(1.0) == 180.0
    assert HIGH.power(0.5) == pytest.approx(120.0)


def test_dvfs_setting_validation():
    with pytest.raises(ValueError):
        DvfsSetting("bad", frequency=0.0, idle_power=10, peak_power=20)
    with pytest.raises(ValueError):
        DvfsSetting("bad", frequency=0.5, idle_power=30, peak_power=20)


def test_always_high_never_violates():
    series = np.linspace(0.0, 0.9, 100)
    result = evaluate_dvfs_policy(series, [HIGH, LOW], lambda h: 0)
    assert result.violations == 0
    assert result.settings_used == {"high": 100, "low": 0}


def test_always_low_violates_on_heavy_windows():
    series = np.array([0.2, 0.8, 0.3, 0.9])
    result = evaluate_dvfs_policy(series, [HIGH, LOW], lambda h: 1)
    assert result.violations == 2  # 0.8 and 0.9 exceed f=0.5


def test_low_frequency_saves_energy_on_idle_series():
    series = np.full(200, 0.1)
    high = evaluate_dvfs_policy(series, [HIGH, LOW], lambda h: 0)
    low = evaluate_dvfs_policy(series, [HIGH, LOW], lambda h: 1)
    assert low.energy_joules < high.energy_joules
    assert low.violations == 0


def test_model_guided_policy_tracks_two_level_series(rng):
    # Sticky low/high utilization phases with equal mass so the
    # quantile levels split them cleanly: the predictor should pick the
    # low state in quiet phases and the high state in busy phases.
    quiet = np.clip(rng.normal(0.15, 0.02, 300), 0, 1)
    busy = np.clip(rng.normal(0.75, 0.02, 300), 0, 1)
    series = np.concatenate([quiet, busy])
    model = CpuUtilizationModel(n_levels=2).fit(series)
    policy = model_guided_policy(model, [HIGH, LOW], headroom=1.2)
    result = evaluate_dvfs_policy(series, [HIGH, LOW], policy)
    always_high = evaluate_dvfs_policy(series, [HIGH, LOW], lambda h: 0)
    # Saves energy vs always-high, violating only at the phase edge.
    assert result.energy_joules < always_high.energy_joules
    assert result.violation_rate < 0.02
    assert result.settings_used["low"] > 250


def test_dvfs_validation():
    with pytest.raises(ValueError):
        evaluate_dvfs_policy([], [HIGH], lambda h: 0)
    with pytest.raises(ValueError):
        evaluate_dvfs_policy([0.5], [], lambda h: 0)
    with pytest.raises(ValueError):
        evaluate_dvfs_policy([0.5], [HIGH], lambda h: 7)
    with pytest.raises(ValueError):
        model_guided_policy(CpuUtilizationModel(), [HIGH], headroom=0.5)


# -- protocol offload ----------------------------------------------------


def test_breakdown_classification():
    static = CpuBreakdown(protocol_seconds=0.8e-3, data_seconds=0.2e-3)
    dynamic = CpuBreakdown(protocol_seconds=0.2e-3, data_seconds=0.8e-3)
    assert static.application_kind == "static"
    assert dynamic.application_kind == "dynamic"
    assert static.protocol_fraction == pytest.approx(0.8)


def test_offload_speedup_static_vs_dynamic():
    """Patwardhan's conclusion: offload pays for static serving only."""
    static = OffloadModel(CpuBreakdown(0.8e-3, 0.2e-3))
    dynamic = OffloadModel(CpuBreakdown(0.1e-3, 0.9e-3))
    assert static.speedup(1.0) == pytest.approx(5.0)
    assert dynamic.speedup(1.0) == pytest.approx(1.111, abs=0.01)
    assert static.worthwhile()
    assert not dynamic.worthwhile()


def test_offload_throughput_scales_with_cores():
    model = OffloadModel(CpuBreakdown(0.5e-3, 0.5e-3), cores=4)
    assert model.throughput(0.0) == pytest.approx(4000.0)


def test_offload_partial_fraction_monotone():
    model = OffloadModel(CpuBreakdown(0.6e-3, 0.4e-3))
    speedups = [model.speedup(f) for f in (0.0, 0.5, 1.0)]
    assert speedups[0] == pytest.approx(1.0)
    assert speedups == sorted(speedups)


def test_offload_validation():
    with pytest.raises(ValueError):
        CpuBreakdown(-1.0, 1.0)
    with pytest.raises(ValueError):
        CpuBreakdown(0.0, 0.0)
    model = OffloadModel(CpuBreakdown(1e-3, 1e-3))
    with pytest.raises(ValueError):
        model.throughput(1.5)
    with pytest.raises(ValueError):
        OffloadModel(CpuBreakdown(1e-3, 1e-3), cores=0)


# -- linear regression --------------------------------------------------------


def test_regression_recovers_coefficients(rng):
    X = rng.normal(0, 1, (200, 2))
    y = 3.0 * X[:, 0] - 2.0 * X[:, 1] + 5.0
    model = LinearRegression().fit(X, y)
    assert model.coef_ == pytest.approx([3.0, -2.0], abs=1e-9)
    assert model.intercept_ == pytest.approx(5.0, abs=1e-9)
    assert model.r_squared(X, y) == pytest.approx(1.0)


def test_regression_ridge_shrinks(rng):
    X = rng.normal(0, 1, (50, 2))
    y = 4.0 * X[:, 0] + rng.normal(0, 0.1, 50)
    plain = LinearRegression().fit(X, y)
    ridged = LinearRegression(ridge=100.0).fit(X, y)
    assert abs(ridged.coef_[0]) < abs(plain.coef_[0])


def test_regression_validation(rng):
    with pytest.raises(ValueError):
        LinearRegression(ridge=-1.0)
    with pytest.raises(ValueError):
        LinearRegression().fit([[1.0]], [1.0])
    with pytest.raises(ValueError):
        LinearRegression().fit([[1.0], [2.0]], [1.0, 2.0, 3.0])
    with pytest.raises(RuntimeError):
        LinearRegression().predict([[1.0]])
