"""Tests for the streaming analysis engine and the TraceSource API.

Pins down the PR-4 acceptance contract: streaming accumulators merge
associatively; the sharded one-pass profile/validation equals the batch
path on the materialized merge for 1, 2 and 4 workers; per-class
validation matches a manual per-class split; `repro characterize --in`
and `repro validate --per-class --in` never construct the merged
``TraceSet`` (the stitch path is monkeypatched to explode); and the
pre-0.3 keyword signatures warn ``DeprecationWarning`` but still work.
"""

import numpy as np
import pytest

from repro.cli import main
from repro.core import (
    KoozaTrainer,
    ReplayHarness,
    WorkloadFeatureStats,
    WorkloadProfile,
    WorkloadProfileBuilder,
    compare_feature_stats,
    compare_workloads,
    extract_request_features,
    split_traces_by_class,
)
from repro.datacenter import FleetSpec, collect_fleet_to_store, run_gfs_workload
from repro.stats import (
    CategoricalCounter,
    CoMomentsAccumulator,
    ExactQuantiles,
    FixedHistogram,
    MomentsAccumulator,
    P2Quantile,
    ReservoirQuantile,
    SeekStats,
    WindowedCounter,
)
from repro.store import (
    ShardStore,
    analyze_source,
    characterize_source,
    class_rng,
    class_seed,
    train_per_class,
    validate_per_class,
)
from repro.tracing import (
    FlatTraceDump,
    TraceSet,
    TraceSource,
    as_trace_set,
    load_traces,
    save_traces,
)


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("astore")
    collect_fleet_to_store(
        FleetSpec(app="gfs", replicas=3, seed=5, n_requests=80),
        directory=directory,
        workers=2,
    )
    return directory


@pytest.fixture(scope="module")
def merged(store_dir):
    return ShardStore(store_dir).merged()


# -- accumulators ------------------------------------------------------------


def test_moments_merge_matches_whole():
    rng = np.random.default_rng(0)
    values = rng.normal(5.0, 2.0, size=501)
    whole = MomentsAccumulator()
    for v in values:
        whole.add(float(v))
    left, right = MomentsAccumulator(), MomentsAccumulator()
    for v in values[:200]:
        left.add(float(v))
    for v in values[200:]:
        right.add(float(v))
    left.merge(right)
    assert left.n == whole.n == 501
    assert left.mean == pytest.approx(np.mean(values), rel=1e-12)
    assert left.variance() == pytest.approx(np.var(values), rel=1e-9)
    assert whole.variance() == pytest.approx(np.var(values), rel=1e-9)
    assert (left.min, left.max) == (values.min(), values.max())


def test_comoments_correlation_matches_numpy():
    rng = np.random.default_rng(1)
    x = rng.normal(size=300)
    y = 0.6 * x + rng.normal(scale=0.5, size=300)
    halves = [CoMomentsAccumulator(), CoMomentsAccumulator()]
    for i, (a, b) in enumerate(zip(x, y)):
        halves[i % 2].add(float(a), float(b))
    halves[0].merge(halves[1])
    assert halves[0].correlation == pytest.approx(
        np.corrcoef(x, y)[0, 1], rel=1e-9
    )


def test_comoments_zero_variance_matches_cross_correlation():
    acc = CoMomentsAccumulator()
    for v in (1.0, 1.0, 1.0):
        acc.add(v, float(v * 2))
    assert acc.correlation == 0.0


def test_fixed_histogram_merge_and_quantile():
    edges = [0.0, 1.0, 2.0, 4.0]
    a, b = FixedHistogram(edges), FixedHistogram(edges)
    for v in (0.5, 1.5, 3.0, -1.0):
        a.add(v)
    for v in (0.25, 5.0):
        b.add(v)
    a.merge(b)
    assert a.underflow == 1 and a.overflow == 1
    assert sum(a.counts) == 4
    assert 0.0 <= a.quantile(0.5) <= 4.0


def test_streaming_quantiles_approximate_exact():
    rng = np.random.default_rng(2)
    values = rng.exponential(2.0, size=4000)
    exact = ExactQuantiles()
    p2 = P2Quantile(0.95)
    res = ReservoirQuantile(capacity=2048, seed=3)
    for v in values:
        exact.add(float(v))
        p2.add(float(v))
        res.add(float(v))
    truth = exact.quantile(0.95)
    assert truth == float(np.percentile(values, 95))
    assert p2.value == pytest.approx(truth, rel=0.15)
    assert res.quantile(0.95) == pytest.approx(truth, rel=0.15)
    with pytest.raises(NotImplementedError):
        p2.merge(P2Quantile(0.95))


def test_categorical_counter_modal_tie_is_lexicographic():
    c = CategoricalCounter()
    for key in ("write", "read", "write", "read"):
        c.add(key)
    assert c.modal() == "read"
    assert c.fraction("write") == 0.5


def test_windowed_counter_merge_and_clamp():
    a = WindowedCounter(window=0.5)
    b = WindowedCounter(window=0.5)
    for t in (0.1, 0.4, 0.6):
        a.add(t)
    for t in (0.2, 1.9):
        b.add(t)
    a.merge(b)
    series = a.series(end=1.0)
    # the 1.9 event lands past end=1.0 and clamps into the last window
    assert series.tolist() == [3.0, 2.0]
    with pytest.raises(ValueError):
        a.merge(WindowedCounter(window=0.25))


def test_seek_stats_seam_merge_matches_single_pass():
    ios = [(10, 4096), (11, 4096), (500, 8192), (502, 4096), (503, 4096)]
    whole = SeekStats()
    for lbn, size in ios:
        whole.add(lbn, size)
    left, right = SeekStats(), SeekStats()
    for lbn, size in ios[:2]:
        left.add(lbn, size)
    for lbn, size in ios[2:]:
        right.add(lbn, size)
    left.merge(right)
    assert left.n_gaps == whole.n_gaps
    assert left.n_sequential == whole.n_sequential
    assert left.sum_abs == whole.sum_abs


# -- TraceSource protocol ----------------------------------------------------


def test_trace_source_conformance(store_dir, merged, tmp_path):
    save_traces(merged, tmp_path / "flat")
    flat = FlatTraceDump(tmp_path / "flat")
    store = ShardStore(store_dir)
    for source in (merged, store, flat):
        assert isinstance(source, TraceSource)
        assert set(source.streams()) == {
            "network", "cpu", "memory", "storage", "requests", "spans",
        }
    assert store.classes() == merged.classes() == flat.classes()
    assert store.extent() == pytest.approx(merged.extent())
    # stitched iteration yields the merged records
    assert [r.to_dict() for r in store.iter_records("requests")] == [
        r.to_dict() for r in merged.iter_records("requests")
    ]


def test_load_traces_auto_detects_layouts(store_dir, merged, tmp_path):
    assert isinstance(load_traces(store_dir), ShardStore)
    save_traces(merged, tmp_path / "flat")
    assert isinstance(load_traces(tmp_path / "flat"), TraceSet)
    round_tripped = as_trace_set(load_traces(store_dir))
    assert [r.to_dict() for r in round_tripped.requests] == [
        r.to_dict() for r in merged.requests
    ]


def test_flat_trace_dump_requires_stream_files(tmp_path):
    with pytest.raises(FileNotFoundError):
        FlatTraceDump(tmp_path)


# -- streaming == batch ------------------------------------------------------


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_streaming_profile_equals_batch(store_dir, merged, workers):
    batch = WorkloadProfile.from_traces(merged)
    streamed = characterize_source(ShardStore(store_dir), workers=workers)
    assert streamed == batch
    assert "storage:" in streamed.describe()


def test_streaming_profile_builder_merge_associative(merged):
    # The merge contract covers contiguous, in-order partitions of each
    # stream (what shards are) — seam-aware accumulators like SeekStats
    # depend on record adjacency.
    whole = WorkloadProfileBuilder()
    whole.add_source(merged)
    parts = [WorkloadProfileBuilder() for _ in range(3)]
    for stream in merged.streams():
        records = list(merged.iter_records(stream))
        third = -(-len(records) // 3) or 1
        for i, record in enumerate(records):
            parts[min(i // third, 2)].add(stream, record)
    parts[0].merge(parts[1]).merge(parts[2])
    assert parts[0].profile() == whole.profile()


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_streaming_validation_stats_equal_batch(store_dir, merged, workers):
    analysis = analyze_source(ShardStore(store_dir), workers=workers)
    batch = WorkloadFeatureStats.from_features(extract_request_features(merged))
    assert analysis.features.n == batch.n
    assert set(analysis.features.profiles) == set(batch.profiles)
    for key, o in batch.profiles.items():
        s = analysis.features.profiles[key]
        assert s.n == o.n
        assert s.network_bytes.mean == pytest.approx(
            o.network_bytes.mean, rel=1e-9
        )
        assert s.latency.quantile(0.95) == o.latency.quantile(0.95)
    assert analysis.features.joint.correlation == pytest.approx(
        batch.joint.correlation, rel=1e-9
    )


def test_compare_feature_stats_matches_compare_workloads(merged):
    model = KoozaTrainer().fit(merged)
    synthetic = model.synthesize(150, np.random.default_rng(8))
    replayed = ReplayHarness(seed=9).replay(synthetic)
    batch = compare_workloads(merged, replayed)
    streamed = compare_feature_stats(
        WorkloadFeatureStats.from_source(merged),
        WorkloadFeatureStats.from_source(replayed),
    )
    assert streamed.latency_ks == batch.latency_ks
    assert streamed.n_original == batch.n_original
    assert streamed.joint_correlation_original == pytest.approx(
        batch.joint_correlation_original, rel=1e-9
    )
    assert len(streamed.profiles) == len(batch.profiles)
    for s, b in zip(streamed.profiles, batch.profiles):
        assert s.profile == b.profile
        assert s.network_bytes == pytest.approx(b.network_bytes, rel=1e-9)
        assert s.latency_p95 == b.latency_p95
        assert s.memory_op_match == b.memory_op_match


# -- per-class validation ----------------------------------------------------


def test_per_class_validation_matches_manual_split(store_dir, merged):
    store = ShardStore(store_dir)
    fit = train_per_class(store, workers=2)
    result = validate_per_class(store, models=fit.models, seed=42, workers=2)
    assert result.n_validated == len(fit.models) > 0
    assert result.mix is not None

    by_class = split_traces_by_class(merged)
    for report in result.classes:
        cls = report.request_class
        assert report.report is not None, report.error
        # replay the exact same synthesis manually over the class split
        synthetic = fit.models[cls].synthesize(
            report.n_original, class_rng(42, cls)
        )
        replayed = ReplayHarness(seed=class_seed(43, cls)).replay(synthetic)
        manual = compare_workloads(by_class[cls], replayed)
        assert report.report.latency_ks == manual.latency_ks
        assert report.report.n_original == manual.n_original
        assert report.report.worst_feature_deviation_pct == pytest.approx(
            manual.worst_feature_deviation_pct, rel=1e-9, abs=1e-12
        )
        assert report.report.worst_latency_deviation_pct == pytest.approx(
            manual.worst_latency_deviation_pct, rel=1e-9
        )
    # the mix compares the union of synthetics to the whole original
    assert result.mix.n_original == sum(r.n_original for r in result.classes)
    assert result.mix.n_synthetic == sum(r.n_synthetic for r in result.classes)


def test_per_class_validation_reports_missing_models(store_dir):
    result = validate_per_class(ShardStore(store_dir), models={}, seed=1)
    assert result.n_validated == 0
    assert all(c.error == "no model for class" for c in result.classes)
    assert result.mix is None
    with pytest.raises(ValueError):
        result.worst_feature_deviation_pct


# -- the stitch path stays cold ----------------------------------------------


def test_characterize_and_validate_never_merge(store_dir, monkeypatch, capsys):
    def forbid(self, *args, **kwargs):  # pragma: no cover - should not run
        raise AssertionError("merged TraceSet must not be constructed")

    import repro.tracing.source as source_module

    monkeypatch.setattr(ShardStore, "merged", forbid)
    monkeypatch.setattr(source_module, "as_trace_set", forbid)
    assert main(["characterize", "--in", str(store_dir)]) == 0
    assert main(
        ["validate", "--per-class", "--in", str(store_dir),
         "--feature-limit", "5.0"]
    ) == 0
    out = capsys.readouterr().out
    assert "storage:" in out
    assert "<mix>" in out


# -- deprecation shims -------------------------------------------------------


def test_fit_traces_keyword_warns(merged):
    with pytest.warns(DeprecationWarning, match="traces"):
        model = KoozaTrainer().fit(traces=merged)
    assert model.n_training_requests > 0
    with pytest.raises(TypeError):
        KoozaTrainer().fit(merged, traces=merged)
    with pytest.raises(TypeError):
        KoozaTrainer().fit()


def test_extract_features_traces_keyword_warns(merged):
    with pytest.warns(DeprecationWarning):
        features = extract_request_features(traces=merged)
    assert features == extract_request_features(merged)


def test_train_per_class_directory_keyword_warns(store_dir):
    with pytest.warns(DeprecationWarning):
        fit = train_per_class(directory=store_dir, workers=1)
    assert fit.models
    with pytest.warns(DeprecationWarning), pytest.raises(TypeError):
        train_per_class(store_dir, directory=store_dir)
    with pytest.raises(TypeError):
        train_per_class()


def test_train_per_class_accepts_flat_sources(merged):
    fit = train_per_class(merged, workers=1)
    reference = train_per_class_models_reference(merged)
    assert fit.models.keys() == reference.keys()


def train_per_class_models_reference(traces):
    return {
        cls: KoozaTrainer().fit(part)
        for cls, part in split_traces_by_class(traces).items()
        if len(part.completed_requests()) >= 16
    }


# -- CLI uniform --in --------------------------------------------------------


def test_cli_rejects_both_input_forms(store_dir):
    with pytest.raises(SystemExit):
        main(["characterize", str(store_dir), "--in", str(store_dir)])
    with pytest.raises(SystemExit):
        main(["characterize"])


def test_cli_empty_store_message(tmp_path, capsys):
    save_traces(TraceSet(), tmp_path / "flat")
    with pytest.raises(SystemExit, match="empty"):
        main(["characterize", "--in", str(tmp_path / "flat")])


def test_cli_describe_store_directory(store_dir, capsys):
    assert main(["describe", str(store_dir)]) == 0
    out = capsys.readouterr().out
    assert "classes:" in out


def test_cli_validate_store_aggregate(store_dir):
    assert main(
        ["validate", "--in", str(store_dir), "--workers", "2",
         "--feature-limit", "5.0"]
    ) == 0
