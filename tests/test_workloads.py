"""Unit tests for workload mixes, clients and the SURGE generator."""

import numpy as np
import pytest

from repro.datacenter import GfsCluster, GfsSpec
from repro.queueing import DeterministicArrivals, PoissonArrivals
from repro.simulation import Environment, RandomStreams
from repro.stats import hill_estimator
from repro.tracing import READ, WRITE, Tracer
from repro.workloads import (
    ClosedLoopClient,
    FileAccessPattern,
    OpenLoopClient,
    RequestClass,
    SurgeSpec,
    SurgeWorkload,
    WorkloadMix,
    oltp_mix,
    table2_mix,
    web_serving_mix,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def test_table2_mix_matches_paper_footprints(rng):
    mix = table2_mix(rng)
    by_name = {c.name: c for c in mix.classes}
    read = by_name["read_64K"]
    write = by_name["write_4M"]
    assert (read.size_bytes, read.memory_bytes) == (64 * 1024, 16 * 1024)
    assert (write.size_bytes, write.memory_bytes) == (4 << 20, 256 * 1024)
    assert read.op == READ and write.op == WRITE
    assert read.memory_op == READ and write.memory_op == WRITE


def test_mix_respects_weights(rng):
    mix = WorkloadMix(
        [
            RequestClass("a", READ, 4096, 4096, weight=9.0),
            RequestClass("b", READ, 8192, 4096, weight=1.0),
        ],
        rng,
    )
    names = [mix.sample_class().name for _ in range(2000)]
    fraction_a = names.count("a") / len(names)
    assert 0.85 < fraction_a < 0.95


def test_mix_validation(rng):
    with pytest.raises(ValueError):
        WorkloadMix([], rng)
    with pytest.raises(ValueError):
        WorkloadMix(
            [
                RequestClass("dup", READ, 1, 1),
                RequestClass("dup", READ, 2, 1),
            ],
            rng,
        )
    with pytest.raises(ValueError):
        WorkloadMix([RequestClass("z", READ, 1, 1, weight=0.0)], rng)


def test_named_mixes_produce_requests(rng):
    for factory in (table2_mix, web_serving_mix, oltp_mix):
        mix = factory(np.random.default_rng(1))
        request = mix.make_request()
        assert request.size_bytes > 0
        assert request.memory_bytes > 0


def test_file_access_pattern_sequentiality(rng):
    rc = RequestClass("seq", READ, 65536, 4096, mean_run_length=100.0)
    pattern = FileAccessPattern(rc, np.random.default_rng(3))
    lbns = [pattern.next_lbn(65536) for _ in range(100)]
    gaps = np.diff(lbns)
    # With run length 100, almost all gaps equal the I/O size in blocks.
    assert np.mean(gaps == 16) > 0.8


def test_file_access_pattern_random_class(rng):
    rc = RequestClass("rand", READ, 4096, 4096, mean_run_length=1.0)
    pattern = FileAccessPattern(rc, np.random.default_rng(4))
    lbns = [pattern.next_lbn(4096) for _ in range(50)]
    gaps = np.abs(np.diff(lbns))
    assert np.median(gaps) > 100  # jumps dominate


def _make_cluster(seed=0):
    env = Environment()
    tracer = Tracer()
    cluster = GfsCluster(env, GfsSpec(), RandomStreams(seed), tracer)
    return env, tracer, cluster


def test_open_loop_client_issues_all_requests():
    env, tracer, cluster = _make_cluster()
    mix = table2_mix(np.random.default_rng(1))
    client = OpenLoopClient(
        env,
        cluster.client_request,
        mix.make_request,
        DeterministicArrivals(100.0),
    )
    client.start(25)
    env.run()
    assert client.issued == 25
    assert len(tracer.traces.completed_requests()) == 25


def test_open_loop_client_validation():
    env, _, cluster = _make_cluster()
    mix = table2_mix(np.random.default_rng(1))
    client = OpenLoopClient(
        env, cluster.client_request, mix.make_request, DeterministicArrivals(1.0)
    )
    with pytest.raises(ValueError):
        client.start(0)


def test_closed_loop_client_completes_per_user():
    env, tracer, cluster = _make_cluster()
    mix = oltp_mix(np.random.default_rng(2))
    client = ClosedLoopClient(
        env,
        cluster.client_request,
        mix.make_request,
        n_users=3,
        think_time_sampler=lambda rng: 0.001,
        rng=np.random.default_rng(3),
    )
    processes = client.start(requests_per_user=5)
    env.run()
    assert client.completed == 15
    assert all(not p.is_alive for p in processes)


def test_closed_loop_throughput_self_limits():
    """Closed-loop issue rate adapts: requests never overlap per user."""
    env, tracer, cluster = _make_cluster()
    mix = oltp_mix(np.random.default_rng(2))
    client = ClosedLoopClient(
        env,
        cluster.client_request,
        mix.make_request,
        n_users=1,
        think_time_sampler=lambda rng: 0.0,
        rng=np.random.default_rng(3),
    )
    client.start(requests_per_user=10)
    env.run()
    records = sorted(
        tracer.traces.completed_requests(), key=lambda r: r.arrival_time
    )
    for earlier, later in zip(records[:-1], records[1:]):
        assert later.arrival_time >= earlier.completion_time - 1e-12


def test_surge_generates_heavy_tailed_objects():
    env, tracer, cluster = _make_cluster(seed=7)
    surge = SurgeWorkload(
        env,
        cluster.client_request,
        SurgeSpec(user_equivalents=8, pages_per_session=12),
        np.random.default_rng(11),
    )
    surge.start()
    env.run()
    sizes = [r.network_bytes for r in tracer.traces.completed_requests()]
    assert len(sizes) == surge.objects_fetched
    assert surge.objects_fetched > 50
    alpha = hill_estimator(sizes, tail_fraction=0.3)
    assert alpha < 3.0  # heavy tail (truncation biases alpha up slightly)


def test_surge_spec_validation():
    env, _, cluster = _make_cluster()
    with pytest.raises(ValueError):
        SurgeWorkload(
            env,
            cluster.client_request,
            SurgeSpec(user_equivalents=0),
            np.random.default_rng(0),
        )
