"""Tests for the columnar shard codec and batched accumulator folds (PR 6).

Pins down the acceptance contract of the codec work: every streaming
accumulator's ``update_batch`` is equivalent to repeated ``add`` (bit
for bit where the implementation promises it, within 1e-9 relative for
the Chan-combined moment folds), including NaN/inf inputs, empty
batches, split folds and ``state()``/``from_state()`` round-trips
mid-fold; columnar and JSONL stores produce byte-identical
``characterize`` and ``validate --per-class`` stdout for several
worker counts; ``repro convert`` round-trips a store through the
columnar codec back to byte-identical JSONL stream files; and the
determinism bugfix sweep holds (gzip members carry no wall-clock
mtime or filename, the header-decode memo survives an in-place
``os.replace`` rewrite, and mixed 5-/8-digit shard directory names
merge in parsed index order, not lexicographic).
"""

import json
import math
import os

import numpy as np
import pytest

import repro.tracing.store as tracing_store
from repro.cli import main
from repro.stats import (
    CategoricalCounter,
    CoMomentsAccumulator,
    ExactQuantiles,
    FixedHistogram,
    InterarrivalStats,
    MomentsAccumulator,
    P2Quantile,
    ReservoirQuantile,
    SeekStats,
    WindowedCounter,
)
from repro.store import (
    ShardStore,
    ShardWriter,
    parse_shard_index,
    shard_dirname,
)
from repro.tracing import RequestRecord, TraceSet, save_traces
from repro.tracing.columnar import StringColumn

# -- update_batch == repeated add --------------------------------------------

_RNG = np.random.default_rng(20260807)
_NORMALS = _RNG.normal(3.0, 2.0, size=200)
_TIMES = np.sort(_RNG.uniform(0.0, 25.0, size=150))

#: (name, constructor, add-argument tuples, batch is bit-identical?).
#: Batches mix NaN/inf, boundary values and long runs; "exact" cases
#: promise bit-identity to the sequential path, the Chan-combined
#: moment folds promise 1e-9 relative agreement instead.
BATCH_CASES = [
    (
        "moments",
        MomentsAccumulator,
        [(v,) for v in _NORMALS.tolist()
         + [float("inf"), float("-inf"), float("nan"), 0.0]],
        False,
    ),
    (
        "co-moments",
        CoMomentsAccumulator,
        [(v, 2.0 * v - 1.0) for v in _NORMALS.tolist() + [float("nan")]],
        False,
    ),
    (
        "fixed-histogram",
        lambda: FixedHistogram([-2.0, -1.0, 0.0, 1.0, 2.0]),
        [(v,) for v in _NORMALS.tolist()
         + [-2.0, 2.0, -99.0, 99.0, float("inf"), float("nan")]],
        True,
    ),
    (
        "exact-quantiles",
        ExactQuantiles,
        [(v,) for v in _NORMALS.tolist() + [float("inf"), float("nan")]],
        True,
    ),
    (
        "p2-quantile",
        lambda: P2Quantile(0.9),
        [(v,) for v in _RNG.uniform(0.0, 10.0, size=100).tolist()],
        True,
    ),
    (
        "reservoir-quantile",
        lambda: ReservoirQuantile(capacity=16, seed=7),
        [(v,) for v in _RNG.normal(0.0, 1.0, size=300).tolist()],
        True,
    ),
    (
        "categorical-counter",
        CategoricalCounter,
        [(k,) for k in _RNG.choice(
            ["read", "write", "seek", "open", "close"], size=120
        ).tolist()],
        True,
    ),
    (
        "windowed-counter",
        lambda: WindowedCounter(0.5, origin=0.0),
        list(zip(
            _TIMES.tolist(),
            _RNG.uniform(0.1, 3.0, size=_TIMES.size).tolist(),
            _RNG.uniform(0.0, 0.5, size=_TIMES.size).tolist(),
        )),
        True,
    ),
    (
        "interarrival-stats",
        InterarrivalStats,
        [(t,) for t in np.sort(
            np.round(_RNG.uniform(0.0, 10.0, size=150), 2)
        ).tolist()],
        False,
    ),
    (
        "seek-stats",
        SeekStats,
        [(int(l), int(s)) for l, s in zip(
            _RNG.integers(0, 10_000, size=150),
            _RNG.integers(1, 1 << 22, size=150),
        )],
        True,
    ),
]

BATCH_IDS = [case[0] for case in BATCH_CASES]


def snap(acc) -> str:
    return json.dumps(acc.state(), sort_keys=True)


def _assert_state_close(a, b, path=""):
    """Recursive state comparison: numbers within 1e-9 rel, NaN == NaN."""
    assert type(a) is type(b) or (
        isinstance(a, (int, float)) and isinstance(b, (int, float))
    ), f"{path}: {a!r} vs {b!r}"
    if isinstance(a, dict):
        assert a.keys() == b.keys(), path
        for key in a:
            _assert_state_close(a[key], b[key], f"{path}.{key}")
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b), path
        for i, (x, y) in enumerate(zip(a, b)):
            _assert_state_close(x, y, f"{path}[{i}]")
    elif isinstance(a, float) or isinstance(b, float):
        if math.isnan(float(a)) and math.isnan(float(b)):
            return
        assert float(a) == pytest.approx(float(b), rel=1e-9, abs=1e-12), path
    else:
        assert a == b, path


def _assert_equivalent(batched, sequential, exact: bool):
    if exact:
        assert snap(batched) == snap(sequential)
    else:
        _assert_state_close(batched.state(), sequential.state())


def _batch_args(samples):
    """Transpose add-argument tuples into update_batch column arguments."""
    return [list(column) for column in zip(*samples)]


@pytest.mark.parametrize("name,make,samples,exact", BATCH_CASES, ids=BATCH_IDS)
def test_update_batch_matches_repeated_add(name, make, samples, exact):
    sequential = make()
    for args in samples:
        sequential.add(*args)
    batched = make()
    batched.update_batch(*_batch_args(samples))
    _assert_equivalent(batched, sequential, exact)


@pytest.mark.parametrize("name,make,samples,exact", BATCH_CASES, ids=BATCH_IDS)
def test_update_batch_split_folds_match(name, make, samples, exact):
    # Folding in several chunks must agree with one fold and with the
    # sequential path — the shard-at-a-time analysis pattern.
    sequential = make()
    for args in samples:
        sequential.add(*args)
    batched = make()
    third = len(samples) // 3
    for chunk in (samples[:third], samples[third: 2 * third],
                  samples[2 * third:]):
        batched.update_batch(*_batch_args(chunk))
    _assert_equivalent(batched, sequential, exact)


@pytest.mark.parametrize("name,make,samples,exact", BATCH_CASES, ids=BATCH_IDS)
def test_state_roundtrip_mid_batch_fold(name, make, samples, exact):
    # Snapshot/restore between two batch folds must be invisible: the
    # restored accumulator folds the continuation to the same state
    # (including the reservoir's RNG draw sequence).
    half = len(samples) // 2
    acc = make()
    acc.update_batch(*_batch_args(samples[:half]))
    restored = type(acc).from_state(json.loads(snap(acc)))
    assert snap(restored) == snap(acc)
    acc.update_batch(*_batch_args(samples[half:]))
    restored.update_batch(*_batch_args(samples[half:]))
    assert snap(restored) == snap(acc)


@pytest.mark.parametrize("name,make,samples,exact", BATCH_CASES, ids=BATCH_IDS)
def test_update_batch_empty_is_noop(name, make, samples, exact):
    arity = len(samples[0])
    fresh = make()
    fresh.update_batch(*[[] for _ in range(arity)])
    assert snap(fresh) == snap(make())
    # And after real data: an empty fold must not disturb state.
    acc = make()
    acc.update_batch(*_batch_args(samples))
    before = snap(acc)
    acc.update_batch(*[[] for _ in range(arity)])
    assert snap(acc) == before


def test_moments_batch_nan_poisons_mean_not_extrema():
    acc = MomentsAccumulator()
    acc.update_batch([float("nan"), 1.0, 5.0])
    assert acc.n == 3
    assert (acc.min, acc.max) == (1.0, 5.0)
    assert math.isnan(acc.mean)
    reference = MomentsAccumulator()
    for v in (float("nan"), 1.0, 5.0):
        reference.add(v)
    assert (reference.min, reference.max) == (1.0, 5.0)
    assert math.isnan(reference.mean)


def test_exact_quantiles_bounded_batch_degrades_identically():
    values = np.linspace(0.0, 1.0, 40).tolist()
    sequential = ExactQuantiles(max_values=8)
    with pytest.warns(RuntimeWarning, match="max_values"):
        for v in values:
            sequential.add(v)
    batched = ExactQuantiles(max_values=8)
    with pytest.warns(RuntimeWarning, match="max_values"):
        batched.update_batch(values)
    assert batched.degraded and sequential.degraded
    # Bit-identical: the batch path falls back to sequential adds so
    # the reservoir RNG consumes the same draws.
    assert snap(batched) == snap(sequential)


def test_categorical_counter_folds_dict_encoded_columns():
    keys = ["read", "write", "read", "seek", "read", "write"]
    table = ["read", "write", "seek"]
    column = StringColumn(
        np.array([table.index(k) for k in keys], dtype=np.int32), table
    )
    from_keys = CategoricalCounter()
    from_keys.update_batch(keys)
    from_column = CategoricalCounter()
    from_column.update_batch(column)
    assert from_column.counts == from_keys.counts
    # Table entries with zero occurrences must not appear as keys.
    sparse = CategoricalCounter()
    sparse.update_batch(StringColumn(np.array([2, 2], dtype=np.int32), table))
    assert sparse.counts == {"seek": 2}


def test_paired_batch_length_mismatch_raises():
    with pytest.raises(ValueError, match="equal length"):
        CoMomentsAccumulator().update_batch([1.0, 2.0], [1.0])
    with pytest.raises(ValueError, match="equal length"):
        SeekStats().update_batch([1, 2], [4096])


def test_windowed_counter_batch_rejects_pre_origin_before_mutating():
    acc = WindowedCounter(0.5, origin=0.0)
    with pytest.raises(ValueError, match="precedes origin"):
        acc.update_batch([5.0, -1.0])
    assert acc.n == 0 and acc.bins == {}


# -- cross-codec CLI byte-identity -------------------------------------------


@pytest.fixture(scope="module")
def codec_stores(tmp_path_factory):
    """One workload, four stores: collected and converted, both codecs."""
    base = tmp_path_factory.mktemp("codec-stores")
    args = ["collect", "--app", "gfs", "--requests", "40", "--replicas", "2"]
    jsonl = base / "jsonl"
    columnar = base / "columnar"
    assert main(args + ["--out", str(jsonl)]) == 0
    assert main(args + ["--codec", "columnar", "--out", str(columnar)]) == 0
    converted = base / "converted"
    assert main([
        "convert", str(jsonl), "--out", str(converted), "--codec", "columnar",
    ]) == 0
    roundtrip = base / "roundtrip"
    assert main([
        "convert", str(converted), "--out", str(roundtrip), "--codec", "jsonl",
    ]) == 0
    return {
        "jsonl": jsonl,
        "columnar": columnar,
        "converted": converted,
        "roundtrip": roundtrip,
    }


def test_convert_roundtrip_restores_byte_identical_stream_files(codec_stores):
    jsonl, roundtrip = codec_stores["jsonl"], codec_stores["roundtrip"]
    shards = sorted(p.name for p in jsonl.iterdir() if p.name.startswith("shard-"))
    assert shards == sorted(
        p.name for p in roundtrip.iterdir() if p.name.startswith("shard-")
    )
    for shard in shards:
        names = sorted(p.name for p in (jsonl / shard).glob("*.jsonl"))
        assert names, shard
        assert names == sorted(p.name for p in (roundtrip / shard).glob("*.jsonl"))
        for name in names:
            assert (roundtrip / shard / name).read_bytes() == (
                jsonl / shard / name
            ).read_bytes(), f"{shard}/{name}"


def test_collected_columnar_store_verifies(codec_stores):
    for key in ("columnar", "converted"):
        store = ShardStore(codec_stores[key])
        assert store.verify() == {}
        for shard_dir in codec_stores[key].glob("shard-*"):
            assert not list(shard_dir.glob("*.jsonl")), (
                "columnar shards must not carry jsonl stream files"
            )
            assert list(shard_dir.glob("*.columns.json"))


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_characterize_stdout_identical_across_codecs(
    codec_stores, workers, capsys
):
    outputs = {}
    for key, path in codec_stores.items():
        assert main([
            "characterize", str(path), "--no-cache", "--workers", str(workers),
        ]) == 0
        outputs[key] = capsys.readouterr().out
    reference = outputs["jsonl"]
    assert "requests" in reference
    for key, out in outputs.items():
        assert out == reference, f"characterize stdout diverged for {key}"


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_validate_per_class_stdout_identical_across_codecs(
    codec_stores, workers, capsys
):
    results = {}
    for key in ("jsonl", "converted"):
        code = main([
            "validate", str(codec_stores[key]), "--per-class", "--no-cache",
            "--workers", str(workers),
        ])
        results[key] = (code, capsys.readouterr().out)
    assert results["converted"] == results["jsonl"]


def test_cli_rejects_gzip_with_columnar(tmp_path):
    with pytest.raises(SystemExit):
        main([
            "collect", "--app", "gfs", "--requests", "5",
            "--codec", "columnar", "--gzip", "--out", str(tmp_path / "a"),
        ])
    with pytest.raises(SystemExit):
        main([
            "convert", str(tmp_path / "missing"), "--out",
            str(tmp_path / "b"), "--codec", "columnar", "--gzip",
        ])


# -- determinism bugfix sweep ------------------------------------------------


def test_gzip_streams_have_canonical_headers(tmp_path):
    # RFC 1952 member header: no FNAME flag, zeroed MTIME — the bytes
    # that previously leaked the writing host's wall clock and path.
    traces = TraceSet()
    traces.requests.append(
        RequestRecord(1, "read", "s0", arrival_time=0.0, completion_time=0.5)
    )
    save_traces(traces, tmp_path / "a", compress=True)
    save_traces(traces, tmp_path / "b", compress=True)
    gz_files = sorted((tmp_path / "a").glob("*.jsonl.gz"))
    assert gz_files
    for path in gz_files:
        raw = path.read_bytes()
        assert raw[:2] == b"\x1f\x8b"
        assert raw[3] & 0x08 == 0, f"{path.name}: FNAME flag set"
        assert raw[4:8] == b"\x00\x00\x00\x00", f"{path.name}: mtime set"
        # Same records, different directory and instant: same bytes.
        assert raw == (tmp_path / "b" / path.name).read_bytes()


def test_header_memo_survives_inplace_rewrite(tmp_path):
    # The usual atomic-rewrite pattern (temp file + os.replace) can
    # leave mtime and size unchanged while swapping the bytes; the
    # header-decode memo must key on the inode too and re-validate.
    path = tmp_path / "requests.jsonl"
    header_line = json.dumps({
        "format": tracing_store.TRACES_FORMAT,
        "version": tracing_store.TRACES_VERSION,
    })
    path.write_text(header_line + "\n")
    assert tracing_store._first_line_is_header(path, header_line) is True
    old = path.stat()
    plain_line = json.dumps({"format": "x"}).ljust(len(header_line))
    replacement = tmp_path / "requests.jsonl.tmp"
    replacement.write_text(plain_line + "\n")
    os.replace(replacement, path)
    os.utime(path, ns=(old.st_atime_ns, old.st_mtime_ns))
    st = path.stat()
    assert (st.st_mtime_ns, st.st_size) == (old.st_mtime_ns, old.st_size)
    assert st.st_ino != old.st_ino
    assert tracing_store._first_line_is_header(path, plain_line) is False


def test_mixed_pad_shard_dirs_merge_in_index_order(tmp_path):
    # Legacy stores used a 5-digit directory pad; new stores use 8.
    # Lexicographic order would put shard-00000010 before shard-00002 —
    # readers must sort by the parsed index instead.
    assert shard_dirname(3) == "shard-00000003"
    assert parse_shard_index("shard-00002") == 2
    assert parse_shard_index("shard-00000010") == 10
    assert parse_shard_index("not-a-shard") is None
    for name, index in (("shard-00002", 2), ("shard-00000010", 10)):
        writer = ShardWriter(tmp_path / name, index=index, app="t", seed=index)
        writer.write(
            "requests",
            RequestRecord(
                1, "read", "s0", arrival_time=0.0, completion_time=0.5
            ),
        )
        writer.finalize(duration=1.0)
    store = ShardStore(tmp_path)
    assert [m.index for m in store.manifests] == [2, 10]
