"""Edge-case tests filling remaining coverage gaps."""

import numpy as np
import pytest

from repro.core import KoozaConfig, KoozaTrainer
from repro.core.model import KoozaModel
from repro.core.synthetic import Stage, SyntheticRequest
from repro.datacenter import GfsSpec, run_gfs_workload
from repro.datacenter.run import GfsRun
from repro.queueing import MG1, MM1
from repro.simulation import Environment, SimulationError
from repro.tracing import READ, TraceSet


def test_gfs_run_throughput_zero_duration():
    run = GfsRun(traces=TraceSet(), cluster=None, env=None, duration=0.0)
    assert run.throughput() == 0.0


def test_unfitted_kooza_model_raises():
    model = KoozaModel(KoozaConfig())
    assert not model.is_fitted()
    with pytest.raises(RuntimeError):
        model.synthesize(5, np.random.default_rng(0))
    with pytest.raises(RuntimeError):
        model.describe()
    with pytest.raises(RuntimeError):
        _ = model.n_parameters


def test_synthetic_request_empty_stage_list_properties():
    request = SyntheticRequest(arrival_time=0.0, stages=[])
    assert request.storage_stage is None
    assert request.memory_stage is None
    assert request.network_bytes == 0
    assert request.cpu_busy_seconds == 0.0


def test_stage_rejects_unknown_kind():
    with pytest.raises(ValueError):
        Stage("teleport")


def test_environment_run_until_event_value():
    env = Environment()
    gate = env.event()

    def opener(env):
        yield env.timeout(2.0)
        gate.succeed("sesame")

    env.process(opener(env))
    assert env.run(gate) == "sesame"


def test_environment_run_until_failed_event_raises():
    env = Environment()
    gate = env.event()

    def failer(env):
        yield env.timeout(1.0)
        gate.fail(RuntimeError("locked"))

    env.process(failer(env))
    with pytest.raises(RuntimeError, match="locked"):
        env.run(gate)


def test_event_value_before_trigger_raises():
    env = Environment()
    event = env.event()
    with pytest.raises(SimulationError):
        _ = event.value
    with pytest.raises(SimulationError):
        _ = event.ok


def test_event_fail_requires_exception():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_queue_metrics_zero_arrival_rate():
    metrics = MM1(0.0, 10.0)
    assert metrics.mean_wait == 0.0
    assert metrics.utilization == 0.0
    mg1 = MG1(0.0, 0.1, 1.0)
    assert mg1.mean_wait == 0.0


def test_trainer_smoothing_propagates():
    run = run_gfs_workload(n_requests=100, seed=97)
    model = KoozaTrainer(KoozaConfig(smoothing=0.5)).fit(run.traces)
    # Smoothing leaves no zero transitions in the storage chain.
    assert np.all(model.storage_chain.transition_matrix > 0)


def test_striped_read_rejects_writes():
    from repro.datacenter import GfsCluster, GfsRequest
    from repro.simulation import RandomStreams
    from repro.tracing import WRITE, Tracer

    env = Environment()
    cluster = GfsCluster(
        env, GfsSpec(chunkservers=2), RandomStreams(1), Tracer()
    )
    request = GfsRequest("w", WRITE, 1 << 20, 0, 4096)
    with pytest.raises(ValueError):
        env.run(env.process(cluster.striped_read(request, 2)))


def test_dependency_fallback_sequence_is_complete():
    # The in-breadth fallback covers every subsystem exactly once per
    # network direction.
    seq = KoozaModel.FALLBACK_SEQUENCE
    assert seq.count("network_rx") == 1
    assert seq.count("network_tx") == 1
    assert seq.count("storage") == 1
    assert seq.count("memory") == 1
    assert seq.count("cpu_lookup") == 1
    assert seq.count("cpu_aggregate") == 1
