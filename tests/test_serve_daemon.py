"""End-to-end tests for the ``repro serve`` subsystem (PR 7 tentpole).

The acceptance contracts from the issue, each pinned here:

* ``/profile?format=text`` after watch-folding appended rounds is
  byte-identical to batch ``repro characterize`` stdout on the same
  store — both cold and after an append;
* a daemon restarted from a :class:`ServeState` checkpoint resumes with
  *identical* accumulator state (``builder.state()`` equality);
* ``/metrics`` parses as valid Prometheus text exposition;
* ingest-socket commits become ordinary store rounds that ``repro
  verify`` accepts and the watcher folds;
* the satellites: ``repro verify`` exit codes, ``repro --version``,
  KeyboardInterrupt → exit 130, manifests stamped with the tool
  version, and the store-watch round-visibility rules.
"""

import io
import json
import shutil
import socket
import threading
import urllib.error
import urllib.request
from contextlib import redirect_stderr, redirect_stdout

import pytest

import repro.cli as cli_mod
from repro._version import tool_version
from repro.cli import main
from repro.core import WorkloadFeatureStats, WorkloadProfileBuilder
from repro.datacenter import FleetSpec, collect_fleet_to_store
from repro.serve import (
    Counter,
    Gauge,
    IngestSink,
    MetricsRegistry,
    ResidentAnalysis,
    ServeConfig,
    ServeDaemon,
    ServeError,
    ServeState,
    StoreWatcher,
    parse_exposition,
)
from repro.serve.watcher import StoreShrunkError
from repro.store import (
    ShardStore,
    analyze_source,
    load_store_rounds,
    take_snapshot,
    write_round_file,
)
from repro.store.writer import ShardWriter
from repro.tracing.records import RequestRecord

SPEC = dict(app="gfs", n_requests=120, replicas=2, seed=7)
APPEND_SPEC = dict(app="gfs", n_requests=60, replicas=2, seed=8)


@pytest.fixture(scope="module")
def base_store(tmp_path_factory):
    directory = tmp_path_factory.mktemp("serve") / "traces"
    collect_fleet_to_store(FleetSpec(**SPEC), directory)
    return directory


@pytest.fixture()
def store(base_store, tmp_path):
    """A private mutable copy — polls write caches into the store dir."""
    directory = tmp_path / "traces"
    shutil.copytree(base_store, directory)
    return directory


def _append_round(directory):
    collect_fleet_to_store(FleetSpec(**APPEND_SPEC), directory, append=True)


def _characterize_stdout(directory) -> str:
    """Batch ``repro characterize`` stdout, the /profile oracle."""
    out, err = io.StringIO(), io.StringIO()
    with redirect_stdout(out), redirect_stderr(err):
        rc = main(["characterize", "--in", str(directory)])
    assert rc == 0
    return out.getvalue()


def _http_get(daemon, path):
    host, port = daemon.http_address
    try:
        with urllib.request.urlopen(f"http://{host}:{port}{path}") as resp:
            return resp.status, resp.read().decode()
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode()


# -- store watch: round visibility -------------------------------------------


def test_manifests_record_tool_version(store):
    manifest = json.loads((store / "shard-00000000" / "manifest.json").read_text())
    assert manifest["version"] == 5
    assert manifest["tool_version"] == tool_version()


def test_take_snapshot_contiguous_prefix(store):
    snapshot = take_snapshot(store)
    assert snapshot.n_shards == 2
    assert [m.index for m in snapshot.manifests] == [0, 1]
    assert snapshot.pending == ()
    assert snapshot.max_round == 0
    _append_round(store)
    snapshot = take_snapshot(store)
    assert snapshot.n_shards == 4
    assert snapshot.max_round == 1
    assert snapshot.n_records > 0


def test_take_snapshot_gap_blocks_prefix(store):
    _append_round(store)
    # Shard 2 loses its manifest: the contiguous prefix stops before it
    # and the complete shard beyond the gap is only *pending*.
    manifest = store / "shard-00000002" / "manifest.json"
    manifest.rename(manifest.with_suffix(".hidden"))
    snapshot = take_snapshot(store)
    assert snapshot.n_shards == 2
    assert snapshot.pending == (3,)


def test_take_snapshot_complete_rounds_only(store):
    _append_round(store)
    (store / "round-00001.json").unlink()  # round 1 no longer recorded
    gated = take_snapshot(store, complete_rounds_only=True)
    assert gated.n_shards == 2
    ungated = take_snapshot(store, complete_rounds_only=False)
    assert ungated.n_shards == 4


# -- watcher folding ---------------------------------------------------------


def test_watcher_fold_equals_batch(store):
    resident = ResidentAnalysis()
    result = StoreWatcher(store).poll(resident)
    assert len(result.folded) == 2
    assert result.cache_misses == 2

    batch = analyze_source(str(store))
    assert resident.profile().describe() == batch.profile.describe()
    assert resident.features.state() == batch.features.state()
    assert sorted(resident.per_class) == sorted(batch.per_class)
    for cls_name, stats in batch.per_class.items():
        assert resident.per_class[cls_name].state() == stats.state()


def test_watcher_restart_is_warm(store):
    cold = ResidentAnalysis()
    StoreWatcher(store).poll(cold)
    warm = ResidentAnalysis()
    result = StoreWatcher(store).poll(warm)
    assert result.cache_hits == 2
    assert result.cache_misses == 0
    assert warm.profile().describe() == cold.profile().describe()


def test_watcher_folds_appended_round(store):
    resident = ResidentAnalysis()
    watcher = StoreWatcher(store)
    watcher.poll(resident)
    _append_round(store)
    result = watcher.poll(resident)
    assert [m.index for m in result.folded] == [2, 3]
    assert resident.profile().describe() == analyze_source(str(store)).profile.describe()
    # Nothing new: the next poll is a no-op.
    assert watcher.poll(resident).folded == []


def test_watcher_raises_when_store_shrinks(store):
    resident = ResidentAnalysis()
    watcher = StoreWatcher(store)
    watcher.poll(resident)
    shutil.rmtree(store / "shard-00000001")
    with pytest.raises(StoreShrunkError):
        watcher.poll(resident)


def test_resident_rejects_out_of_order_fold(store):
    snapshot = take_snapshot(store)
    resident = ResidentAnalysis()
    with pytest.raises(ValueError, match="out of order"):
        resident.fold(
            snapshot.manifests[1],
            WorkloadProfileBuilder(),
            WorkloadFeatureStats(),
            {},
        )


# -- checkpoints -------------------------------------------------------------


def test_serve_state_roundtrip(store, tmp_path):
    resident = ResidentAnalysis()
    StoreWatcher(store).poll(resident)
    path = tmp_path / "ck.json"
    ServeState(
        resident=resident, tool_version=tool_version(), store=str(store)
    ).save(path)

    restored = ServeState.load(path)
    assert restored.tool_version == tool_version()
    assert restored.resident.builder.state() == resident.builder.state()
    assert restored.resident.features.state() == resident.features.state()
    assert restored.resident.folded == resident.folded
    assert restored.resident.generation == resident.generation
    assert restored.resident.matches_prefix(take_snapshot(store).manifests)

    data = json.loads(path.read_text())
    data["format"] = "something-else"
    with pytest.raises(ValueError, match="not a serve checkpoint"):
        ServeState.from_dict(data)
    data["format"] = "repro-serve-state"
    data["version"] = 99
    with pytest.raises(ValueError, match="version"):
        ServeState.from_dict(data)


# -- the daemon over HTTP ----------------------------------------------------


def test_daemon_http_endpoints(store):
    config = ServeConfig(port=0, poll_interval=0)
    daemon = ServeDaemon(store, config).start()
    try:
        status, body = _http_get(daemon, "/healthz")
        health = json.loads(body)
        assert status == 200
        assert health["status"] == "ok"
        assert health["version"] == tool_version()
        assert health["shards"] == 2
        assert health["ingest"] is False
        assert health["restored_from_checkpoint"] is False

        status, body = _http_get(daemon, "/metrics")
        assert status == 200
        samples = parse_exposition(body)  # raises if not valid 0.0.4 text
        assert samples[("repro_shards_folded", ())] == 2.0
        assert samples[("repro_build_info", (("version", tool_version()),))] == 1.0
        assert samples[("repro_cache_misses_total", ())] == 2.0

        # The tentpole equality: /profile?format=text is byte-identical
        # to batch `repro characterize` stdout for the same store.
        status, served = _http_get(daemon, "/profile?format=text")
        assert status == 200
        assert served == _characterize_stdout(store)

        status, body = _http_get(daemon, "/profile")
        payload = json.loads(body)
        assert status == 200
        assert payload["shards"] == 2
        assert payload["describe"] == served.rstrip("\n")

        # ... and it still holds after the watcher folds an appended round.
        _append_round(store)
        result = daemon.poll_once()
        assert [m.index for m in result.folded] == [2, 3]
        status, served = _http_get(daemon, "/profile?format=text")
        assert served == _characterize_stdout(store)

        status, body = _http_get(daemon, "/drift")
        drift = json.loads(body)
        assert status == 200
        assert drift["baseline_source"] == "history"
        assert drift["firing"] is False  # same app, same seed family

        status, body = _http_get(daemon, "/validate")
        assert status == 503  # no per-class model loaded
        assert "model" in json.loads(body)["error"]

        status, body = _http_get(daemon, "/nope")
        assert status == 404
    finally:
        daemon.shutdown()


def test_daemon_ingest_and_checkpoint_restart(store, tmp_path):
    checkpoint = tmp_path / "serve-state.json"
    config = ServeConfig(
        port=0, poll_interval=0, checkpoint_path=checkpoint, ingest_port=0
    )
    daemon = ServeDaemon(store, config).start()
    try:
        assert daemon.ingest is not None
        with socket.create_connection(daemon.ingest.address) as conn:
            reader = conn.makefile("r")

            def send(payload):
                conn.sendall((json.dumps(payload) + "\n").encode())

            # A malformed line gets an error reply without killing the
            # connection ...
            send({"stream": "bogus", "record": {}})
            assert "unknown stream" in json.loads(reader.readline())["error"]
            send({"ping": True})
            assert json.loads(reader.readline())["ok"] is True

            # ... and real records commit into an ordinary store round.
            for i in range(5):
                record = RequestRecord(
                    request_id=i,
                    request_class="read",
                    server="live-0",
                    arrival_time=i * 0.01,
                    completion_time=i * 0.01 + 0.002,
                    network_bytes=4096,
                )
                send({"stream": "requests", "record": record.to_dict()})

            # A malformed commit duration is rejected *before* any side
            # effect: an error reply, a surviving connection, and the
            # pending records still uncommitted (the real commit below
            # acks all 5).
            send({"commit": True, "duration": None})
            assert "duration" in json.loads(reader.readline())["error"]
            send({"commit": True, "duration": [1.0]})
            assert "duration" in json.loads(reader.readline())["error"]

            send({"commit": True})
            ack = json.loads(reader.readline())
            assert ack["ok"] is True
            assert ack["shard"] == 2
            assert ack["round"] == 1
            assert ack["records"] == 5

        # The commit ack means "folded": no poll wait needed.
        health = json.loads(_http_get(daemon, "/healthz")[1])
        assert health["shards"] == 3
        assert ShardStore(store).verify() == {}
        samples = parse_exposition(_http_get(daemon, "/metrics")[1])
        assert samples[("repro_ingest_commits_total", ())] == 1.0
        assert samples[("repro_ingest_records_total", (("stream", "requests"),))] == 5.0

        builder_state = daemon.resident.builder.state()
        features_state = daemon.resident.features.state()
        generation = daemon.resident.generation
    finally:
        daemon.shutdown()
    assert checkpoint.exists()

    # Restart against the checkpoint: identical accumulator state, and
    # the restore is free (no cache loads, no shard re-reads).
    second = ServeDaemon(store, ServeConfig(
        port=0, poll_interval=0, checkpoint_path=checkpoint
    )).start()
    try:
        assert second.restored_from_checkpoint
        assert second.resident.builder.state() == builder_state
        assert second.resident.features.state() == features_state
        assert second.resident.generation == generation
        health = json.loads(_http_get(second, "/healthz")[1])
        assert health["restored_from_checkpoint"] is True
        assert health["shards"] == 3
    finally:
        second.shutdown()


def test_daemon_checkpoint_param_mismatch_cold_folds(store, tmp_path):
    checkpoint = tmp_path / "serve-state.json"
    first = ServeDaemon(store, ServeConfig(
        port=0, poll_interval=0, checkpoint_path=checkpoint
    )).start()
    first.shutdown()
    # A different analysis window invalidates the checkpoint; the daemon
    # quietly cold-folds instead of resuming mismatched accumulators.
    second = ServeDaemon(store, ServeConfig(
        port=0, poll_interval=0, checkpoint_path=checkpoint, window=0.5
    )).start()
    try:
        assert not second.restored_from_checkpoint
        assert len(second.resident.folded) == 2
    finally:
        second.shutdown()


def test_daemon_refuses_corrupt_store(store):
    stream = next((store / "shard-00000000").glob("requests.*"))
    with stream.open("ab") as handle:
        handle.write(b"garbage\n")
    with pytest.raises(ServeError, match="verification failed"):
        ServeDaemon(store, ServeConfig(port=0, poll_interval=0)).start()


def test_daemon_refuses_non_store(tmp_path):
    with pytest.raises(ServeError, match="not a shard store"):
        ServeDaemon(tmp_path, ServeConfig(port=0, poll_interval=0)).start()


# -- concurrency regressions -------------------------------------------------


def _live_record(i: int) -> dict:
    return RequestRecord(
        request_id=i,
        request_class="read",
        server="live-0",
        arrival_time=i * 0.01,
        completion_time=i * 0.01 + 0.002,
        network_bytes=1024,
    ).to_dict()


def test_ingest_commit_holds_lock_across_finalize(tmp_path, monkeypatch):
    """A write during the finalize window must not reuse the shard slot.

    Before the fix, commit() released the sink lock before finalize, so
    a concurrent write_record re-scanned manifests (the finalizing
    shard's manifest not yet on disk), claimed the *same* index, and
    opened a second writer on the directory still being closed.
    """
    directory = tmp_path / "live"
    sink = IngestSink(directory)
    sink.write_record("requests", _live_record(0))

    entered, release = threading.Event(), threading.Event()
    original_finalize = ShardWriter.finalize

    def slow_finalize(self, duration=0.0):
        entered.set()
        assert release.wait(10.0)
        return original_finalize(self, duration)

    monkeypatch.setattr(ShardWriter, "finalize", slow_finalize)
    manifests = []
    committer = threading.Thread(target=lambda: manifests.append(sink.commit()))
    committer.start()
    assert entered.wait(10.0)

    wrote = threading.Event()

    def write():
        sink.write_record("requests", _live_record(1))
        wrote.set()

    writer_thread = threading.Thread(target=write)
    writer_thread.start()
    assert not wrote.wait(0.3)  # blocked on the sink lock, not racing
    release.set()
    committer.join(10.0)
    writer_thread.join(10.0)
    assert wrote.is_set()

    monkeypatch.setattr(ShardWriter, "finalize", original_finalize)
    second = sink.commit()
    assert manifests[0].index == 0
    assert second.index == 1
    assert second.round == manifests[0].round + 1
    assert ShardStore(directory).verify() == {}
    rounds = load_store_rounds(directory)
    assert rounds == {manifests[0].round: [0], second.round: [1]}


def test_ingest_slots_never_regress(tmp_path):
    """Slot reservation floors survive a transiently unreadable scan."""
    directory = tmp_path / "live"
    sink = IngestSink(directory)
    sink.write_record("requests", _live_record(0))
    first = sink.commit()
    # Hide the committed shard's manifest: the scan no longer sees it,
    # but the sink's reservations must not hand its slot out again.
    manifest = directory / "shard-00000000" / "manifest.json"
    hidden = manifest.with_suffix(".hidden")
    manifest.rename(hidden)
    sink.write_record("requests", _live_record(1))
    second = sink.commit()
    hidden.rename(manifest)
    assert first.index == 0
    assert second.index == 1
    assert second.round == first.round + 1


def test_write_round_file_merges_not_overwrites(tmp_path):
    write_round_file(tmp_path, 1, [2, 3])
    write_round_file(tmp_path, 1, [4])  # racing writer, same round number
    assert load_store_rounds(tmp_path)[1] == [2, 3, 4]
    # A corrupt round file is replaced from what the writer knows.
    (tmp_path / "round-00002.json").write_text("not json")
    write_round_file(tmp_path, 2, [7])
    assert load_store_rounds(tmp_path)[2] == [7]
    assert not list(tmp_path.glob("*.tmp"))


def test_drift_baseline_rebuilds_after_first_fold(store):
    """A monitor baselined on an empty history becomes ready post-fold."""
    daemon = ServeDaemon(store, ServeConfig(port=0, poll_interval=0))
    daemon._build_monitor()  # as if started on a request-free store
    assert daemon.monitor.baseline.latencies.size == 0
    assert daemon.monitor.check().ready is False
    result = daemon.poll_once()
    assert result.folded
    assert daemon.monitor.baseline.latencies.size > 0
    report = daemon.drift_report()
    assert report.ready is True
    assert report.to_dict()["baseline_n"] > 0


def test_serve_state_concurrent_saves_never_tear(store, tmp_path):
    resident = ResidentAnalysis()
    StoreWatcher(store).poll(resident)
    state = ServeState(resident=resident, tool_version=tool_version())
    path = tmp_path / "ck.json"

    def hammer():
        for _ in range(10):
            state.save(path)

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    restored = ServeState.load(path)  # parses: no torn checkpoint
    assert restored.resident.builder.state() == resident.builder.state()
    assert not list(tmp_path.glob("ck.json.*"))  # no leaked temp files


# -- CLI satellites ----------------------------------------------------------


def test_cli_verify_ok(store, capsys):
    assert main(["verify", "--in", str(store)]) == 0
    assert "verified: 2 shard(s) intact" in capsys.readouterr().out


def test_cli_verify_corrupt(store, capsys):
    stream = next((store / "shard-00000001").glob("requests.*"))
    with stream.open("ab") as handle:
        handle.write(b"garbage\n")
    assert main(["verify", "--in", str(store)]) == 1
    out = capsys.readouterr().out
    assert "shard 1: content mismatch" in out
    assert "verification FAILED" in out


def test_cli_verify_not_a_store(tmp_path):
    with pytest.raises(SystemExit, match="not a shard store"):
        main(["verify", "--in", str(tmp_path)])


def test_cli_version(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert capsys.readouterr().out.strip() == f"repro {tool_version()}"


def test_cli_keyboard_interrupt_exits_130(store, capsys, monkeypatch):
    def interrupt(args):
        raise KeyboardInterrupt

    monkeypatch.setattr(cli_mod, "_cmd_verify", interrupt)
    assert main(["verify", "--in", str(store)]) == 130
    assert "interrupted" in capsys.readouterr().err


# -- metrics exposition ------------------------------------------------------


def test_metrics_render_and_parse_roundtrip():
    registry = MetricsRegistry()
    registry.counter("repro_things_total", "Things.", ("kind",)).inc(3, kind="a")
    registry.gauge("repro_level", "Level.").set(2.5)
    text = registry.render()
    assert text.endswith("\n")
    assert "# HELP repro_things_total Things." in text
    assert "# TYPE repro_level gauge" in text
    samples = parse_exposition(text)
    assert samples[("repro_things_total", (("kind", "a"),))] == 3.0
    assert samples[("repro_level", ())] == 2.5


def test_metrics_label_escaping_roundtrips():
    registry = MetricsRegistry()
    nasty = 'a\\b"c\nd'
    registry.gauge("repro_paths", "Paths.", ("path",)).set(1.0, path=nasty)
    samples = parse_exposition(registry.render())
    assert samples[("repro_paths", (("path", nasty),))] == 1.0


def test_metrics_registry_conflicts():
    registry = MetricsRegistry()
    counter = registry.counter("repro_x_total", "X.")
    assert registry.counter("repro_x_total", "X.") is counter  # idempotent
    with pytest.raises(ValueError, match="different kind or label"):
        registry.gauge("repro_x_total", "X.")
    with pytest.raises(ValueError, match="different kind or label"):
        registry.counter("repro_x_total", "X.", ("stream",))


def test_metrics_validation():
    with pytest.raises(ValueError, match="invalid metric name"):
        Counter("bad name", "help")
    with pytest.raises(ValueError, match="invalid label name"):
        Gauge("repro_ok", "help", ("bad-label",))
    counter = Counter("repro_ok_total", "help")
    with pytest.raises(ValueError, match=">= 0"):
        counter.inc(-1)
    with pytest.raises(ValueError, match="expects labels"):
        counter.inc(1, stream="x")


def test_parse_exposition_rejects_invalid_text():
    with pytest.raises(ValueError, match="malformed sample"):
        parse_exposition("}{ 1.0")
    with pytest.raises(ValueError, match="invalid TYPE"):
        parse_exposition("# TYPE repro_x flavor\nrepro_x 1")
    with pytest.raises(ValueError, match="duplicate sample"):
        parse_exposition("repro_x 1\nrepro_x 2")
    with pytest.raises(ValueError, match="unterminated label value"):
        parse_exposition('repro_x{a="b} 1')
