"""Tests for the arrival-process zoo."""

import numpy as np
import pytest

from repro.queueing import (
    BModelArrivals,
    DeterministicArrivals,
    DistributionArrivals,
    EmpiricalArrivals,
    MMPPArrivals,
    PoissonArrivals,
)
from repro.stats import arrivals_to_counts, hurst_rs, interarrival_cov


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def test_deterministic_fixed_gap():
    arrivals = DeterministicArrivals(rate=4.0)
    assert arrivals.next_interarrival() == pytest.approx(0.25)
    assert arrivals.mean_rate == 4.0


def test_deterministic_validation():
    with pytest.raises(ValueError):
        DeterministicArrivals(0.0)


def test_poisson_mean_rate(rng):
    arrivals = PoissonArrivals(rate=50.0, rng=rng)
    gaps = arrivals.sample(20_000)
    assert 1.0 / gaps.mean() == pytest.approx(50.0, rel=0.05)
    assert interarrival_cov(gaps) == pytest.approx(1.0, abs=0.05)


def test_poisson_validation(rng):
    with pytest.raises(ValueError):
        PoissonArrivals(-1.0, rng)


def test_distribution_arrivals_from_scipy(rng):
    from scipy import stats

    arrivals = DistributionArrivals(stats.gamma(2.0, scale=0.01), rng)
    gaps = arrivals.sample(5000)
    assert gaps.mean() == pytest.approx(0.02, rel=0.1)
    assert arrivals.mean_rate == pytest.approx(50.0, rel=0.01)


def test_empirical_bootstrap_resamples_observations(rng):
    observed = [0.1, 0.2, 0.3]
    arrivals = EmpiricalArrivals(observed, rng)
    gaps = arrivals.sample(500)
    assert set(np.round(gaps, 6)) <= {0.1, 0.2, 0.3}
    assert arrivals.mean_rate == pytest.approx(5.0)


def test_empirical_validation(rng):
    with pytest.raises(ValueError):
        EmpiricalArrivals([], rng)
    with pytest.raises(ValueError):
        EmpiricalArrivals([-0.5], rng)


def test_mmpp_is_burstier_than_poisson(rng):
    mmpp = MMPPArrivals([5.0, 100.0], [1.0, 0.1], rng)
    gaps = mmpp.sample(10_000)
    assert interarrival_cov(gaps) > 1.2


def test_mmpp_mean_rate_weighted_by_sojourns():
    rng = np.random.default_rng(1)
    mmpp = MMPPArrivals([10.0, 30.0], [1.0, 1.0], rng)
    assert mmpp.mean_rate == pytest.approx(20.0)
    gaps = mmpp.sample(40_000)
    assert 1.0 / gaps.mean() == pytest.approx(20.0, rel=0.1)


def test_mmpp_validation(rng):
    with pytest.raises(ValueError):
        MMPPArrivals([1.0], [1.0], rng)
    with pytest.raises(ValueError):
        MMPPArrivals([1.0, -2.0], [1.0, 1.0], rng)


def test_bmodel_self_similar_and_bursty(rng):
    bm = BModelArrivals(rate=200.0, rng=rng, bias=0.8)
    gaps = bm.sample(20_000)
    arrivals = np.cumsum(gaps)
    counts = arrivals_to_counts(arrivals, 0.05)
    assert interarrival_cov(gaps) > 1.5
    assert hurst_rs(counts) > 0.6


def test_bmodel_bias_half_nearly_poisson(rng):
    bm = BModelArrivals(rate=200.0, rng=rng, bias=0.5)
    gaps = bm.sample(10_000)
    assert interarrival_cov(gaps) < 1.3


def test_bmodel_mean_rate_approximate(rng):
    bm = BModelArrivals(rate=100.0, rng=rng, bias=0.7)
    gaps = bm.sample(30_000)
    assert 1.0 / gaps.mean() == pytest.approx(100.0, rel=0.2)


def test_bmodel_validation(rng):
    with pytest.raises(ValueError):
        BModelArrivals(0.0, rng)
    with pytest.raises(ValueError):
        BModelArrivals(10.0, rng, bias=0.4)
    with pytest.raises(ValueError):
        BModelArrivals(10.0, rng, bias=1.0)
