"""Property-based tests of core invariants (hypothesis).

Engine: virtual time is monotone and every scheduled process completes
under arbitrary workloads.  Resource: capacity is never exceeded and
FIFO fairness holds.  Markov: estimated matrices are always stochastic.
KOOZA: synthetic workloads are always structurally valid.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.markov import MarkovChain, QuantileDiscretizer
from repro.queueing import DeterministicArrivals
from repro.simulation import Environment, Resource

# -- engine --------------------------------------------------------------

delays = st.lists(
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    min_size=1,
    max_size=30,
)


@settings(max_examples=50, deadline=None)
@given(delays)
def test_all_processes_complete_and_time_is_monotone(delay_list):
    env = Environment()
    observed_times = []
    finished = []

    def proc(env, delay):
        yield env.timeout(delay)
        observed_times.append(env.now)
        finished.append(delay)

    for d in delay_list:
        env.process(proc(env, d))
    env.run()
    assert len(finished) == len(delay_list)
    assert observed_times == sorted(observed_times)
    assert env.now == max(delay_list)


@settings(max_examples=50, deadline=None)
@given(delays, delays)
def test_nested_process_joins_always_return(outer, inner):
    env = Environment()
    results = []

    def child(env, delay):
        yield env.timeout(delay)
        return delay

    def parent(env, own_delay, child_delay):
        value = yield env.process(child(env, child_delay))
        yield env.timeout(own_delay)
        results.append(value)

    for o, i in zip(outer, inner):
        env.process(parent(env, o, i))
    env.run()
    assert sorted(results) == sorted(inner[: len(outer)])


# -- resources --------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=1, max_value=5),
    st.lists(
        st.floats(min_value=0.01, max_value=2.0, allow_nan=False),
        min_size=1,
        max_size=25,
    ),
)
def test_resource_never_exceeds_capacity(capacity, hold_times):
    env = Environment()
    resource = Resource(env, capacity=capacity)
    peak = [0]

    def user(env, hold):
        with resource.request() as req:
            yield req
            peak[0] = max(peak[0], resource.count)
            yield env.timeout(hold)

    for h in hold_times:
        env.process(user(env, h))
    env.run()
    assert peak[0] <= capacity
    assert resource.count == 0  # everything released
    assert resource.queue_length == 0


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=2,
                max_size=15))
def test_resource_fifo_property(hold_times):
    """Requests submitted in order are granted in order (equal priority)."""
    env = Environment()
    resource = Resource(env, capacity=1)
    grant_order = []

    def user(env, index, hold):
        yield env.timeout(index * 1e-6)  # strictly ordered submission
        with resource.request() as req:
            yield req
            grant_order.append(index)
            yield env.timeout(hold)

    for i, h in enumerate(hold_times):
        env.process(user(env, i, h))
    env.run()
    assert grant_order == sorted(grant_order)


# -- markov -----------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.sampled_from("abcd"), min_size=2, max_size=400),
    st.floats(min_value=0.0, max_value=2.0),
)
def test_estimated_chain_always_stochastic(sequence, smoothing):
    chain = MarkovChain.from_sequence(sequence, smoothing=smoothing)
    rows = chain.transition_matrix.sum(axis=1)
    assert np.allclose(rows, 1.0)
    assert np.all(chain.transition_matrix >= 0)
    pi = chain.stationary_distribution()
    assert pi.sum() == pytest.approx(1.0)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
        min_size=1,
        max_size=300,
    ),
    st.integers(min_value=1, max_value=12),
)
def test_discretizer_representative_round_trip(values, n_bins):
    """transform -> representative always lands back in the same bin."""
    d = QuantileDiscretizer(n_bins).fit(values)
    for v in values[:20]:
        b = d.transform_one(v)
        rep = d.representative(b)
        assert d.transform_one(rep) == b


# -- KOOZA synthetic structure -------------------------------------------------


@pytest.fixture(scope="module")
def kooza_model():
    from repro.core import KoozaTrainer
    from repro.datacenter import run_gfs_workload

    return KoozaTrainer().fit(run_gfs_workload(n_requests=400, seed=101).traces)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_synthetic_requests_always_valid(kooza_model, seed):
    rng = np.random.default_rng(seed)
    requests = kooza_model.synthesize(10, rng)
    previous_time = -1.0
    for request in requests:
        assert request.arrival_time >= previous_time
        previous_time = request.arrival_time
        kinds = request.stage_order()
        assert kinds[0] == "network_rx" and kinds[-1] == "network_tx"
        storage = request.storage_stage
        memory = request.memory_stage
        assert storage.size_bytes > 0 and storage.lbn >= 0
        assert memory.size_bytes > 0 and memory.address >= 0
        assert request.cpu_busy_seconds > 0


def test_deterministic_arrivals_property():
    arrivals = DeterministicArrivals(rate=10.0)
    gaps = [arrivals.next_interarrival() for _ in range(100)]
    assert all(g == 0.1 for g in gaps)
