"""Tests for trace-format adapters and higher-order Markov chains."""

import numpy as np
import pytest

from repro.breadth import StorageModel, StorageProfile
from repro.markov import HigherOrderMarkovChain, MarkovChain
from repro.queueing import fit_distribution
from repro.tracing import (
    READ,
    WRITE,
    RequestRecord,
    StorageRecord,
    read_cluster_jobs,
    read_spc_trace,
    write_cluster_jobs,
    write_spc_trace,
)

# -- SPC adapter -----------------------------------------------------------

SPC_SAMPLE = """\
# ASU,LBA,Size,Opcode,Timestamp
0,1000,4096,R,0.000000
0,1008,4096,R,0.001200
1,500000,65536,W,0.002500
0,1016,8192,r,0.004100
"""


def test_read_spc_trace(tmp_path):
    path = tmp_path / "trace.spc"
    path.write_text(SPC_SAMPLE)
    records = read_spc_trace(path)
    assert len(records) == 4
    assert records[0].op == READ
    assert records[2].op == WRITE
    assert records[2].server == "asu-1"
    assert records[0].lbn == 1000 * 512 // 4096
    timestamps = [r.timestamp for r in records]
    assert timestamps == sorted(timestamps)


def test_spc_round_trip(tmp_path):
    path = tmp_path / "trace.spc"
    path.write_text(SPC_SAMPLE)
    records = read_spc_trace(path)
    out = tmp_path / "copy.spc"
    write_spc_trace(records, out)
    restored = read_spc_trace(out)
    assert [(r.lbn, r.size_bytes, r.op) for r in restored] == [
        (r.lbn, r.size_bytes, r.op) for r in records
    ]


def test_spc_rejects_malformed(tmp_path):
    path = tmp_path / "bad.spc"
    path.write_text("0,1000,4096\n")
    with pytest.raises(ValueError, match="expected 5 fields"):
        read_spc_trace(path)
    path.write_text("0,1000,4096,X,0.0\n")
    with pytest.raises(ValueError, match="opcode"):
        read_spc_trace(path)


def test_spc_trace_feeds_storage_model(tmp_path):
    """An external trace drops straight into the in-breadth stack."""
    rng = np.random.default_rng(0)
    lines = ["# header"]
    lba, t = 0, 0.0
    for i in range(200):
        if rng.random() < 0.3:
            lba = int(rng.integers(0, 1 << 20))
        size = int(rng.choice([4096, 65536]))
        op = "R" if rng.random() < 0.7 else "W"
        t += float(rng.exponential(0.005))
        lines.append(f"0,{lba},{size},{op},{t:.6f}")
        lba += size // 512
    path = tmp_path / "ext.spc"
    path.write_text("\n".join(lines) + "\n")
    records = read_spc_trace(path)
    profile = StorageProfile.characterize(records)
    assert 0.55 < profile.read_fraction < 0.85
    model = StorageModel().fit(records)
    assert model.chain.n_states > 1


# -- cluster job adapter ----------------------------------------------------


def _job_records():
    return [
        RequestRecord(
            request_id=i,
            request_class="job",
            server="cluster",
            arrival_time=i * 10.0,
            completion_time=i * 10.0 + 5.0 + i,
            cpu_busy_seconds=2.0 + i,
            memory_bytes=1 << 30,
        )
        for i in range(20)
    ]


def test_cluster_jobs_round_trip(tmp_path):
    path = write_cluster_jobs(_job_records(), tmp_path / "jobs.csv")
    restored = read_cluster_jobs(path)
    assert len(restored) == 20
    assert restored[3].latency == pytest.approx(8.0)
    assert restored[3].cpu_busy_seconds == pytest.approx(5.0)
    assert restored[0].memory_bytes == 1 << 30


def test_cluster_jobs_feed_fitting(tmp_path):
    rng = np.random.default_rng(1)
    records = []
    t = 0.0
    for i in range(300):
        t += float(rng.exponential(5.0))
        records.append(
            RequestRecord(
                request_id=i,
                request_class="job",
                server="cluster",
                arrival_time=t,
                completion_time=t + float(rng.lognormal(3.0, 1.0)),
                cpu_busy_seconds=1.0,
                memory_bytes=1 << 20,
            )
        )
    path = write_cluster_jobs(records, tmp_path / "jobs.csv")
    restored = read_cluster_jobs(path)
    gaps = np.diff([r.arrival_time for r in restored])
    fit = fit_distribution(gaps)
    assert fit.mean == pytest.approx(5.0, rel=0.2)


def test_cluster_jobs_validation(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("job_id,submit_time\n1,0.0\n")
    with pytest.raises(ValueError, match="missing columns"):
        read_cluster_jobs(path)
    path.write_text(
        "job_id,submit_time,duration,cpu_seconds,memory_bytes\n"
        "1,0.0,-5.0,1.0,100\n"
    )
    with pytest.raises(ValueError, match="negative duration"):
        read_cluster_jobs(path)


# -- higher-order chains ------------------------------------------------------


def test_higher_order_captures_cycle_first_order_cannot():
    # Strict A-A-B cycle: first-order chain from state A is 50/50, an
    # order-2 chain is deterministic.
    sequence = ["a", "a", "b"] * 100
    first = MarkovChain.from_sequence(sequence)
    second = HigherOrderMarkovChain.from_sequence(sequence, order=2)
    assert second.log_likelihood(sequence) > first.log_likelihood(sequence)
    # Deterministic generation reproduces the cycle exactly.
    path = second.sample_path(30, np.random.default_rng(0))
    as_string = "".join(path)
    assert "aab" in as_string
    assert "bb" not in as_string  # impossible under the true process


def test_higher_order_sample_length():
    chain = HigherOrderMarkovChain.from_sequence(list("abcabcabc"), order=2)
    assert len(chain.sample_path(7, np.random.default_rng(1))) == 7


def test_higher_order_state_space_grows():
    rng = np.random.default_rng(2)
    sequence = list(rng.choice(list("abcd"), size=2000))
    order1 = HigherOrderMarkovChain.from_sequence(sequence, order=1)
    order2 = HigherOrderMarkovChain.from_sequence(sequence, order=2)
    assert order2.n_states > order1.n_states
    assert order2.n_parameters > order1.n_parameters


def test_higher_order_validation():
    with pytest.raises(ValueError):
        HigherOrderMarkovChain.from_sequence(["a", "b"], order=0)
    with pytest.raises(ValueError):
        HigherOrderMarkovChain.from_sequence(["a", "b"], order=3)
    chain = HigherOrderMarkovChain.from_sequence(list("ababab"), order=2)
    with pytest.raises(ValueError):
        chain.sample_path(0, np.random.default_rng(0))
    with pytest.raises(ValueError):
        chain.log_likelihood(["a"])
