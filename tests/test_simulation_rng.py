"""Tests for deterministic random streams."""

from repro.simulation import RandomStreams


def test_same_name_same_stream_values():
    a = RandomStreams(seed=7).get("disk").random(5)
    b = RandomStreams(seed=7).get("disk").random(5)
    assert (a == b).all()


def test_different_names_independent():
    streams = RandomStreams(seed=7)
    a = streams.get("disk").random(5)
    b = streams.get("nic").random(5)
    assert not (a == b).all()


def test_different_seeds_differ():
    a = RandomStreams(seed=1).get("x").random(5)
    b = RandomStreams(seed=2).get("x").random(5)
    assert not (a == b).all()


def test_get_is_cached():
    streams = RandomStreams(seed=0)
    assert streams.get("a") is streams.get("a")


def test_creation_order_does_not_matter():
    s1 = RandomStreams(seed=3)
    s1.get("first")
    x = s1.get("second").random(3)

    s2 = RandomStreams(seed=3)
    y = s2.get("second").random(3)  # created without "first"
    assert (x == y).all()


def test_spawn_namespaces_are_disjoint_from_flat_names():
    # A spawned child's streams must NOT alias any flat name of the
    # parent: segment boundaries are part of the stream identity.
    parent = RandomStreams(seed=5)
    child = parent.spawn("machine0")
    a = child.get("disk").random(3)
    b = parent.get("machine0/disk").random(3)
    assert not (a == b).all()


def test_spawned_children_disjoint():
    parent = RandomStreams(seed=5)
    a = parent.spawn("m0").get("disk").random(3)
    b = parent.spawn("m1").get("disk").random(3)
    assert not (a == b).all()


def test_no_collision_across_segment_boundaries():
    # Regression: the old per-character key encoding collapsed these
    # three paths onto the characters of "a/b/c" and returned the SAME
    # stream for all of them.
    root = RandomStreams(seed=11)
    draws = [
        RandomStreams(seed=11).spawn("a").get("b/c").random(8),
        RandomStreams(seed=11).spawn("a/b").get("c").random(8),
        root.get("a/b/c").random(8),
    ]
    for i in range(len(draws)):
        for j in range(i + 1, len(draws)):
            assert not (draws[i] == draws[j]).all()


def test_spawn_is_reproducible_and_order_independent():
    # Replica k's streams are a pure function of (seed, path) — the
    # property the sharded fleet runner depends on for bit-identical
    # results regardless of worker count or creation order.
    a = RandomStreams(seed=9).spawn("replica").spawn("3").get("workload").random(5)
    other = RandomStreams(seed=9)
    other.spawn("replica").spawn("0").get("workload")
    b = other.spawn("replica").spawn("3").get("workload").random(5)
    assert (a == b).all()


def test_prefix_kwarg_matches_spawn():
    # RandomStreams(seed, prefix="x") is the same namespace as
    # RandomStreams(seed).spawn("x") (used by e.g. the replay harness).
    a = RandomStreams(seed=4, prefix="replay").get("disk").random(3)
    b = RandomStreams(seed=4).spawn("replay").get("disk").random(3)
    assert (a == b).all()
