"""Tests for deterministic random streams."""

from repro.simulation import RandomStreams


def test_same_name_same_stream_values():
    a = RandomStreams(seed=7).get("disk").random(5)
    b = RandomStreams(seed=7).get("disk").random(5)
    assert (a == b).all()


def test_different_names_independent():
    streams = RandomStreams(seed=7)
    a = streams.get("disk").random(5)
    b = streams.get("nic").random(5)
    assert not (a == b).all()


def test_different_seeds_differ():
    a = RandomStreams(seed=1).get("x").random(5)
    b = RandomStreams(seed=2).get("x").random(5)
    assert not (a == b).all()


def test_get_is_cached():
    streams = RandomStreams(seed=0)
    assert streams.get("a") is streams.get("a")


def test_creation_order_does_not_matter():
    s1 = RandomStreams(seed=3)
    s1.get("first")
    x = s1.get("second").random(3)

    s2 = RandomStreams(seed=3)
    y = s2.get("second").random(3)  # created without "first"
    assert (x == y).all()


def test_spawn_prefixes_namespace():
    parent = RandomStreams(seed=5)
    child = parent.spawn("machine0")
    a = child.get("disk").random(3)
    b = parent.get("machine0/disk").random(3)
    assert (a == b).all()


def test_spawned_children_disjoint():
    parent = RandomStreams(seed=5)
    a = parent.spawn("m0").get("disk").random(3)
    b = parent.spawn("m1").get("disk").random(3)
    assert not (a == b).all()
