"""Tests for deterministic random streams."""

from repro.simulation import RandomStreams


def test_same_name_same_stream_values():
    a = RandomStreams(seed=7).get("disk").random(5)
    b = RandomStreams(seed=7).get("disk").random(5)
    assert (a == b).all()


def test_different_names_independent():
    streams = RandomStreams(seed=7)
    a = streams.get("disk").random(5)
    b = streams.get("nic").random(5)
    assert not (a == b).all()


def test_different_seeds_differ():
    a = RandomStreams(seed=1).get("x").random(5)
    b = RandomStreams(seed=2).get("x").random(5)
    assert not (a == b).all()


def test_get_is_cached():
    streams = RandomStreams(seed=0)
    assert streams.get("a") is streams.get("a")


def test_creation_order_does_not_matter():
    s1 = RandomStreams(seed=3)
    s1.get("first")
    x = s1.get("second").random(3)

    s2 = RandomStreams(seed=3)
    y = s2.get("second").random(3)  # created without "first"
    assert (x == y).all()


def test_spawn_namespaces_are_disjoint_from_flat_names():
    # A spawned child's streams must NOT alias any flat name of the
    # parent: segment boundaries are part of the stream identity.
    parent = RandomStreams(seed=5)
    child = parent.spawn("machine0")
    a = child.get("disk").random(3)
    b = parent.get("machine0/disk").random(3)
    assert not (a == b).all()


def test_spawned_children_disjoint():
    parent = RandomStreams(seed=5)
    a = parent.spawn("m0").get("disk").random(3)
    b = parent.spawn("m1").get("disk").random(3)
    assert not (a == b).all()


def test_no_collision_across_segment_boundaries():
    # Regression: the old per-character key encoding collapsed these
    # three paths onto the characters of "a/b/c" and returned the SAME
    # stream for all of them.
    root = RandomStreams(seed=11)
    draws = [
        RandomStreams(seed=11).spawn("a").get("b/c").random(8),
        RandomStreams(seed=11).spawn("a/b").get("c").random(8),
        root.get("a/b/c").random(8),
    ]
    for i in range(len(draws)):
        for j in range(i + 1, len(draws)):
            assert not (draws[i] == draws[j]).all()


def test_spawn_is_reproducible_and_order_independent():
    # Replica k's streams are a pure function of (seed, path) — the
    # property the sharded fleet runner depends on for bit-identical
    # results regardless of worker count or creation order.
    a = RandomStreams(seed=9).spawn("replica").spawn("3").get("workload").random(5)
    other = RandomStreams(seed=9)
    other.spawn("replica").spawn("0").get("workload")
    b = other.spawn("replica").spawn("3").get("workload").random(5)
    assert (a == b).all()


def test_prefix_kwarg_matches_spawn():
    # RandomStreams(seed, prefix="x") is the same namespace as
    # RandomStreams(seed).spawn("x") (used by e.g. the replay harness).
    a = RandomStreams(seed=4, prefix="replay").get("disk").random(3)
    b = RandomStreams(seed=4).spawn("replay").get("disk").random(3)
    assert (a == b).all()


# -- block-prefetched (buffered) streams --------------------------------------


def _canonical(state):
    import json

    return json.dumps(state, sort_keys=True, default=str)


def test_buffered_draws_match_scalar_draws_across_kinds():
    # The prefetched block consumes the identical bit-generator
    # sequence as scalar draws, including across kind switches and
    # fallback methods — values AND post-draw generator state agree.
    buffered = RandomStreams(seed=13).buffered("dev")
    scalar = RandomStreams(seed=13).get("dev")

    got = [buffered.random() for _ in range(3)]
    want = [scalar.random() for _ in range(3)]
    got += [buffered.exponential(0.25) for _ in range(4)]
    want += [scalar.exponential(0.25) for _ in range(4)]
    got += [buffered.normal(2.0, 0.5) for _ in range(4)]
    want += [scalar.normal(2.0, 0.5) for _ in range(4)]
    got += [buffered.uniform(1.0, 9.0) for _ in range(3)]
    want += [scalar.uniform(1.0, 9.0) for _ in range(3)]
    got.append(float(buffered.integers(0, 1 << 20)))  # delegated fallback
    want.append(float(scalar.integers(0, 1 << 20)))
    got.append(buffered.random())
    want.append(scalar.random())
    assert got == want

    assert _canonical(buffered.generator.bit_generator.state) == _canonical(
        scalar.bit_generator.state
    )


def test_buffered_never_drawn_round_trips():
    # A buffered stream that was created but never drawn from must
    # snapshot to exactly the fresh-derivation state (the wrapper
    # rewinds its untouched block), and a restored factory must draw
    # the same first value whether accessed buffered or raw.
    streams = RandomStreams(seed=3)
    streams.buffered("hot")
    fresh = RandomStreams(seed=3)
    fresh.get("hot")
    assert _canonical(streams.state()) == _canonical(fresh.state())

    restored = RandomStreams.from_state(streams.state())
    assert restored.buffered("hot").random() == RandomStreams(seed=3).get(
        "hot"
    ).random()


def test_buffered_mid_block_snapshot_continues_exactly():
    # state() mid-block rewinds to the logically-consumed position: a
    # factory restored from the snapshot continues the draw sequence
    # exactly where the original's buffered stream left off.
    streams = RandomStreams(seed=21)
    hot = streams.buffered("arrivals")
    consumed = [hot.exponential(2.0) for _ in range(7)]

    restored = RandomStreams.from_state(streams.state())
    continued = [restored.buffered("arrivals").exponential(2.0) for _ in range(5)]

    scalar = RandomStreams(seed=21).get("arrivals")
    want = [scalar.exponential(2.0) for _ in range(12)]
    assert consumed + continued == want

    # ...and the original keeps drawing correctly after its own sync.
    assert [hot.exponential(2.0) for _ in range(5)] == continued


def test_buffered_is_memoized_and_shares_the_raw_generator():
    streams = RandomStreams(seed=8)
    wrapper = streams.buffered("disk")
    assert streams.buffered("disk") is wrapper
    assert wrapper.generator is streams.get("disk")


def test_fork_discards_outstanding_buffered_blocks():
    # fork() reseeds every generator in place; prefetched values drawn
    # under the old seed must not leak into post-fork draws, and the
    # stale pre-block state must not be restored over the reseed.
    forked = RandomStreams(seed=5)
    hot = forked.buffered("dev")
    hot.random()  # leaves a mostly-unconsumed block outstanding
    forked.fork("branch")

    want = RandomStreams(seed=5).fork("branch").get("dev").random()
    assert hot.random() == want
