"""Tests for model persistence and the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core import (
    KoozaConfig,
    KoozaTrainer,
    ReplayHarness,
    compare_workloads,
    load_model,
    model_from_dict,
    model_to_dict,
    save_model,
)
from repro.datacenter import run_gfs_workload
from repro.tracing import save_traces


@pytest.fixture(scope="module")
def gfs_run():
    return run_gfs_workload(n_requests=400, seed=61)


@pytest.fixture(scope="module")
def model(gfs_run):
    return KoozaTrainer().fit(gfs_run.traces)


# -- serialization -------------------------------------------------------


def test_model_round_trip_is_json_safe(model):
    data = model_to_dict(model)
    json.dumps(data)  # must not raise
    restored = model_from_dict(data)
    assert restored.n_training_requests == model.n_training_requests
    assert restored.n_parameters == model.n_parameters


def test_round_trip_preserves_chains(model):
    restored = model_from_dict(model_to_dict(model))
    assert restored.storage_chain.states == model.storage_chain.states
    assert np.allclose(
        restored.storage_chain.transition_matrix,
        model.storage_chain.transition_matrix,
    )
    assert restored.dependency_queue.default == model.dependency_queue.default


def test_round_trip_generates_identical_workload(model):
    restored = model_from_dict(model_to_dict(model))
    a = model.synthesize(50, np.random.default_rng(5))
    b = restored.synthesize(50, np.random.default_rng(5))
    assert [r.arrival_time for r in a] == [r.arrival_time for r in b]
    assert [r.stage_order() for r in a] == [r.stage_order() for r in b]


def test_restored_model_validates_like_original(gfs_run, model, tmp_path):
    path = save_model(model, tmp_path / "model.json")
    restored = load_model(path)
    synthetic = restored.synthesize(400, np.random.default_rng(7))
    replayed = ReplayHarness(seed=9).replay(synthetic)
    report = compare_workloads(gfs_run.traces, replayed)
    assert report.worst_feature_deviation_pct < 1.0


def test_hierarchical_model_round_trip(gfs_run, tmp_path):
    model = KoozaTrainer(KoozaConfig(hierarchical_storage=True)).fit(
        gfs_run.traces
    )
    restored = load_model(save_model(model, tmp_path / "h.json"))
    assert restored.storage_hierarchy is not None
    assert (
        restored.storage_hierarchy.n_parameters
        == model.storage_hierarchy.n_parameters
    )


def test_unfitted_model_rejected():
    from repro.core import KoozaModel

    with pytest.raises(ValueError):
        model_to_dict(KoozaModel(KoozaConfig()))


def test_unknown_format_version_rejected(model):
    data = model_to_dict(model)
    data["format_version"] = 999
    with pytest.raises(ValueError):
        model_from_dict(data)


# -- CLI -----------------------------------------------------------------


def test_cli_collect_train_validate(tmp_path, capsys):
    traces_dir = tmp_path / "traces"
    model_path = tmp_path / "model.json"
    assert main(
        ["collect", "--app", "gfs", "--requests", "300", "--out",
         str(traces_dir)]
    ) == 0
    assert main(["train", str(traces_dir), "--model", str(model_path)]) == 0
    assert model_path.exists()
    assert main(["describe", str(model_path)]) == 0
    out = capsys.readouterr().out
    assert "DependencyQueue" in out
    assert main(["validate", str(traces_dir), "--model", str(model_path)]) == 0


def test_cli_characterize(gfs_run, tmp_path, capsys):
    traces_dir = tmp_path / "traces"
    save_traces(gfs_run.traces, traces_dir)
    assert main(["characterize", str(traces_dir)]) == 0
    out = capsys.readouterr().out
    assert "storage:" in out
    assert "network:" in out


def test_cli_validate_trains_when_no_model(gfs_run, tmp_path):
    traces_dir = tmp_path / "traces"
    save_traces(gfs_run.traces, traces_dir)
    assert main(["validate", str(traces_dir)]) == 0


def test_cli_unknown_app_rejected(tmp_path):
    with pytest.raises(SystemExit):
        main(["collect", "--app", "nope", "--out", str(tmp_path / "x")])


def test_cli_collect_replicas_identical_across_workers(tmp_path, capsys):
    # Determinism contract of `repro collect --replicas N`: the sharded
    # store and its stitched merge are byte-identical for any --workers
    # value.
    args = ["collect", "--app", "gfs", "--requests", "60", "--replicas", "3"]
    d1 = tmp_path / "w1"
    d2 = tmp_path / "w2"
    assert main(args + ["--workers", "1", "--out", str(d1)]) == 0
    assert main(args + ["--workers", "2", "--out", str(d2)]) == 0
    out = capsys.readouterr().out
    assert "3 replicas" in out
    for shard in ("shard-00000000", "shard-00000001", "shard-00000002"):
        names1 = sorted(p.name for p in (d1 / shard).iterdir())
        assert names1 == sorted(p.name for p in (d2 / shard).iterdir())
        for name in names1:
            f1 = (d1 / shard / name).read_bytes()
            f2 = (d2 / shard / name).read_bytes()
            assert f1 == f2, f"{shard}/{name} differs between worker counts"
    assert main(["merge", str(d1)]) == 0
    assert main(["merge", str(d2), "--out", str(d2 / "merged")]) == 0
    for stream in ("network", "cpu", "memory", "storage", "requests", "spans"):
        f1 = (d1 / "merged" / f"{stream}.jsonl").read_bytes()
        f2 = (d2 / "merged" / f"{stream}.jsonl").read_bytes()
        assert f1 == f2, f"merged {stream}.jsonl differs between worker counts"
    # 3 replicas x 60 requests on one monotonic timeline (+ header line).
    lines = (d1 / "merged" / "requests.jsonl").read_bytes().splitlines()
    assert len(lines) == 181


def test_cli_collect_flat_replicas(tmp_path, capsys):
    # --flat keeps the legacy single-dump layout for multi-replica runs.
    out = tmp_path / "flat"
    assert main(
        ["collect", "--app", "gfs", "--requests", "40", "--replicas", "2",
         "--flat", "--out", str(out)]
    ) == 0
    assert (out / "requests.jsonl").exists()
    assert not list(out.glob("shard-*"))


def test_cli_collect_mapreduce(tmp_path):
    out = tmp_path / "mr"
    assert main(["collect", "--app", "mapreduce", "--out", str(out)]) == 0
    assert (out / "requests.jsonl").exists()


def test_cli_collect_rejects_nonpositive_replicas(tmp_path):
    with pytest.raises(SystemExit):
        main(["collect", "--replicas", "0", "--out", str(tmp_path / "x")])
