"""Unit + property tests for summaries, KS and heavy-tail detection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import hill_estimator, ks_two_sample, summarize


def test_summarize_basic_moments():
    s = summarize([1.0, 2.0, 3.0, 4.0])
    assert s.count == 4
    assert s.mean == pytest.approx(2.5)
    assert s.minimum == 1.0
    assert s.maximum == 4.0
    assert s.p50 == pytest.approx(2.5)


def test_summarize_empty_rejected():
    with pytest.raises(ValueError):
        summarize([])


def test_summarize_single_value_zero_std():
    s = summarize([7.0])
    assert s.std == 0.0
    assert s.cov == 0.0


def test_cov_infinite_for_zero_mean():
    s = summarize([-1.0, 1.0])
    assert s.cov == float("inf")


@given(
    st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=1, max_size=200)
)
def test_summarize_quantiles_ordered(values):
    s = summarize(values)
    assert s.minimum <= s.p50 <= s.p95 <= s.p99 <= s.maximum


def test_ks_identical_samples_low_statistic():
    rng = np.random.default_rng(0)
    a = rng.normal(0, 1, 1000)
    stat, p = ks_two_sample(a, a)
    assert stat == 0.0
    assert p == pytest.approx(1.0)


def test_ks_distinguishes_different_distributions():
    rng = np.random.default_rng(1)
    stat, p = ks_two_sample(rng.normal(0, 1, 500), rng.normal(3, 1, 500))
    assert stat > 0.5
    assert p < 1e-6


def test_ks_same_distribution_high_pvalue():
    rng = np.random.default_rng(2)
    stat, p = ks_two_sample(
        rng.exponential(1, 800), rng.exponential(1, 800)
    )
    assert p > 0.01


def test_ks_empty_rejected():
    with pytest.raises(ValueError):
        ks_two_sample([], [1.0])


def test_hill_estimator_recovers_pareto_alpha():
    rng = np.random.default_rng(3)
    alpha = 1.5
    samples = (1.0 + rng.pareto(alpha, 50_000))
    estimate = hill_estimator(samples, tail_fraction=0.05)
    assert estimate == pytest.approx(alpha, rel=0.15)


def test_hill_estimator_light_tail_is_large():
    rng = np.random.default_rng(4)
    estimate = hill_estimator(rng.exponential(1.0, 20_000) + 1.0)
    assert estimate > 3.0


def test_hill_estimator_validation():
    with pytest.raises(ValueError):
        hill_estimator([1.0, 2.0], tail_fraction=0.9)
    with pytest.raises(ValueError):
        hill_estimator([1.0, 2.0], tail_fraction=0.1)
