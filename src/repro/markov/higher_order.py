"""Higher-order Markov chains via state augmentation.

§4's trade-off — "additional detail increases the model's complexity,
and that remains a trade-off dependent on the application's behaviour"
— in the temporal dimension: a k-order chain conditions each state on
the previous k, capturing patterns a first-order chain cannot (e.g.
strict A-A-B cycles), at a state-space cost that grows with k.
Implemented by lifting to tuples of the last k states and delegating
to :class:`MarkovChain`.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from .chain import MarkovChain

__all__ = ["HigherOrderMarkovChain"]


class HigherOrderMarkovChain:
    """Order-k Markov chain over hashable states."""

    def __init__(self, order: int, lifted_chain: MarkovChain):
        if order < 1:
            raise ValueError(f"order must be >= 1, got {order}")
        self.order = order
        self.lifted_chain = lifted_chain

    @classmethod
    def from_sequence(
        cls,
        sequence: Sequence[Hashable],
        order: int = 2,
        smoothing: float = 0.0,
    ) -> "HigherOrderMarkovChain":
        """Estimate from one observed sequence.

        The lifted chain runs over sliding windows of ``order`` states;
        sequences must therefore have at least ``order + 1``
        observations.
        """
        if order < 1:
            raise ValueError(f"order must be >= 1, got {order}")
        if len(sequence) < order + 1:
            raise ValueError(
                f"need >= {order + 1} observations for order {order}"
            )
        windows = [
            tuple(sequence[i : i + order])
            for i in range(len(sequence) - order + 1)
        ]
        return cls(order, MarkovChain.from_sequence(windows, smoothing=smoothing))

    @property
    def n_states(self) -> int:
        """Lifted states actually observed (the complexity metric)."""
        return self.lifted_chain.n_states

    @property
    def n_parameters(self) -> int:
        n = self.lifted_chain.n_states
        return n * (n - 1)

    def sample_path(
        self, n_steps: int, rng: np.random.Generator
    ) -> list[Hashable]:
        """Generate ``n_steps`` base states (not lifted windows)."""
        if n_steps < 1:
            raise ValueError(f"need >= 1 step, got {n_steps}")
        lifted = self.lifted_chain.sample_path(
            max(1, n_steps - self.order + 1), rng
        )
        path = list(lifted[0])
        for window in lifted[1:]:
            path.append(window[-1])
        return path[:n_steps]

    def log_likelihood(self, sequence: Sequence[Hashable]) -> float:
        """Log-probability of a sequence under the lifted chain.

        Windows unseen in training raise ``KeyError`` (use smoothing at
        estimation time for open-world scoring).
        """
        if len(sequence) < self.order + 1:
            raise ValueError(
                f"need >= {self.order + 1} observations for order {self.order}"
            )
        windows = [
            tuple(sequence[i : i + self.order])
            for i in range(len(sequence) - self.order + 1)
        ]
        return self.lifted_chain.log_likelihood(windows)
