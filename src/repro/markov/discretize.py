"""Continuous-feature discretization into Markov states.

The detail of a KOOZA model is configurable: each continuous feature
(request size, LBN position, CPU utilization) is quantized into a
configurable number of bins, and each bin remembers a representative
value so synthetic generation can decode states back into concrete
feature values.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = ["QuantileDiscretizer"]


class QuantileDiscretizer:
    """Equal-frequency binning with per-bin representative values.

    Quantile (rather than uniform-width) bins keep resolution where the
    data mass is — essential for the heavy-tailed size distributions DC
    workloads exhibit.  Duplicate quantile edges (very discrete data)
    collapse, so the effective bin count can be below ``n_bins``.
    """

    def __init__(self, n_bins: int = 8):
        if n_bins < 1:
            raise ValueError(f"n_bins must be >= 1, got {n_bins}")
        self.n_bins = n_bins
        self.edges_: Optional[np.ndarray] = None
        self.representatives_: Optional[np.ndarray] = None

    def fit(self, values: Sequence[float]) -> "QuantileDiscretizer":
        """Learn bin edges and representatives from training values."""
        data = np.asarray(values, dtype=float)
        if data.size == 0:
            raise ValueError("cannot fit on empty data")
        unique = np.unique(data)
        if unique.size <= self.n_bins:
            # Low-cardinality data (e.g. two fixed request sizes): one
            # exact bin per distinct value, so nothing gets merged.
            if unique.size == 1:
                edges = np.array([unique[0], unique[0] + 1.0])
            else:
                midpoints = (unique[:-1] + unique[1:]) / 2.0
                edges = np.concatenate([[unique[0]], midpoints, [unique[-1] + 1.0]])
        else:
            quantiles = np.linspace(0.0, 1.0, self.n_bins + 1)
            edges = np.unique(np.quantile(data, quantiles))
            if edges.size < 2:
                edges = np.array([edges[0], edges[0] + 1.0])
        self.edges_ = edges
        # Representative of each bin: mean of the training values in it.
        assignments = self._assign(data, edges)
        reps = np.empty(edges.size - 1)
        for b in range(edges.size - 1):
            members = data[assignments == b]
            if members.size:
                reps[b] = members.mean()
            else:
                reps[b] = 0.5 * (edges[b] + edges[b + 1])
        # Float summation can nudge a mean (or a midpoint between two
        # adjacent floats) onto or past the bin's right edge, breaking
        # the transform(representative(b)) == b round trip.  Clamp each
        # representative into its half-open bin; the last bin is closed
        # on the right by _assign's clipping, so its edge is fine.
        for b in range(edges.size - 2):
            hi = np.nextafter(edges[b + 1], -np.inf)
            reps[b] = min(max(reps[b], edges[b]), hi)
        reps[-1] = max(reps[-1], edges[-2])
        self.representatives_ = reps
        return self

    @staticmethod
    def _assign(data: np.ndarray, edges: np.ndarray) -> np.ndarray:
        indices = np.searchsorted(edges, data, side="right") - 1
        return np.clip(indices, 0, edges.size - 2)

    def _check_fitted(self) -> None:
        if self.edges_ is None:
            raise RuntimeError("discretizer is not fitted; call fit() first")

    @property
    def effective_bins(self) -> int:
        """Actual number of bins after duplicate-edge collapsing."""
        self._check_fitted()
        return self.edges_.size - 1

    def transform(self, values: Sequence[float]) -> np.ndarray:
        """Map values to bin indices."""
        self._check_fitted()
        data = np.asarray(values, dtype=float)
        return self._assign(data, self.edges_)

    def transform_one(self, value: float) -> int:
        """Bin index of a single value."""
        return int(self.transform([value])[0])

    def representative(self, bin_index: int) -> float:
        """Decode a bin index to its representative value."""
        self._check_fitted()
        if not 0 <= bin_index < self.representatives_.size:
            raise IndexError(
                f"bin {bin_index} out of range [0, {self.representatives_.size})"
            )
        return float(self.representatives_[bin_index])

    def fit_transform(self, values: Sequence[float]) -> np.ndarray:
        return self.fit(values).transform(values)
