"""Gaussian hidden Markov model trained with Baum-Welch.

Moro et al. (the paper's memory-modeling exemplar) train an Ergodic
Continuous Hidden Markov Model on the sequence of virtual page numbers
treated as floating-point values, then generate synthetic memory
traces from it.  This is that model: ergodic (fully connected) states
with scalar Gaussian emissions, EM training, Viterbi decoding and
generative sampling.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = ["GaussianHMM"]

_LOG_EPS = 1e-300


class GaussianHMM:
    """Ergodic HMM with 1-D Gaussian emissions."""

    def __init__(
        self,
        n_states: int,
        rng: np.random.Generator,
        max_iter: int = 50,
        tol: float = 1e-4,
        min_variance: float = 1e-8,
    ):
        if n_states < 1:
            raise ValueError(f"n_states must be >= 1, got {n_states}")
        self.n_states = n_states
        self.rng = rng
        self.max_iter = max_iter
        self.tol = tol
        self.min_variance = min_variance
        self.means_: Optional[np.ndarray] = None
        self.variances_: Optional[np.ndarray] = None
        self.transition_: Optional[np.ndarray] = None
        self.initial_: Optional[np.ndarray] = None
        self.log_likelihood_: float = float("-inf")

    # -- internals ---------------------------------------------------------

    def _log_emission(self, observations: np.ndarray) -> np.ndarray:
        """(T, K) log N(obs_t | mean_k, var_k)."""
        var = self.variances_
        diff = observations[:, None] - self.means_[None, :]
        return -0.5 * (np.log(2 * np.pi * var)[None, :] + diff**2 / var[None, :])

    def _forward_backward(self, log_b: np.ndarray):
        T, K = log_b.shape
        log_a = np.log(self.transition_ + _LOG_EPS)
        log_pi = np.log(self.initial_ + _LOG_EPS)

        log_alpha = np.empty((T, K))
        log_alpha[0] = log_pi + log_b[0]
        for t in range(1, T):
            log_alpha[t] = log_b[t] + np.logaddexp.reduce(
                log_alpha[t - 1][:, None] + log_a, axis=0
            )
        log_beta = np.zeros((T, K))
        for t in range(T - 2, -1, -1):
            log_beta[t] = np.logaddexp.reduce(
                log_a + (log_b[t + 1] + log_beta[t + 1])[None, :], axis=1
            )
        log_likelihood = float(np.logaddexp.reduce(log_alpha[-1]))
        log_gamma = log_alpha + log_beta - log_likelihood
        return log_alpha, log_beta, log_gamma, log_likelihood

    def _init_params(self, observations: np.ndarray) -> None:
        quantiles = np.linspace(0.05, 0.95, self.n_states)
        self.means_ = np.quantile(observations, quantiles)
        spread = observations.var() / max(1, self.n_states)
        self.variances_ = np.full(self.n_states, max(spread, self.min_variance))
        self.transition_ = np.full(
            (self.n_states, self.n_states), 1.0 / self.n_states
        )
        # Slight self-transition bias breaks symmetry and speeds EM.
        self.transition_ += np.eye(self.n_states)
        self.transition_ /= self.transition_.sum(axis=1, keepdims=True)
        self.initial_ = np.full(self.n_states, 1.0 / self.n_states)

    # -- public API ----------------------------------------------------------

    def fit(self, observations: Sequence[float]) -> "GaussianHMM":
        """Baum-Welch training on one observation sequence."""
        obs = np.asarray(observations, dtype=float)
        if obs.size < 2 * self.n_states:
            raise ValueError(
                f"need >= {2 * self.n_states} observations, got {obs.size}"
            )
        self._init_params(obs)
        T = obs.size
        previous = float("-inf")
        for _ in range(self.max_iter):
            log_b = self._log_emission(obs)
            log_alpha, log_beta, log_gamma, loglik = self._forward_backward(log_b)
            gamma = np.exp(log_gamma)

            # Transition expected counts (xi summed over time).
            log_a = np.log(self.transition_ + _LOG_EPS)
            log_xi_sum = np.full((self.n_states, self.n_states), -np.inf)
            for t in range(T - 1):
                log_xi_t = (
                    log_alpha[t][:, None]
                    + log_a
                    + (log_b[t + 1] + log_beta[t + 1])[None, :]
                    - loglik
                )
                log_xi_sum = np.logaddexp(log_xi_sum, log_xi_t)
            xi_sum = np.exp(log_xi_sum)

            # M-step.
            self.initial_ = gamma[0] / gamma[0].sum()
            denom = gamma[:-1].sum(axis=0) + _LOG_EPS
            self.transition_ = xi_sum / denom[:, None]
            self.transition_ /= self.transition_.sum(axis=1, keepdims=True)
            weights = gamma.sum(axis=0) + _LOG_EPS
            self.means_ = (gamma * obs[:, None]).sum(axis=0) / weights
            diff2 = (obs[:, None] - self.means_[None, :]) ** 2
            self.variances_ = np.maximum(
                (gamma * diff2).sum(axis=0) / weights, self.min_variance
            )

            if abs(loglik - previous) < self.tol * max(1.0, abs(previous)):
                previous = loglik
                break
            previous = loglik
        self.log_likelihood_ = previous
        return self

    def _check_fitted(self) -> None:
        if self.means_ is None:
            raise RuntimeError("HMM is not fitted; call fit() first")

    def score(self, observations: Sequence[float]) -> float:
        """Log-likelihood of a sequence under the fitted model."""
        self._check_fitted()
        obs = np.asarray(observations, dtype=float)
        log_b = self._log_emission(obs)
        _, _, _, loglik = self._forward_backward(log_b)
        return loglik

    def viterbi(self, observations: Sequence[float]) -> np.ndarray:
        """Most likely hidden-state path for a sequence."""
        self._check_fitted()
        obs = np.asarray(observations, dtype=float)
        log_b = self._log_emission(obs)
        log_a = np.log(self.transition_ + _LOG_EPS)
        T = obs.size
        delta = np.empty((T, self.n_states))
        psi = np.zeros((T, self.n_states), dtype=int)
        delta[0] = np.log(self.initial_ + _LOG_EPS) + log_b[0]
        for t in range(1, T):
            scores = delta[t - 1][:, None] + log_a
            psi[t] = scores.argmax(axis=0)
            delta[t] = scores.max(axis=0) + log_b[t]
        path = np.empty(T, dtype=int)
        path[-1] = int(delta[-1].argmax())
        for t in range(T - 2, -1, -1):
            path[t] = psi[t + 1][path[t + 1]]
        return path

    def sample(self, n: int) -> np.ndarray:
        """Generate a synthetic observation sequence of length ``n``."""
        self._check_fitted()
        if n < 1:
            raise ValueError(f"need n >= 1, got {n}")
        states = np.empty(n, dtype=int)
        states[0] = int(self.rng.choice(self.n_states, p=self.initial_))
        for t in range(1, n):
            states[t] = int(
                self.rng.choice(self.n_states, p=self.transition_[states[t - 1]])
            )
        return self.rng.normal(
            self.means_[states], np.sqrt(self.variances_[states])
        )
