"""Hierarchical Markov chains.

The paper notes that "in order to convey more detailed information on
one or multiple aspects of the workload, the simple Markov Chain can be
substituted by a corresponding hierarchical representation" (§4), and
Sankar et al.'s storage model is explicitly hierarchical.  A
:class:`HierarchicalMarkovChain` keeps a coarse top-level chain over
state *groups* (e.g. LBN ranges) and one sub-chain per group over the
fine states observed inside it.
"""

from __future__ import annotations

from typing import Callable, Hashable, Sequence

import numpy as np

from .chain import MarkovChain

__all__ = ["HierarchicalMarkovChain"]


class HierarchicalMarkovChain:
    """Two-level Markov model: group chain + per-group state chains."""

    def __init__(
        self,
        group_chain: MarkovChain,
        sub_chains: dict[Hashable, MarkovChain],
    ):
        missing = [g for g in group_chain.states if g not in sub_chains]
        if missing:
            raise ValueError(f"groups without sub-chains: {missing}")
        self.group_chain = group_chain
        self.sub_chains = dict(sub_chains)

    @classmethod
    def from_sequence(
        cls,
        sequence: Sequence[Hashable],
        group_of: Callable[[Hashable], Hashable],
        smoothing: float = 0.0,
    ) -> "HierarchicalMarkovChain":
        """Estimate both levels from one fine-state sequence.

        The top level sees the group of each observation; each group's
        sub-chain sees the fine states observed while in that group
        (concatenated across visits — a standard simplification).
        """
        if len(sequence) < 2:
            raise ValueError(f"need >= 2 observations, got {len(sequence)}")
        groups = [group_of(s) for s in sequence]
        group_chain = MarkovChain.from_sequence(groups, smoothing=smoothing)
        per_group: dict[Hashable, list[Hashable]] = {}
        for state, group in zip(sequence, groups):
            per_group.setdefault(group, []).append(state)
        sub_chains = {}
        for group, states in per_group.items():
            if len(states) >= 2:
                sub_chains[group] = MarkovChain.from_sequence(
                    states, smoothing=smoothing
                )
            else:
                # Single observation: degenerate one-state chain.
                sub_chains[group] = MarkovChain(
                    [states[0]], np.array([[1.0]]), np.array([1.0])
                )
        return cls(group_chain, sub_chains)

    @property
    def n_parameters(self) -> int:
        """Total free transition parameters across both levels."""
        count = self.group_chain.n_states * (self.group_chain.n_states - 1)
        for chain in self.sub_chains.values():
            count += chain.n_states * (chain.n_states - 1)
        return count

    @property
    def n_fine_states(self) -> int:
        """Total fine states across all groups."""
        return sum(c.n_states for c in self.sub_chains.values())

    def sample_path(
        self, n_steps: int, rng: np.random.Generator
    ) -> list[Hashable]:
        """Generate fine states by walking groups then states in-group."""
        if n_steps < 1:
            raise ValueError(f"need >= 1 step, got {n_steps}")
        path: list[Hashable] = []
        group_cursor: dict[Hashable, Hashable] = {}
        groups = self.group_chain.sample_path(n_steps, rng)
        for group in groups:
            chain = self.sub_chains[group]
            previous = group_cursor.get(group)
            if previous is None:
                state = chain.sample_path(1, rng)[0]
            else:
                state = chain.sample_path(2, rng, start=previous)[1]
            group_cursor[group] = state
            path.append(state)
        return path

    def describe(self) -> str:
        """Readable rendering of both levels."""
        lines = [
            f"HierarchicalMarkovChain: {self.group_chain.n_states} groups, "
            f"{self.n_fine_states} fine states"
        ]
        for group in self.group_chain.states:
            lines.append(f"group {group}: {self.sub_chains[group].n_states} states")
        return "\n".join(lines)
