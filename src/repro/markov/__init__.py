"""Markov modeling library.

Discrete-time Markov chains (KOOZA's storage/CPU/memory models),
quantile discretization of continuous features into states,
hierarchical two-level chains (the paper's configurable-detail
substitution), and the Gaussian HMM used by the ECHMM memory baseline.
"""

from .chain import MarkovChain
from .discretize import QuantileDiscretizer
from .hierarchical import HierarchicalMarkovChain
from .higher_order import HigherOrderMarkovChain
from .hmm import GaussianHMM

__all__ = [
    "GaussianHMM",
    "HierarchicalMarkovChain",
    "HigherOrderMarkovChain",
    "MarkovChain",
    "QuantileDiscretizer",
]
