"""Discrete-time Markov chains over hashable states.

KOOZA models storage, processor and memory behaviour with Markov Chain
Models because "we want to capture the sequence of states and the
probabilities of switching between them" (§4).  This module provides
estimation from observed state sequences, sampling, stationary
analysis and log-likelihood scoring.
"""

from __future__ import annotations

from typing import Hashable, Optional, Sequence

import numpy as np

__all__ = ["MarkovChain"]


class MarkovChain:
    """A first-order Markov chain with estimated transition matrix."""

    def __init__(
        self,
        states: Sequence[Hashable],
        transition_matrix: np.ndarray,
        initial_distribution: Optional[np.ndarray] = None,
    ):
        self.states = list(states)
        if len(set(map(repr, self.states))) != len(self.states):
            raise ValueError("duplicate states")
        matrix = np.asarray(transition_matrix, dtype=float)
        n = len(self.states)
        if matrix.shape != (n, n):
            raise ValueError(f"transition matrix must be {n}x{n}, got {matrix.shape}")
        if np.any(matrix < 0):
            raise ValueError("negative transition probabilities")
        rows = matrix.sum(axis=1)
        if not np.allclose(rows, 1.0, atol=1e-8):
            raise ValueError(f"rows must sum to 1, got sums {rows}")
        self.transition_matrix = matrix
        if initial_distribution is None:
            initial_distribution = np.full(n, 1.0 / n)
        initial = np.asarray(initial_distribution, dtype=float)
        if initial.shape != (n,) or not np.isclose(initial.sum(), 1.0, atol=1e-8):
            raise ValueError("initial distribution must be a length-n simplex point")
        self.initial_distribution = initial
        self._index = {state: i for i, state in enumerate(self.states)}

    @property
    def n_states(self) -> int:
        return len(self.states)

    def index_of(self, state: Hashable) -> int:
        """Row index of a state (KeyError for unknown states)."""
        return self._index[state]

    @classmethod
    def from_sequence(
        cls,
        sequence: Sequence[Hashable],
        smoothing: float = 0.0,
        states: Optional[Sequence[Hashable]] = None,
    ) -> "MarkovChain":
        """Maximum-likelihood estimation from one observed sequence.

        ``smoothing`` adds Laplace pseudo-counts so unseen transitions
        keep non-zero probability.  States default to those observed,
        in first-appearance order.
        """
        if len(sequence) < 2:
            raise ValueError(f"need >= 2 observations, got {len(sequence)}")
        if states is None:
            seen: dict[Hashable, None] = {}
            for s in sequence:
                seen.setdefault(s, None)
            states = list(seen)
        index = {s: i for i, s in enumerate(states)}
        n = len(states)
        counts = np.full((n, n), float(smoothing))
        for a, b in zip(sequence[:-1], sequence[1:]):
            counts[index[a], index[b]] += 1.0
        rows = counts.sum(axis=1, keepdims=True)
        # States never left (absorbing-by-truncation): self-loop.
        matrix = np.where(rows > 0, counts / np.where(rows > 0, rows, 1.0), 0.0)
        for i in range(n):
            if rows[i, 0] == 0:
                matrix[i, i] = 1.0
        initial = np.zeros(n)
        initial[index[sequence[0]]] = 1.0
        return cls(states, matrix, initial)

    def sample_path(
        self,
        n_steps: int,
        rng: np.random.Generator,
        start: Optional[Hashable] = None,
    ) -> list[Hashable]:
        """Generate a state path of length ``n_steps``."""
        if n_steps < 1:
            raise ValueError(f"need >= 1 step, got {n_steps}")
        if start is None:
            current = int(rng.choice(self.n_states, p=self.initial_distribution))
        else:
            current = self.index_of(start)
        path = [self.states[current]]
        for _ in range(n_steps - 1):
            current = int(
                rng.choice(self.n_states, p=self.transition_matrix[current])
            )
            path.append(self.states[current])
        return path

    def stationary_distribution(self) -> np.ndarray:
        """Stationary distribution via the leading left eigenvector.

        For reducible chains this returns one valid stationary
        distribution (the eigenvector numpy finds).
        """
        values, vectors = np.linalg.eig(self.transition_matrix.T)
        closest = int(np.argmin(np.abs(values - 1.0)))
        vector = np.real(vectors[:, closest])
        vector = np.abs(vector)
        total = vector.sum()
        if total == 0:
            raise ValueError("degenerate chain: no stationary distribution found")
        return vector / total

    def log_likelihood(self, sequence: Sequence[Hashable]) -> float:
        """Log-probability of an observed sequence under this chain."""
        if len(sequence) < 1:
            raise ValueError("empty sequence")
        first = self.index_of(sequence[0])
        p0 = self.initial_distribution[first]
        total = float(np.log(p0 + 1e-300))
        for a, b in zip(sequence[:-1], sequence[1:]):
            p = self.transition_matrix[self.index_of(a), self.index_of(b)]
            total += float(np.log(p + 1e-300))
        return total

    def describe(self) -> str:
        """Human-readable rendering (used by the Figure 2 bench)."""
        lines = [f"MarkovChain over {self.n_states} states:"]
        for i, state in enumerate(self.states):
            row = self.transition_matrix[i]
            top = np.argsort(row)[::-1][:3]
            arcs = ", ".join(
                f"-> {self.states[j]}: {row[j]:.2f}" for j in top if row[j] > 0
            )
            lines.append(f"  {state}: {arcs}")
        return "\n".join(lines)
