"""In-breadth CPU modeling (Abrahao et al.; Huang et al.).

Models the CPU-utilization time series of a server: windowed
utilization extraction from CPU burst records, Abrahao-style
periodic/noisy/spiky classification (after optional PCA over windowed
shape vectors), a Markov chain over utilization levels, and synthetic
utilization-series generation.  A simple next-window predictor covers
the Huang et al. DVFS use case (predict low-utilization windows).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..markov import MarkovChain, QuantileDiscretizer
from ..stats import classify_utilization_pattern
from ..tracing import CpuRecord

__all__ = ["CpuUtilizationModel", "utilization_series"]


def utilization_series(
    records: Sequence[CpuRecord],
    window: float,
    cores: int = 1,
    end_time: Optional[float] = None,
    origin: Optional[float] = None,
) -> np.ndarray:
    """Per-window CPU utilization (fraction of capacity) from bursts.

    Bursts are attributed to the window containing their start — an
    approximation that matches how coarse utilization counters sample.
    ``origin`` anchors window 0 explicitly (e.g. ``0.0`` for the
    simulated clock); the default anchors at the earliest burst, the
    historical behavior.  An explicit origin uses the same truncation
    arithmetic as :class:`repro.stats.streaming.WindowedCounter`, which
    is what lets the streaming characterization reproduce this series.
    """
    if not records:
        raise ValueError("no CPU records")
    if window <= 0:
        raise ValueError(f"window must be > 0, got {window}")
    if cores < 1:
        raise ValueError(f"cores must be >= 1, got {cores}")
    start = origin if origin is not None else min(r.timestamp for r in records)
    end = end_time if end_time is not None else max(
        r.timestamp + r.busy_seconds for r in records
    )
    n_windows = max(1, int(np.ceil((end - start) / window)))
    busy = np.zeros(n_windows)
    for r in records:
        index = min(n_windows - 1, int((r.timestamp - start) / window))
        busy[index] += r.busy_seconds
    return np.clip(busy / (window * cores), 0.0, 1.0)


class CpuUtilizationModel:
    """Markov model over discretized utilization levels."""

    def __init__(self, n_levels: int = 8):
        self.n_levels = n_levels
        self.discretizer = QuantileDiscretizer(n_levels)
        self.chain: Optional[MarkovChain] = None
        self.pattern: Optional[str] = None

    def fit(self, utilization: Sequence[float]) -> "CpuUtilizationModel":
        """Train on a windowed utilization series in [0, 1]."""
        series = np.asarray(utilization, dtype=float)
        if series.size < 8:
            raise ValueError(f"need >= 8 windows, got {series.size}")
        if np.any((series < 0) | (series > 1)):
            raise ValueError("utilization must be within [0, 1]")
        self.discretizer.fit(series)
        states = [int(s) for s in self.discretizer.transform(series)]
        self.chain = MarkovChain.from_sequence(states)
        self.pattern = classify_utilization_pattern(series)
        return self

    def _check_fitted(self) -> None:
        if self.chain is None:
            raise RuntimeError("model is not fitted; call fit() first")

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Generate a synthetic utilization series of ``n`` windows."""
        self._check_fitted()
        path = self.chain.sample_path(n, rng)
        return np.array([self.discretizer.representative(s) for s in path])

    def predict_next(self, recent: Sequence[float]) -> float:
        """Expected utilization of the next window given the latest one.

        The one-step predictor behind DVFS decisions: switch to a low
        power state when the predicted utilization is low.
        """
        self._check_fitted()
        state = self.discretizer.transform_one(float(recent[-1]))
        try:
            row = self.chain.transition_matrix[self.chain.index_of(state)]
        except KeyError:
            # Level never seen in training: fall back to the last value.
            return float(recent[-1])
        expectation = sum(
            p * self.discretizer.representative(s)
            for p, s in zip(row, self.chain.states)
        )
        return float(expectation)

    def stationary_mean(self) -> float:
        """Long-run mean utilization implied by the chain."""
        self._check_fitted()
        pi = self.chain.stationary_distribution()
        return float(
            sum(
                p * self.discretizer.representative(s)
                for p, s in zip(pi, self.chain.states)
            )
        )
