"""Statistics-driven cloud workload modeling (Ganapathi et al.).

Kernel Canonical Correlation Analysis: project job *features* (input
size, task counts, shuffle volume) and job *performance* (execution
time, ...) into maximally correlated subspaces, then predict a new
job's performance from its neighbors in projection space.  This is the
KCCA recipe of "Statistics-Driven Workload Modeling for the Cloud",
implemented from scratch on numpy (RBF kernels, regularized dual CCA).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = ["KccaModel", "rbf_kernel"]


def rbf_kernel(
    a: np.ndarray, b: np.ndarray, bandwidth: float
) -> np.ndarray:
    """Gaussian kernel matrix K[i, j] = exp(-||a_i - b_j||^2 / 2s^2)."""
    if bandwidth <= 0:
        raise ValueError(f"bandwidth must be > 0, got {bandwidth}")
    sq = (
        np.sum(a**2, axis=1)[:, None]
        + np.sum(b**2, axis=1)[None, :]
        - 2.0 * a @ b.T
    )
    return np.exp(-np.maximum(sq, 0.0) / (2.0 * bandwidth**2))


def _median_bandwidth(X: np.ndarray) -> float:
    """Median pairwise distance — the standard RBF bandwidth heuristic."""
    n = X.shape[0]
    if n < 2:
        return 1.0
    sq = (
        np.sum(X**2, axis=1)[:, None]
        + np.sum(X**2, axis=1)[None, :]
        - 2.0 * X @ X.T
    )
    distances = np.sqrt(np.maximum(sq[np.triu_indices(n, k=1)], 0.0))
    positive = distances[distances > 0]
    return float(np.median(positive)) if positive.size else 1.0


class KccaModel:
    """KCCA projection + nearest-neighbor performance prediction."""

    def __init__(
        self,
        n_components: int = 2,
        regularization: float = 1e-3,
        n_neighbors: int = 3,
    ):
        if n_components < 1:
            raise ValueError(f"n_components must be >= 1, got {n_components}")
        if regularization <= 0:
            raise ValueError("regularization must be > 0")
        if n_neighbors < 1:
            raise ValueError(f"n_neighbors must be >= 1, got {n_neighbors}")
        self.n_components = n_components
        self.regularization = regularization
        self.n_neighbors = n_neighbors
        self._X: Optional[np.ndarray] = None
        self._Y: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None  # dual coefs, x side
        self._x_projections: Optional[np.ndarray] = None
        self.correlations_: Optional[np.ndarray] = None
        self._x_mean: Optional[np.ndarray] = None
        self._x_scale: Optional[np.ndarray] = None
        self._bandwidth: float = 1.0

    def _standardize(self, X: np.ndarray) -> np.ndarray:
        return (X - self._x_mean) / self._x_scale

    def fit(
        self,
        features: Sequence[Sequence[float]],
        performance: Sequence[Sequence[float]],
    ) -> "KccaModel":
        """Learn projections from (n_jobs, d_x) features and
        (n_jobs, d_y) performance vectors."""
        X = np.atleast_2d(np.asarray(features, dtype=float))
        Y = np.atleast_2d(np.asarray(performance, dtype=float))
        if Y.ndim == 1:
            Y = Y[:, None]
        n = X.shape[0]
        if n != Y.shape[0]:
            raise ValueError(f"feature/performance mismatch: {n} vs {Y.shape[0]}")
        if n < max(4, self.n_components + 1):
            raise ValueError(f"need more jobs than components, got {n}")
        self._x_mean = X.mean(axis=0)
        scale = X.std(axis=0)
        self._x_scale = np.where(scale > 0, scale, 1.0)
        Xs = self._standardize(X)
        y_scale = np.where(Y.std(axis=0) > 0, Y.std(axis=0), 1.0)
        Ys = (Y - Y.mean(axis=0)) / y_scale

        self._bandwidth = _median_bandwidth(Xs)
        Kx = rbf_kernel(Xs, Xs, self._bandwidth)
        Ky = rbf_kernel(Ys, Ys, max(_median_bandwidth(Ys), 1e-6))
        # Center the kernels in feature space.
        H = np.eye(n) - np.full((n, n), 1.0 / n)
        Kx = H @ Kx @ H
        Ky = H @ Ky @ H

        reg = self.regularization * n
        inv_x = np.linalg.inv(Kx + reg * np.eye(n))
        inv_y = np.linalg.inv(Ky + reg * np.eye(n))
        M = inv_x @ Ky @ inv_y @ Kx
        eigvals, eigvecs = np.linalg.eig(M)
        order = np.argsort(-np.real(eigvals))[: self.n_components]
        self.correlations_ = np.sqrt(
            np.clip(np.real(eigvals[order]), 0.0, 1.0)
        )
        alpha = np.real(eigvecs[:, order])
        # Normalize projections to unit variance per component.
        projections = Kx @ alpha
        norms = projections.std(axis=0)
        alpha = alpha / np.where(norms > 0, norms, 1.0)
        self._alpha = alpha
        self._X = Xs
        self._Y = Y
        self._x_projections = Kx @ alpha
        return self

    def _check_fitted(self) -> None:
        if self._alpha is None:
            raise RuntimeError("KCCA is not fitted; call fit() first")

    def project(self, features: Sequence[Sequence[float]]) -> np.ndarray:
        """Project new jobs into the canonical feature subspace."""
        self._check_fitted()
        X = np.atleast_2d(np.asarray(features, dtype=float))
        Xs = self._standardize(X)
        k = rbf_kernel(Xs, self._X, self._bandwidth)
        k = k - k.mean(axis=1, keepdims=True)
        return k @ self._alpha

    def predict(self, features: Sequence[Sequence[float]]) -> np.ndarray:
        """Predict performance vectors via neighbors in projection space."""
        self._check_fitted()
        Z = self.project(features)
        out = np.empty((Z.shape[0], self._Y.shape[1]))
        k = min(self.n_neighbors, self._x_projections.shape[0])
        for i, z in enumerate(Z):
            distances = np.linalg.norm(self._x_projections - z, axis=1)
            nearest = np.argsort(distances)[:k]
            weights = 1.0 / (distances[nearest] + 1e-12)
            out[i] = (self._Y[nearest] * weights[:, None]).sum(
                axis=0
            ) / weights.sum()
        return out
