"""In-breadth network modeling (Feitelson; Sengupta et al.).

Characterizes and models the request-arrival stream at a server:
KS-selected interarrival distribution fitting, request-size modeling,
burstiness / self-similarity characterization, and synthetic arrival
generation.  ``poissonness`` quantifies how far the stream diverges
from Poisson (Sengupta et al.'s headline observation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..markov import MarkovChain, QuantileDiscretizer
from ..queueing import (
    DistributionArrivals,
    EmpiricalArrivals,
    FittedDistribution,
    fit_distribution,
)
from ..stats import (
    arrivals_to_counts,
    hurst_rs,
    index_of_dispersion,
    interarrival_cov,
)
from ..tracing import NetworkRecord

__all__ = ["NetworkCharacterization", "NetworkTrafficModel"]


@dataclass(frozen=True)
class NetworkCharacterization:
    """Feitelson-style fingerprint of an arrival stream."""

    n_messages: int
    mean_rate: float
    interarrival_cov: float
    index_of_dispersion: float
    hurst: Optional[float]
    mean_size: float
    best_fit_family: Optional[str]
    ks_statistic: Optional[float]

    @property
    def poissonness(self) -> float:
        """How Poisson the stream looks: 1.0 = exactly (CoV and IDC
        both 1); larger values = burstier."""
        return max(self.interarrival_cov, self.index_of_dispersion)


class NetworkTrafficModel:
    """Fit + generate model for one server's arrival stream."""

    def __init__(self, size_bins: int = 6):
        self.size_bins = size_bins
        self.size_discretizer = QuantileDiscretizer(size_bins)
        self.size_chain: Optional[MarkovChain] = None
        self.interarrival_fit: Optional[FittedDistribution] = None
        self._interarrivals: Optional[np.ndarray] = None
        self.characterization: Optional[NetworkCharacterization] = None

    @staticmethod
    def _arrival_records(
        records: Sequence[NetworkRecord],
    ) -> list[NetworkRecord]:
        arrivals = [r for r in records if r.direction == "rx"]
        return sorted(arrivals, key=lambda r: r.timestamp)

    def fit(self, records: Sequence[NetworkRecord]) -> "NetworkTrafficModel":
        """Train on a network trace (uses the rx/arrival direction)."""
        arrivals = self._arrival_records(records)
        if len(arrivals) < 16:
            raise ValueError(f"need >= 16 arrivals, got {len(arrivals)}")
        times = np.array([r.timestamp for r in arrivals])
        gaps = np.diff(times)
        gaps = gaps[gaps >= 0]
        self._interarrivals = gaps[gaps > 0]
        sizes = [r.size_bytes for r in arrivals]
        self.size_discretizer.fit(sizes)
        states = [int(s) for s in self.size_discretizer.transform(sizes)]
        self.size_chain = MarkovChain.from_sequence(states)

        try:
            self.interarrival_fit = fit_distribution(self._interarrivals)
        except ValueError:
            self.interarrival_fit = None

        span = times[-1] - times[0]
        bin_width = max(span / 64.0, float(np.median(gaps)) * 4 if gaps.size else 1.0)
        hurst = None
        try:
            counts = arrivals_to_counts(times, span / 256.0 if span > 0 else 1.0)
            hurst = hurst_rs(counts)
        except ValueError:
            pass
        self.characterization = NetworkCharacterization(
            n_messages=len(arrivals),
            mean_rate=len(arrivals) / span if span > 0 else 0.0,
            interarrival_cov=interarrival_cov(self._interarrivals),
            index_of_dispersion=index_of_dispersion(times, bin_width),
            hurst=hurst,
            mean_size=float(np.mean(sizes)),
            best_fit_family=(
                self.interarrival_fit.family if self.interarrival_fit else None
            ),
            ks_statistic=(
                self.interarrival_fit.ks_statistic if self.interarrival_fit else None
            ),
        )
        return self

    def _check_fitted(self) -> None:
        if self.size_chain is None:
            raise RuntimeError("model is not fitted; call fit() first")

    def arrival_process(self, rng: np.random.Generator):
        """An :class:`ArrivalProcess` reproducing the fitted stream.

        Uses the KS-selected distribution when one converged, falling
        back to empirical bootstrap.
        """
        self._check_fitted()
        if self.interarrival_fit is not None:
            return DistributionArrivals(self.interarrival_fit.frozen, rng)
        return EmpiricalArrivals(self._interarrivals, rng)

    def generate(
        self, n: int, rng: np.random.Generator
    ) -> list[tuple[float, int]]:
        """Synthetic (arrival_time, size_bytes) pairs."""
        self._check_fitted()
        process = self.arrival_process(rng)
        path = self.size_chain.sample_path(n, rng)
        out = []
        t = 0.0
        for state in path:
            t += process.next_interarrival()
            size = max(1, int(self.size_discretizer.representative(state)))
            out.append((t, size))
        return out
