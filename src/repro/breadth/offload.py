"""Protocol-offload throughput modeling (Patwardhan et al.).

"Communication Breakdown": break per-request CPU time into networking
(protocol) overhead and data processing, then predict the throughput
improvement from offloading the protocol work to hardware.  Their
conclusion, reproduced analytically: offload helps *static* content
serving (protocol-dominated CPU) and is marginal for *dynamic*
applications (data-processing-dominated).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CpuBreakdown", "OffloadModel"]


@dataclass(frozen=True)
class CpuBreakdown:
    """Per-request CPU time split into protocol and data processing."""

    protocol_seconds: float
    data_seconds: float

    def __post_init__(self) -> None:
        if self.protocol_seconds < 0 or self.data_seconds < 0:
            raise ValueError("CPU components must be non-negative")
        if self.protocol_seconds + self.data_seconds == 0:
            raise ValueError("breakdown is empty")

    @property
    def total(self) -> float:
        return self.protocol_seconds + self.data_seconds

    @property
    def protocol_fraction(self) -> float:
        return self.protocol_seconds / self.total

    @property
    def application_kind(self) -> str:
        """Patwardhan's taxonomy: protocol-dominated = static serving."""
        return "static" if self.protocol_fraction >= 0.5 else "dynamic"


class OffloadModel:
    """Predicts CPU-bound throughput improvement from protocol offload."""

    def __init__(self, breakdown: CpuBreakdown, cores: int = 1):
        if cores < 1:
            raise ValueError(f"need >= 1 core, got {cores}")
        self.breakdown = breakdown
        self.cores = cores

    def throughput(self, offload_fraction: float = 0.0) -> float:
        """Requests/s at the CPU bound with a fraction of protocol work
        moved to hardware."""
        if not 0.0 <= offload_fraction <= 1.0:
            raise ValueError(
                f"offload fraction must be in [0,1], got {offload_fraction}"
            )
        remaining = (
            self.breakdown.protocol_seconds * (1.0 - offload_fraction)
            + self.breakdown.data_seconds
        )
        if remaining == 0:
            return float("inf")
        return self.cores / remaining

    def speedup(self, offload_fraction: float = 1.0) -> float:
        """Throughput ratio vs no offload (Amdahl over protocol time)."""
        return self.throughput(offload_fraction) / self.throughput(0.0)

    def worthwhile(
        self, offload_fraction: float = 1.0, threshold: float = 1.2
    ) -> bool:
        """Patwardhan's verdict: is the offload win above ``threshold``?"""
        return self.speedup(offload_fraction) >= threshold
