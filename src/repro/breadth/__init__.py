"""In-breadth modeling: per-subsystem workload models.

The paper's first family: models of the workload's behaviour in
specific system parts — storage (Sankar, Gulati), CPU (Abrahao,
Huang), memory (Barroso, Moro's ECHMM) and network (Feitelson,
Sengupta) — plus the combined four-model workload generator used as
the in-breadth baseline in the comparison benches.
"""

from .combined import InBreadthWorkloadModel
from .cpu import CpuUtilizationModel, utilization_series
from .kcca import KccaModel, rbf_kernel
from .memory import EchmmMemoryModel, MemoryAccessModel
from .network import NetworkCharacterization, NetworkTrafficModel
from .offload import CpuBreakdown, OffloadModel
from .storage import StorageModel, StorageProfile, seek_distances

__all__ = [
    "CpuBreakdown",
    "CpuUtilizationModel",
    "OffloadModel",
    "EchmmMemoryModel",
    "InBreadthWorkloadModel",
    "KccaModel",
    "rbf_kernel",
    "MemoryAccessModel",
    "NetworkCharacterization",
    "NetworkTrafficModel",
    "StorageModel",
    "StorageProfile",
    "seek_distances",
    "utilization_series",
]
