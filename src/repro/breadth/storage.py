"""In-breadth storage modeling (Sankar et al.; Gulati et al.).

Two artifacts:

* :class:`StorageProfile` — Gulati-style characterization of an I/O
  stream: randomness (seek distances), I/O sizes, read:write ratio,
  outstanding I/Os, interarrivals.
* :class:`StorageModel` — Sankar-style state-diagram model: a Markov
  chain over (op, size-bin, seek-distance-bin) states capturing I/O
  characteristics plus spatial and temporal locality, able to generate
  representative synthetic storage traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..markov import MarkovChain, QuantileDiscretizer
from ..queueing import FittedDistribution, fit_distribution
from ..stats import summarize
from ..tracing import READ, StorageRecord

__all__ = ["StorageModel", "StorageProfile", "seek_distances"]


def seek_distances(records: Sequence[StorageRecord]) -> np.ndarray:
    """Signed LBN gaps between consecutive I/Os (0 = fully sequential).

    The gap is measured from the *end* of the previous I/O, so a
    perfectly sequential stream yields zeros.
    """
    if len(records) < 2:
        raise ValueError(f"need >= 2 records, got {len(records)}")
    gaps = np.empty(len(records) - 1)
    block = 4096
    for i in range(1, len(records)):
        prev = records[i - 1]
        prev_end = prev.lbn + max(1, -(-prev.size_bytes // block))
        gaps[i - 1] = records[i].lbn - prev_end
    return gaps


@dataclass(frozen=True)
class StorageProfile:
    """Gulati-style workload fingerprint of an I/O stream."""

    n_ios: int
    read_fraction: float
    mean_size: float
    p95_size: float
    sequential_fraction: float  # |seek| == 0
    mean_abs_seek: float
    mean_queue_depth: float
    mean_interarrival: float

    @classmethod
    def characterize(cls, records: Sequence[StorageRecord]) -> "StorageProfile":
        if len(records) < 2:
            raise ValueError(f"need >= 2 records, got {len(records)}")
        sizes = summarize([r.size_bytes for r in records])
        seeks = seek_distances(records)
        times = np.array([r.timestamp for r in records])
        gaps = np.diff(np.sort(times))
        return cls(
            n_ios=len(records),
            read_fraction=float(
                np.mean([1.0 if r.op == READ else 0.0 for r in records])
            ),
            mean_size=sizes.mean,
            p95_size=sizes.p95,
            sequential_fraction=float(np.mean(seeks == 0)),
            mean_abs_seek=float(np.mean(np.abs(seeks))),
            mean_queue_depth=float(np.mean([r.queue_depth for r in records])),
            mean_interarrival=float(gaps.mean()) if gaps.size else 0.0,
        )


class StorageModel:
    """State-diagram storage model with synthetic trace generation."""

    def __init__(self, size_bins: int = 6, seek_bins: int = 6):
        self.size_bins = size_bins
        self.seek_bins = seek_bins
        self.chain: Optional[MarkovChain] = None
        self.size_discretizer = QuantileDiscretizer(size_bins)
        self.seek_discretizer = QuantileDiscretizer(seek_bins)
        self.interarrival_fit: Optional[FittedDistribution] = None
        self._interarrivals: Optional[np.ndarray] = None

    def _states(self, records: Sequence[StorageRecord]) -> list[tuple]:
        sizes = [r.size_bytes for r in records]
        seeks = np.concatenate([[0.0], seek_distances(records)])
        size_states = self.size_discretizer.transform(sizes)
        seek_states = self.seek_discretizer.transform(seeks)
        return [
            (r.op, int(sb), int(kb))
            for r, sb, kb in zip(records, size_states, seek_states)
        ]

    def fit(self, records: Sequence[StorageRecord]) -> "StorageModel":
        """Train on a time-ordered storage trace."""
        if len(records) < 8:
            raise ValueError(f"need >= 8 records, got {len(records)}")
        records = sorted(records, key=lambda r: r.timestamp)
        self.size_discretizer.fit([r.size_bytes for r in records])
        self.seek_discretizer.fit(np.concatenate([[0.0], seek_distances(records)]))
        self.chain = MarkovChain.from_sequence(self._states(records))
        times = np.array([r.timestamp for r in records])
        gaps = np.diff(times)
        gaps = gaps[gaps > 0]
        self._interarrivals = gaps
        try:
            self.interarrival_fit = fit_distribution(gaps)
        except ValueError:
            self.interarrival_fit = None  # fall back to bootstrap
        return self

    def _check_fitted(self) -> None:
        if self.chain is None:
            raise RuntimeError("StorageModel is not fitted; call fit() first")

    def generate(
        self, n: int, rng: np.random.Generator, start_lbn: int = 0
    ) -> list[StorageRecord]:
        """Generate a synthetic storage trace of ``n`` I/Os."""
        self._check_fitted()
        if n < 1:
            raise ValueError(f"need n >= 1, got {n}")
        path = self.chain.sample_path(n, rng)
        if self.interarrival_fit is not None:
            gaps = self.interarrival_fit.sample(n, rng)
        else:
            gaps = rng.choice(self._interarrivals, size=n)
        out = []
        lbn = start_lbn
        t = 0.0
        block = 4096
        for (op, size_state, seek_state), gap in zip(path, gaps):
            size = max(1, int(self.size_discretizer.representative(size_state)))
            seek = int(self.seek_discretizer.representative(seek_state))
            lbn = max(0, lbn + seek)
            t += float(gap)
            out.append(
                StorageRecord(
                    request_id=-1,
                    server="synthetic",
                    timestamp=t,
                    lbn=lbn,
                    size_bytes=size,
                    op=op,
                )
            )
            lbn += max(1, -(-size // block))
        return out
