"""In-breadth memory modeling (Barroso et al.; Moro et al.).

Two models over the memory trace stream:

* :class:`MemoryAccessModel` — Markov chain over
  (op, size-bin, bank) states: the paper's own memory model
  ("spatial locality in the granularity of ... Memory Banks").
* :class:`EchmmMemoryModel` — Moro et al.'s approach: treat the
  address stream as floating-point observations of an ergodic
  continuous HMM, then generate synthetic address traces.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..markov import GaussianHMM, MarkovChain, QuantileDiscretizer
from ..tracing import MemoryRecord

__all__ = ["EchmmMemoryModel", "MemoryAccessModel"]


class MemoryAccessModel:
    """Markov chain over (op, size-bin, bank) memory-access states."""

    def __init__(self, size_bins: int = 6):
        self.size_bins = size_bins
        self.size_discretizer = QuantileDiscretizer(size_bins)
        self.chain: Optional[MarkovChain] = None

    def fit(self, records: Sequence[MemoryRecord]) -> "MemoryAccessModel":
        """Train on a time-ordered memory trace."""
        if len(records) < 8:
            raise ValueError(f"need >= 8 records, got {len(records)}")
        records = sorted(records, key=lambda r: r.timestamp)
        self.size_discretizer.fit([r.size_bytes for r in records])
        states = [
            (r.op, int(self.size_discretizer.transform_one(r.size_bytes)), r.bank)
            for r in records
        ]
        self.chain = MarkovChain.from_sequence(states)
        return self

    def _check_fitted(self) -> None:
        if self.chain is None:
            raise RuntimeError("model is not fitted; call fit() first")

    def generate(
        self, n: int, rng: np.random.Generator
    ) -> list[tuple[str, int, int]]:
        """Synthetic (op, size_bytes, bank) access tuples."""
        self._check_fitted()
        path = self.chain.sample_path(n, rng)
        return [
            (op, max(1, int(self.size_discretizer.representative(sb))), bank)
            for op, sb, bank in path
        ]

    def bank_distribution(self) -> dict[int, float]:
        """Stationary probability mass per bank."""
        self._check_fitted()
        pi = self.chain.stationary_distribution()
        out: dict[int, float] = {}
        for p, (_, _, bank) in zip(pi, self.chain.states):
            out[bank] = out.get(bank, 0.0) + float(p)
        return out


class EchmmMemoryModel:
    """Moro-style ECHMM over the raw address stream."""

    def __init__(self, n_states: int = 4, max_iter: int = 30):
        self.n_states = n_states
        self.max_iter = max_iter
        self.hmm: Optional[GaussianHMM] = None
        self._scale: float = 1.0

    def fit(
        self, addresses: Sequence[int], rng: np.random.Generator
    ) -> "EchmmMemoryModel":
        """Train on a virtual-address (or page-number) sequence."""
        data = np.asarray(addresses, dtype=float)
        if data.size < 4 * self.n_states:
            raise ValueError(
                f"need >= {4 * self.n_states} addresses, got {data.size}"
            )
        # Normalize for EM conditioning; remember the scale to decode.
        self._scale = max(1.0, float(data.max()))
        self.hmm = GaussianHMM(self.n_states, rng, max_iter=self.max_iter)
        self.hmm.fit(data / self._scale)
        return self

    def _check_fitted(self) -> None:
        if self.hmm is None:
            raise RuntimeError("model is not fitted; call fit() first")

    def generate(self, n: int) -> np.ndarray:
        """Synthetic address sequence of length ``n``."""
        self._check_fitted()
        return np.maximum(0, self.hmm.sample(n) * self._scale).astype(np.int64)

    def score(self, addresses: Sequence[int]) -> float:
        """Log-likelihood of an address sequence under the model."""
        self._check_fitted()
        data = np.asarray(addresses, dtype=float) / self._scale
        return self.hmm.score(data)
