"""The pure in-breadth workload model (the paper's first column).

An in-breadth model keeps the four per-subsystem models but has no
information about the application's structure: no time-dependency
queue and no cross-subsystem coupling ("the most obvious disadvantage
of this method is its inability to capture the time dependencies of a
request ... which can result in invalid stressing of the system",
§3.1).  Implemented as a KOOZA model with both structural components
disabled, which makes the A1/A2 comparisons exact ablations.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.model import KoozaConfig, KoozaModel
from ..core.synthetic import SyntheticRequest
from ..core.trainer import KoozaTrainer
from ..tracing import TraceSet

__all__ = ["InBreadthWorkloadModel"]


class InBreadthWorkloadModel:
    """Four independent subsystem models, no structural information."""

    def __init__(self, config: Optional[KoozaConfig] = None):
        base = config or KoozaConfig()
        self.config = KoozaConfig(
            network_size_bins=base.network_size_bins,
            storage_size_bins=base.storage_size_bins,
            storage_seek_bins=base.storage_seek_bins,
            memory_size_bins=base.memory_size_bins,
            cpu_utilization_bins=base.cpu_utilization_bins,
            couple_subsystems=False,
            use_dependency_queue=False,
            hierarchical_storage=base.hierarchical_storage,
            smoothing=base.smoothing,
        )
        self._model: Optional[KoozaModel] = None

    def fit(self, traces: TraceSet) -> "InBreadthWorkloadModel":
        """Train the four subsystem models on subsystem traces."""
        self._model = KoozaTrainer(self.config).fit(traces)
        return self

    @property
    def model(self) -> KoozaModel:
        if self._model is None:
            raise RuntimeError("model is not fitted; call fit() first")
        return self._model

    def synthesize(
        self, n: int, rng: np.random.Generator, start_time: float = 0.0
    ) -> list[SyntheticRequest]:
        """Generate requests with independently sampled subsystem
        features and an arbitrary fixed stage order."""
        return self.model.synthesize(n, rng, start_time=start_time)
