"""The pure in-depth model (the paper's second column).

In the style of Liu et al.'s 3-tier analytical model: the request flow
is a route through service stations, each station's service time
fitted from traced span durations, arrivals fitted from the request
stream.  The model captures the application's control flow and arrival
dynamics but — by construction — carries *no request features*: it
cannot say what block sizes, memory banks or CPU utilization a request
produces, only how long it queues where ("it does not capture the
features of the workload in various subsystems", §3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..queueing import (
    DistributionArrivals,
    EmpiricalArrivals,
    QueueingNetwork,
    Station,
    fit_distribution,
)
from ..simulation import Environment
from ..tracing import TraceSet

__all__ = ["InDepthModel"]

#: Mapping from span names to service stations (devices).
_STATION_OF = {
    "network_rx": "nic",
    "network_tx": "nic",
    "cpu_lookup": "cpu",
    "cpu_aggregate": "cpu",
    "memory": "memory",
    "storage": "disk",
}

#: Servers per station in the simulated network (one server's devices).
_STATION_SERVERS = {"nic": 1, "cpu": 8, "memory": 2, "disk": 1}


@dataclass
class _StationFit:
    """Fitted service-time statistics for one station."""

    mean: float
    samples: np.ndarray


class InDepthModel:
    """Queueing-network request-flow model trained from span traces."""

    def __init__(self, exponential_services: bool = True):
        #: When True (the classic analytic assumption), services are
        #: exponential with the fitted mean; when False, service times
        #: are bootstrapped from the observed durations.
        self.exponential_services = exponential_services
        self.route: Optional[list[str]] = None
        self.station_fits: dict[str, _StationFit] = {}
        self._interarrivals: Optional[np.ndarray] = None
        self._arrival_fit = None

    def fit(self, traces: TraceSet) -> "InDepthModel":
        """Train from request arrivals and sampled span trees."""
        requests = traces.completed_requests()
        if len(requests) < 16:
            raise ValueError(f"need >= 16 requests, got {len(requests)}")
        arrivals = np.sort([r.arrival_time for r in requests])
        gaps = np.diff(arrivals)
        self._interarrivals = gaps[gaps > 0]
        try:
            self._arrival_fit = fit_distribution(self._interarrivals)
        except ValueError:
            self._arrival_fit = None

        trees = traces.trace_trees()
        if not trees:
            raise ValueError("in-depth training requires span traces")
        durations: dict[str, list[float]] = {}
        routes: dict[tuple[str, ...], int] = {}
        for tree in trees:
            visited = []
            for span in tree.walk():
                station = _STATION_OF.get(span.name)
                if station is None:
                    continue
                duration = span.duration
                if np.isfinite(duration) and duration >= 0:
                    durations.setdefault(station, []).append(duration)
                    visited.append(station)
            if visited:
                key = tuple(visited)
                routes[key] = routes.get(key, 0) + 1
        if not routes:
            raise ValueError("no usable spans for route mining")
        self.route = list(max(routes, key=routes.get))
        self.station_fits = {
            name: _StationFit(
                mean=float(np.mean(values)), samples=np.array(values)
            )
            for name, values in durations.items()
        }
        return self

    def _check_fitted(self) -> None:
        if self.route is None:
            raise RuntimeError("model is not fitted; call fit() first")

    def _service_sampler(self, station: str):
        fit = self.station_fits[station]
        if self.exponential_services:
            return lambda _cls, rng: float(rng.exponential(fit.mean))
        samples = fit.samples

        def bootstrap(_cls: str, rng: np.random.Generator) -> float:
            return float(samples[rng.integers(0, samples.size)])

        return bootstrap

    def build_network(
        self, rng: np.random.Generator
    ) -> QueueingNetwork:
        """Instantiate the fitted queueing network (fresh environment)."""
        self._check_fitted()
        stations = [
            Station(
                name=name,
                servers=_STATION_SERVERS.get(name, 1),
                service_sampler=self._service_sampler(name),
            )
            for name in self.station_fits
        ]
        env = Environment()
        return QueueingNetwork(env, stations, {"request": self.route}, rng)

    def predict_latencies(
        self, n: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Simulate ``n`` requests through the network; their latencies.

        This is the in-depth model's entire output: a latency (and
        queueing) distribution, with no per-request features.
        """
        self._check_fitted()
        if n < 1:
            raise ValueError(f"need n >= 1, got {n}")
        network = self.build_network(rng)
        if self._arrival_fit is not None:
            arrivals = DistributionArrivals(self._arrival_fit.frozen, rng)
        else:
            arrivals = EmpiricalArrivals(self._interarrivals, rng)
        results = network.run_open(arrivals, lambda _rng: "request", n)
        return np.array([r.latency for r in results])

    def mean_service_demand(self) -> dict[str, float]:
        """Fitted mean service time per station (the model summary)."""
        self._check_fitted()
        return {name: fit.mean for name, fit in self.station_fits.items()}
