"""Bottleneck and anomaly detection from request traces.

The paper's Table-1 argument for in-depth data: "studies that involve
identifying performance bottlenecks for a specific job, performing
error detection or sophisticated job mapping are only possible with an
in-depth modeling scheme."  This module implements both studies on
span trees:

* :class:`StageProfile` — per-stage duration statistics learned from
  healthy traces;
* :class:`AnomalyDetector` — flags requests whose per-stage durations
  deviate, and names the stage (the bottleneck) responsible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..tracing import TraceTree

__all__ = ["AnomalyDetector", "AnomalyVerdict", "StageProfile"]


@dataclass(frozen=True)
class StageProfile:
    """Duration statistics of one stage across healthy requests."""

    stage: str
    count: int
    mean: float
    std: float
    p99: float

    def zscore(self, duration: float) -> float:
        if self.std <= 0:
            return 0.0 if duration == self.mean else float("inf")
        return (duration - self.mean) / self.std


@dataclass(frozen=True)
class AnomalyVerdict:
    """Judgement on one request."""

    trace_id: int
    is_anomalous: bool
    worst_stage: Optional[str]
    worst_zscore: float
    stage_durations: dict[str, float]


class AnomalyDetector:
    """Per-stage duration model + z-score anomaly flagging."""

    def __init__(self, threshold_sigmas: float = 4.0):
        if threshold_sigmas <= 0:
            raise ValueError(
                f"threshold must be > 0 sigmas, got {threshold_sigmas}"
            )
        self.threshold_sigmas = threshold_sigmas
        self.profiles: dict[str, StageProfile] = {}

    @staticmethod
    def _stage_durations(tree: TraceTree) -> dict[str, float]:
        durations: dict[str, float] = {}
        for span in tree.walk():
            if span.parent_id is None:
                continue
            durations[span.name] = durations.get(span.name, 0.0) + span.duration
        return durations

    def fit(self, trees: Sequence[TraceTree]) -> "AnomalyDetector":
        """Learn healthy per-stage statistics from trace trees."""
        if not trees:
            raise ValueError("no trace trees to fit on")
        samples: dict[str, list[float]] = {}
        for tree in trees:
            for stage, duration in self._stage_durations(tree).items():
                samples.setdefault(stage, []).append(duration)
        self.profiles = {
            stage: StageProfile(
                stage=stage,
                count=len(values),
                mean=float(np.mean(values)),
                std=float(np.std(values)),
                p99=float(np.percentile(values, 99)),
            )
            for stage, values in samples.items()
        }
        return self

    def _check_fitted(self) -> None:
        if not self.profiles:
            raise RuntimeError("detector is not fitted; call fit() first")

    def judge(self, tree: TraceTree) -> AnomalyVerdict:
        """Score one request; the worst-deviating stage is the suspect."""
        self._check_fitted()
        durations = self._stage_durations(tree)
        worst_stage = None
        worst_z = 0.0
        for stage, duration in durations.items():
            profile = self.profiles.get(stage)
            if profile is None:
                continue  # stage unseen in training: cannot judge it
            z = profile.zscore(duration)
            if z > worst_z:
                worst_z = z
                worst_stage = stage
        return AnomalyVerdict(
            trace_id=tree.trace_id,
            is_anomalous=worst_z > self.threshold_sigmas,
            worst_stage=worst_stage,
            worst_zscore=worst_z,
            stage_durations=durations,
        )

    def scan(self, trees: Sequence[TraceTree]) -> list[AnomalyVerdict]:
        """Judge a batch; returns only the anomalous verdicts."""
        return [v for v in map(self.judge, trees) if v.is_anomalous]

    def bottleneck(self) -> StageProfile:
        """The stage with the largest mean duration (the hot spot)."""
        self._check_fitted()
        return max(self.profiles.values(), key=lambda p: p.mean)
