"""In-depth modeling: request-flow queueing models.

The paper's second family: trace a request through the system and
model the flow as a queueing network (Liu et al., Kamra et al.), with
Dapper-style span traces as the training input.
"""

from .admission import AdmissionController, AdmissionStats
from .anomaly import AnomalyDetector, AnomalyVerdict, StageProfile
from .model import InDepthModel
from .sqs import SqsEvaluator, SqsResult, SqsWorkloadModel

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "AnomalyDetector",
    "AnomalyVerdict",
    "InDepthModel",
    "SqsEvaluator",
    "SqsResult",
    "SqsWorkloadModel",
    "StageProfile",
]
