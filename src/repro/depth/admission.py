"""Yaksha-style self-tuning admission control (Kamra et al.).

The survey's §2.2: "a 3-tier workload is simulated using a queueing
model for admission control of HTTP requests using a PI controller."
:class:`AdmissionController` is that controller: it measures response
time over control windows and adjusts the admission probability with a
proportional-integral law to hold a latency target under overload,
shedding the excess instead of letting queues grow without bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator

import numpy as np

from ..simulation import Environment

__all__ = ["AdmissionController", "AdmissionStats"]


@dataclass
class AdmissionStats:
    """Outcome counters of an admission-controlled run."""

    admitted: int = 0
    rejected: int = 0
    latencies: list[float] = field(default_factory=list)

    @property
    def offered(self) -> int:
        return self.admitted + self.rejected

    @property
    def admission_rate(self) -> float:
        return self.admitted / self.offered if self.offered else 1.0

    @property
    def mean_latency(self) -> float:
        return float(np.mean(self.latencies)) if self.latencies else 0.0

    def latency_percentile(self, q: float) -> float:
        if not self.latencies:
            return 0.0
        return float(np.percentile(self.latencies, q))


class AdmissionController:
    """PI controller on mean response time -> admission probability."""

    def __init__(
        self,
        env: Environment,
        target_latency: float,
        rng: np.random.Generator,
        kp: float = 0.4,
        ki: float = 0.15,
        control_interval: float = 1.0,
        min_admission: float = 0.05,
    ):
        if target_latency <= 0:
            raise ValueError(f"target must be > 0, got {target_latency}")
        if control_interval <= 0:
            raise ValueError("control interval must be > 0")
        if not 0.0 < min_admission <= 1.0:
            raise ValueError("min_admission must be in (0, 1]")
        self.env = env
        self.target_latency = target_latency
        self.rng = rng
        self.kp = kp
        self.ki = ki
        self.control_interval = control_interval
        self.min_admission = min_admission
        self.admission_probability = 1.0
        self.stats = AdmissionStats()
        self._window_latencies: list[float] = []
        self._integral = 0.0
        self._controller = env.process(self._control_loop())

    def _control_loop(self):
        from ..simulation import Interrupt

        try:
            while True:
                yield self.env.timeout(self.control_interval)
                if not self._window_latencies:
                    continue
                measured = float(np.mean(self._window_latencies))
                self._window_latencies.clear()
                # Normalized error: positive when we are too slow.
                error = (measured - self.target_latency) / self.target_latency
                self._integral += error * self.control_interval
                # Anti-windup: clamp the integral term's contribution.
                self._integral = float(
                    np.clip(self._integral, -2.0 / self.ki, 2.0 / self.ki)
                )
                adjustment = self.kp * error + self.ki * self._integral
                self.admission_probability = float(
                    np.clip(1.0 - adjustment, self.min_admission, 1.0)
                )
        except Interrupt:
            return

    def stop(self) -> None:
        """Halt the control loop (e.g. at the end of a bounded run)."""
        if self._controller.is_alive:
            self._controller.interrupt("controller stopped")

    def submit(self, service: Callable[[], Generator]):
        """Process generator: admit-or-shed, then measure the request.

        ``service`` builds the request-servicing generator (e.g. a
        queueing-network submit or a cluster request).
        """

        def run(env):
            if self.rng.random() > self.admission_probability:
                self.stats.rejected += 1
                return False
            self.stats.admitted += 1
            start = env.now
            yield env.process(service())
            latency = env.now - start
            self.stats.latencies.append(latency)
            self._window_latencies.append(latency)
            return True

        return run(self.env)
