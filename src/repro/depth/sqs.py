"""Stochastic Queueing Simulation (Meisner et al., surveyed in §2.2).

SQS "is based on queuing theory and statistical sampling to derive
system models that scale well to thousands of machines": an online
characterization phase builds empirical workload models (task arrival
rate and duration), and an evaluation phase simulates the queueing
network *just long enough* — stopping when the metric's confidence
interval converges, instead of running a fixed horizon.

:class:`SqsEvaluator` implements that loop with the batch-means method
on top of the repository's queueing-network simulator: batches of
requests are simulated until the 95% confidence half-width of the mean
latency falls below a relative tolerance, and per-server sampling
covers large clusters by simulating a machine sample rather than every
machine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats

from ..queueing import EmpiricalArrivals, QueueingNetwork, Station
from ..simulation import Environment
from ..tracing import TraceSet

__all__ = ["SqsEvaluator", "SqsResult", "SqsWorkloadModel"]


@dataclass
class SqsWorkloadModel:
    """Phase 1: the empirical workload model (arrivals + service).

    Both distributions are kept as raw samples and bootstrapped, the
    "empirical workload models constructed in an online manner" of the
    paper's description.
    """

    interarrivals: np.ndarray
    service_times: np.ndarray

    @classmethod
    def characterize(cls, traces: TraceSet) -> "SqsWorkloadModel":
        """Build the model from request records (arrival + duration)."""
        requests = traces.completed_requests()
        if len(requests) < 16:
            raise ValueError(f"need >= 16 requests, got {len(requests)}")
        arrivals = np.sort([r.arrival_time for r in requests])
        gaps = np.diff(arrivals)
        gaps = gaps[gaps > 0]
        # Service demand approximated by low-queueing latencies: the
        # fastest half of requests are the least queued observations.
        latencies = np.sort([r.latency for r in requests])
        services = latencies[: max(8, latencies.size // 2)]
        return cls(interarrivals=gaps, service_times=services)

    @property
    def arrival_rate(self) -> float:
        return 1.0 / float(self.interarrivals.mean())

    @property
    def mean_service(self) -> float:
        return float(self.service_times.mean())


@dataclass
class SqsResult:
    """Converged estimate with its confidence interval."""

    mean_latency: float
    ci_halfwidth: float
    batches: int
    requests_simulated: int
    converged: bool

    @property
    def relative_halfwidth(self) -> float:
        return self.ci_halfwidth / self.mean_latency if self.mean_latency else 0.0


class SqsEvaluator:
    """Phase 2: simulate until the latency estimate converges."""

    def __init__(
        self,
        model: SqsWorkloadModel,
        servers_per_machine: int = 1,
        batch_size: int = 400,
        relative_tolerance: float = 0.05,
        confidence: float = 0.95,
        max_batches: int = 50,
        min_batches: int = 4,
    ):
        if batch_size < 10:
            raise ValueError(f"batch size must be >= 10, got {batch_size}")
        if not 0.0 < relative_tolerance < 1.0:
            raise ValueError("relative tolerance must be in (0, 1)")
        if not 0.5 < confidence < 1.0:
            raise ValueError("confidence must be in (0.5, 1)")
        if min_batches < 2:
            raise ValueError("need >= 2 batches for a variance estimate")
        self.model = model
        self.servers_per_machine = servers_per_machine
        self.batch_size = batch_size
        self.relative_tolerance = relative_tolerance
        self.confidence = confidence
        self.max_batches = max_batches
        self.min_batches = min_batches

    def _simulate_batch(self, rng: np.random.Generator) -> float:
        """One independent replication; returns its mean latency."""
        env = Environment()
        services = self.model.service_times

        def sampler(_cls: str, r: np.random.Generator) -> float:
            return float(services[r.integers(0, services.size)])

        network = QueueingNetwork(
            env,
            [Station("machine", self.servers_per_machine, sampler)],
            {"request": ["machine"]},
            rng,
        )
        arrivals = EmpiricalArrivals(self.model.interarrivals, rng)
        results = network.run_open(
            arrivals, lambda _r: "request", self.batch_size
        )
        return float(np.mean([r.latency for r in results]))

    def evaluate(self, rng: np.random.Generator) -> SqsResult:
        """Run replications until the CI half-width converges.

        Uses independent replications (a clean variant of batch means:
        no serial correlation between batches to correct for).
        """
        batch_means: list[float] = []
        while len(batch_means) < self.max_batches:
            batch_means.append(self._simulate_batch(rng))
            if len(batch_means) < self.min_batches:
                continue
            n = len(batch_means)
            mean = float(np.mean(batch_means))
            sem = float(np.std(batch_means, ddof=1) / np.sqrt(n))
            t_crit = float(
                scipy_stats.t.ppf(0.5 + self.confidence / 2.0, df=n - 1)
            )
            halfwidth = t_crit * sem
            if mean > 0 and halfwidth / mean <= self.relative_tolerance:
                return SqsResult(
                    mean_latency=mean,
                    ci_halfwidth=halfwidth,
                    batches=n,
                    requests_simulated=n * self.batch_size,
                    converged=True,
                )
        n = len(batch_means)
        mean = float(np.mean(batch_means))
        sem = float(np.std(batch_means, ddof=1) / np.sqrt(n))
        t_crit = float(scipy_stats.t.ppf(0.5 + self.confidence / 2.0, df=n - 1))
        return SqsResult(
            mean_latency=mean,
            ci_halfwidth=t_crit * sem,
            batches=n,
            requests_simulated=n * self.batch_size,
            converged=False,
        )
