"""Unified versioned-snapshot protocol.

Every checkpoint-capable component in the repository — streaming
accumulators (:mod:`repro.stats.streaming`), composite profile builders
(:mod:`repro.core.profile`), the serve daemon's resident state
(:mod:`repro.serve.state`) and the simulation engine checkpoints
(:mod:`repro.simulation.checkpoint`) — speaks one snapshot dialect:

* a snapshot is a JSON-able mapping carrying ``kind`` (what it is) and
  ``version`` (the schema it was written under);
* :data:`SNAPSHOT_VERSION` is the single schema version all writers
  embed; readers accept anything up to it and reject newer snapshots
  (typed :class:`SnapshotVersionError`) so stale code skips — never
  misreads — state written by a later release;
* :func:`check_state` is the one validator every ``from_state``
  restores through;
* :func:`save_snapshot` / :func:`load_snapshot` move snapshots through
  atomic JSON[.gz] files (unique temp + ``os.replace``, so concurrent
  writers each publish a whole file and readers never see a torn one).

Components implement the :class:`Snapshotable` protocol —
``state()`` returning a snapshot mapping and a ``from_state``
classmethod restoring an equivalent object — and the contract is
behavioral: ``from_state(x.state())`` acts identically to ``x`` for
every future operation.

Historic aliases (``STREAMING_STATE_VERSION`` / ``check_state`` in
``repro.stats.streaming``, ``SERVE_STATE_VERSION`` in
``repro.serve.state``) still import but raise ``DeprecationWarning``;
they will be removed one release after 1.0.
"""

from __future__ import annotations

import gzip
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Mapping, Protocol, runtime_checkable

__all__ = [
    "SNAPSHOT_VERSION",
    "Snapshotable",
    "SnapshotError",
    "SnapshotFormatError",
    "SnapshotMismatchError",
    "SnapshotVersionError",
    "check_state",
    "load_snapshot",
    "make_state",
    "save_snapshot",
]

#: Schema version embedded in every snapshot.  Bump when any ``state()``
#: layout changes incompatibly; readers reject newer versions, and the
#: analysis cache keys on it so old cache files are invalidated rather
#: than misinterpreted.  (Formerly ``STREAMING_STATE_VERSION`` /
#: ``SERVE_STATE_VERSION``, which were independent and both happened to
#: be 1; they are now aliases of this constant.)
SNAPSHOT_VERSION = 1


class SnapshotError(ValueError):
    """Base for all snapshot protocol failures.

    Subclasses ``ValueError`` so pre-protocol callers that caught
    ``ValueError`` around ``from_state`` keep working.
    """


class SnapshotFormatError(SnapshotError):
    """The payload is not a snapshot, or is a snapshot of the wrong kind."""


class SnapshotVersionError(SnapshotError):
    """The snapshot was written by a newer schema than this build reads."""


class SnapshotMismatchError(SnapshotError):
    """A restored object failed validation against its recorded state.

    Raised by engine checkpoint restores when the deterministic replay
    lands on a different state than the checkpoint recorded — typically
    a code change between save and restore, or a snapshot moved to an
    incompatible environment.
    """


@runtime_checkable
class Snapshotable(Protocol):
    """The protocol every snapshot-capable component implements."""

    def state(self) -> dict[str, Any]:
        """A JSON-able snapshot carrying ``kind`` and ``version``."""
        ...  # pragma: no cover - protocol declaration

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "Snapshotable":
        """Restore an object behaviorally identical to the snapshotted one."""
        ...  # pragma: no cover - protocol declaration


def make_state(
    kind: str, payload: Mapping[str, Any], *, version: int = SNAPSHOT_VERSION
) -> dict[str, Any]:
    """Assemble a snapshot mapping: ``kind`` + ``version`` + payload."""
    state: dict[str, Any] = {"kind": kind, "version": version}
    state.update(payload)
    return state


def check_state(
    state: Mapping[str, Any],
    kind: str,
    *,
    version: int = SNAPSHOT_VERSION,
    kind_key: str = "kind",
) -> Mapping[str, Any]:
    """Validate a snapshot's kind and version before restoring from it.

    ``kind_key`` accommodates pre-protocol layouts that tagged
    themselves under another key (the serve checkpoint's ``format``);
    new snapshot kinds always use ``kind``.
    """
    if not isinstance(state, Mapping):
        raise SnapshotFormatError(
            f"accumulator state must be a mapping, got {type(state)}"
        )
    got = state.get(kind_key)
    if got != kind:
        raise SnapshotFormatError(f"expected {kind!r} state, got {got!r}")
    got_version = state.get("version")
    if not isinstance(got_version, int) or got_version > version:
        raise SnapshotVersionError(
            f"unsupported {kind} state version {got_version!r} "
            f"(this build reads <= {version})"
        )
    return state


def save_snapshot(
    state: Mapping[str, Any], path: str | Path, *, indent: int | None = None
) -> Path:
    """Write a snapshot to a JSON[.gz] file atomically.

    A ``.gz`` suffix selects gzip (written with a canonical header —
    zero mtime, no filename — so identical snapshots are byte-identical
    files).  The write goes to a unique temp file in the target
    directory and lands via ``os.replace``: concurrent savers each
    publish a whole snapshot, last writer wins, readers never observe a
    torn file.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(state, sort_keys=True, indent=indent) + "\n"
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=path.parent
    )
    try:
        if path.suffix == ".gz":
            with os.fdopen(fd, "wb") as raw:
                with gzip.GzipFile(
                    fileobj=raw, mode="wb", mtime=0, filename=""
                ) as handle:
                    handle.write(text.encode("utf-8"))
        else:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def load_snapshot(path: str | Path) -> dict[str, Any]:
    """Read a snapshot written by :func:`save_snapshot`.

    Raises :class:`SnapshotFormatError` for files that are not JSON
    mappings; kind/version validation is the caller's ``from_state``
    (via :func:`check_state`), which knows what it expects.
    """
    path = Path(path)
    try:
        if path.suffix == ".gz":
            with gzip.open(path, "rt", encoding="utf-8") as handle:
                data = json.load(handle)
        else:
            data = json.loads(path.read_text())
    except (json.JSONDecodeError, gzip.BadGzipFile, UnicodeDecodeError) as error:
        raise SnapshotFormatError(f"{path} is not a snapshot file: {error}")
    if not isinstance(data, dict):
        raise SnapshotFormatError(
            f"{path} is not a snapshot file: expected a JSON mapping, "
            f"got {type(data).__name__}"
        )
    return data
