"""Tracing substrate: subsystem records, Dapper-style spans, collection.

Provides the typed per-subsystem trace records, the span/trace-tree
machinery for in-depth request tracing, the :class:`Tracer` that the
simulated datacenter is instrumented with, and JSONL persistence.
"""

from .adapters import (
    read_cluster_jobs,
    read_spc_trace,
    write_cluster_jobs,
    write_spc_trace,
)
from .profiler import ClusterProfiler, ProfileSample
from .records import (
    READ,
    WRITE,
    CpuRecord,
    MemoryRecord,
    NetworkRecord,
    RequestRecord,
    StorageRecord,
)
from .span import Annotation, Span, TraceTree, build_trace_trees
from .source import FlatTraceDump, TraceSource, as_trace_set
from .store import STREAM_TYPES, load_traces, save_traces
from .tracer import (
    STREAM_NAMES,
    Tracer,
    TraceSet,
    shift_request,
    shift_span,
    shift_subsystem_record,
)

__all__ = [
    "Annotation",
    "ClusterProfiler",
    "CpuRecord",
    "FlatTraceDump",
    "ProfileSample",
    "MemoryRecord",
    "NetworkRecord",
    "READ",
    "RequestRecord",
    "STREAM_NAMES",
    "STREAM_TYPES",
    "Span",
    "StorageRecord",
    "TraceSet",
    "TraceSource",
    "TraceTree",
    "Tracer",
    "WRITE",
    "as_trace_set",
    "build_trace_trees",
    "load_traces",
    "read_cluster_jobs",
    "read_spc_trace",
    "save_traces",
    "shift_request",
    "shift_span",
    "shift_subsystem_record",
    "write_cluster_jobs",
    "write_spc_trace",
]
