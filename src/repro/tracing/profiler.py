"""GWP-style continuous cluster profiling (Ren et al.).

Google-Wide Profiling "operates at a higher level, sampling across
machines, in order to identify trends in job scheduling and execution":
it collects whole-machine counters and per-process profiles on a
sampling schedule.  :class:`ClusterProfiler` is the simulated
equivalent — a background process that periodically snapshots every
machine's device utilizations, plus per-request-class CPU attribution
aggregated from the trace stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from .tracer import Tracer

if TYPE_CHECKING:
    from ..datacenter.machine import Machine
    from ..simulation import Environment

__all__ = ["ClusterProfiler", "ProfileSample"]


@dataclass(frozen=True)
class ProfileSample:
    """One whole-machine sample: time + device busy fractions."""

    timestamp: float
    machine: str
    cpu: float
    memory: float
    disk: float
    nic: float


class ClusterProfiler:
    """Periodic whole-machine sampling plus per-class CPU attribution."""

    def __init__(
        self,
        env: "Environment",
        machines: Sequence["Machine"],
        tracer: Tracer,
        interval: float = 0.5,
        horizon: float = 3600.0,
    ):
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        if horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {horizon}")
        if not machines:
            raise ValueError("need at least one machine to profile")
        self.horizon = horizon
        self.env = env
        self.machines = list(machines)
        self.tracer = tracer
        self.interval = interval
        self.samples: list[ProfileSample] = []
        self._last_busy = {m.name: m.busy_report() for m in self.machines}
        self._last_sample_time = env.now
        self._process = env.process(self._run())

    def _window_utilization(self, machine, window: float) -> dict[str, float]:
        """Per-device busy fraction over the last window (busy-time deltas)."""
        busy = machine.busy_report()
        previous = self._last_busy[machine.name]
        self._last_busy[machine.name] = busy
        return {
            device: (busy[device] - previous[device])
            / (window * machine.device_capacity(device))
            for device in busy
        }

    def _run(self):
        from ..simulation import Interrupt

        # Bounded by the horizon so a trace-collection run that drains
        # its event queue terminates even if stop() is never called.
        try:
            while self.env.now + self.interval <= self.horizon:
                yield self.env.timeout(self.interval)
                window = self.env.now - self._last_sample_time
                if window <= 0:
                    continue
                for machine in self.machines:
                    report = self._window_utilization(machine, window)
                    self.samples.append(
                        ProfileSample(
                            timestamp=self.env.now,
                            machine=machine.name,
                            cpu=report["cpu"],
                            memory=report["memory"],
                            disk=report["disk"],
                            nic=report["nic"],
                        )
                    )
                self._last_sample_time = self.env.now
        except Interrupt:
            return

    def stop(self) -> None:
        """Halt the sampling process."""
        if self._process.is_alive:
            self._process.interrupt("profiler stopped")

    # -- analysis ---------------------------------------------------------

    def utilization_series(self, machine: str, device: str) -> np.ndarray:
        """One machine's sampled busy fractions for one device."""
        values = [
            getattr(s, device) for s in self.samples if s.machine == machine
        ]
        if not values:
            raise ValueError(f"no samples for machine {machine!r}")
        return np.array(values)

    def hottest_machines(self, device: str, top: int = 3) -> list[tuple[str, float]]:
        """Machines ranked by mean device utilization (GWP's trend view)."""
        by_machine: dict[str, list[float]] = {}
        for sample in self.samples:
            by_machine.setdefault(sample.machine, []).append(
                getattr(sample, device)
            )
        ranked = sorted(
            ((m, float(np.mean(v))) for m, v in by_machine.items()),
            key=lambda kv: -kv[1],
        )
        return ranked[:top]

    def cpu_share_by_class(self) -> dict[str, float]:
        """Fraction of total CPU time attributed to each request class.

        The per-process view: GWP links profiles back to the jobs that
        consumed the cycles, here via request ids and classes.
        """
        class_of = {
            r.request_id: r.request_class for r in self.tracer.traces.requests
        }
        totals: dict[str, float] = {}
        for record in self.tracer.traces.cpu:
            cls = class_of.get(record.request_id, "unattributed")
            totals[cls] = totals.get(cls, 0.0) + record.busy_seconds
        grand_total = sum(totals.values())
        if grand_total == 0:
            return {}
        return {cls: value / grand_total for cls, value in totals.items()}
