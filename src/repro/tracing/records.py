"""Typed trace records for the four subsystems plus end-to-end requests.

These are the raw material of every modeling technique in the paper:

* in-breadth models train on the per-subsystem streams
  (:class:`StorageRecord`, :class:`CpuRecord`, :class:`MemoryRecord`,
  :class:`NetworkRecord`),
* in-depth models train on arrival times and per-tier service times
  (from :class:`RequestRecord` and span trees),
* KOOZA trains on all of the above.

Records carry the global ``request_id`` (the Dapper-style identifier
that ties every message to its originating request) so joint,
per-request feature vectors can be reassembled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "CpuRecord",
    "MemoryRecord",
    "NetworkRecord",
    "RequestRecord",
    "StorageRecord",
    "READ",
    "WRITE",
]

#: Operation type constants shared by memory and storage records.
READ = "read"
WRITE = "write"


@dataclass(slots=True)
class NetworkRecord:
    """One message on the wire (request arrival or response departure)."""

    request_id: int
    server: str
    timestamp: float
    size_bytes: int
    direction: str  # "rx" | "tx"

    # Literal dicts in field order: ``dataclasses.asdict`` recurses and
    # deep-copies per call, which dominates the record-serialization
    # profile; the emitted key order (and therefore store bytes) is
    # identical.
    def to_dict(self) -> dict[str, Any]:
        return {
            "request_id": self.request_id,
            "server": self.server,
            "timestamp": self.timestamp,
            "size_bytes": self.size_bytes,
            "direction": self.direction,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "NetworkRecord":
        return cls(**data)


@dataclass(slots=True)
class CpuRecord:
    """One burst of computation on a server.

    ``busy_seconds`` is core-seconds consumed; per-request CPU
    *utilization* (the paper's processor-model metric) is derived by the
    request record as busy time over request latency.
    """

    request_id: int
    server: str
    timestamp: float
    busy_seconds: float
    phase: str  # e.g. "lookup", "aggregate"

    def to_dict(self) -> dict[str, Any]:
        return {
            "request_id": self.request_id,
            "server": self.server,
            "timestamp": self.timestamp,
            "busy_seconds": self.busy_seconds,
            "phase": self.phase,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CpuRecord":
        return cls(**data)


@dataclass(slots=True)
class MemoryRecord:
    """One memory access burst: bank, size, operation type."""

    request_id: int
    server: str
    timestamp: float
    bank: int
    size_bytes: int
    op: str  # READ | WRITE
    duration: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "request_id": self.request_id,
            "server": self.server,
            "timestamp": self.timestamp,
            "bank": self.bank,
            "size_bytes": self.size_bytes,
            "op": self.op,
            "duration": self.duration,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "MemoryRecord":
        return cls(**data)


@dataclass(slots=True)
class StorageRecord:
    """One disk I/O: logical block number, size, operation type."""

    request_id: int
    server: str
    timestamp: float
    lbn: int
    size_bytes: int
    op: str  # READ | WRITE
    duration: float = 0.0
    queue_depth: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "request_id": self.request_id,
            "server": self.server,
            "timestamp": self.timestamp,
            "lbn": self.lbn,
            "size_bytes": self.size_bytes,
            "op": self.op,
            "duration": self.duration,
            "queue_depth": self.queue_depth,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "StorageRecord":
        return cls(**data)


@dataclass(slots=True)
class RequestRecord:
    """End-to-end view of one user request.

    Aggregates what Table 2 of the paper reports per request: the
    network request size, achieved CPU utilization, memory and storage
    footprints, and the end-to-end latency.
    """

    request_id: int
    request_class: str
    server: str
    arrival_time: float
    completion_time: float = 0.0
    network_bytes: int = 0
    cpu_busy_seconds: float = 0.0
    memory_bytes: int = 0
    memory_op: str = READ
    storage_bytes: int = 0
    storage_op: str = READ
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def latency(self) -> float:
        """End-to-end request latency in (simulated) seconds."""
        return self.completion_time - self.arrival_time

    @property
    def cpu_utilization(self) -> float:
        """Fraction of one core busy over the request's lifetime."""
        if self.latency <= 0:
            return 0.0
        return self.cpu_busy_seconds / self.latency

    def to_dict(self) -> dict[str, Any]:
        return {
            "request_id": self.request_id,
            "request_class": self.request_class,
            "server": self.server,
            "arrival_time": self.arrival_time,
            "completion_time": self.completion_time,
            "network_bytes": self.network_bytes,
            "cpu_busy_seconds": self.cpu_busy_seconds,
            "memory_bytes": self.memory_bytes,
            "memory_op": self.memory_op,
            "storage_bytes": self.storage_bytes,
            "storage_op": self.storage_op,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RequestRecord":
        return cls(**data)
