"""Binary columnar trace codec: struct-of-arrays stream storage.

The vectorizable counterpart of the ``.jsonl[.gz]`` stream files: each
stream is stored as one small JSON column header
(``<stream>.columns.json``) plus one raw little-endian binary buffer
per column (``<stream>.<column>.bin``), so a reader can hand whole
numpy arrays to the streaming accumulators without ever JSON-decoding
a record.  Cold characterization over a shard store is dominated by
JSONL decode (see ``BENCH_incremental_analyze.json``); this layout
removes that cost.

Column kinds:

* ``i8`` / ``f8`` — ``<i8`` / ``<f8`` numpy buffers, one value per
  record.  ``Span.parent_id`` is stored as ``f8`` with ``NaN`` for
  ``None`` (ids are small integers, exactly representable).
* ``dict`` — dictionary-encoded strings: ``<i4`` codes into a value
  table kept in the header (server names, operation types, ...).
* ``json`` — dictionary-encoded ``json.dumps`` strings for the two
  nested fields (``RequestRecord.extra``, ``Span.annotations``); rows
  decode to fresh Python objects, exactly like the JSONL reader.

Codecs are interchangeable: ``records_from_columns`` round-trips to
the same record objects the JSONL path produces, so analyses over the
two layouts are byte-identical, and converting a shard between codecs
reproduces the other layout's files exactly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Mapping, Optional, Sequence

import numpy as np

from .records import (
    CpuRecord,
    MemoryRecord,
    NetworkRecord,
    RequestRecord,
    StorageRecord,
)
from .span import Annotation, Span

__all__ = [
    "COLUMNAR_FORMAT",
    "COLUMNAR_VERSION",
    "STREAM_COLUMNS",
    "ColumnarStreamWriter",
    "StringColumn",
    "columnar_stream_files",
    "columnar_header_path",
    "columns_from_records",
    "concat_columns",
    "find_columnar_stream",
    "iter_columnar_batches",
    "iter_columnar_records",
    "read_columnar_columns",
    "read_columnar_header",
    "records_from_columns",
    "shift_columns",
    "take_columns",
]

COLUMNAR_FORMAT = "repro-traces-columnar"
COLUMNAR_VERSION = 1

#: numpy dtype per numeric column kind; ``dict``/``json`` codes are i4.
_KIND_DTYPES = {"i8": np.dtype("<i8"), "f8": np.dtype("<f8")}
_CODE_DTYPE = np.dtype("<i4")

#: (column name, kind) per stream, in record-dataclass field order —
#: ``records_from_columns`` relies on positional construction.
STREAM_COLUMNS: dict[str, tuple[tuple[str, str], ...]] = {
    "network": (
        ("request_id", "i8"),
        ("server", "dict"),
        ("timestamp", "f8"),
        ("size_bytes", "i8"),
        ("direction", "dict"),
    ),
    "cpu": (
        ("request_id", "i8"),
        ("server", "dict"),
        ("timestamp", "f8"),
        ("busy_seconds", "f8"),
        ("phase", "dict"),
    ),
    "memory": (
        ("request_id", "i8"),
        ("server", "dict"),
        ("timestamp", "f8"),
        ("bank", "i8"),
        ("size_bytes", "i8"),
        ("op", "dict"),
        ("duration", "f8"),
    ),
    "storage": (
        ("request_id", "i8"),
        ("server", "dict"),
        ("timestamp", "f8"),
        ("lbn", "i8"),
        ("size_bytes", "i8"),
        ("op", "dict"),
        ("duration", "f8"),
        ("queue_depth", "i8"),
    ),
    "requests": (
        ("request_id", "i8"),
        ("request_class", "dict"),
        ("server", "dict"),
        ("arrival_time", "f8"),
        ("completion_time", "f8"),
        ("network_bytes", "i8"),
        ("cpu_busy_seconds", "f8"),
        ("memory_bytes", "i8"),
        ("memory_op", "dict"),
        ("storage_bytes", "i8"),
        ("storage_op", "dict"),
        ("extra", "json"),
    ),
    "spans": (
        ("trace_id", "i8"),
        ("span_id", "i8"),
        ("parent_id", "f8"),  # NaN encodes None
        ("name", "dict"),
        ("server", "dict"),
        ("start", "f8"),
        ("end", "f8"),
        ("annotations", "json"),
    ),
}


@dataclass
class StringColumn:
    """A dictionary-encoded string column: integer codes + value table."""

    codes: np.ndarray
    values: list[str]

    def __len__(self) -> int:
        return int(self.codes.size)

    def mask(self, value: str) -> np.ndarray:
        """Boolean mask of rows equal to ``value``."""
        try:
            code = self.values.index(value)
        except ValueError:
            return np.zeros(self.codes.size, dtype=bool)
        return self.codes == code

    def mask_in(self, values: Sequence[str]) -> np.ndarray:
        """Boolean mask of rows whose value is in ``values``."""
        mask = np.zeros(self.codes.size, dtype=bool)
        for value in values:
            mask |= self.mask(value)
        return mask

    def take(self, indices) -> "StringColumn":
        """Row subset (fancy index or boolean mask); shares the table."""
        return StringColumn(self.codes[indices], self.values)

    def bincount(self) -> np.ndarray:
        """Occurrences of each table entry, aligned with ``values``."""
        return np.bincount(self.codes, minlength=len(self.values))

    def tolist(self) -> list[str]:
        values = self.values
        return [values[c] for c in self.codes.tolist()]


def columnar_header_path(directory: str | Path, stream: str) -> Path:
    return Path(directory) / f"{stream}.columns.json"


def find_columnar_stream(directory: str | Path, stream: str) -> Optional[Path]:
    """The stream's column header path, if the columnar layout is present."""
    path = columnar_header_path(directory, stream)
    return path if path.exists() else None


def read_columnar_header(directory: str | Path, stream: str) -> Optional[dict]:
    """Load and validate one stream's column header (None when absent)."""
    path = find_columnar_stream(directory, stream)
    if path is None:
        return None
    header = json.loads(path.read_text())
    if header.get("format") != COLUMNAR_FORMAT:
        raise ValueError(f"{path}: not a columnar stream header")
    version = header.get("version")
    if not isinstance(version, int) or version > COLUMNAR_VERSION:
        raise ValueError(f"{path}: unsupported columnar version {version!r}")
    if header.get("stream") != stream:
        raise ValueError(
            f"{path}: header names stream {header.get('stream')!r}"
        )
    return header


def columnar_stream_files(directory: str | Path, stream: str) -> list[Path]:
    """Every file belonging to one columnar stream (header first)."""
    header = read_columnar_header(directory, stream)
    if header is None:
        return []
    directory = Path(directory)
    files = [columnar_header_path(directory, stream)]
    files.extend(directory / c["file"] for c in header["columns"])
    return files


def _decode_column(directory: Path, spec: Mapping[str, Any], n: int):
    kind = spec["kind"]
    path = directory / spec["file"]
    if kind in _KIND_DTYPES:
        dtype = _KIND_DTYPES[kind]
    elif kind in ("dict", "json"):
        dtype = _CODE_DTYPE
    else:
        raise ValueError(f"unknown column kind {kind!r} in {path}")
    if n == 0:
        array = np.zeros(0, dtype=dtype)
    else:
        array = np.fromfile(path, dtype=dtype)
        if array.size != n:
            raise ValueError(
                f"{path}: expected {n} values, found {array.size}"
            )
    if kind in _KIND_DTYPES:
        return array
    if kind == "dict":
        return StringColumn(array, [str(v) for v in spec["values"]])
    # json: decode each row to a fresh Python object, like json.loads
    # on a record line does — rows must never alias a shared object.
    table = [str(v) for v in spec["values"]]
    return [json.loads(table[c]) for c in array.tolist()]


def read_columnar_columns(
    directory: str | Path,
    stream: str,
    names: Optional[Sequence[str]] = None,
) -> Optional[dict[str, Any]]:
    """Load one columnar stream as full column arrays.

    ``names`` restricts which columns are read (and which ``.bin``
    files are opened at all) — the analysis fold needs only a subset.
    Returns ``None`` when the stream has no columnar file; the ``"n"``
    key carries the row count.
    """
    directory = Path(directory)
    header = read_columnar_header(directory, stream)
    if header is None:
        return None
    n = int(header["n"])
    wanted = None if names is None else set(names)
    cols: dict[str, Any] = {"n": n}
    for spec in header["columns"]:
        if wanted is not None and spec["name"] not in wanted:
            continue
        cols[spec["name"]] = _decode_column(directory, spec, n)
    if wanted is not None:
        missing = wanted - set(cols)
        if missing:
            raise ValueError(
                f"{stream} columnar stream lacks columns {sorted(missing)}"
            )
    return cols


def take_columns(cols: Mapping[str, Any], indices) -> dict[str, Any]:
    """Row subset of a column dict (fancy index or boolean mask)."""
    out: dict[str, Any] = {}
    for name, col in cols.items():
        if name == "n":
            continue
        if isinstance(col, StringColumn):
            out[name] = col.take(indices)
        elif isinstance(col, np.ndarray):
            out[name] = col[indices]
        else:  # json column: plain list
            if isinstance(indices, np.ndarray) and indices.dtype == bool:
                indices = np.flatnonzero(indices)
            out[name] = [col[i] for i in np.asarray(indices).tolist()]
    first = next(iter(out.values()), None)
    out["n"] = 0 if first is None else len(first)
    return out


def concat_columns(parts: Sequence[Mapping[str, Any]]) -> dict[str, Any]:
    """Concatenate column dicts row-wise (re-encoding string tables)."""
    parts = [p for p in parts if p["n"]]
    if not parts:
        return {"n": 0}
    names = [k for k in parts[0] if k != "n"]
    out: dict[str, Any] = {"n": sum(p["n"] for p in parts)}
    for name in names:
        first = parts[0][name]
        if isinstance(first, StringColumn):
            table: list[str] = []
            mapping: dict[str, int] = {}
            chunks = []
            for part in parts:
                col = part[name]
                remap = np.empty(len(col.values), dtype=_CODE_DTYPE)
                for i, value in enumerate(col.values):
                    code = mapping.get(value)
                    if code is None:
                        code = mapping[value] = len(table)
                        table.append(value)
                    remap[i] = code
                chunks.append(remap[col.codes])
            out[name] = StringColumn(np.concatenate(chunks), table)
        elif isinstance(first, np.ndarray):
            out[name] = np.concatenate([p[name] for p in parts])
        else:
            merged: list[Any] = []
            for part in parts:
                merged.extend(part[name])
            out[name] = merged
    return out


def iter_columnar_batches(
    directory: str | Path,
    stream: str,
    batch_size: int = 4096,
    names: Optional[Sequence[str]] = None,
) -> Iterator[dict[str, Any]]:
    """Yield one columnar stream as column-dict batches of ``batch_size``."""
    cols = read_columnar_columns(directory, stream, names)
    if cols is None or cols["n"] == 0:
        return
    n = cols["n"]
    for start in range(0, n, batch_size):
        stop = min(start + batch_size, n)
        yield take_columns(cols, np.arange(start, stop))


def columns_from_records(
    stream: str,
    records: Sequence,
    names: Optional[Sequence[str]] = None,
) -> dict[str, Any]:
    """Build column arrays from decoded records (the JSONL bridge).

    Produces exactly the representation ``read_columnar_columns``
    returns, so analyses accept either codec through one code path.
    ``names`` restricts which columns are materialized.
    """
    schema = STREAM_COLUMNS[stream]
    wanted = None if names is None else set(names)
    cols: dict[str, Any] = {"n": len(records)}
    for name, kind in schema:
        if wanted is not None and name not in wanted:
            continue
        if stream == "spans" and name == "parent_id":
            cols[name] = np.array(
                [
                    np.nan if r.parent_id is None else float(r.parent_id)
                    for r in records
                ],
                dtype=_KIND_DTYPES["f8"],
            )
        elif kind in _KIND_DTYPES:
            cols[name] = np.array(
                [getattr(r, name) for r in records], dtype=_KIND_DTYPES[kind]
            )
        elif kind == "dict":
            table: list[str] = []
            mapping: dict[str, int] = {}
            codes = np.empty(len(records), dtype=_CODE_DTYPE)
            for i, r in enumerate(records):
                value = getattr(r, name)
                code = mapping.get(value)
                if code is None:
                    code = mapping[value] = len(table)
                    table.append(value)
                codes[i] = code
            cols[name] = StringColumn(codes, table)
        else:  # json
            if stream == "spans":
                cols[name] = [
                    [{"timestamp": a.timestamp, "message": a.message} for a in r.annotations]
                    for r in records
                ]
            else:
                cols[name] = [getattr(r, name) for r in records]
    return cols


def records_from_columns(stream: str, cols: Mapping[str, Any]) -> list:
    """Materialize record objects from full column arrays.

    The inverse of :func:`columns_from_records`: produces the same
    record objects the JSONL reader yields for the same shard.
    """
    schema = STREAM_COLUMNS[stream]
    n = cols["n"]
    rows: list[list[Any]] = [[] for _ in range(n)]
    for name, kind in schema:
        col = cols[name]
        if isinstance(col, StringColumn):
            values = col.tolist()
        elif isinstance(col, np.ndarray):
            values = col.tolist()
        else:
            values = list(col)
        if stream == "spans" and name == "parent_id":
            values = [None if v != v else int(v) for v in values]
        for row, value in zip(rows, values):
            row.append(value)
    if stream == "spans":
        out = []
        for row in rows:
            annotations = [Annotation(**a) for a in row[-1]]
            out.append(Span(*row[:-1], annotations=annotations))
        return out
    record_cls = {
        "network": NetworkRecord,
        "cpu": CpuRecord,
        "memory": MemoryRecord,
        "storage": StorageRecord,
        "requests": RequestRecord,
    }[stream]
    return [record_cls(*row) for row in rows]


def iter_columnar_records(directory: str | Path, stream: str) -> Iterator:
    """Yield one columnar stream's records (record-object compatibility)."""
    for batch in iter_columnar_batches(directory, stream):
        yield from records_from_columns(stream, batch)


def shift_columns(
    stream: str,
    cols: Mapping[str, Any],
    time_offset: float = 0.0,
    request_id_offset: int = 0,
    span_id_offset: int = 0,
) -> dict[str, Any]:
    """Column-space stitch shift: the vectorized ``shifter_for``.

    Applies exactly the arithmetic of
    :func:`repro.tracing.shift_subsystem_record` /
    :func:`~repro.tracing.shift_request` /
    :func:`~repro.tracing.shift_span` to whole arrays (IEEE float adds
    are elementwise identical to the scalar path).  ``spans``
    ``parent_id`` shifts through NaN untouched — NaN encodes ``None``.
    Annotation timestamps (a ``json`` column) are *not* shifted; request
    the column only where unshifted annotations are acceptable.
    """
    out = dict(cols)
    if stream == "requests":
        if "request_id" in out:
            out["request_id"] = out["request_id"] + request_id_offset
        for name in ("arrival_time", "completion_time"):
            if name in out:
                out[name] = out[name] + time_offset
    elif stream == "spans":
        if "trace_id" in out:
            out["trace_id"] = out["trace_id"] + request_id_offset
        if "span_id" in out:
            out["span_id"] = out["span_id"] + span_id_offset
        if "parent_id" in out:
            out["parent_id"] = out["parent_id"] + span_id_offset
        for name in ("start", "end"):
            if name in out:
                out[name] = out[name] + time_offset
    else:
        if "request_id" in out:
            out["request_id"] = out["request_id"] + request_id_offset
        if "timestamp" in out:
            out["timestamp"] = out["timestamp"] + time_offset
    return out


class ColumnarStreamWriter:
    """Buffered struct-of-arrays writer for one stream of one shard.

    Buffers ``flush_every`` records per column, then appends each
    column's buffer to its ``.bin`` file in one ``tobytes`` write; the
    JSON header lands at :meth:`close`, so a crashed writer leaves no
    readable (header-bearing) stream behind.
    """

    def __init__(
        self, directory: str | Path, stream: str, flush_every: int = 8192
    ):
        if stream not in STREAM_COLUMNS:
            raise ValueError(f"unknown stream {stream!r}")
        self.directory = Path(directory)
        self.stream = stream
        self.flush_every = flush_every
        self.n = 0
        self._schema = STREAM_COLUMNS[stream]
        self._buffers: dict[str, list] = {name: [] for name, _ in self._schema}
        self._tables: dict[str, list[str]] = {}
        self._mappings: dict[str, dict[str, int]] = {}
        self._files = {}
        for name, kind in self._schema:
            if kind in ("dict", "json"):
                self._tables[name] = []
                self._mappings[name] = {}
            path = self.directory / f"{stream}.{name}.bin"
            self._files[name] = path.open("wb")
        self._closed = False

    def _encode(self, name: str, text: str) -> int:
        mapping = self._mappings[name]
        code = mapping.get(text)
        if code is None:
            code = mapping[text] = len(self._tables[name])
            self._tables[name].append(text)
        return code

    def write(self, record) -> None:
        """Buffer one record; flushes automatically at ``flush_every``."""
        if self._closed:
            raise RuntimeError("columnar stream already closed")
        buffers = self._buffers
        for name, kind in self._schema:
            if self.stream == "spans" and name == "parent_id":
                value = record.parent_id
                buffers[name].append(
                    float("nan") if value is None else float(value)
                )
            elif kind == "dict":
                buffers[name].append(self._encode(name, getattr(record, name)))
            elif kind == "json":
                if self.stream == "spans":
                    payload = [
                        {"timestamp": a.timestamp, "message": a.message}
                        for a in record.annotations
                    ]
                else:
                    payload = getattr(record, name)
                buffers[name].append(
                    self._encode(name, json.dumps(payload, sort_keys=True))
                )
            else:
                buffers[name].append(getattr(record, name))
        self.n += 1
        if self.n % self.flush_every == 0:
            self.flush()

    def flush(self) -> None:
        for name, kind in self._schema:
            buf = self._buffers[name]
            if not buf:
                continue
            if kind in _KIND_DTYPES:
                dtype = _KIND_DTYPES[kind]
            else:
                dtype = _CODE_DTYPE
            self._files[name].write(np.asarray(buf, dtype=dtype).tobytes())
            buf.clear()

    def abort(self) -> None:
        """Close ``.bin`` files without writing the header.

        A headerless column directory is unreadable by design, so an
        aborted (crashed) writer leaves no half-valid stream behind.
        """
        if self._closed:
            return
        for fh in self._files.values():
            fh.close()
        self._closed = True

    def close(self) -> None:
        """Flush buffers, close ``.bin`` files, write the column header."""
        if self._closed:
            return
        self.flush()
        for fh in self._files.values():
            fh.close()
        self._closed = True
        columns = []
        for name, kind in self._schema:
            spec: dict[str, Any] = {
                "name": name,
                "kind": kind,
                "file": f"{self.stream}.{name}.bin",
            }
            if kind in ("dict", "json"):
                spec["values"] = list(self._tables[name])
            columns.append(spec)
        header = {
            "format": COLUMNAR_FORMAT,
            "version": COLUMNAR_VERSION,
            "stream": self.stream,
            "n": self.n,
            "columns": columns,
        }
        columnar_header_path(self.directory, self.stream).write_text(
            json.dumps(header, indent=2, sort_keys=True) + "\n"
        )
