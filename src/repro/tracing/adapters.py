"""Adapters for external public trace formats.

The trace-driven studies the paper surveys (Kavalanekar et al.'s
production Windows-server traces, grid/cluster job logs) distribute
traces in simple text formats.  Two adapters let those feed this
repository's models directly:

* **SPC-style block I/O traces** — the Storage Performance Council
  format used by UMass/MSR trace repositories: one I/O per line,
  ``ASU,LBA,Size,Opcode,Timestamp`` — mapped to
  :class:`StorageRecord`.
* **Cluster job tables** — CSV of ``job_id,submit_time,duration,
  cpu_seconds,memory_bytes`` (the shape of Google cluster-usage and
  Parallel Workloads Archive logs after normalization) — mapped to
  :class:`RequestRecord` so the fitting/clustering stack applies.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable

from .records import READ, WRITE, RequestRecord, StorageRecord

__all__ = [
    "read_cluster_jobs",
    "read_spc_trace",
    "write_cluster_jobs",
    "write_spc_trace",
]


def read_spc_trace(path: str | Path, block_size: int = 512) -> list[StorageRecord]:
    """Parse an SPC-format block trace into storage records.

    SPC lines are ``ASU,LBA,Size,Opcode,Timestamp`` with size in bytes,
    LBA in ``block_size`` units, opcode R/W (case-insensitive).
    Malformed lines raise with the offending line number.
    """
    records = []
    path = Path(path)
    with path.open() as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = [p.strip() for p in line.split(",")]
            if len(parts) < 5:
                raise ValueError(
                    f"{path}:{lineno}: expected 5 fields, got {len(parts)}"
                )
            asu, lba, size, opcode, timestamp = parts[:5]
            opcode = opcode.lower()
            if opcode not in ("r", "w"):
                raise ValueError(
                    f"{path}:{lineno}: opcode must be R or W, got {opcode!r}"
                )
            records.append(
                StorageRecord(
                    request_id=lineno,
                    server=f"asu-{asu}",
                    timestamp=float(timestamp),
                    # Normalize LBA to this repository's 4 KiB blocks.
                    lbn=int(lba) * block_size // 4096,
                    size_bytes=int(size),
                    op=READ if opcode == "r" else WRITE,
                )
            )
    records.sort(key=lambda r: r.timestamp)
    return records


def write_spc_trace(
    records: Iterable[StorageRecord],
    path: str | Path,
    block_size: int = 512,
) -> Path:
    """Write storage records as an SPC-format trace (the inverse)."""
    path = Path(path)
    with path.open("w") as fh:
        for record in records:
            asu = record.server.rsplit("-", 1)[-1]
            if not asu.isdigit():
                asu = "0"
            opcode = "R" if record.op == READ else "W"
            lba = record.lbn * 4096 // block_size
            fh.write(
                f"{asu},{lba},{record.size_bytes},{opcode},"
                f"{record.timestamp:.6f}\n"
            )
    return path


_JOB_FIELDS = ("job_id", "submit_time", "duration", "cpu_seconds",
               "memory_bytes")


def read_cluster_jobs(path: str | Path) -> list[RequestRecord]:
    """Parse a normalized cluster job table into request records.

    Expects a CSV with a header containing at least the columns
    ``job_id, submit_time, duration, cpu_seconds, memory_bytes``.
    Each job becomes a RequestRecord (class "job"), so interarrival
    fitting, clustering and KCCA-style studies apply unchanged.
    """
    path = Path(path)
    records = []
    with path.open() as fh:
        reader = csv.DictReader(fh)
        missing = [f for f in _JOB_FIELDS if f not in (reader.fieldnames or [])]
        if missing:
            raise ValueError(f"{path}: missing columns {missing}")
        for row in reader:
            submit = float(row["submit_time"])
            duration = float(row["duration"])
            if duration < 0:
                raise ValueError(
                    f"{path}: job {row['job_id']} has negative duration"
                )
            records.append(
                RequestRecord(
                    request_id=int(row["job_id"]),
                    request_class="job",
                    server="cluster",
                    arrival_time=submit,
                    completion_time=submit + duration,
                    cpu_busy_seconds=float(row["cpu_seconds"]),
                    memory_bytes=int(float(row["memory_bytes"])),
                )
            )
    records.sort(key=lambda r: r.arrival_time)
    return records


def write_cluster_jobs(
    records: Iterable[RequestRecord], path: str | Path
) -> Path:
    """Write request records as a normalized cluster job table."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_JOB_FIELDS)
        for record in records:
            writer.writerow(
                [
                    record.request_id,
                    f"{record.arrival_time:.6f}",
                    f"{record.latency:.6f}",
                    f"{record.cpu_busy_seconds:.6f}",
                    record.memory_bytes,
                ]
            )
    return path
