"""Trace persistence: JSON-lines serialization of a :class:`TraceSet`.

Traces collected from a simulation run can be written to a directory
(one ``.jsonl`` file per stream, optionally gzipped) and reloaded
later, so model training can be decoupled from trace collection — the
workflow the paper assumes ("each one of the four models is trained
using traces from the corresponding subsystem").

Format versions:

* **v1** (legacy): bare record lines, no header, never compressed.
* **v2**: the first line of each stream file is a header object
  ``{"format": "repro-traces", "version": 2, "stream": <name>}`` and
  files may carry a ``.jsonl.gz`` suffix.  Readers accept both — the
  header is recognized by its ``format`` key, so v1 dumps keep loading.

The same line-level helpers back the sharded store in
:mod:`repro.store`, so flat dumps and shard stream files share one
reader path; :func:`load_traces` additionally recognizes a shard-store
directory (``shard-*/manifest.json``) and opens it as a lazy
:class:`repro.store.ShardStore` rather than stitching it eagerly.
"""

from __future__ import annotations

import gzip
import io
import json
from pathlib import Path
from typing import Iterator, TextIO

from .records import (
    CpuRecord,
    MemoryRecord,
    NetworkRecord,
    RequestRecord,
    StorageRecord,
)
from .span import Span
from .tracer import TraceSet

__all__ = [
    "STREAM_TYPES",
    "TRACES_FORMAT",
    "TRACES_VERSION",
    "find_stream_file",
    "iter_stream_records",
    "load_traces",
    "open_trace_read",
    "open_trace_write",
    "save_traces",
    "stream_header",
]

#: Record class for each stream, in canonical stream order.
STREAM_TYPES = {
    "network": NetworkRecord,
    "cpu": CpuRecord,
    "memory": MemoryRecord,
    "storage": StorageRecord,
    "requests": RequestRecord,
    "spans": Span,
}

TRACES_FORMAT = "repro-traces"
TRACES_VERSION = 2


def stream_header(stream: str) -> dict:
    """The v2 header object written as the first line of a stream file."""
    return {"format": TRACES_FORMAT, "version": TRACES_VERSION, "stream": stream}


def open_trace_write(path: str | Path) -> TextIO:
    """Open a trace stream file for writing; ``.gz`` suffix gzips.

    Gzip members are written with ``mtime=0`` so identical records
    produce byte-identical files — the reproducibility contract the
    sharded fleet tests assert at the file level.
    """
    path = Path(path)
    if path.suffix == ".gz":
        return io.TextIOWrapper(
            gzip.GzipFile(filename=str(path), mode="wb", mtime=0),
            encoding="utf-8",
        )
    return path.open("w", encoding="utf-8")


def open_trace_read(path: str | Path) -> TextIO:
    """Open a (possibly gzipped) trace stream file for reading."""
    path = Path(path)
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.GzipFile(str(path), "rb"), encoding="utf-8")
    return path.open("r", encoding="utf-8")


def find_stream_file(directory: str | Path, stream: str) -> Path | None:
    """Locate ``<stream>.jsonl`` or ``<stream>.jsonl.gz`` in a directory."""
    directory = Path(directory)
    for suffix in (".jsonl", ".jsonl.gz"):
        path = directory / f"{stream}{suffix}"
        if path.exists():
            return path
    return None


def _is_header(data: dict) -> bool:
    return isinstance(data, dict) and data.get("format") == TRACES_FORMAT


def iter_stream_records(path: str | Path, record_cls) -> Iterator:
    """Yield records from one stream file, v1 (headerless) or v2.

    A header newer than :data:`TRACES_VERSION` is rejected rather than
    misread; anything else on the first line must be a record.
    """
    with open_trace_read(path) as fh:
        first = True
        for line in fh:
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            if first:
                first = False
                if _is_header(data):
                    version = data.get("version")
                    if not isinstance(version, int) or version > TRACES_VERSION:
                        raise ValueError(
                            f"{path}: unsupported trace format version {version!r}"
                        )
                    continue
            yield record_cls.from_dict(data)


def save_traces(
    traces: TraceSet, directory: str | Path, compress: bool = False
) -> Path:
    """Write each stream of ``traces`` to ``directory/<stream>.jsonl[.gz]``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    suffix = ".jsonl.gz" if compress else ".jsonl"
    for stream in STREAM_TYPES:
        records = getattr(traces, stream)
        with open_trace_write(directory / f"{stream}{suffix}") as fh:
            fh.write(json.dumps(stream_header(stream)) + "\n")
            for record in records:
                fh.write(json.dumps(record.to_dict()) + "\n")
    return directory


def load_traces(directory: str | Path):
    """Open any on-disk trace layout as a ``TraceSource``.

    Auto-detects the layout:

    * a sharded store (``shard-*/manifest.json`` present) opens as a
      lazy :class:`repro.store.ShardStore` — records stay on disk and
      are stitched on iteration;
    * a flat v1/v2 dump (plain or gzipped, header optional) loads as an
      in-memory :class:`TraceSet`; missing stream files load as empty
      streams, so partial dumps (e.g. storage-only characterization
      runs) are usable.

    Both returns satisfy the :class:`repro.tracing.TraceSource`
    protocol.  Callers that need the materialized merge of a shard
    store should pass the result through
    :func:`repro.tracing.as_trace_set` (the pre-0.3 behavior, which
    stitched stores eagerly).
    """
    directory = Path(directory)
    if any(directory.glob("shard-*/manifest.json")):
        from ..store.shards import ShardStore

        return ShardStore(directory)
    traces = TraceSet()
    for stream, record_cls in STREAM_TYPES.items():
        path = find_stream_file(directory, stream)
        if path is None:
            continue
        getattr(traces, stream).extend(iter_stream_records(path, record_cls))
    return traces
