"""Trace persistence: JSON-lines serialization of a :class:`TraceSet`.

Traces collected from a simulation run can be written to a directory
(one ``.jsonl`` file per stream, optionally gzipped) and reloaded
later, so model training can be decoupled from trace collection — the
workflow the paper assumes ("each one of the four models is trained
using traces from the corresponding subsystem").

Format versions:

* **v1** (legacy): bare record lines, no header, never compressed.
* **v2**: the first line of each stream file is a header object
  ``{"format": "repro-traces", "version": 2, "stream": <name>}`` and
  files may carry a ``.jsonl.gz`` suffix.  Readers accept both — the
  header is recognized by its ``format`` key, so v1 dumps keep loading.

The same line-level helpers back the sharded store in
:mod:`repro.store`, so flat dumps and shard stream files share one
reader path; :func:`load_traces` additionally recognizes a shard-store
directory (``shard-*/manifest.json``) and opens it as a lazy
:class:`repro.store.ShardStore` rather than stitching it eagerly.
"""

from __future__ import annotations

import gzip
import io
import json
from pathlib import Path
from typing import Iterator, TextIO

from .records import (
    CpuRecord,
    MemoryRecord,
    NetworkRecord,
    RequestRecord,
    StorageRecord,
)
from .span import Span
from .tracer import TraceSet

__all__ = [
    "STREAM_TYPES",
    "TRACES_FORMAT",
    "TRACES_VERSION",
    "find_stream_file",
    "iter_record_batches",
    "iter_stream_records",
    "load_traces",
    "open_trace_read",
    "open_trace_write",
    "save_traces",
    "stream_header",
]

#: Record class for each stream, in canonical stream order.
STREAM_TYPES = {
    "network": NetworkRecord,
    "cpu": CpuRecord,
    "memory": MemoryRecord,
    "storage": StorageRecord,
    "requests": RequestRecord,
    "spans": Span,
}

TRACES_FORMAT = "repro-traces"
TRACES_VERSION = 2


def stream_header(stream: str) -> dict:
    """The v2 header object written as the first line of a stream file."""
    return {"format": TRACES_FORMAT, "version": TRACES_VERSION, "stream": stream}


class _CanonicalGzipFile(gzip.GzipFile):
    """Gzip writer with a canonical member header.

    ``GzipFile(filename=...)`` embeds the file's basename (FNAME field)
    and, unless overridden, the wall-clock mtime — so byte-identical
    record streams could hash differently across paths or runs.  This
    writer pins ``mtime=0`` and omits FNAME entirely, making the
    compressed bytes a pure function of the uncompressed bytes.  It
    owns the underlying raw file (``GzipFile.close`` never closes an
    external ``fileobj``, so ``close`` is extended to do it).
    """

    def __init__(self, path: str | Path):
        self._raw = Path(path).open("wb")
        try:
            super().__init__(
                filename="", fileobj=self._raw, mode="wb", mtime=0
            )
        except Exception:
            self._raw.close()
            raise

    def close(self) -> None:
        try:
            super().close()
        finally:
            self._raw.close()


def open_trace_write(path: str | Path) -> TextIO:
    """Open a trace stream file for writing; ``.gz`` suffix gzips.

    Gzip members are written with a canonical header (``mtime=0``, no
    embedded filename) so identical records produce byte-identical
    files — the reproducibility contract the sharded fleet tests
    assert at the file level.
    """
    path = Path(path)
    if path.suffix == ".gz":
        return io.TextIOWrapper(_CanonicalGzipFile(path), encoding="utf-8")
    return path.open("w", encoding="utf-8")


def open_trace_read(path: str | Path) -> TextIO:
    """Open a (possibly gzipped) trace stream file for reading."""
    path = Path(path)
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.GzipFile(str(path), "rb"), encoding="utf-8")
    return path.open("r", encoding="utf-8")


def find_stream_file(directory: str | Path, stream: str) -> Path | None:
    """Locate ``<stream>.jsonl`` or ``<stream>.jsonl.gz`` in a directory."""
    directory = Path(directory)
    for suffix in (".jsonl", ".jsonl.gz"):
        path = directory / f"{stream}{suffix}"
        if path.exists():
            return path
    return None


def _is_header(data: dict) -> bool:
    return isinstance(data, dict) and data.get("format") == TRACES_FORMAT


#: Memoized header detection: path -> ((mtime_ns, size, inode), has_header).
#: Stream files are opened once per shard per analysis stream, and an
#: incremental workflow re-opens the same (immutable) shard files across
#: many characterize/validate calls — caching the decoded-and-validated
#: verdict skips a json.loads per open.  Keyed on stat identity so an
#: edited file re-validates; the inode is part of the key because the
#: usual rewrite pattern (write a temp file, ``os.replace`` over the
#: original) can leave mtime and size unchanged within filesystem
#: timestamp granularity while swapping in different bytes.
_HEADER_CACHE: dict[str, tuple[tuple[int, int, int], bool]] = {}
_HEADER_CACHE_MAX = 4096


def _first_line_is_header(path: Path, line: str) -> bool:
    """Whether the first non-blank line is a (validated) v2 header."""
    key = str(path)
    try:
        stat = path.stat()
        signature = (stat.st_mtime_ns, stat.st_size, stat.st_ino)
    except OSError:
        signature = None
    if signature is not None:
        cached = _HEADER_CACHE.get(key)
        if cached is not None and cached[0] == signature:
            return cached[1]
    data = json.loads(line)
    has_header = _is_header(data)
    if has_header:
        version = data.get("version")
        if not isinstance(version, int) or version > TRACES_VERSION:
            raise ValueError(
                f"{path}: unsupported trace format version {version!r}"
            )
    if signature is not None:
        if len(_HEADER_CACHE) >= _HEADER_CACHE_MAX:
            _HEADER_CACHE.clear()
        _HEADER_CACHE[key] = (signature, has_header)
    return has_header


def iter_record_batches(
    path: str | Path, record_cls, batch_size: int = 1024
) -> Iterator[list]:
    """Yield records from one stream file in lists of ``batch_size``.

    The JSONL hot path: header handling happens once up front (memoized
    across opens of the same unchanged file), then the loop body is a
    single dispatch — ``from_dict(loads(line))`` with both callables
    bound locally — with no per-record conditionals.  Blank lines are
    skipped without allocating a stripped copy (``json.loads`` accepts
    surrounding whitespace).
    """
    path = Path(path)
    with open_trace_read(path) as fh:
        first = fh.readline()
        while first and first.isspace():
            first = fh.readline()
        carry: list[str] = []
        if first and not _first_line_is_header(path, first):
            carry = [first]  # v1 file: the first line is a record
        loads = json.loads
        from_dict = record_cls.from_dict
        batch: list = []
        append = batch.append
        for line in _chain(carry, fh):
            if line and not line.isspace():
                append(from_dict(loads(line)))
                if len(batch) >= batch_size:
                    yield batch
                    batch = []
                    append = batch.append
        if batch:
            yield batch


def _chain(head: list[str], rest) -> Iterator[str]:
    yield from head
    yield from rest


def iter_stream_records(path: str | Path, record_cls) -> Iterator:
    """Yield records from one stream file, v1 (headerless) or v2.

    A header newer than :data:`TRACES_VERSION` is rejected rather than
    misread; anything else on the first line must be a record.  Thin
    wrapper over the batched fast path (:func:`iter_record_batches`).
    """
    for batch in iter_record_batches(path, record_cls):
        yield from batch


def save_traces(
    traces: TraceSet,
    directory: str | Path,
    compress: bool = False,
    codec: str = "jsonl",
) -> Path:
    """Write each stream of ``traces`` to ``directory``.

    ``codec="jsonl"`` (default) writes ``<stream>.jsonl[.gz]``;
    ``codec="columnar"`` writes the binary struct-of-arrays layout of
    :mod:`repro.tracing.columnar` (incompatible with ``compress`` —
    the column buffers are raw binary).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if codec == "columnar":
        if compress:
            raise ValueError("columnar traces do not support compress")
        from .columnar import ColumnarStreamWriter

        for stream in STREAM_TYPES:
            writer = ColumnarStreamWriter(directory, stream)
            for record in getattr(traces, stream):
                writer.write(record)
            writer.close()
        return directory
    if codec != "jsonl":
        raise ValueError(f"unknown trace codec {codec!r}")
    suffix = ".jsonl.gz" if compress else ".jsonl"
    for stream in STREAM_TYPES:
        records = getattr(traces, stream)
        with open_trace_write(directory / f"{stream}{suffix}") as fh:
            fh.write(json.dumps(stream_header(stream)) + "\n")
            for record in records:
                fh.write(json.dumps(record.to_dict()) + "\n")
    return directory


def load_traces(directory: str | Path):
    """Open any on-disk trace layout as a ``TraceSource``.

    Auto-detects the layout:

    * a sharded store (``shard-*/manifest.json`` present) opens as a
      lazy :class:`repro.store.ShardStore` — records stay on disk and
      are stitched on iteration;
    * a flat v1/v2 dump (plain or gzipped, header optional) loads as an
      in-memory :class:`TraceSet`; missing stream files load as empty
      streams, so partial dumps (e.g. storage-only characterization
      runs) are usable.

    Both returns satisfy the :class:`repro.tracing.TraceSource`
    protocol.  Callers that need the materialized merge of a shard
    store should pass the result through
    :func:`repro.tracing.as_trace_set` (the pre-0.3 behavior, which
    stitched stores eagerly).
    """
    directory = Path(directory)
    if any(directory.glob("shard-*/manifest.json")):
        from ..store.shards import ShardStore

        return ShardStore(directory)
    from .columnar import find_columnar_stream, iter_columnar_records

    traces = TraceSet()
    for stream, record_cls in STREAM_TYPES.items():
        path = find_stream_file(directory, stream)
        if path is not None:
            getattr(traces, stream).extend(
                iter_stream_records(path, record_cls)
            )
        elif find_columnar_stream(directory, stream) is not None:
            getattr(traces, stream).extend(
                iter_columnar_records(directory, stream)
            )
    return traces
