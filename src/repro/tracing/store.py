"""Trace persistence: JSON-lines serialization of a :class:`TraceSet`.

Traces collected from a simulation run can be written to a directory
(one ``.jsonl`` file per stream) and reloaded later, so model training
can be decoupled from trace collection — the workflow the paper
assumes ("each one of the four models is trained using traces from the
corresponding subsystem").
"""

from __future__ import annotations

import json
from pathlib import Path

from .records import (
    CpuRecord,
    MemoryRecord,
    NetworkRecord,
    RequestRecord,
    StorageRecord,
)
from .span import Span
from .tracer import TraceSet

__all__ = ["load_traces", "save_traces"]

_STREAMS = {
    "network": NetworkRecord,
    "cpu": CpuRecord,
    "memory": MemoryRecord,
    "storage": StorageRecord,
    "requests": RequestRecord,
    "spans": Span,
}


def save_traces(traces: TraceSet, directory: str | Path) -> Path:
    """Write each stream of ``traces`` to ``directory/<stream>.jsonl``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for stream in _STREAMS:
        records = getattr(traces, stream)
        path = directory / f"{stream}.jsonl"
        with path.open("w") as fh:
            for record in records:
                fh.write(json.dumps(record.to_dict()) + "\n")
    return directory


def load_traces(directory: str | Path) -> TraceSet:
    """Read a :class:`TraceSet` previously written by :func:`save_traces`.

    Missing stream files load as empty streams, so partial trace
    directories (e.g. storage-only characterization runs) are usable.
    """
    directory = Path(directory)
    traces = TraceSet()
    for stream, record_cls in _STREAMS.items():
        path = directory / f"{stream}.jsonl"
        if not path.exists():
            continue
        records = getattr(traces, stream)
        with path.open() as fh:
            for line in fh:
                line = line.strip()
                if line:
                    records.append(record_cls.from_dict(json.loads(line)))
    return traces
