"""The :class:`TraceSource` protocol: uniform read access to traces.

Every consumer of collected traces — trainers, characterization,
validation — historically took an in-memory :class:`TraceSet`.  That
forced the sharded on-disk store to materialize its full stitched
merge before any analysis could run.  ``TraceSource`` is the common
read interface that breaks that coupling:

* :meth:`~TraceSource.streams` — the stream names the source carries,
  in canonical order;
* :meth:`~TraceSource.iter_records` — the records of one stream, in
  merged (stitched) order;
* :meth:`~TraceSource.extent` — the end of the trace timeline, with
  the same semantics as :func:`repro.store.trace_extent`;
* :meth:`~TraceSource.classes` — completed-request counts per request
  class.

Three implementations ship: :class:`~repro.tracing.TraceSet` (in
memory), :class:`repro.store.ShardStore` (sharded on disk, stitched
lazily), and :class:`FlatTraceDump` (a flat v1/v2 dump directory, read
lazily).  :func:`as_trace_set` materializes any source for the batch
paths that genuinely need random access.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Any, Dict, Iterator, Protocol, Tuple, runtime_checkable

from .columnar import (
    columns_from_records,
    find_columnar_stream,
    iter_columnar_batches,
    iter_columnar_records,
)
from .store import (
    STREAM_TYPES,
    find_stream_file,
    iter_record_batches,
    iter_stream_records,
)
from .tracer import TraceSet

__all__ = ["FlatTraceDump", "TraceSource", "as_trace_set"]


@runtime_checkable
class TraceSource(Protocol):
    """Read-only access to one logical trace timeline.

    Implementations must yield each stream's records in the order the
    merged in-memory ``TraceSet`` would hold them, so order-dependent
    statistics (interarrival gaps, storage seek distances) agree across
    sources byte for byte.
    """

    def streams(self) -> Tuple[str, ...]:
        """Stream names carried by this source, in canonical order."""
        ...

    def iter_records(self, stream: str) -> Iterator:
        """Yield one stream's records in merged (stitched) order."""
        ...

    def extent(self) -> float:
        """End of the trace timeline (latest timestamp, any stream)."""
        ...

    def classes(self) -> Dict[str, int]:
        """Completed-request counts per request class, sorted by name."""
        ...


def as_trace_set(source: TraceSource) -> TraceSet:
    """Materialize any :class:`TraceSource` into a :class:`TraceSet`.

    A ``TraceSet`` passes through unchanged; anything else is read
    stream by stream.  This is the explicit escape hatch for batch
    consumers — streaming paths should fold over
    :meth:`~TraceSource.iter_records` instead.
    """
    if isinstance(source, TraceSet):
        return source
    traces = TraceSet()
    for stream in source.streams():
        getattr(traces, stream).extend(source.iter_records(stream))
    return traces


class FlatTraceDump:
    """Lazy :class:`TraceSource` over a flat v1/v2 trace dump directory.

    Reads nothing at construction beyond an existence check; records
    are parsed on iteration, and :meth:`extent` / :meth:`classes` scan
    once and cache.  Missing stream files iterate as empty, matching
    :func:`repro.tracing.load_traces` on partial dumps.
    """

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        if not self.directory.is_dir():
            raise FileNotFoundError(f"not a directory: {self.directory}")
        if all(
            find_stream_file(self.directory, stream) is None
            and find_columnar_stream(self.directory, stream) is None
            for stream in STREAM_TYPES
        ):
            raise FileNotFoundError(
                f"no trace stream files under {self.directory} "
                f"(expected <stream>.jsonl[.gz] or <stream>.columns.json)"
            )
        self._extent: float | None = None
        self._classes: Dict[str, int] | None = None

    def streams(self) -> Tuple[str, ...]:
        return tuple(STREAM_TYPES)

    def iter_records(self, stream: str) -> Iterator:
        if stream not in STREAM_TYPES:
            raise ValueError(f"unknown stream {stream!r}")
        path = find_stream_file(self.directory, stream)
        if path is not None:
            return iter_stream_records(path, STREAM_TYPES[stream])
        if find_columnar_stream(self.directory, stream) is not None:
            return iter_columnar_records(self.directory, stream)
        return iter(())

    def iter_column_batches(
        self, stream: str, batch_size: int = 4096
    ) -> Iterator[Dict[str, Any]]:
        """Yield one stream as numpy column-dict batches.

        Columnar dumps serve their buffers directly; JSONL dumps decode
        record batches and pivot them through
        :func:`repro.tracing.columnar.columns_from_records`, so both
        layouts hand consumers the identical representation.
        """
        if stream not in STREAM_TYPES:
            raise ValueError(f"unknown stream {stream!r}")
        path = find_stream_file(self.directory, stream)
        if path is not None:
            for batch in iter_record_batches(
                path, STREAM_TYPES[stream], batch_size=batch_size
            ):
                yield columns_from_records(stream, batch)
            return
        if find_columnar_stream(self.directory, stream) is not None:
            yield from iter_columnar_batches(
                self.directory, stream, batch_size=batch_size
            )

    def extent(self) -> float:
        if self._extent is None:
            extent = 0.0
            for stream in ("network", "cpu", "memory", "storage"):
                for record in self.iter_records(stream):
                    extent = max(extent, record.timestamp)
            for record in self.iter_records("requests"):
                extent = max(extent, record.arrival_time, record.completion_time)
            for span in self.iter_records("spans"):
                extent = max(extent, span.start)
                if not math.isnan(span.end):
                    extent = max(extent, span.end)
                for annotation in span.annotations:
                    extent = max(extent, annotation.timestamp)
            self._extent = extent
        return self._extent

    def classes(self) -> Dict[str, int]:
        if self._classes is None:
            counts: Dict[str, int] = {}
            for record in self.iter_records("requests"):
                if record.completion_time > record.arrival_time:
                    counts[record.request_class] = (
                        counts.get(record.request_class, 0) + 1
                    )
            self._classes = dict(sorted(counts.items()))
        return dict(self._classes)

    def summary(self) -> Dict[str, int]:
        """Record counts per stream (same shape as ``TraceSet.summary``)."""
        return {
            stream: sum(1 for _ in self.iter_records(stream))
            for stream in STREAM_TYPES
        }
