"""Dapper-style spans and trace trees.

Following Sigelman et al. (the paper's in-depth exemplar), a traced
request is represented as a tree of nested spans.  Each span covers one
named unit of work (an RPC, or a subsystem stage such as ``storage``)
on one server, carries timestamped annotations, and points at its
parent.  The KOOZA *time-dependency queue* is mined from these trees:
the ordered sequence of subsystem activations for each request class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

__all__ = ["Annotation", "Span", "TraceTree", "build_trace_trees"]


@dataclass(slots=True)
class Annotation:
    """A timestamped note attached to a span (Dapper annotation)."""

    timestamp: float
    message: str


@dataclass(slots=True)
class Span:
    """One unit of work within a traced request."""

    trace_id: int
    span_id: int
    parent_id: Optional[int]
    name: str
    server: str
    start: float
    end: float = float("nan")
    annotations: list[Annotation] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def annotate(self, timestamp: float, message: str) -> None:
        """Attach a timestamped annotation."""
        self.annotations.append(Annotation(timestamp, message))

    # Literal dicts in field order (``asdict`` recurses + deep-copies on
    # the span-close hot path); emitted key order is unchanged.
    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "server": self.server,
            "start": self.start,
            "end": self.end,
            "annotations": [
                {"timestamp": a.timestamp, "message": a.message}
                for a in self.annotations
            ],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        annotations = [Annotation(**a) for a in data.pop("annotations", [])]
        return cls(annotations=annotations, **data)


class TraceTree:
    """The reassembled span tree for one traced request."""

    def __init__(self, root: Span, children: dict[int, list[Span]]):
        self.root = root
        self._children = children

    @property
    def trace_id(self) -> int:
        return self.root.trace_id

    def children_of(self, span: Span) -> list[Span]:
        """Direct children of ``span``, ordered by start time."""
        return sorted(self._children.get(span.span_id, []), key=lambda s: s.start)

    def walk(self) -> Iterator[Span]:
        """Depth-first, start-time-ordered traversal of all spans."""
        stack = [self.root]
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(self.children_of(span)))

    def stage_sequence(self) -> list[str]:
        """Ordered leaf-span names — the request's subsystem activation
        order (the raw material of the time-dependency queue)."""
        leaves = [s for s in self.walk() if not self._children.get(s.span_id)]
        leaves.sort(key=lambda s: s.start)
        return [s.name for s in leaves]

    def span_count(self) -> int:
        return sum(1 for _ in self.walk())

    def critical_path(self) -> list[Span]:
        """Spans on the longest start-to-end chain through the tree."""
        path = [self.root]
        current = self.root
        while True:
            kids = self.children_of(current)
            if not kids:
                return path
            current = max(kids, key=lambda s: s.duration)
            path.append(current)


def build_trace_trees(spans: list[Span]) -> list[TraceTree]:
    """Group flat span lists by ``trace_id`` and rebuild each tree.

    Spans whose parent is missing (e.g. lost records) are dropped with
    their subtrees, mirroring how real tracing pipelines handle
    incomplete traces.
    """
    by_trace: dict[int, list[Span]] = {}
    for span in spans:
        by_trace.setdefault(span.trace_id, []).append(span)

    trees = []
    for trace_id in sorted(by_trace):
        group = by_trace[trace_id]
        roots = [s for s in group if s.parent_id is None]
        if len(roots) != 1:
            continue  # malformed trace: zero or multiple roots
        ids = {s.span_id for s in group}
        children: dict[int, list[Span]] = {}
        for span in group:
            if span.parent_id is None:
                continue
            if span.parent_id not in ids:
                continue  # orphan: parent record lost
            children.setdefault(span.parent_id, []).append(span)
        trees.append(TraceTree(roots[0], children))
    return trees
