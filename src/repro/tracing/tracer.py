"""The trace collector instrumented into the simulated datacenter.

Combines the two tracing regimes the paper describes:

* **subsystem tracing** (always on): the four per-subsystem record
  streams that in-breadth models train on — "training the four models
  requires collecting traces for the corresponding part of the system,
  a standard procedure for any DC configuration study";
* **request tracing** (Dapper-style, sampled 1-in-N): span trees that
  capture the complete round trip of a request, from which the KOOZA
  time-dependency queue is extracted.

A :class:`TraceSet` bundles everything a model trainer consumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Iterator, Optional

from .records import (
    CpuRecord,
    MemoryRecord,
    NetworkRecord,
    RequestRecord,
    StorageRecord,
)
from .span import Annotation, Span, TraceTree, build_trace_trees

__all__ = [
    "STREAM_NAMES",
    "TraceSet",
    "Tracer",
    "shift_request",
    "shift_span",
    "shift_subsystem_record",
]

#: Canonical stream order (mirrors ``repro.tracing.store.STREAM_TYPES``,
#: which cannot be imported here without a cycle).
STREAM_NAMES = ("network", "cpu", "memory", "storage", "requests", "spans")


def shift_subsystem_record(record, time_offset: float = 0.0, request_id_offset: int = 0):
    """A copy of a network/cpu/memory/storage record with offsets applied."""
    return replace(
        record,
        request_id=record.request_id + request_id_offset,
        timestamp=record.timestamp + time_offset,
    )


def shift_request(
    record: RequestRecord, time_offset: float = 0.0, request_id_offset: int = 0
) -> RequestRecord:
    """A copy of a request record with its id and both times offset."""
    return replace(
        record,
        request_id=record.request_id + request_id_offset,
        arrival_time=record.arrival_time + time_offset,
        completion_time=record.completion_time + time_offset,
    )


def shift_span(
    span: Span,
    time_offset: float = 0.0,
    request_id_offset: int = 0,
    span_id_offset: int = 0,
) -> Span:
    """A copy of a span with trace/span ids and all timestamps offset."""
    return replace(
        span,
        trace_id=span.trace_id + request_id_offset,
        span_id=span.span_id + span_id_offset,
        parent_id=(
            None if span.parent_id is None else span.parent_id + span_id_offset
        ),
        start=span.start + time_offset,
        end=span.end + time_offset,
        annotations=[
            Annotation(a.timestamp + time_offset, a.message)
            for a in span.annotations
        ],
    )


@dataclass
class TraceSet:
    """Everything collected from one simulation run.

    The training input for every modeling technique in the repository.
    """

    network: list[NetworkRecord] = field(default_factory=list)
    cpu: list[CpuRecord] = field(default_factory=list)
    memory: list[MemoryRecord] = field(default_factory=list)
    storage: list[StorageRecord] = field(default_factory=list)
    requests: list[RequestRecord] = field(default_factory=list)
    spans: list[Span] = field(default_factory=list)

    def trace_trees(self) -> list[TraceTree]:
        """Reassemble the sampled span trees."""
        return build_trace_trees(self.spans)

    def completed_requests(self) -> list[RequestRecord]:
        """Requests that finished before the simulation ended."""
        return [r for r in self.requests if r.completion_time > r.arrival_time]

    def requests_by_class(self) -> dict[str, list[RequestRecord]]:
        """Completed requests grouped by request class."""
        grouped: dict[str, list[RequestRecord]] = {}
        for record in self.completed_requests():
            grouped.setdefault(record.request_class, []).append(record)
        return grouped

    # -- TraceSource protocol ------------------------------------------------

    def streams(self) -> tuple[str, ...]:
        """Stream names carried by this set, in canonical order."""
        return STREAM_NAMES

    def iter_records(self, stream: str) -> Iterator:
        """Yield one stream's records (``TraceSource`` protocol)."""
        if stream not in STREAM_NAMES:
            raise ValueError(f"unknown stream {stream!r}")
        return iter(getattr(self, stream))

    def extent(self) -> float:
        """Latest timestamp in any stream (stitch-extent semantics)."""
        extent = 0.0
        for stream in (self.network, self.cpu, self.memory, self.storage):
            for record in stream:
                extent = max(extent, record.timestamp)
        for record in self.requests:
            extent = max(extent, record.arrival_time, record.completion_time)
        for span in self.spans:
            extent = max(extent, span.start)
            if not math.isnan(span.end):
                extent = max(extent, span.end)
            for annotation in span.annotations:
                extent = max(extent, annotation.timestamp)
        return extent

    def classes(self) -> dict[str, int]:
        """Completed-request counts per request class, sorted by name."""
        return dict(
            sorted(
                (cls, len(records))
                for cls, records in self.requests_by_class().items()
            )
        )

    def shifted(
        self,
        time_offset: float = 0.0,
        request_id_offset: int = 0,
        span_id_offset: int = 0,
    ) -> "TraceSet":
        """A copy with all timestamps and identifiers offset.

        Used when merging independent runs (e.g. fleet replicas) into
        one trace timeline: each run's clock starts at zero and its
        tracer numbers requests/spans from one, so a later run must be
        shifted past its predecessors to keep merged timestamps
        monotone per replica and identifiers globally unique.

        The per-record transforms live at module level
        (:func:`shift_subsystem_record`, :func:`shift_request`,
        :func:`shift_span`) so the on-disk shard store can apply the
        exact same arithmetic one record at a time without
        materializing whole trace sets.
        """

        def req(r: RequestRecord) -> RequestRecord:
            return shift_request(r, time_offset, request_id_offset)

        def span(s: Span) -> Span:
            return shift_span(s, time_offset, request_id_offset, span_id_offset)

        def rec(r):
            return shift_subsystem_record(r, time_offset, request_id_offset)

        return TraceSet(
            network=[rec(r) for r in self.network],
            cpu=[rec(r) for r in self.cpu],
            memory=[rec(r) for r in self.memory],
            storage=[rec(r) for r in self.storage],
            requests=[req(r) for r in self.requests],
            spans=[span(s) for s in self.spans],
        )

    def merge(self, other: "TraceSet") -> "TraceSet":
        """A new TraceSet containing this set's and ``other``'s records."""
        return TraceSet(
            network=self.network + other.network,
            cpu=self.cpu + other.cpu,
            memory=self.memory + other.memory,
            storage=self.storage + other.storage,
            requests=self.requests + other.requests,
            spans=self.spans + other.spans,
        )

    def summary(self) -> dict[str, int]:
        """Record counts per stream (for logging and sanity checks)."""
        return {
            "network": len(self.network),
            "cpu": len(self.cpu),
            "memory": len(self.memory),
            "storage": len(self.storage),
            "requests": len(self.requests),
            "spans": len(self.spans),
        }


class Tracer:
    """Collects subsystem records always, span trees for sampled requests.

    ``sample_every`` mirrors Dapper's 1-in-N trace sampling (the paper
    quotes 1/1000 with <1.5% overhead); ``sample_every=1`` traces every
    request, which the small simulated clusters can afford.

    A ``sink`` (any object with ``write(stream, record)``, e.g. a
    :class:`repro.store.ShardWriter`) receives every record as it is
    collected, so a fleet replica can stream its traces straight to
    disk.  Network/cpu/memory/storage/request records are final when
    recorded and are forwarded immediately; spans are mutated until
    :meth:`end_span` (their ``end`` is backfilled), so they are held in
    memory and flushed to the sink, in collection order, by
    :meth:`flush_spans` / :meth:`close`.  With ``keep_records=False``
    the forwarded streams are *not* also accumulated in :attr:`traces`,
    bounding memory to the (sampled) span set no matter how long the
    run is.

    Windowed collection swaps :attr:`sink` between windows and calls
    :meth:`flush_spans` at each boundary; :attr:`emitted` counts every
    record forwarded per stream, which engine checkpoints record and
    replays validate against.
    """

    def __init__(self, sample_every: int = 1, sink=None, keep_records: bool = True):
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        if sink is None and not keep_records:
            raise ValueError("keep_records=False requires a sink")
        self.sample_every = sample_every
        self.traces = TraceSet()
        self.sink = sink
        self.keep_records = keep_records
        #: Records forwarded so far, per stream (spans count when flushed).
        self.emitted: dict[str, int] = {name: 0 for name in STREAM_NAMES}
        self._closed = False
        self._next_span_id = 0
        self._sampled: set[int] = set()
        self._request_counter = 0
        #: Spans written to a sink so far (prefix of collection order).
        self._spans_flushed = 0
        #: Flushed spans dropped from the front of ``traces.spans``
        #: (non-zero only with ``keep_records=False``).
        self._spans_base = 0

    # -- request lifecycle -------------------------------------------------

    def new_request_id(self) -> int:
        """Allocate a globally unique request id (the Dapper trace id)."""
        self._request_counter += 1
        request_id = self._request_counter
        if (request_id - 1) % self.sample_every == 0:
            self._sampled.add(request_id)
        return request_id

    def is_sampled(self, request_id: int) -> bool:
        """Whether this request's spans are being recorded."""
        return request_id in self._sampled

    def record_request(self, record: RequestRecord) -> None:
        """Register an end-to-end request record (always collected)."""
        self.emitted["requests"] += 1
        if self.keep_records:
            self.traces.requests.append(record)
        if self.sink is not None:
            self.sink.write("requests", record)

    # -- span API (sampled) --------------------------------------------------

    def start_span(
        self,
        request_id: int,
        name: str,
        server: str,
        start: float,
        parent: Optional[Span] = None,
    ) -> Optional[Span]:
        """Open a span for a sampled request; returns None if unsampled."""
        if request_id not in self._sampled:
            return None
        self._next_span_id += 1
        span = Span(
            trace_id=request_id,
            span_id=self._next_span_id,
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            server=server,
            start=start,
        )
        self.traces.spans.append(span)
        return span

    def end_span(self, span: Optional[Span], end: float) -> None:
        """Close a span (no-op for unsampled requests)."""
        if span is not None:
            span.end = end

    # -- subsystem record API (always on) -----------------------------------

    # Each recorder inlines its emit (counter bump, optional in-memory
    # append, optional sink forward) rather than dispatching through a
    # stream-name-keyed helper: these five calls are the per-record hot
    # path, and the string-keyed getattr plus the extra frame showed up
    # in collect profiles.  ``sink`` is re-read every call because
    # windowed collection swaps it between windows.

    def record_network(self, record: NetworkRecord) -> None:
        self.emitted["network"] += 1
        if self.keep_records:
            self.traces.network.append(record)
        if self.sink is not None:
            self.sink.write("network", record)

    def record_cpu(self, record: CpuRecord) -> None:
        self.emitted["cpu"] += 1
        if self.keep_records:
            self.traces.cpu.append(record)
        if self.sink is not None:
            self.sink.write("cpu", record)

    def record_memory(self, record: MemoryRecord) -> None:
        self.emitted["memory"] += 1
        if self.keep_records:
            self.traces.memory.append(record)
        if self.sink is not None:
            self.sink.write("memory", record)

    def record_storage(self, record: StorageRecord) -> None:
        self.emitted["storage"] += 1
        if self.keep_records:
            self.traces.storage.append(record)
        if self.sink is not None:
            self.sink.write("storage", record)

    # -- streaming ----------------------------------------------------------

    def flush_spans(self, final: bool = False) -> int:
        """Forward unflushed spans to the sink; returns how many.

        Spans cannot be streamed eagerly because ``end`` is backfilled,
        and they must reach sinks in *collection order* (the order
        :attr:`traces` holds them in, and the order a single-shot run's
        :meth:`close` writes) for on-disk shards to stay
        record-for-record identical to the in-memory stream.  So a
        non-``final`` flush — a window boundary, where later windows
        write to a *different* sink — forwards only the longest prefix
        of completed spans: a still-open span holds back every span
        collected after it, however finished, because those must land
        behind it in a later shard.  ``final`` flushes everything,
        open spans included (end-of-run semantics, identical to what
        :meth:`close` always wrote).

        With ``keep_records=False`` flushed spans are dropped from
        memory, keeping long windowed runs bounded.
        """
        spans = self.traces.spans
        start = self._spans_flushed - self._spans_base
        stop = len(spans) if final else start
        if not final:
            while stop < len(spans) and not math.isnan(spans[stop].end):
                stop += 1
        if self.sink is not None:
            for span in spans[start:stop]:
                self.sink.write("spans", span)
        count = stop - start
        self._spans_flushed += count
        self.emitted["spans"] += count
        if not self.keep_records:
            del spans[:stop]
            self._spans_base = self._spans_flushed
        return count

    def close(self) -> None:
        """Flush all remaining spans to the sink (idempotent)."""
        if self._closed or self.sink is None:
            self._closed = True
            return
        self._closed = True
        self.flush_spans(final=True)
