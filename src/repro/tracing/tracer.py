"""The trace collector instrumented into the simulated datacenter.

Combines the two tracing regimes the paper describes:

* **subsystem tracing** (always on): the four per-subsystem record
  streams that in-breadth models train on — "training the four models
  requires collecting traces for the corresponding part of the system,
  a standard procedure for any DC configuration study";
* **request tracing** (Dapper-style, sampled 1-in-N): span trees that
  capture the complete round trip of a request, from which the KOOZA
  time-dependency queue is extracted.

A :class:`TraceSet` bundles everything a model trainer consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from .records import (
    CpuRecord,
    MemoryRecord,
    NetworkRecord,
    RequestRecord,
    StorageRecord,
)
from .span import Annotation, Span, TraceTree, build_trace_trees

__all__ = ["TraceSet", "Tracer"]


@dataclass
class TraceSet:
    """Everything collected from one simulation run.

    The training input for every modeling technique in the repository.
    """

    network: list[NetworkRecord] = field(default_factory=list)
    cpu: list[CpuRecord] = field(default_factory=list)
    memory: list[MemoryRecord] = field(default_factory=list)
    storage: list[StorageRecord] = field(default_factory=list)
    requests: list[RequestRecord] = field(default_factory=list)
    spans: list[Span] = field(default_factory=list)

    def trace_trees(self) -> list[TraceTree]:
        """Reassemble the sampled span trees."""
        return build_trace_trees(self.spans)

    def completed_requests(self) -> list[RequestRecord]:
        """Requests that finished before the simulation ended."""
        return [r for r in self.requests if r.completion_time > r.arrival_time]

    def requests_by_class(self) -> dict[str, list[RequestRecord]]:
        """Completed requests grouped by request class."""
        grouped: dict[str, list[RequestRecord]] = {}
        for record in self.completed_requests():
            grouped.setdefault(record.request_class, []).append(record)
        return grouped

    def shifted(
        self,
        time_offset: float = 0.0,
        request_id_offset: int = 0,
        span_id_offset: int = 0,
    ) -> "TraceSet":
        """A copy with all timestamps and identifiers offset.

        Used when merging independent runs (e.g. fleet replicas) into
        one trace timeline: each run's clock starts at zero and its
        tracer numbers requests/spans from one, so a later run must be
        shifted past its predecessors to keep merged timestamps
        monotone per replica and identifiers globally unique.
        """

        def req(r: RequestRecord) -> RequestRecord:
            return replace(
                r,
                request_id=r.request_id + request_id_offset,
                arrival_time=r.arrival_time + time_offset,
                completion_time=r.completion_time + time_offset,
            )

        def span(s: Span) -> Span:
            return replace(
                s,
                trace_id=s.trace_id + request_id_offset,
                span_id=s.span_id + span_id_offset,
                parent_id=(
                    None if s.parent_id is None else s.parent_id + span_id_offset
                ),
                start=s.start + time_offset,
                end=s.end + time_offset,
                annotations=[
                    Annotation(a.timestamp + time_offset, a.message)
                    for a in s.annotations
                ],
            )

        def rec(r):
            return replace(
                r,
                request_id=r.request_id + request_id_offset,
                timestamp=r.timestamp + time_offset,
            )

        return TraceSet(
            network=[rec(r) for r in self.network],
            cpu=[rec(r) for r in self.cpu],
            memory=[rec(r) for r in self.memory],
            storage=[rec(r) for r in self.storage],
            requests=[req(r) for r in self.requests],
            spans=[span(s) for s in self.spans],
        )

    def merge(self, other: "TraceSet") -> "TraceSet":
        """A new TraceSet containing this set's and ``other``'s records."""
        return TraceSet(
            network=self.network + other.network,
            cpu=self.cpu + other.cpu,
            memory=self.memory + other.memory,
            storage=self.storage + other.storage,
            requests=self.requests + other.requests,
            spans=self.spans + other.spans,
        )

    def summary(self) -> dict[str, int]:
        """Record counts per stream (for logging and sanity checks)."""
        return {
            "network": len(self.network),
            "cpu": len(self.cpu),
            "memory": len(self.memory),
            "storage": len(self.storage),
            "requests": len(self.requests),
            "spans": len(self.spans),
        }


class Tracer:
    """Collects subsystem records always, span trees for sampled requests.

    ``sample_every`` mirrors Dapper's 1-in-N trace sampling (the paper
    quotes 1/1000 with <1.5% overhead); ``sample_every=1`` traces every
    request, which the small simulated clusters can afford.
    """

    def __init__(self, sample_every: int = 1):
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self.sample_every = sample_every
        self.traces = TraceSet()
        self._next_span_id = 0
        self._sampled: set[int] = set()
        self._request_counter = 0

    # -- request lifecycle -------------------------------------------------

    def new_request_id(self) -> int:
        """Allocate a globally unique request id (the Dapper trace id)."""
        self._request_counter += 1
        request_id = self._request_counter
        if (request_id - 1) % self.sample_every == 0:
            self._sampled.add(request_id)
        return request_id

    def is_sampled(self, request_id: int) -> bool:
        """Whether this request's spans are being recorded."""
        return request_id in self._sampled

    def record_request(self, record: RequestRecord) -> None:
        """Register an end-to-end request record (always collected)."""
        self.traces.requests.append(record)

    # -- span API (sampled) --------------------------------------------------

    def start_span(
        self,
        request_id: int,
        name: str,
        server: str,
        start: float,
        parent: Optional[Span] = None,
    ) -> Optional[Span]:
        """Open a span for a sampled request; returns None if unsampled."""
        if request_id not in self._sampled:
            return None
        self._next_span_id += 1
        span = Span(
            trace_id=request_id,
            span_id=self._next_span_id,
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            server=server,
            start=start,
        )
        self.traces.spans.append(span)
        return span

    def end_span(self, span: Optional[Span], end: float) -> None:
        """Close a span (no-op for unsampled requests)."""
        if span is not None:
            span.end = end

    # -- subsystem record API (always on) -----------------------------------

    def record_network(self, record: NetworkRecord) -> None:
        self.traces.network.append(record)

    def record_cpu(self, record: CpuRecord) -> None:
        self.traces.cpu.append(record)

    def record_memory(self, record: MemoryRecord) -> None:
        self.traces.memory.append(record)

    def record_storage(self, record: StorageRecord) -> None:
        self.traces.storage.append(record)
