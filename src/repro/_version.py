"""Tool version, importable from leaf modules without package cycles.

``repro.store.writer`` stamps manifests with the producing tool's
version and ``repro.cli --version`` / the serve daemon's ``/healthz``
report it; all of them import this module, which depends on nothing
else in the package (``repro/__init__`` re-exports it, but leaf modules
must not import the package root while it is still initializing).
"""

from __future__ import annotations

__all__ = ["FALLBACK_VERSION", "tool_version"]

#: Used when the package is run from a source tree without installed
#: distribution metadata (keep in sync with ``pyproject.toml``).
FALLBACK_VERSION = "1.0.0"


def tool_version() -> str:
    """The installed package version, or the source-tree fallback."""
    try:
        from importlib.metadata import PackageNotFoundError, version
    except ImportError:  # pragma: no cover - importlib.metadata is 3.8+
        return FALLBACK_VERSION
    try:
        return version("repro")
    except PackageNotFoundError:
        return FALLBACK_VERSION
