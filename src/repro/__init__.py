"""repro: datacenter workload modeling — in-breadth, in-depth and KOOZA.

A from-scratch reproduction of Delimitrou & Kozyrakis,
"Cross-Examination of Datacenter Workload Modeling Techniques" (2011):
a simulated datacenter substrate (discrete-event engine, device models,
GFS / 3-tier / MapReduce applications, Dapper-style tracing), the two
surveyed modeling families (per-subsystem in-breadth models and
queueing-network in-depth models), and KOOZA — the combined approach
with four subsystem models plus a time-dependency queue.

Quickstart::

    import numpy as np
    from repro import run_gfs_workload, KoozaTrainer, ReplayHarness
    from repro import compare_workloads

    run = run_gfs_workload(n_requests=2000, seed=7)
    model = KoozaTrainer().fit(run.traces)
    synthetic = model.synthesize(2000, np.random.default_rng(42))
    replayed = ReplayHarness().replay(synthetic)
    print(compare_workloads(run.traces, replayed).to_table())
"""

from .core import (
    CAPABILITIES,
    KoozaConfig,
    KoozaModel,
    KoozaTrainer,
    ReplayHarness,
    SyntheticRequest,
    ValidationReport,
    WorkloadFeatureStats,
    WorkloadProfile,
    WorkloadProfileBuilder,
    capability_table,
    compare_feature_stats,
    compare_workloads,
    extract_request_features,
    mine_dependency_queue,
)
from .breadth import InBreadthWorkloadModel
from .datacenter import (
    GfsCluster,
    GfsRequest,
    GfsSpec,
    Machine,
    MachineSpec,
    run_gfs_workload,
    run_mapreduce_jobs,
    run_webapp_workload,
)
from .depth import InDepthModel
from .tracing import (
    FlatTraceDump,
    TraceSet,
    TraceSource,
    Tracer,
    as_trace_set,
    load_traces,
    save_traces,
)

from ._version import tool_version

#: Resolved from installed metadata when available, so stamped shard
#: manifests, `repro --version`, and `/healthz` all agree.
__version__ = tool_version()

__all__ = [
    "CAPABILITIES",
    "FlatTraceDump",
    "GfsCluster",
    "GfsRequest",
    "GfsSpec",
    "InBreadthWorkloadModel",
    "InDepthModel",
    "KoozaConfig",
    "KoozaModel",
    "KoozaTrainer",
    "Machine",
    "MachineSpec",
    "ReplayHarness",
    "SyntheticRequest",
    "TraceSet",
    "TraceSource",
    "Tracer",
    "ValidationReport",
    "WorkloadFeatureStats",
    "WorkloadProfile",
    "WorkloadProfileBuilder",
    "as_trace_set",
    "capability_table",
    "compare_feature_stats",
    "compare_workloads",
    "extract_request_features",
    "load_traces",
    "mine_dependency_queue",
    "run_gfs_workload",
    "run_mapreduce_jobs",
    "run_webapp_workload",
    "save_traces",
    "__version__",
    "tool_version",
]
