"""Validation framework: original vs synthetic workload fidelity.

Reproduces the paper's Table 2 methodology: group requests into
profiles (the paper's "user requests"), then compare per-profile
request features — network request size, CPU utilization, memory
size/type, storage size/type — and the latency performance metric.
Feature deviations are percentages (CPU utilization in absolute
percentage points, as the paper reports), latency deviation as a
percentage of the original mean.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from ..stats import cross_correlation, ks_two_sample
from ..tracing import TraceSet
from .features import RequestFeatures, extract_request_features

__all__ = [
    "ProfileComparison",
    "ValidationReport",
    "compare_workloads",
    "profile_key",
]


def profile_key(features: RequestFeatures) -> tuple[str, int]:
    """Profile of a request: (storage op, log2 size bucket of payload).

    Groups the same way for original and synthetic requests without
    relying on ground-truth class labels.
    """
    size = max(1, features.network_bytes)
    return (features.storage_op, int(round(np.log2(size))))


def _pct_deviation(original: float, synthetic: float) -> float:
    """|synthetic - original| as a percentage of the original."""
    if original == 0:
        return 0.0 if synthetic == 0 else float("inf")
    return abs(synthetic - original) / abs(original) * 100.0


@dataclass
class ProfileComparison:
    """Table-2 row pair: one request profile, original vs synthetic."""

    profile: tuple[str, int]
    n_original: int
    n_synthetic: int
    # Mean feature values.
    network_bytes: tuple[float, float]
    cpu_utilization: tuple[float, float]
    memory_bytes: tuple[float, float]
    storage_bytes: tuple[float, float]
    latency: tuple[float, float]
    latency_p95: tuple[float, float]
    memory_op_match: float  # fraction of synthetic with the modal original op
    storage_op_match: float

    @property
    def network_deviation_pct(self) -> float:
        return _pct_deviation(*self.network_bytes)

    @property
    def cpu_utilization_deviation_pp(self) -> float:
        """Absolute deviation in percentage points (paper's convention)."""
        return abs(self.cpu_utilization[1] - self.cpu_utilization[0]) * 100.0

    @property
    def memory_deviation_pct(self) -> float:
        return _pct_deviation(*self.memory_bytes)

    @property
    def storage_deviation_pct(self) -> float:
        return _pct_deviation(*self.storage_bytes)

    @property
    def latency_deviation_pct(self) -> float:
        return _pct_deviation(*self.latency)

    @property
    def latency_p95_deviation_pct(self) -> float:
        """Tail fidelity: deviation of the 95th latency percentile."""
        return _pct_deviation(*self.latency_p95)

    @property
    def max_feature_deviation_pct(self) -> float:
        """Worst of the size-feature deviations (the paper's "request
        features" bound)."""
        return max(
            self.network_deviation_pct,
            self.memory_deviation_pct,
            self.storage_deviation_pct,
        )


@dataclass
class ValidationReport:
    """Full original-vs-synthetic comparison."""

    profiles: list[ProfileComparison]
    latency_ks: float
    latency_ks_pvalue: float
    joint_correlation_original: float
    joint_correlation_synthetic: float
    n_original: int
    n_synthetic: int

    @property
    def joint_correlation_error(self) -> float:
        """|corr(net, storage sizes)| gap — collapses for models that
        sample subsystems independently."""
        return abs(
            self.joint_correlation_original - self.joint_correlation_synthetic
        )

    @property
    def worst_feature_deviation_pct(self) -> float:
        return max(p.max_feature_deviation_pct for p in self.profiles)

    @property
    def worst_latency_deviation_pct(self) -> float:
        return max(p.latency_deviation_pct for p in self.profiles)

    @property
    def mean_latency_deviation_pct(self) -> float:
        weights = np.array([p.n_original for p in self.profiles], dtype=float)
        values = np.array([p.latency_deviation_pct for p in self.profiles])
        return float(np.average(values, weights=weights))

    def to_table(self) -> str:
        """Render in the layout of the paper's Table 2."""
        lines = [
            f"{'profile':>16} | {'n(o/s)':>11} | {'net dev%':>8} | "
            f"{'cpu dev(pp)':>11} | {'mem dev%':>8} | {'sto dev%':>8} | "
            f"{'mem-op':>6} | {'sto-op':>6} | {'lat dev%':>8} | "
            f"{'p95 dev%':>8}"
        ]
        lines.append("-" * len(lines[0]))
        for p in sorted(self.profiles, key=lambda p: p.profile):
            name = f"{p.profile[0]}@2^{p.profile[1]}"
            lines.append(
                f"{name:>16} | {p.n_original:>5}/{p.n_synthetic:<5} | "
                f"{p.network_deviation_pct:>8.2f} | "
                f"{p.cpu_utilization_deviation_pp:>11.2f} | "
                f"{p.memory_deviation_pct:>8.2f} | "
                f"{p.storage_deviation_pct:>8.2f} | "
                f"{p.memory_op_match:>6.2f} | {p.storage_op_match:>6.2f} | "
                f"{p.latency_deviation_pct:>8.2f} | "
                f"{p.latency_p95_deviation_pct:>8.2f}"
            )
        lines.append(
            f"latency KS={self.latency_ks:.3f} (p={self.latency_ks_pvalue:.3f})  "
            f"joint corr: original={self.joint_correlation_original:.3f} "
            f"synthetic={self.joint_correlation_synthetic:.3f}"
        )
        return "\n".join(lines)


def _modal_op(ops: list[str]) -> str:
    values, counts = np.unique(ops, return_counts=True)
    return str(values[np.argmax(counts)])


def compare_workloads(
    original: TraceSet,
    synthetic: TraceSet,
    min_profile_count: int = 5,
) -> ValidationReport:
    """Compare an original trace set against a replayed synthetic one.

    Profiles observed fewer than ``min_profile_count`` times on either
    side are skipped (their means are too noisy to grade a model on).
    """
    orig = extract_request_features(original)
    synth = extract_request_features(synthetic)
    if not orig or not synth:
        raise ValueError("both trace sets must contain complete requests")

    orig_by_profile: dict[tuple, list[RequestFeatures]] = {}
    for f in orig:
        orig_by_profile.setdefault(profile_key(f), []).append(f)
    synth_by_profile: dict[tuple, list[RequestFeatures]] = {}
    for f in synth:
        synth_by_profile.setdefault(profile_key(f), []).append(f)

    profiles = []
    for key in sorted(set(orig_by_profile) & set(synth_by_profile)):
        o, s = orig_by_profile[key], synth_by_profile[key]
        if len(o) < min_profile_count or len(s) < min_profile_count:
            continue
        modal_mem_op = _modal_op([f.memory_op for f in o])
        modal_sto_op = _modal_op([f.storage_op for f in o])
        profiles.append(
            ProfileComparison(
                profile=key,
                n_original=len(o),
                n_synthetic=len(s),
                network_bytes=(
                    float(np.mean([f.network_bytes for f in o])),
                    float(np.mean([f.network_bytes for f in s])),
                ),
                cpu_utilization=(
                    float(np.mean([f.cpu_utilization for f in o])),
                    float(np.mean([f.cpu_utilization for f in s])),
                ),
                memory_bytes=(
                    float(np.mean([f.memory_bytes for f in o])),
                    float(np.mean([f.memory_bytes for f in s])),
                ),
                storage_bytes=(
                    float(np.mean([f.storage_bytes for f in o])),
                    float(np.mean([f.storage_bytes for f in s])),
                ),
                latency=(
                    float(np.mean([f.latency for f in o])),
                    float(np.mean([f.latency for f in s])),
                ),
                latency_p95=(
                    float(np.percentile([f.latency for f in o], 95)),
                    float(np.percentile([f.latency for f in s], 95)),
                ),
                memory_op_match=float(
                    np.mean([f.memory_op == modal_mem_op for f in s])
                ),
                storage_op_match=float(
                    np.mean([f.storage_op == modal_sto_op for f in s])
                ),
            )
        )
    if not profiles:
        raise ValueError("no common profiles with enough requests to compare")

    ks, pvalue = ks_two_sample(
        [f.latency for f in orig], [f.latency for f in synth]
    )
    report = ValidationReport(
        profiles=profiles,
        latency_ks=ks,
        latency_ks_pvalue=pvalue,
        joint_correlation_original=cross_correlation(
            [f.network_bytes for f in orig], [f.storage_bytes for f in orig]
        ),
        joint_correlation_synthetic=cross_correlation(
            [f.network_bytes for f in synth], [f.storage_bytes for f in synth]
        ),
        n_original=len(orig),
        n_synthetic=len(synth),
    )
    return report
