"""Validation framework: original vs synthetic workload fidelity.

Reproduces the paper's Table 2 methodology: group requests into
profiles (the paper's "user requests"), then compare per-profile
request features — network request size, CPU utilization, memory
size/type, storage size/type — and the latency performance metric.
Feature deviations are percentages (CPU utilization in absolute
percentage points, as the paper reports), latency deviation as a
percentage of the original mean.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from ..snapshot import SNAPSHOT_VERSION as STREAMING_STATE_VERSION
from ..snapshot import check_state
from ..stats import (
    CategoricalCounter,
    CoMomentsAccumulator,
    ExactQuantiles,
    MomentsAccumulator,
    cross_correlation,
    ks_two_sample,
)
from ..tracing import TraceSource
from ..tracing.columnar import take_columns
from .features import RequestFeatures, extract_request_features

__all__ = [
    "ProfileComparison",
    "ProfileFeatureStats",
    "ValidationReport",
    "WorkloadFeatureStats",
    "compare_feature_stats",
    "compare_workloads",
    "profile_key",
]


def profile_key(features: RequestFeatures) -> tuple[str, int]:
    """Profile of a request: (storage op, log2 size bucket of payload).

    Groups the same way for original and synthetic requests without
    relying on ground-truth class labels.
    """
    size = max(1, features.network_bytes)
    return (features.storage_op, int(round(np.log2(size))))


def _pct_deviation(original: float, synthetic: float) -> float:
    """|synthetic - original| as a percentage of the original."""
    if original == 0:
        return 0.0 if synthetic == 0 else float("inf")
    return abs(synthetic - original) / abs(original) * 100.0


@dataclass
class ProfileComparison:
    """Table-2 row pair: one request profile, original vs synthetic."""

    profile: tuple[str, int]
    n_original: int
    n_synthetic: int
    # Mean feature values.
    network_bytes: tuple[float, float]
    cpu_utilization: tuple[float, float]
    memory_bytes: tuple[float, float]
    storage_bytes: tuple[float, float]
    latency: tuple[float, float]
    latency_p95: tuple[float, float]
    memory_op_match: float  # fraction of synthetic with the modal original op
    storage_op_match: float

    @property
    def network_deviation_pct(self) -> float:
        return _pct_deviation(*self.network_bytes)

    @property
    def cpu_utilization_deviation_pp(self) -> float:
        """Absolute deviation in percentage points (paper's convention)."""
        return abs(self.cpu_utilization[1] - self.cpu_utilization[0]) * 100.0

    @property
    def memory_deviation_pct(self) -> float:
        return _pct_deviation(*self.memory_bytes)

    @property
    def storage_deviation_pct(self) -> float:
        return _pct_deviation(*self.storage_bytes)

    @property
    def latency_deviation_pct(self) -> float:
        return _pct_deviation(*self.latency)

    @property
    def latency_p95_deviation_pct(self) -> float:
        """Tail fidelity: deviation of the 95th latency percentile."""
        return _pct_deviation(*self.latency_p95)

    @property
    def max_feature_deviation_pct(self) -> float:
        """Worst of the size-feature deviations (the paper's "request
        features" bound)."""
        return max(
            self.network_deviation_pct,
            self.memory_deviation_pct,
            self.storage_deviation_pct,
        )


@dataclass
class ValidationReport:
    """Full original-vs-synthetic comparison."""

    profiles: list[ProfileComparison]
    latency_ks: float
    latency_ks_pvalue: float
    joint_correlation_original: float
    joint_correlation_synthetic: float
    n_original: int
    n_synthetic: int

    @property
    def joint_correlation_error(self) -> float:
        """|corr(net, storage sizes)| gap — collapses for models that
        sample subsystems independently."""
        return abs(
            self.joint_correlation_original - self.joint_correlation_synthetic
        )

    @property
    def worst_feature_deviation_pct(self) -> float:
        return max(p.max_feature_deviation_pct for p in self.profiles)

    @property
    def worst_latency_deviation_pct(self) -> float:
        return max(p.latency_deviation_pct for p in self.profiles)

    @property
    def mean_latency_deviation_pct(self) -> float:
        weights = np.array([p.n_original for p in self.profiles], dtype=float)
        values = np.array([p.latency_deviation_pct for p in self.profiles])
        return float(np.average(values, weights=weights))

    def to_table(self) -> str:
        """Render in the layout of the paper's Table 2."""
        lines = [
            f"{'profile':>16} | {'n(o/s)':>11} | {'net dev%':>8} | "
            f"{'cpu dev(pp)':>11} | {'mem dev%':>8} | {'sto dev%':>8} | "
            f"{'mem-op':>6} | {'sto-op':>6} | {'lat dev%':>8} | "
            f"{'p95 dev%':>8}"
        ]
        lines.append("-" * len(lines[0]))
        for p in sorted(self.profiles, key=lambda p: p.profile):
            name = f"{p.profile[0]}@2^{p.profile[1]}"
            lines.append(
                f"{name:>16} | {p.n_original:>5}/{p.n_synthetic:<5} | "
                f"{p.network_deviation_pct:>8.2f} | "
                f"{p.cpu_utilization_deviation_pp:>11.2f} | "
                f"{p.memory_deviation_pct:>8.2f} | "
                f"{p.storage_deviation_pct:>8.2f} | "
                f"{p.memory_op_match:>6.2f} | {p.storage_op_match:>6.2f} | "
                f"{p.latency_deviation_pct:>8.2f} | "
                f"{p.latency_p95_deviation_pct:>8.2f}"
            )
        lines.append(
            f"latency KS={self.latency_ks:.3f} (p={self.latency_ks_pvalue:.3f})  "
            f"joint corr: original={self.joint_correlation_original:.3f} "
            f"synthetic={self.joint_correlation_synthetic:.3f}"
        )
        return "\n".join(lines)


def _modal_op(ops: list[str]) -> str:
    values, counts = np.unique(ops, return_counts=True)
    return str(values[np.argmax(counts)])


@dataclass
class ProfileFeatureStats:
    """Mergeable per-profile feature statistics (one side of Table 2).

    The streaming counterpart of one profile's feature lists in
    :func:`compare_workloads`: moments for the mean columns, exact
    quantiles for the latency tail, categorical counts for the op-match
    columns.  ``merge`` composes accumulator merges, so folding shard
    by shard and merging gives the same statistics as folding the
    stitched whole (see ``docs/streaming_analysis.md`` for the FP
    tolerance contract).
    """

    network_bytes: MomentsAccumulator = field(default_factory=MomentsAccumulator)
    cpu_utilization: MomentsAccumulator = field(
        default_factory=MomentsAccumulator
    )
    memory_bytes: MomentsAccumulator = field(default_factory=MomentsAccumulator)
    storage_bytes: MomentsAccumulator = field(default_factory=MomentsAccumulator)
    latency: ExactQuantiles = field(default_factory=ExactQuantiles)
    memory_ops: CategoricalCounter = field(default_factory=CategoricalCounter)
    storage_ops: CategoricalCounter = field(default_factory=CategoricalCounter)

    @property
    def n(self) -> int:
        return self.network_bytes.n

    def add(self, f: RequestFeatures) -> None:
        self.network_bytes.add(f.network_bytes)
        self.cpu_utilization.add(f.cpu_utilization)
        self.memory_bytes.add(f.memory_bytes)
        self.storage_bytes.add(f.storage_bytes)
        self.latency.add(f.latency)
        self.memory_ops.add(f.memory_op)
        self.storage_ops.add(f.storage_op)

    def update_batch(self, cols: Mapping[str, Any]) -> None:
        """Fold a feature-column batch (one profile's subset of
        :func:`repro.core.features.request_feature_columns` output).

        Latency buffers, op counts and ``n`` are bit-identical to
        repeated :meth:`add`; the moment fields follow the 1e-9
        relative contract of
        :meth:`repro.stats.MomentsAccumulator.update_batch`.
        """
        if not cols["n"]:
            return
        self.network_bytes.update_batch(cols["network_bytes"])
        self.cpu_utilization.update_batch(cols["cpu_utilization"])
        self.memory_bytes.update_batch(cols["memory_bytes"])
        self.storage_bytes.update_batch(cols["storage_bytes"])
        self.latency.update_batch(cols["latency"])
        self.memory_ops.update_batch(cols["memory_op"])
        self.storage_ops.update_batch(cols["storage_op"])

    def merge(self, other: "ProfileFeatureStats") -> "ProfileFeatureStats":
        self.network_bytes.merge(other.network_bytes)
        self.cpu_utilization.merge(other.cpu_utilization)
        self.memory_bytes.merge(other.memory_bytes)
        self.storage_bytes.merge(other.storage_bytes)
        self.latency.merge(other.latency)
        self.memory_ops.merge(other.memory_ops)
        self.storage_ops.merge(other.storage_ops)
        return self

    def state(self) -> dict[str, Any]:
        return {
            "kind": "profile-feature-stats",
            "version": STREAMING_STATE_VERSION,
            "network_bytes": self.network_bytes.state(),
            "cpu_utilization": self.cpu_utilization.state(),
            "memory_bytes": self.memory_bytes.state(),
            "storage_bytes": self.storage_bytes.state(),
            "latency": self.latency.state(),
            "memory_ops": self.memory_ops.state(),
            "storage_ops": self.storage_ops.state(),
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "ProfileFeatureStats":
        check_state(state, "profile-feature-stats")
        return cls(
            network_bytes=MomentsAccumulator.from_state(state["network_bytes"]),
            cpu_utilization=MomentsAccumulator.from_state(state["cpu_utilization"]),
            memory_bytes=MomentsAccumulator.from_state(state["memory_bytes"]),
            storage_bytes=MomentsAccumulator.from_state(state["storage_bytes"]),
            latency=ExactQuantiles.from_state(state["latency"]),
            memory_ops=CategoricalCounter.from_state(state["memory_ops"]),
            storage_ops=CategoricalCounter.from_state(state["storage_ops"]),
        )


@dataclass
class WorkloadFeatureStats:
    """Mergeable validation statistics for one whole workload side.

    Holds per-profile stats plus the workload-level aggregates the
    report needs: every latency (for the KS test) and the joint
    network/storage size co-moments (for the joint-correlation check).
    """

    profiles: dict = field(default_factory=dict)
    latencies: ExactQuantiles = field(default_factory=ExactQuantiles)
    joint: CoMomentsAccumulator = field(default_factory=CoMomentsAccumulator)
    n: int = 0

    def add(self, f: RequestFeatures) -> None:
        key = profile_key(f)
        if key not in self.profiles:
            self.profiles[key] = ProfileFeatureStats()
        self.profiles[key].add(f)
        self.latencies.add(f.latency)
        self.joint.add(f.network_bytes, f.storage_bytes)
        self.n += 1

    def add_features(self, features) -> "WorkloadFeatureStats":
        for f in features:
            self.add(f)
        return self

    def update_batch(self, cols: Mapping[str, Any]) -> "WorkloadFeatureStats":
        """Fold a whole feature-column batch (the output of
        :func:`repro.core.features.request_feature_columns`).

        Rows are grouped by :func:`profile_key` vectorized —
        ``np.round``/``round`` both round half-to-even, so bucket
        assignment matches the scalar path exactly — and each group
        folds through :meth:`ProfileFeatureStats.update_batch` with
        row order preserved, so quantile buffers and counts are
        bit-identical to per-feature :meth:`add`.
        """
        n = int(cols["n"])
        if n == 0:
            return self
        network_bytes = np.asarray(cols["network_bytes"])
        buckets = np.round(
            np.log2(np.maximum(1, network_bytes).astype(float))
        ).astype(np.int64)
        op = cols["storage_op"]
        pairs = np.stack([op.codes.astype(np.int64), buckets], axis=1)
        uniq, inverse = np.unique(pairs, axis=0, return_inverse=True)
        for gi in range(uniq.shape[0]):
            key = (op.values[int(uniq[gi, 0])], int(uniq[gi, 1]))
            if key not in self.profiles:
                self.profiles[key] = ProfileFeatureStats()
            self.profiles[key].update_batch(
                take_columns(cols, inverse == gi)
            )
        self.latencies.update_batch(cols["latency"])
        self.joint.update_batch(cols["network_bytes"], cols["storage_bytes"])
        self.n += n
        return self

    @classmethod
    def from_features(cls, features) -> "WorkloadFeatureStats":
        return cls().add_features(features)

    @classmethod
    def from_feature_columns(cls, cols: Mapping[str, Any]) -> "WorkloadFeatureStats":
        """Fresh statistics from one feature-column batch."""
        return cls().update_batch(cols)

    @classmethod
    def from_source(cls, source: TraceSource) -> "WorkloadFeatureStats":
        """Fold one source's request features into fresh statistics."""
        return cls.from_features(extract_request_features(source))

    def merge(self, other: "WorkloadFeatureStats") -> "WorkloadFeatureStats":
        for key, stats in other.profiles.items():
            if key in self.profiles:
                self.profiles[key].merge(stats)
            else:
                self.profiles[key] = stats
        self.latencies.merge(other.latencies)
        self.joint.merge(other.joint)
        self.n += other.n
        return self

    def state(self) -> dict[str, Any]:
        # Profile keys are (storage_op, bucket) tuples; JSON has no
        # tuple, so each entry is a [[op, bucket], state] pair.
        return {
            "kind": "workload-feature-stats",
            "version": STREAMING_STATE_VERSION,
            "profiles": [
                [[key[0], key[1]], stats.state()]
                for key, stats in sorted(self.profiles.items())
            ],
            "latencies": self.latencies.state(),
            "joint": self.joint.state(),
            "n": self.n,
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "WorkloadFeatureStats":
        check_state(state, "workload-feature-stats")
        stats = cls(
            latencies=ExactQuantiles.from_state(state["latencies"]),
            joint=CoMomentsAccumulator.from_state(state["joint"]),
            n=int(state["n"]),
        )
        for (op, bucket), profile_state in state["profiles"]:
            stats.profiles[(str(op), int(bucket))] = ProfileFeatureStats.from_state(
                profile_state
            )
        return stats


def compare_feature_stats(
    original: WorkloadFeatureStats,
    synthetic: WorkloadFeatureStats,
    min_profile_count: int = 5,
) -> ValidationReport:
    """Build a :class:`ValidationReport` from two accumulated sides.

    The streaming counterpart of :func:`compare_workloads`: given
    feature statistics folded (and possibly merged across shards or
    workers) for the original and synthetic workloads, produces a
    report that matches the batch one within the documented FP
    tolerance — exactly, for the quantile/KS/modal-op fields.
    """
    if original.n == 0 or synthetic.n == 0:
        raise ValueError("both trace sets must contain complete requests")
    profiles = []
    for key in sorted(set(original.profiles) & set(synthetic.profiles)):
        o, s = original.profiles[key], synthetic.profiles[key]
        if o.n < min_profile_count or s.n < min_profile_count:
            continue
        modal_mem_op = o.memory_ops.modal()
        modal_sto_op = o.storage_ops.modal()
        profiles.append(
            ProfileComparison(
                profile=key,
                n_original=o.n,
                n_synthetic=s.n,
                network_bytes=(o.network_bytes.mean, s.network_bytes.mean),
                cpu_utilization=(
                    o.cpu_utilization.mean,
                    s.cpu_utilization.mean,
                ),
                memory_bytes=(o.memory_bytes.mean, s.memory_bytes.mean),
                storage_bytes=(o.storage_bytes.mean, s.storage_bytes.mean),
                latency=(o.latency.mean, s.latency.mean),
                latency_p95=(o.latency.quantile(0.95), s.latency.quantile(0.95)),
                memory_op_match=s.memory_ops.fraction(modal_mem_op),
                storage_op_match=s.storage_ops.fraction(modal_sto_op),
            )
        )
    if not profiles:
        raise ValueError("no common profiles with enough requests to compare")
    ks, pvalue = ks_two_sample(original.latencies.array(), synthetic.latencies.array())
    return ValidationReport(
        profiles=profiles,
        latency_ks=ks,
        latency_ks_pvalue=pvalue,
        joint_correlation_original=original.joint.correlation,
        joint_correlation_synthetic=synthetic.joint.correlation,
        n_original=original.n,
        n_synthetic=synthetic.n,
    )


def compare_workloads(
    original: TraceSource,
    synthetic: TraceSource,
    min_profile_count: int = 5,
) -> ValidationReport:
    """Compare an original trace source against a replayed synthetic one.

    Accepts any :class:`~repro.tracing.TraceSource` on either side.
    Profiles observed fewer than ``min_profile_count`` times on either
    side are skipped (their means are too noisy to grade a model on).
    """
    orig = extract_request_features(original)
    synth = extract_request_features(synthetic)
    if not orig or not synth:
        raise ValueError("both trace sets must contain complete requests")

    orig_by_profile: dict[tuple, list[RequestFeatures]] = {}
    for f in orig:
        orig_by_profile.setdefault(profile_key(f), []).append(f)
    synth_by_profile: dict[tuple, list[RequestFeatures]] = {}
    for f in synth:
        synth_by_profile.setdefault(profile_key(f), []).append(f)

    profiles = []
    for key in sorted(set(orig_by_profile) & set(synth_by_profile)):
        o, s = orig_by_profile[key], synth_by_profile[key]
        if len(o) < min_profile_count or len(s) < min_profile_count:
            continue
        modal_mem_op = _modal_op([f.memory_op for f in o])
        modal_sto_op = _modal_op([f.storage_op for f in o])
        profiles.append(
            ProfileComparison(
                profile=key,
                n_original=len(o),
                n_synthetic=len(s),
                network_bytes=(
                    float(np.mean([f.network_bytes for f in o])),
                    float(np.mean([f.network_bytes for f in s])),
                ),
                cpu_utilization=(
                    float(np.mean([f.cpu_utilization for f in o])),
                    float(np.mean([f.cpu_utilization for f in s])),
                ),
                memory_bytes=(
                    float(np.mean([f.memory_bytes for f in o])),
                    float(np.mean([f.memory_bytes for f in s])),
                ),
                storage_bytes=(
                    float(np.mean([f.storage_bytes for f in o])),
                    float(np.mean([f.storage_bytes for f in s])),
                ),
                latency=(
                    float(np.mean([f.latency for f in o])),
                    float(np.mean([f.latency for f in s])),
                ),
                latency_p95=(
                    float(np.percentile([f.latency for f in o], 95)),
                    float(np.percentile([f.latency for f in s], 95)),
                ),
                memory_op_match=float(
                    np.mean([f.memory_op == modal_mem_op for f in s])
                ),
                storage_op_match=float(
                    np.mean([f.storage_op == modal_sto_op for f in s])
                ),
            )
        )
    if not profiles:
        raise ValueError("no common profiles with enough requests to compare")

    ks, pvalue = ks_two_sample(
        [f.latency for f in orig], [f.latency for f in synth]
    )
    report = ValidationReport(
        profiles=profiles,
        latency_ks=ks,
        latency_ks_pvalue=pvalue,
        joint_correlation_original=cross_correlation(
            [f.network_bytes for f in orig], [f.storage_bytes for f in orig]
        ),
        joint_correlation_synthetic=cross_correlation(
            [f.network_bytes for f in synth], [f.storage_bytes for f in synth]
        ),
        n_original=len(orig),
        n_synthetic=len(synth),
    )
    return report
