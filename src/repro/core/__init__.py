"""KOOZA: the paper's combined workload-modeling approach.

Public API:

* :class:`KoozaTrainer` / :class:`KoozaModel` / :class:`KoozaConfig` —
  train the four-subsystem-models-plus-dependency-queue model from a
  :class:`~repro.tracing.TraceSet` and generate synthetic workloads.
* :class:`ReplayHarness` — replay synthetic requests on simulated
  server hardware.
* :func:`compare_workloads` — Table-2 style fidelity validation.
* :func:`extract_request_features` — joint per-request feature vectors.
* :func:`mine_dependency_queue` — the structural component.
* :data:`CAPABILITIES` — the Table 1 qualitative matrix.
"""

from .capabilities import CAPABILITIES, Capability, capability_table
from .dependency import DependencyQueue, mine_dependency_queue
from .features import (
    RequestFeatures,
    extract_request_features,
    request_feature_columns,
)
from .instances import (
    MultiServerKooza,
    split_traces_by_class,
    split_traces_by_server,
)
from .model import KoozaConfig, KoozaModel, SubsystemCoupler
from .profile import (
    CpuSummary,
    MemorySummary,
    NetworkSummary,
    RequestSummary,
    StorageSummary,
    WorkloadProfile,
    WorkloadProfileBuilder,
)
from .replay import ReplayHarness
from .serialize import load_model, model_from_dict, model_to_dict, save_model
from .synthetic import Stage, SyntheticRequest
from .trainer import KoozaTrainer
from .validation import (
    ProfileComparison,
    ProfileFeatureStats,
    ValidationReport,
    WorkloadFeatureStats,
    compare_feature_stats,
    compare_workloads,
    profile_key,
)

__all__ = [
    "CAPABILITIES",
    "Capability",
    "CpuSummary",
    "DependencyQueue",
    "KoozaConfig",
    "KoozaModel",
    "KoozaTrainer",
    "MemorySummary",
    "NetworkSummary",
    "ProfileComparison",
    "ProfileFeatureStats",
    "ReplayHarness",
    "RequestFeatures",
    "RequestSummary",
    "Stage",
    "StorageSummary",
    "SubsystemCoupler",
    "SyntheticRequest",
    "ValidationReport",
    "WorkloadFeatureStats",
    "WorkloadProfile",
    "WorkloadProfileBuilder",
    "capability_table",
    "compare_feature_stats",
    "compare_workloads",
    "extract_request_features",
    "load_model",
    "mine_dependency_queue",
    "MultiServerKooza",
    "model_from_dict",
    "split_traces_by_class",
    "split_traces_by_server",
    "model_to_dict",
    "profile_key",
    "request_feature_columns",
    "save_model",
]
