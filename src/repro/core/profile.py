"""Workload characterization profiles: batch and streaming builders.

:class:`WorkloadProfile` is the structured result of ``repro
characterize`` — per-subsystem summaries in the style of the surveyed
in-breadth papers (Gulati storage fingerprint, Abrahao utilization
patterns, Feitelson arrival features) plus request-level aggregates.

Two builders produce it:

* :meth:`WorkloadProfile.from_traces` — the batch reference: fold the
  materialized records through the existing numpy helpers.
* :class:`WorkloadProfileBuilder` — a mergeable accumulator set that
  folds record-by-record over any
  :class:`~repro.tracing.TraceSource` stream.  One builder per shard,
  merged in shard order, reproduces the batch profile without ever
  materializing the stitched trace set.

Equality contract (see ``docs/streaming_analysis.md``): count,
fraction, quantile, window-series and KS fields match the batch
profile exactly; accumulated means/variances (interarrival moments,
CoV) match within a relative tolerance of 1e-9.  All windowed series
are anchored at ``origin=0.0`` — the simulated clock — on both paths,
which is what makes window bins identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

import numpy as np

from ..snapshot import SNAPSHOT_VERSION as STREAMING_STATE_VERSION
from ..snapshot import check_state
from ..stats import (
    CategoricalCounter,
    ExactQuantiles,
    SeekStats,
    WindowedCounter,
    classify_utilization_pattern,
)
from ..tracing import READ, TraceSource, as_trace_set

__all__ = [
    "CpuSummary",
    "MemorySummary",
    "NetworkSummary",
    "RequestSummary",
    "StorageSummary",
    "WorkloadProfile",
    "WorkloadProfileBuilder",
]

#: Minimum windows before a utilization pattern is classified.
_MIN_PATTERN_WINDOWS = 8


@dataclass(frozen=True)
class StorageSummary:
    """Gulati-style I/O fingerprint (mirrors ``StorageProfile``)."""

    n_ios: int
    read_fraction: float
    mean_size: float
    p95_size: float
    sequential_fraction: float
    mean_abs_seek: float
    mean_queue_depth: float
    mean_interarrival: float


@dataclass(frozen=True)
class CpuSummary:
    """Windowed utilization summary (Abrahao-style)."""

    n_bursts: int
    n_windows: int
    mean_utilization: float
    peak_utilization: float
    pattern: Optional[str]


@dataclass(frozen=True)
class NetworkSummary:
    """Arrival-stream fingerprint over the rx direction."""

    n_arrivals: int
    mean_rate: float
    interarrival_cov: Optional[float]
    index_of_dispersion: Optional[float]
    peak_to_mean: Optional[float]
    mean_size: float


@dataclass(frozen=True)
class MemorySummary:
    """Memory access-burst aggregates."""

    n_accesses: int
    read_fraction: float
    mean_size: float


@dataclass(frozen=True)
class RequestSummary:
    """End-to-end request aggregates over completed requests."""

    n_requests: int
    mean_latency: float
    p95_latency: float


@dataclass(frozen=True)
class WorkloadProfile:
    """Characterization of one workload, subsystem by subsystem.

    Sections are ``None`` when the source lacks enough records to
    compute them (e.g. fewer than two storage I/Os).
    """

    window: float
    cores: int
    extent: float
    classes: dict[str, int]
    storage: Optional[StorageSummary] = None
    cpu: Optional[CpuSummary] = None
    network: Optional[NetworkSummary] = None
    memory: Optional[MemorySummary] = None
    requests: Optional[RequestSummary] = None

    @classmethod
    def from_traces(
        cls,
        source: TraceSource,
        window: float = 0.25,
        cores: int = 8,
    ) -> "WorkloadProfile":
        """Batch reference: characterize a materialized trace set.

        Any :class:`~repro.tracing.TraceSource` is accepted; non-set
        sources are materialized first (use
        :func:`repro.store.characterize_source` to avoid that).
        """
        # Late imports: repro.breadth imports repro.core.model, so a
        # module-level import here would close a cycle.
        from ..breadth import NetworkTrafficModel, StorageProfile, utilization_series
        from ..stats import index_of_dispersion, interarrival_cov, peak_to_mean

        traces = as_trace_set(source)
        storage = None
        if len(traces.storage) >= 2:
            sp = StorageProfile.characterize(traces.storage)
            storage = StorageSummary(
                n_ios=sp.n_ios,
                read_fraction=sp.read_fraction,
                mean_size=sp.mean_size,
                p95_size=sp.p95_size,
                sequential_fraction=sp.sequential_fraction,
                mean_abs_seek=sp.mean_abs_seek,
                mean_queue_depth=sp.mean_queue_depth,
                mean_interarrival=sp.mean_interarrival,
            )
        cpu = None
        if traces.cpu:
            series = utilization_series(
                traces.cpu, window=window, cores=cores, origin=0.0
            )
            cpu = CpuSummary(
                n_bursts=len(traces.cpu),
                n_windows=int(series.size),
                mean_utilization=float(series.mean()),
                peak_utilization=float(series.max()),
                pattern=(
                    classify_utilization_pattern(series)
                    if series.size >= _MIN_PATTERN_WINDOWS
                    else None
                ),
            )
        network = None
        arrivals = NetworkTrafficModel._arrival_records(traces.network)
        if len(arrivals) >= 2:
            times = np.array([r.timestamp for r in arrivals])
            span = float(times[-1] - times[0])
            gaps = np.diff(times)
            positive = gaps[gaps > 0]
            cov = (
                float(interarrival_cov(positive)) if positive.size >= 2 else None
            )
            try:
                idc = float(index_of_dispersion(times, window, origin=0.0))
                ptm = float(peak_to_mean(times, window, origin=0.0))
            except ValueError:
                idc = ptm = None
            network = NetworkSummary(
                n_arrivals=len(arrivals),
                mean_rate=len(arrivals) / span if span > 0 else 0.0,
                interarrival_cov=cov,
                index_of_dispersion=idc,
                peak_to_mean=ptm,
                mean_size=float(np.mean([r.size_bytes for r in arrivals])),
            )
        memory = None
        if traces.memory:
            memory = MemorySummary(
                n_accesses=len(traces.memory),
                read_fraction=float(
                    np.mean([1.0 if r.op == READ else 0.0 for r in traces.memory])
                ),
                mean_size=float(np.mean([r.size_bytes for r in traces.memory])),
            )
        requests = None
        completed = traces.completed_requests()
        if completed:
            latencies = [r.latency for r in completed]
            requests = RequestSummary(
                n_requests=len(completed),
                mean_latency=float(np.mean(latencies)),
                p95_latency=float(np.percentile(latencies, 95)),
            )
        return cls(
            window=window,
            cores=cores,
            extent=traces.extent(),
            classes=traces.classes(),
            storage=storage,
            cpu=cpu,
            network=network,
            memory=memory,
            requests=requests,
        )

    @property
    def request_rate(self) -> float:
        """Completed requests per simulated second over the whole extent.

        Replicas are stitched end-to-end on one timeline, so this is
        the sustained per-replica completion rate — the base operating
        point capacity planning scales from.
        """
        total = sum(self.classes.values())
        return total / self.extent if self.extent > 0 else 0.0

    def class_rates(self) -> dict[str, float]:
        """Per-class completed-request rates (requests per second).

        The per-class share of :attr:`request_rate`; the arrival-side
        parameters :func:`repro.queueing.plan.fit_cluster_model`
        extracts from a characterized store.
        """
        if self.extent <= 0:
            return {cls: 0.0 for cls in self.classes}
        return {
            cls: count / self.extent for cls, count in self.classes.items()
        }

    def describe(self) -> str:
        """Human-readable multi-line rendering (the CLI output)."""
        lines = []
        if self.storage is not None:
            s = self.storage
            lines.append(
                f"storage: {s.n_ios} I/Os, read fraction "
                f"{s.read_fraction:.2f}, mean size "
                f"{s.mean_size / 1024:.1f} KiB, sequential "
                f"{s.sequential_fraction:.2f}"
            )
        if self.cpu is not None:
            c = self.cpu
            lines.append(
                f"cpu: {c.n_windows} windows, mean utilization "
                f"{c.mean_utilization * 100:.1f}%, pattern {c.pattern}"
            )
        if self.network is not None:
            n = self.network
            cov = f"{n.interarrival_cov:.2f}" if n.interarrival_cov is not None else "n/a"
            lines.append(
                f"network: {n.n_arrivals} arrivals at {n.mean_rate:.1f}/s, "
                f"CoV {cov}, mean size {n.mean_size / 1024:.1f} KiB"
            )
        if self.memory is not None:
            m = self.memory
            lines.append(
                f"memory: {m.n_accesses} accesses, read fraction "
                f"{m.read_fraction:.2f}, mean size {m.mean_size / 1024:.1f} KiB"
            )
        if self.requests is not None:
            r = self.requests
            lines.append(
                f"requests: {r.n_requests} completed, mean latency "
                f"{r.mean_latency * 1000:.1f} ms, p95 "
                f"{r.p95_latency * 1000:.1f} ms"
            )
        classes = ", ".join(f"{k}={v}" for k, v in self.classes.items())
        lines.append(f"classes: {classes if classes else 'none'}")
        return "\n".join(lines)


@dataclass
class WorkloadProfileBuilder:
    """Streaming, mergeable builder for :class:`WorkloadProfile`.

    Feed each stream's records in stitched order via :meth:`add`, or
    fold one builder per shard and :meth:`merge` them in shard-index
    order (the order-dependent storage seek/interarrival statistics
    are seam-merged, so shard folds compose exactly).
    """

    window: float = 0.25
    cores: int = 8
    #: Optional bound on every exact-quantile buffer (storage sizes and
    #: times, network times, request latencies): past this many values
    #: each degrades to a ReservoirQuantile — see
    #: :class:`repro.stats.ExactQuantiles`.
    max_quantile_values: Optional[int] = None
    # storage
    storage_n: int = 0
    storage_reads: int = 0
    storage_sizes: ExactQuantiles = field(default_factory=ExactQuantiles)
    storage_seeks: SeekStats = field(default_factory=SeekStats)
    storage_queue_sum: int = 0
    #: Timestamp buffers (O(n) floats, like ExactQuantiles): interarrival
    #: statistics are defined over *sorted* timestamps, and trace streams
    #: are not guaranteed perfectly time-ordered, so the sort happens at
    #: finish time — reproducing the batch arithmetic exactly.
    storage_times: ExactQuantiles = field(default_factory=ExactQuantiles)
    # cpu
    cpu_busy: WindowedCounter = None  # type: ignore[assignment]
    cpu_n: int = 0
    # network (rx)
    network_n: int = 0
    network_size_sum: int = 0
    network_times: ExactQuantiles = field(default_factory=ExactQuantiles)
    network_counts: WindowedCounter = None  # type: ignore[assignment]
    # memory
    memory_n: int = 0
    memory_reads: int = 0
    memory_size_sum: int = 0
    # requests
    latencies: ExactQuantiles = field(default_factory=ExactQuantiles)
    class_counts: CategoricalCounter = field(default_factory=CategoricalCounter)
    # timeline
    max_extent: float = 0.0

    #: ExactQuantiles fields, in state() order; the max_quantile_values
    #: bound applies to each.
    _QUANTILE_FIELDS = ("storage_sizes", "storage_times", "network_times", "latencies")

    def __post_init__(self) -> None:
        if self.cpu_busy is None:
            self.cpu_busy = WindowedCounter(self.window)
        if self.network_counts is None:
            self.network_counts = WindowedCounter(self.window)
        if self.max_quantile_values is not None:
            for name in self._QUANTILE_FIELDS:
                acc = getattr(self, name)
                if acc.max_values is None:
                    acc.max_values = self.max_quantile_values

    # -- folding -------------------------------------------------------------

    def add(self, stream: str, record) -> None:
        """Fold one record from the named stream."""
        if stream == "storage":
            self.storage_n += 1
            if record.op == READ:
                self.storage_reads += 1
            self.storage_sizes.add(record.size_bytes)
            self.storage_seeks.add(record.lbn, record.size_bytes)
            self.storage_queue_sum += record.queue_depth
            self.storage_times.add(record.timestamp)
            self.max_extent = max(self.max_extent, record.timestamp)
        elif stream == "cpu":
            self.cpu_n += 1
            self.cpu_busy.add(
                record.timestamp,
                weight=record.busy_seconds,
                advance=record.busy_seconds,
            )
            self.max_extent = max(self.max_extent, record.timestamp)
        elif stream == "network":
            if record.direction == "rx":
                self.network_n += 1
                self.network_size_sum += record.size_bytes
                self.network_times.add(record.timestamp)
                self.network_counts.add(record.timestamp)
            self.max_extent = max(self.max_extent, record.timestamp)
        elif stream == "memory":
            self.memory_n += 1
            if record.op == READ:
                self.memory_reads += 1
            self.memory_size_sum += record.size_bytes
            self.max_extent = max(self.max_extent, record.timestamp)
        elif stream == "requests":
            self.max_extent = max(
                self.max_extent, record.arrival_time, record.completion_time
            )
            if record.completion_time > record.arrival_time:
                self.latencies.add(record.latency)
                self.class_counts.add(record.request_class)
        elif stream == "spans":
            self.max_extent = max(self.max_extent, record.start)
            if record.end == record.end:  # not NaN
                self.max_extent = max(self.max_extent, record.end)
        else:
            raise ValueError(f"unknown stream {stream!r}")

    def add_source(self, source: TraceSource) -> "WorkloadProfileBuilder":
        """Fold every stream of a source, in stream order."""
        for stream in source.streams():
            for record in source.iter_records(stream):
                self.add(stream, record)
        return self

    def update_batch(self, stream: str, cols: Mapping[str, Any]) -> None:
        """Fold a column-dict batch of one stream — the vectorized
        counterpart of per-record :meth:`add`.

        ``cols`` is the representation produced by
        :func:`repro.tracing.columnar.read_columnar_columns` /
        ``columns_from_records``: an ``"n"`` row count plus one numpy
        array (or dictionary-encoded string column) per needed field.
        Every underlying accumulator fold here is exact (integer
        counts, buffer extends, ``np.add.at`` window bins), so a batch
        fold produces bit-identical state to record-by-record adds.
        """
        n = int(cols["n"])
        if n == 0:
            return
        if stream == "storage":
            self.storage_n += n
            self.storage_reads += int(cols["op"].mask(READ).sum())
            self.storage_sizes.update_batch(cols["size_bytes"])
            self.storage_seeks.update_batch(cols["lbn"], cols["size_bytes"])
            self.storage_queue_sum += int(cols["queue_depth"].sum())
            self.storage_times.update_batch(cols["timestamp"])
            self.max_extent = max(
                self.max_extent, float(cols["timestamp"].max())
            )
        elif stream == "cpu":
            self.cpu_n += n
            busy = cols["busy_seconds"]
            self.cpu_busy.update_batch(
                cols["timestamp"], weights=busy, advance=busy
            )
            self.max_extent = max(
                self.max_extent, float(cols["timestamp"].max())
            )
        elif stream == "network":
            rx = cols["direction"].mask("rx")
            if rx.any():
                times = cols["timestamp"][rx]
                self.network_n += int(rx.sum())
                self.network_size_sum += int(cols["size_bytes"][rx].sum())
                self.network_times.update_batch(times)
                self.network_counts.update_batch(times)
            self.max_extent = max(
                self.max_extent, float(cols["timestamp"].max())
            )
        elif stream == "memory":
            self.memory_n += n
            self.memory_reads += int(cols["op"].mask(READ).sum())
            self.memory_size_sum += int(cols["size_bytes"].sum())
            self.max_extent = max(
                self.max_extent, float(cols["timestamp"].max())
            )
        elif stream == "requests":
            arrival = cols["arrival_time"]
            completion = cols["completion_time"]
            self.max_extent = max(
                self.max_extent, float(arrival.max()), float(completion.max())
            )
            completed = completion > arrival
            if completed.any():
                self.latencies.update_batch(
                    (completion - arrival)[completed]
                )
                self.class_counts.update_batch(
                    cols["request_class"].take(completed)
                )
        elif stream == "spans":
            self.max_extent = max(self.max_extent, float(cols["start"].max()))
            ends = cols["end"]
            finite = ends == ends  # not NaN
            if finite.any():
                self.max_extent = max(
                    self.max_extent, float(ends[finite].max())
                )
        else:
            raise ValueError(f"unknown stream {stream!r}")

    def merge(self, other: "WorkloadProfileBuilder") -> "WorkloadProfileBuilder":
        """Fold in a builder covering the records that follow this one's."""
        if (
            self.window != other.window
            or self.cores != other.cores
            or self.max_quantile_values != other.max_quantile_values
        ):
            raise ValueError("cannot merge builders with different settings")
        self.storage_n += other.storage_n
        self.storage_reads += other.storage_reads
        self.storage_sizes.merge(other.storage_sizes)
        self.storage_seeks.merge(other.storage_seeks)
        self.storage_queue_sum += other.storage_queue_sum
        self.storage_times.merge(other.storage_times)
        self.cpu_busy.merge(other.cpu_busy)
        self.cpu_n += other.cpu_n
        self.network_n += other.network_n
        self.network_size_sum += other.network_size_sum
        self.network_times.merge(other.network_times)
        self.network_counts.merge(other.network_counts)
        self.memory_n += other.memory_n
        self.memory_reads += other.memory_reads
        self.memory_size_sum += other.memory_size_sum
        self.latencies.merge(other.latencies)
        self.class_counts.merge(other.class_counts)
        self.max_extent = max(self.max_extent, other.max_extent)
        return self

    # -- snapshot / restore --------------------------------------------------

    def state(self) -> dict[str, Any]:
        """Versioned JSON-able snapshot (see ``repro.stats.streaming``).

        ``from_state(b.state())`` is behaviorally identical to ``b``:
        same future adds, merges and :meth:`profile` output.  This is
        what the per-shard analysis cache persists.
        """
        return {
            "kind": "profile-builder",
            "version": STREAMING_STATE_VERSION,
            "window": self.window,
            "cores": self.cores,
            "max_quantile_values": self.max_quantile_values,
            "storage_n": self.storage_n,
            "storage_reads": self.storage_reads,
            "storage_sizes": self.storage_sizes.state(),
            "storage_seeks": self.storage_seeks.state(),
            "storage_queue_sum": self.storage_queue_sum,
            "storage_times": self.storage_times.state(),
            "cpu_busy": self.cpu_busy.state(),
            "cpu_n": self.cpu_n,
            "network_n": self.network_n,
            "network_size_sum": self.network_size_sum,
            "network_times": self.network_times.state(),
            "network_counts": self.network_counts.state(),
            "memory_n": self.memory_n,
            "memory_reads": self.memory_reads,
            "memory_size_sum": self.memory_size_sum,
            "latencies": self.latencies.state(),
            "class_counts": self.class_counts.state(),
            "max_extent": self.max_extent,
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "WorkloadProfileBuilder":
        check_state(state, "profile-builder")
        max_quantile_values = state.get("max_quantile_values")
        builder = cls(
            window=float(state["window"]),
            cores=int(state["cores"]),
            max_quantile_values=(
                None if max_quantile_values is None else int(max_quantile_values)
            ),
            storage_n=int(state["storage_n"]),
            storage_reads=int(state["storage_reads"]),
            storage_sizes=ExactQuantiles.from_state(state["storage_sizes"]),
            storage_seeks=SeekStats.from_state(state["storage_seeks"]),
            storage_queue_sum=int(state["storage_queue_sum"]),
            storage_times=ExactQuantiles.from_state(state["storage_times"]),
            cpu_busy=WindowedCounter.from_state(state["cpu_busy"]),
            cpu_n=int(state["cpu_n"]),
            network_n=int(state["network_n"]),
            network_size_sum=int(state["network_size_sum"]),
            network_times=ExactQuantiles.from_state(state["network_times"]),
            network_counts=WindowedCounter.from_state(state["network_counts"]),
            memory_n=int(state["memory_n"]),
            memory_reads=int(state["memory_reads"]),
            memory_size_sum=int(state["memory_size_sum"]),
            latencies=ExactQuantiles.from_state(state["latencies"]),
            class_counts=CategoricalCounter.from_state(state["class_counts"]),
            max_extent=float(state["max_extent"]),
        )
        return builder

    # -- finishing -----------------------------------------------------------

    def profile(self) -> WorkloadProfile:
        """Finish the accumulators into a :class:`WorkloadProfile`."""
        storage = None
        if self.storage_n >= 2:
            storage = StorageSummary(
                n_ios=self.storage_n,
                read_fraction=self.storage_reads / self.storage_n,
                mean_size=self.storage_sizes.mean,
                p95_size=self.storage_sizes.quantile(0.95),
                sequential_fraction=self.storage_seeks.sequential_fraction,
                mean_abs_seek=self.storage_seeks.mean_abs_seek,
                mean_queue_depth=self.storage_queue_sum / self.storage_n,
                mean_interarrival=(
                    float(np.diff(np.sort(self.storage_times.array())).mean())
                    if self.storage_n >= 2
                    else 0.0
                ),
            )
        cpu = None
        if self.cpu_n:
            series = np.clip(
                self.cpu_busy.series() / (self.window * self.cores), 0.0, 1.0
            )
            cpu = CpuSummary(
                n_bursts=self.cpu_n,
                n_windows=int(series.size),
                mean_utilization=float(series.mean()),
                peak_utilization=float(series.max()),
                pattern=(
                    classify_utilization_pattern(series)
                    if series.size >= _MIN_PATTERN_WINDOWS
                    else None
                ),
            )
        network = None
        if self.network_n >= 2:
            from ..stats import interarrival_cov

            times = np.sort(self.network_times.array())
            span = float(times[-1] - times[0])
            gaps = np.diff(times)
            positive = gaps[gaps > 0]
            cov = (
                float(interarrival_cov(positive)) if positive.size >= 2 else None
            )
            counts = self.network_counts.series(end=float(times[-1]))
            mean_count = counts.mean()
            idc = float(counts.var() / mean_count) if mean_count > 0 else None
            ptm = float(counts.max() / mean_count) if mean_count > 0 else None
            network = NetworkSummary(
                n_arrivals=self.network_n,
                mean_rate=self.network_n / span if span > 0 else 0.0,
                interarrival_cov=cov,
                index_of_dispersion=idc,
                peak_to_mean=ptm,
                mean_size=self.network_size_sum / self.network_n,
            )
        memory = None
        if self.memory_n:
            memory = MemorySummary(
                n_accesses=self.memory_n,
                read_fraction=self.memory_reads / self.memory_n,
                mean_size=self.memory_size_sum / self.memory_n,
            )
        requests = None
        if self.latencies.n:
            requests = RequestSummary(
                n_requests=self.latencies.n,
                mean_latency=self.latencies.mean,
                p95_latency=self.latencies.quantile(0.95),
            )
        return WorkloadProfile(
            window=self.window,
            cores=self.cores,
            extent=self.max_extent,
            classes=dict(sorted(self.class_counts.counts.items())),
            storage=storage,
            cpu=cpu,
            network=network,
            memory=memory,
            requests=requests,
        )
