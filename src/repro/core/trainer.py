"""Training a KOOZA model from collected traces.

"Each one of the four models is trained using traces from the
corresponding subsystem" and "creating the time-dependencies-queue
requires tracing the complete round trip of a request through the
system from issue to response" (§4).  The trainer consumes any
:class:`~repro.tracing.TraceSource` containing both.
"""

from __future__ import annotations

import warnings
from typing import Optional

import numpy as np

from ..markov import HierarchicalMarkovChain, MarkovChain
from ..queueing import fit_distribution
from ..tracing import TraceSource, build_trace_trees
from .dependency import mine_dependency_queue
from .features import RequestFeatures, extract_request_features
from .model import CpuBinStats, KoozaConfig, KoozaModel

__all__ = ["KoozaTrainer"]


class KoozaTrainer:
    """Fits the four subsystem models, couplers and dependency queue."""

    def __init__(self, config: Optional[KoozaConfig] = None):
        self.config = config or KoozaConfig()

    def fit(
        self,
        source: Optional[TraceSource] = None,
        *,
        traces: Optional[TraceSource] = None,
    ) -> KoozaModel:
        """Train a :class:`KoozaModel` on any trace source.

        ``source`` may be an in-memory :class:`~repro.tracing.TraceSet`,
        a lazy :class:`repro.store.ShardStore`, or a
        :class:`~repro.tracing.FlatTraceDump`.  The ``traces=`` keyword
        is a deprecated alias and will be removed one release after
        0.3.
        """
        if traces is not None:
            if source is not None:
                raise TypeError("pass either 'source' or 'traces', not both")
            warnings.warn(
                "KoozaTrainer.fit(traces=...) is deprecated; pass the trace "
                "source positionally or as source=...",
                DeprecationWarning,
                stacklevel=2,
            )
            source = traces
        if source is None:
            raise TypeError("KoozaTrainer.fit() missing a trace source")
        features = extract_request_features(source)
        if len(features) < 16:
            raise ValueError(
                f"need >= 16 complete requests to train, got {len(features)}"
            )
        model = KoozaModel(self.config)
        model.n_training_requests = len(features)
        self._fit_network(model, features)
        self._fit_storage(model, features)
        self._fit_memory(model, features)
        self._fit_cpu(model, features)
        self._fit_couplers(model, features)
        self._fit_dependency_queue(model, source, features)
        return model

    # -- subsystem fits ------------------------------------------------------

    def _fit_network(self, model: KoozaModel, features: list[RequestFeatures]):
        sizes = [f.network_bytes for f in features]
        model.network_sizes.fit(sizes)
        states = [int(s) for s in model.network_sizes.transform(sizes)]
        model.network_chain = MarkovChain.from_sequence(
            states, smoothing=self.config.smoothing
        )
        arrivals = np.array([f.arrival_time for f in features])
        gaps = np.diff(arrivals)
        gaps = gaps[gaps > 0]
        model.arrival_gaps = gaps
        try:
            model.arrival_fit = fit_distribution(gaps)
        except ValueError:
            model.arrival_fit = None

    def _storage_states(self, model: KoozaModel, features):
        size_states = model.storage_sizes.transform(
            [f.storage_bytes for f in features]
        )
        seek_states = model.storage_seeks.transform(
            [f.storage_delta for f in features]
        )
        return [
            (f.storage_op, int(sb), int(kb))
            for f, sb, kb in zip(features, size_states, seek_states)
        ]

    def _fit_storage(self, model: KoozaModel, features: list[RequestFeatures]):
        model.storage_sizes.fit([f.storage_bytes for f in features])
        model.storage_seeks.fit([f.storage_delta for f in features])
        states = self._storage_states(model, features)
        model.storage_chain = MarkovChain.from_sequence(
            states, smoothing=self.config.smoothing
        )
        if self.config.hierarchical_storage:
            model.storage_hierarchy = HierarchicalMarkovChain.from_sequence(
                states,
                group_of=lambda s: s[0],  # top level: operation type
                smoothing=self.config.smoothing,
            )

    def _memory_states(self, model: KoozaModel, features):
        size_states = model.memory_sizes.transform(
            [f.memory_bytes for f in features]
        )
        return [
            (f.memory_op, int(sb), f.memory_bank)
            for f, sb in zip(features, size_states)
        ]

    def _fit_memory(self, model: KoozaModel, features: list[RequestFeatures]):
        model.memory_sizes.fit([f.memory_bytes for f in features])
        model.memory_chain = MarkovChain.from_sequence(
            self._memory_states(model, features), smoothing=self.config.smoothing
        )

    def _cpu_states(self, model: KoozaModel, features):
        utils = [f.cpu_utilization for f in features]
        return [int(s) for s in model.cpu_utilization.transform(utils)]

    def _fit_cpu(self, model: KoozaModel, features: list[RequestFeatures]):
        model.cpu_utilization.fit([f.cpu_utilization for f in features])
        states = self._cpu_states(model, features)
        model.cpu_chain = MarkovChain.from_sequence(
            states, smoothing=self.config.smoothing
        )
        # Decode statistics: mean per-phase busy time per utilization bin.
        lookup: dict[int, list[float]] = {}
        aggregate: dict[int, list[float]] = {}
        for f, s in zip(features, states):
            lookup.setdefault(s, []).append(f.cpu_lookup_busy)
            aggregate.setdefault(s, []).append(f.cpu_aggregate_busy)
        model.cpu_bin_stats = {
            s: CpuBinStats(
                mean_lookup_busy=float(np.mean(lookup[s])),
                mean_aggregate_busy=float(np.mean(aggregate[s])),
            )
            for s in lookup
        }

    def _fit_couplers(self, model: KoozaModel, features: list[RequestFeatures]):
        net_states = [
            int(s)
            for s in model.network_sizes.transform(
                [f.network_bytes for f in features]
            )
        ]
        storage_states = self._storage_states(model, features)
        memory_states = self._memory_states(model, features)
        cpu_states = self._cpu_states(model, features)
        for net, sto, mem, cpu in zip(
            net_states, storage_states, memory_states, cpu_states
        ):
            model.couplers["storage"].observe(net, sto)
            model.couplers["memory"].observe(net, mem)
            model.couplers["cpu"].observe(net, cpu)

    def _fit_dependency_queue(
        self,
        model: KoozaModel,
        source: TraceSource,
        features: list[RequestFeatures],
    ):
        trees = build_trace_trees(list(source.iter_records("spans")))
        profile_of = {
            f.request_id: int(model.network_sizes.transform_one(f.network_bytes))
            for f in features
        }
        model.dependency_queue = mine_dependency_queue(trees, profile_of)
