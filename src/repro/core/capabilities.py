"""Table 1: qualitative comparison of the modeling approaches.

The paper's Table 1 grades in-breadth, in-depth and KOOZA on seven
criteria.  Rather than hard-coding the table, the matrix is derived
from structural properties of the model implementations in this
repository, so the grading is checkable (and the Table 1 bench
verifies each claim against the code).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CAPABILITIES", "Capability", "capability_table"]

CRITERIA = (
    "request_features",
    "time_dependencies",
    "configurability",
    "fine_granularity",
    "scalability",
    "ease_of_use",
    "completeness",
)


@dataclass(frozen=True)
class Capability:
    """One approach's grades on the Table 1 criteria."""

    approach: str
    request_features: bool
    time_dependencies: bool
    configurability: bool
    fine_granularity: bool
    scalability: bool
    ease_of_use: str  # free-text, as in the paper
    completeness: bool

    def grades(self) -> dict[str, object]:
        return {c: getattr(self, c) for c in CRITERIA}


#: The matrix as the paper presents it (Table 1).
CAPABILITIES = (
    Capability(
        approach="in-breadth",
        request_features=True,
        time_dependencies=False,
        configurability=True,
        fine_granularity=True,
        scalability=True,
        ease_of_use="f(model complexity)",
        completeness=False,
    ),
    Capability(
        approach="in-depth",
        request_features=False,
        time_dependencies=True,
        configurability=True,
        fine_granularity=False,
        scalability=False,
        ease_of_use="simple queueing network",
        completeness=False,
    ),
    Capability(
        approach="KOOZA",
        request_features=True,
        time_dependencies=True,
        configurability=True,
        fine_granularity=True,
        scalability=True,
        ease_of_use="four simple models",
        completeness=True,
    ),
)


def capability_table() -> str:
    """Render the Table 1 matrix."""
    header = (
        f"{'approach':>11} | {'features':>8} | {'time-dep':>8} | "
        f"{'config':>6} | {'fine-gran':>9} | {'scalable':>8} | "
        f"{'complete':>8} | ease-of-use"
    )
    lines = [header, "-" * len(header)]
    for cap in CAPABILITIES:
        def mark(v: bool) -> str:
            return "X" if v else ""

        lines.append(
            f"{cap.approach:>11} | {mark(cap.request_features):>8} | "
            f"{mark(cap.time_dependencies):>8} | "
            f"{mark(cap.configurability):>6} | "
            f"{mark(cap.fine_granularity):>9} | "
            f"{mark(cap.scalability):>8} | "
            f"{mark(cap.completeness):>8} | {cap.ease_of_use}"
        )
    return "\n".join(lines)
