"""KOOZA: the combined in-breadth / in-depth workload model.

The model for each server comprises four simple models — Markov chains
for storage, processor and memory, and a queueing (arrival) model for
the network — plus the *time-dependency queue* giving the order in
which each model becomes active for a request (paper §4, Figure 2).

Two design points go beyond the four marginals:

* **Subsystem coupling.**  Because every trace record carries the
  global request id, the trainer also learns the cross-subsystem
  conditional distributions P(storage state | network state) etc. —
  the "correlations that emerge between individual models" of §5.
  Coupling is configurable (and is what the A2/A1 ablations switch
  off to recover a pure in-breadth model).
* **Configurable detail.**  Bin counts per feature set the state-space
  size, and the storage chain can be swapped for a hierarchical
  representation (§4's "corresponding hierarchical representation").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional

import numpy as np

from ..markov import HierarchicalMarkovChain, MarkovChain, QuantileDiscretizer
from ..queueing import FittedDistribution
from ..tracing import READ, WRITE
from .dependency import DependencyQueue
from .synthetic import HEADER_BYTES, Stage, SyntheticRequest

__all__ = ["KoozaConfig", "KoozaModel", "SubsystemCoupler"]


@dataclass(frozen=True)
class KoozaConfig:
    """Detail knobs of a KOOZA model.

    "The detail of the model is configurable ... the designer can
    adjust the level of detail to the part of the system that is of
    interest" (§4).
    """

    network_size_bins: int = 8
    storage_size_bins: int = 6
    storage_seek_bins: int = 6
    memory_size_bins: int = 6
    cpu_utilization_bins: int = 8
    couple_subsystems: bool = True
    use_dependency_queue: bool = True
    hierarchical_storage: bool = False
    smoothing: float = 0.0
    #: "renewal" = KS-fitted i.i.d. interarrivals (the paper's simple
    #: queueing model); "empirical" = bootstrap of observed gaps (still
    #: i.i.d.); "autocorrelated" = Gaussian-copula AR(p) matching the
    #: interarrival autocorrelation (Li's phase 2 — needed for bursty /
    #: self-similar traffic, see the A7/A14 benches).
    arrival_model: str = "renewal"

    def __post_init__(self) -> None:
        if self.arrival_model not in ("renewal", "empirical", "autocorrelated"):
            raise ValueError(
                f"unknown arrival_model {self.arrival_model!r}"
            )
        for name in (
            "network_size_bins",
            "storage_size_bins",
            "storage_seek_bins",
            "memory_size_bins",
            "cpu_utilization_bins",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")


class SubsystemCoupler:
    """Empirical conditional P(subsystem state | network state)."""

    def __init__(self):
        self._counts: dict[Hashable, dict[Hashable, float]] = {}
        self._tables: Optional[dict[Hashable, tuple[list, np.ndarray]]] = None

    def observe(self, net_state: Hashable, state: Hashable) -> None:
        bucket = self._counts.setdefault(net_state, {})
        bucket[state] = bucket.get(state, 0.0) + 1.0
        self._tables = None

    def _build(self) -> dict[Hashable, tuple[list, np.ndarray]]:
        if self._tables is None:
            self._tables = {}
            for net_state, bucket in self._counts.items():
                states = list(bucket)
                probs = np.array([bucket[s] for s in states])
                self._tables[net_state] = (states, probs / probs.sum())
        return self._tables

    def known(self, net_state: Hashable) -> bool:
        return net_state in self._counts

    def sample(self, net_state: Hashable, rng: np.random.Generator) -> Hashable:
        """Draw a subsystem state conditioned on the network state."""
        tables = self._build()
        if net_state not in tables:
            raise KeyError(f"network state {net_state!r} never observed")
        states, probs = tables[net_state]
        return states[int(rng.choice(len(states), p=probs))]

    def mode(self, net_state: Hashable) -> Hashable:
        """Most frequent subsystem state for a network state."""
        bucket = self._counts[net_state]
        return max(bucket, key=bucket.get)


@dataclass
class CpuBinStats:
    """Decode information for one CPU-utilization state."""

    mean_lookup_busy: float
    mean_aggregate_busy: float


class KoozaModel:
    """A trained KOOZA model: four subsystem models + dependency queue.

    Build one with :class:`repro.core.trainer.KoozaTrainer`; generate
    synthetic workloads with :meth:`synthesize`.
    """

    def __init__(self, config: KoozaConfig):
        self.config = config
        # Network model: arrival process + request-size chain.
        self.arrival_fit: Optional[FittedDistribution] = None
        self.arrival_gaps: Optional[np.ndarray] = None
        self.network_sizes = QuantileDiscretizer(config.network_size_bins)
        self.network_chain: Optional[MarkovChain] = None
        # Storage model.
        self.storage_sizes = QuantileDiscretizer(config.storage_size_bins)
        self.storage_seeks = QuantileDiscretizer(config.storage_seek_bins)
        self.storage_chain: Optional[MarkovChain] = None
        self.storage_hierarchy: Optional[HierarchicalMarkovChain] = None
        # Memory model.
        self.memory_sizes = QuantileDiscretizer(config.memory_size_bins)
        self.memory_chain: Optional[MarkovChain] = None
        self.memory_interleave: int = 4096
        # Processor model.
        self.cpu_utilization = QuantileDiscretizer(config.cpu_utilization_bins)
        self.cpu_chain: Optional[MarkovChain] = None
        self.cpu_bin_stats: dict[int, CpuBinStats] = {}
        # Structure + coupling.
        self.dependency_queue: Optional[DependencyQueue] = None
        self.couplers: dict[str, SubsystemCoupler] = {
            "storage": SubsystemCoupler(),
            "memory": SubsystemCoupler(),
            "cpu": SubsystemCoupler(),
        }
        self.n_training_requests: int = 0

    # -- introspection -----------------------------------------------------

    def is_fitted(self) -> bool:
        return self.network_chain is not None

    def _check_fitted(self) -> None:
        if not self.is_fitted():
            raise RuntimeError("KoozaModel is not fitted; use KoozaTrainer")

    @property
    def n_parameters(self) -> int:
        """Free transition parameters across the four models."""
        self._check_fitted()
        total = 0
        for chain in (self.network_chain, self.memory_chain, self.cpu_chain):
            total += chain.n_states * (chain.n_states - 1)
        if self.storage_hierarchy is not None:
            total += self.storage_hierarchy.n_parameters
        else:
            n = self.storage_chain.n_states
            total += n * (n - 1)
        return total

    def describe(self) -> str:
        """Figure-2 style rendering of the trained model structure."""
        self._check_fitted()
        lines = [
            "KOOZA model (four subsystem models + dependency queue)",
            f"trained on {self.n_training_requests} requests, "
            f"{self.n_parameters} transition parameters",
            "",
            "[network] arrival model: "
            + (
                self.arrival_fit.describe()
                if self.arrival_fit is not None
                else f"empirical ({len(self.arrival_gaps)} gaps)"
            ),
            f"[network] size chain: {self.network_chain.n_states} states",
            "[cpu] " + self.cpu_chain.describe().replace("\n", "\n[cpu] "),
            "[memory] " + self.memory_chain.describe().replace("\n", "\n[memory] "),
        ]
        if self.storage_hierarchy is not None:
            lines.append(
                "[storage] "
                + self.storage_hierarchy.describe().replace("\n", "\n[storage] ")
            )
        else:
            lines.append(
                "[storage] "
                + self.storage_chain.describe().replace("\n", "\n[storage] ")
            )
        lines.append("")
        lines.append(self.dependency_queue.describe())
        return "\n".join(lines)

    # -- generation ----------------------------------------------------------

    def _make_arrival_sampler(self, rng: np.random.Generator):
        """Interarrival sampler per the configured arrival model."""
        gaps = self.arrival_gaps
        if self.config.arrival_model == "autocorrelated":
            from ..queueing import CopulaArrivals

            process = CopulaArrivals(gaps, rng)
            return process.next_interarrival
        if self.config.arrival_model == "renewal" and self.arrival_fit is not None:
            fit = self.arrival_fit
            return lambda: float(fit.sample(1, rng)[0])
        # Empirical bootstrap (also the renewal fallback when no
        # distribution family converged).
        return lambda: float(gaps[rng.integers(0, gaps.size)])

    def _storage_state(self, net_state, previous, rng):
        if self.config.couple_subsystems and self.couplers["storage"].known(
            net_state
        ):
            return self.couplers["storage"].sample(net_state, rng)
        chain = self.storage_chain
        if previous is None:
            return chain.sample_path(1, rng)[0]
        return chain.sample_path(2, rng, start=previous)[1]

    def _memory_state(self, net_state, previous, rng):
        if self.config.couple_subsystems and self.couplers["memory"].known(
            net_state
        ):
            return self.couplers["memory"].sample(net_state, rng)
        chain = self.memory_chain
        if previous is None:
            return chain.sample_path(1, rng)[0]
        return chain.sample_path(2, rng, start=previous)[1]

    def _cpu_state(self, net_state, previous, rng):
        if self.config.couple_subsystems and self.couplers["cpu"].known(net_state):
            return self.couplers["cpu"].sample(net_state, rng)
        chain = self.cpu_chain
        if previous is None:
            return chain.sample_path(1, rng)[0]
        return chain.sample_path(2, rng, start=previous)[1]

    #: Stage order used when the dependency queue is disabled (an
    #: in-breadth model has no structural information, so it activates
    #: subsystem models in an arbitrary fixed order).
    FALLBACK_SEQUENCE = (
        "cpu_lookup",
        "network_rx",
        "storage",
        "memory",
        "cpu_aggregate",
        "network_tx",
    )

    def synthesize(
        self,
        n: int,
        rng: np.random.Generator,
        start_time: float = 0.0,
    ) -> list[SyntheticRequest]:
        """Generate ``n`` synthetic requests.

        Walks the network chain for arrival dynamics, conditions the
        other three subsystem models on the network state (when
        coupling is enabled), decodes states to concrete features, and
        orders stage activations by the dependency queue.
        """
        self._check_fitted()
        if n < 1:
            raise ValueError(f"need n >= 1, got {n}")
        requests = []
        t = start_time
        sample_gap = self._make_arrival_sampler(rng)
        net_path = self.network_chain.sample_path(n, rng)
        sto_prev = mem_prev = cpu_prev = None
        lbn_cursor = 0
        for net_state in net_path:
            t += sample_gap()
            net_bytes = max(
                1, int(self.network_sizes.representative(net_state))
            )
            sto_state = self._storage_state(net_state, sto_prev, rng)
            mem_state = self._memory_state(net_state, mem_prev, rng)
            cpu_state = self._cpu_state(net_state, cpu_prev, rng)
            sto_prev, mem_prev, cpu_prev = sto_state, mem_state, cpu_state

            sto_op, sto_size_bin, sto_seek_bin = sto_state
            sto_size = max(
                1, int(self.storage_sizes.representative(sto_size_bin))
            )
            seek = int(self.storage_seeks.representative(sto_seek_bin))
            lbn_cursor = max(0, lbn_cursor + seek)
            lbn = lbn_cursor
            lbn_cursor += max(1, -(-sto_size // 4096))

            mem_op, mem_size_bin, bank = mem_state
            mem_size = max(1, int(self.memory_sizes.representative(mem_size_bin)))
            address = bank * self.memory_interleave

            stats = self.cpu_bin_stats[cpu_state]

            if self.config.use_dependency_queue:
                sequence = self.dependency_queue.sequence_for(net_state)
            else:
                sequence = self.FALLBACK_SEQUENCE

            # Multi-tier applications activate a subsystem several times
            # per request (e.g. one cpu_lookup per tier); per-request
            # budgets learned from traces are spread over those
            # activations.
            counts = {
                name: max(1, sum(1 for s in sequence if s == name))
                for name in set(sequence)
            }
            stages = []
            for name in sequence:
                if name == "network_rx":
                    size = net_bytes if sto_op == WRITE else HEADER_BYTES
                    stages.append(Stage("network_rx", size_bytes=size))
                elif name == "network_tx":
                    size = net_bytes if sto_op == READ else HEADER_BYTES
                    stages.append(Stage("network_tx", size_bytes=size))
                elif name == "cpu_lookup":
                    stages.append(
                        Stage(
                            "cpu",
                            busy_seconds=stats.mean_lookup_busy
                            / counts["cpu_lookup"],
                        )
                    )
                elif name == "cpu_aggregate":
                    stages.append(
                        Stage(
                            "cpu",
                            busy_seconds=stats.mean_aggregate_busy
                            / counts["cpu_aggregate"],
                        )
                    )
                elif name == "memory":
                    stages.append(
                        Stage(
                            "memory",
                            op=mem_op,
                            size_bytes=max(1, mem_size // counts["memory"]),
                            address=address,
                        )
                    )
                elif name == "storage":
                    stages.append(
                        Stage(
                            "storage",
                            op=sto_op,
                            size_bytes=max(1, sto_size // counts["storage"]),
                            lbn=lbn,
                        )
                    )
                # Unknown span names (application-specific hops) are
                # skipped: the four models cover the four subsystems.
            requests.append(
                SyntheticRequest(
                    arrival_time=t,
                    stages=stages,
                    label=f"{sto_op}_{net_bytes}",
                )
            )
        return requests
