"""Per-server model instances for multi-server clusters.

"Scaling to multiple servers in order to simulate real-application
scenarios requires multiple instances of the model" (§4).
:class:`MultiServerKooza` partitions a cluster's traces by server,
trains one :class:`KoozaModel` per server, and synthesizes/replays each
server's workload against its own simulated hardware.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..datacenter import MachineSpec
from ..tracing import TraceSet
from .model import KoozaConfig, KoozaModel
from .replay import ReplayHarness
from .trainer import KoozaTrainer
from .validation import ValidationReport, compare_workloads

__all__ = ["MultiServerKooza", "split_traces_by_class", "split_traces_by_server"]


def _split_traces_by(traces: TraceSet, key) -> dict[str, TraceSet]:
    """Partition a TraceSet by ``key(request_record)``.

    All of a request's records (including remote hops) travel with it,
    so each partition is a self-contained training input.
    """
    group_of: dict[int, str] = {
        r.request_id: key(r) for r in traces.requests
    }
    out: dict[str, TraceSet] = {}

    def bucket(group: str) -> TraceSet:
        if group not in out:
            out[group] = TraceSet()
        return out[group]

    for record in traces.requests:
        bucket(key(record)).requests.append(record)
    for stream in ("network", "cpu", "memory", "storage"):
        for record in getattr(traces, stream):
            group = group_of.get(record.request_id)
            if group is not None:
                getattr(bucket(group), stream).append(record)
    for span in traces.spans:
        group = group_of.get(span.trace_id)
        if group is not None:
            bucket(group).spans.append(span)
    return out


def split_traces_by_server(traces: TraceSet) -> dict[str, TraceSet]:
    """Partition a TraceSet by the server each request ran on."""
    return _split_traces_by(traces, lambda r: r.server)


def split_traces_by_class(traces: TraceSet) -> dict[str, TraceSet]:
    """Partition a TraceSet by request class.

    The in-memory counterpart of
    :meth:`repro.store.ShardStore.class_traces`: per class, both yield
    the same records in the same order, so a fit on either input
    produces the same model — the equivalence the shard-parallel
    trainer's tests assert.
    """
    return _split_traces_by(traces, lambda r: r.request_class)


class MultiServerKooza:
    """One KOOZA instance per server, trained and validated together."""

    def __init__(
        self,
        config: Optional[KoozaConfig] = None,
        min_requests: int = 64,
    ):
        self.config = config or KoozaConfig()
        self.min_requests = min_requests
        self.models: dict[str, KoozaModel] = {}
        self.skipped: list[str] = []

    def fit(self, traces: TraceSet) -> "MultiServerKooza":
        """Train one model per server with enough completed requests."""
        per_server = split_traces_by_server(traces)
        if not per_server:
            raise ValueError("no requests to train on")
        trainer = KoozaTrainer(self.config)
        self.models.clear()
        self.skipped.clear()
        for server, server_traces in sorted(per_server.items()):
            if len(server_traces.completed_requests()) < self.min_requests:
                self.skipped.append(server)
                continue
            self.models[server] = trainer.fit(server_traces)
        if not self.models:
            raise ValueError(
                f"no server reached {self.min_requests} completed requests"
            )
        return self

    @property
    def n_instances(self) -> int:
        return len(self.models)

    def synthesize(
        self, per_server: int, rng: np.random.Generator
    ) -> dict[str, list]:
        """Synthesize ``per_server`` requests from each instance."""
        if not self.models:
            raise RuntimeError("not fitted; call fit() first")
        return {
            server: model.synthesize(per_server, rng)
            for server, model in self.models.items()
        }

    def validate(
        self,
        traces: TraceSet,
        rng: np.random.Generator,
        machine_spec: Optional[MachineSpec] = None,
        seed: int = 1000,
    ) -> dict[str, ValidationReport]:
        """Per-server replay validation against the original traces."""
        if not self.models:
            raise RuntimeError("not fitted; call fit() first")
        per_server = split_traces_by_server(traces)
        reports = {}
        for index, (server, model) in enumerate(sorted(self.models.items())):
            server_traces = per_server[server]
            n = len(server_traces.completed_requests())
            synthetic = model.synthesize(n, rng)
            harness = ReplayHarness(
                machine_spec=machine_spec, seed=seed + index
            )
            reports[server] = compare_workloads(
                server_traces, harness.replay(synthetic)
            )
        return reports
