"""Per-server model instances for multi-server clusters.

"Scaling to multiple servers in order to simulate real-application
scenarios requires multiple instances of the model" (§4).
:class:`MultiServerKooza` partitions a cluster's traces by server,
trains one :class:`KoozaModel` per server, and synthesizes/replays each
server's workload against its own simulated hardware.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..datacenter import MachineSpec
from ..tracing import TraceSet
from .model import KoozaConfig, KoozaModel
from .replay import ReplayHarness
from .trainer import KoozaTrainer
from .validation import ValidationReport, compare_workloads

__all__ = ["MultiServerKooza", "split_traces_by_server"]


def split_traces_by_server(traces: TraceSet) -> dict[str, TraceSet]:
    """Partition a TraceSet by the server each request ran on.

    Requests are assigned by their RequestRecord's server; all of a
    request's records (including remote hops) travel with it, so each
    per-server TraceSet is self-contained for training.
    """
    server_of: dict[int, str] = {
        r.request_id: r.server for r in traces.requests
    }
    out: dict[str, TraceSet] = {}

    def bucket(server: str) -> TraceSet:
        if server not in out:
            out[server] = TraceSet()
        return out[server]

    for record in traces.requests:
        bucket(record.server).requests.append(record)
    for stream in ("network", "cpu", "memory", "storage"):
        for record in getattr(traces, stream):
            server = server_of.get(record.request_id)
            if server is not None:
                getattr(bucket(server), stream).append(record)
    for span in traces.spans:
        server = server_of.get(span.trace_id)
        if server is not None:
            bucket(server).spans.append(span)
    return out


class MultiServerKooza:
    """One KOOZA instance per server, trained and validated together."""

    def __init__(
        self,
        config: Optional[KoozaConfig] = None,
        min_requests: int = 64,
    ):
        self.config = config or KoozaConfig()
        self.min_requests = min_requests
        self.models: dict[str, KoozaModel] = {}
        self.skipped: list[str] = []

    def fit(self, traces: TraceSet) -> "MultiServerKooza":
        """Train one model per server with enough completed requests."""
        per_server = split_traces_by_server(traces)
        if not per_server:
            raise ValueError("no requests to train on")
        trainer = KoozaTrainer(self.config)
        self.models.clear()
        self.skipped.clear()
        for server, server_traces in sorted(per_server.items()):
            if len(server_traces.completed_requests()) < self.min_requests:
                self.skipped.append(server)
                continue
            self.models[server] = trainer.fit(server_traces)
        if not self.models:
            raise ValueError(
                f"no server reached {self.min_requests} completed requests"
            )
        return self

    @property
    def n_instances(self) -> int:
        return len(self.models)

    def synthesize(
        self, per_server: int, rng: np.random.Generator
    ) -> dict[str, list]:
        """Synthesize ``per_server`` requests from each instance."""
        if not self.models:
            raise RuntimeError("not fitted; call fit() first")
        return {
            server: model.synthesize(per_server, rng)
            for server, model in self.models.items()
        }

    def validate(
        self,
        traces: TraceSet,
        rng: np.random.Generator,
        machine_spec: Optional[MachineSpec] = None,
        seed: int = 1000,
    ) -> dict[str, ValidationReport]:
        """Per-server replay validation against the original traces."""
        if not self.models:
            raise RuntimeError("not fitted; call fit() first")
        per_server = split_traces_by_server(traces)
        reports = {}
        for index, (server, model) in enumerate(sorted(self.models.items())):
            server_traces = per_server[server]
            n = len(server_traces.completed_requests())
            synthetic = model.synthesize(n, rng)
            harness = ReplayHarness(
                machine_spec=machine_spec, seed=seed + index
            )
            reports[server] = compare_workloads(
                server_traces, harness.replay(synthetic)
            )
        return reports
