"""Replay harness: exercise a simulated server with synthetic requests.

Validation in the paper means checking that "requests generated using
the model have the same features and performance metrics as the
original requests" (§4).  The harness replays a synthetic workload on
the same device models the original application ran on, producing a
:class:`TraceSet` that the validation framework compares against the
original one — features *and* end-to-end latency.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..simulation import Environment, RandomStreams
from ..tracing import RequestRecord, Tracer, TraceSet
from ..datacenter import Machine, MachineSpec
from .synthetic import SyntheticRequest

__all__ = ["ReplayHarness"]


class ReplayHarness:
    """Replays synthetic requests against simulated server hardware."""

    def __init__(
        self,
        machine_spec: Optional[MachineSpec] = None,
        seed: int = 1000,
        n_servers: int = 1,
        max_io_bytes: int = 4 << 20,
    ):
        if n_servers < 1:
            raise ValueError(f"need >= 1 server, got {n_servers}")
        self.machine_spec = machine_spec or MachineSpec()
        self.seed = seed
        self.n_servers = n_servers
        self.max_io_bytes = max_io_bytes
        #: Machines of the most recent replay (for power/energy studies).
        self.machines: list[Machine] = []

    def replay(self, requests: Sequence[SyntheticRequest]) -> TraceSet:
        """Run the workload to completion; returns the replay traces."""
        if not requests:
            raise ValueError("no synthetic requests to replay")
        env = Environment()
        tracer = Tracer(sample_every=1)
        streams = RandomStreams(self.seed, prefix="replay")
        machines = [
            Machine(env, f"replay-{i}", self.machine_spec, streams, tracer)
            for i in range(self.n_servers)
        ]
        self.machines = machines
        ordered = sorted(requests, key=lambda r: r.arrival_time)

        def source(env):
            for i, request in enumerate(ordered):
                delay = request.arrival_time - env.now
                if delay > 0:
                    yield env.timeout(delay)
                machine = machines[i % self.n_servers]
                env.process(self._execute(env, tracer, machine, request))

        env.process(source(env))
        env.run()
        return tracer.traces

    def _execute(
        self,
        env: Environment,
        tracer: Tracer,
        machine: Machine,
        request: SyntheticRequest,
    ):
        request_id = tracer.new_request_id()
        root = tracer.start_span(request_id, "request", machine.name, env.now)
        record = RequestRecord(
            request_id=request_id,
            request_class=request.label,
            server=machine.name,
            arrival_time=env.now,
            network_bytes=request.network_bytes,
        )
        cpu_phase = "lookup"
        for stage in request.stages:
            span = tracer.start_span(
                request_id, stage.kind, machine.name, env.now, root
            )
            if stage.kind in ("network_rx", "network_tx"):
                direction = "rx" if stage.kind == "network_rx" else "tx"
                yield env.process(
                    machine.nic.transfer(request_id, stage.size_bytes, direction)
                )
            elif stage.kind == "cpu":
                busy = yield env.process(
                    machine.cpu.compute(request_id, stage.busy_seconds, cpu_phase)
                )
                record.cpu_busy_seconds += busy
                cpu_phase = "aggregate"
            elif stage.kind == "memory":
                yield env.process(
                    machine.memory.access(
                        request_id, stage.address, stage.size_bytes, stage.op
                    )
                )
                record.memory_bytes += stage.size_bytes
                record.memory_op = stage.op
            elif stage.kind == "storage":
                remaining = stage.size_bytes
                lbn = stage.lbn
                block = machine.disk.model.spec.block_size
                while remaining > 0:
                    size = min(remaining, self.max_io_bytes)
                    yield env.process(
                        machine.disk.io(request_id, lbn, size, stage.op)
                    )
                    lbn += -(-size // block)
                    remaining -= size
                record.storage_bytes += stage.size_bytes
                record.storage_op = stage.op
            tracer.end_span(span, env.now)
        record.completion_time = env.now
        tracer.end_span(root, env.now)
        tracer.record_request(record)
