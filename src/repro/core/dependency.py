"""The time-dependency queue: KOOZA's structural component.

"…and a queue, configurable for each workload, that demonstrates the
structure of the application, i.e. the order in which each model
becomes active" (§4).  The queue is mined from Dapper-style trace
trees: for each request profile, the modal ordered sequence of
subsystem activations.  Control-plane stages (master lookups) are
optional hops and are excluded from the canonical structure.
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable, Optional, Sequence

from ..tracing import TraceTree

__all__ = ["DependencyQueue", "mine_dependency_queue"]

#: Span names that are optional control-plane hops, not the structure.
_OPTIONAL_STAGES = ("master_lookup",)


class DependencyQueue:
    """Per-profile modal stage sequences with support counts."""

    def __init__(
        self,
        sequences: dict[Hashable, tuple[str, ...]],
        supports: dict[Hashable, int],
        default: tuple[str, ...],
    ):
        if not default:
            raise ValueError("default stage sequence must be non-empty")
        self.sequences = dict(sequences)
        self.supports = dict(supports)
        self.default = tuple(default)

    def sequence_for(self, profile: Hashable = None) -> tuple[str, ...]:
        """Stage order for a request profile (the global mode if the
        profile was never observed)."""
        return self.sequences.get(profile, self.default)

    @property
    def n_profiles(self) -> int:
        return len(self.sequences)

    def describe(self) -> str:
        lines = [f"DependencyQueue: default={' -> '.join(self.default)}"]
        for profile, seq in sorted(self.sequences.items(), key=lambda kv: str(kv[0])):
            lines.append(
                f"  profile {profile}: {' -> '.join(seq)}"
                f" (n={self.supports.get(profile, 0)})"
            )
        return "\n".join(lines)


def mine_dependency_queue(
    trees: Sequence[TraceTree],
    profile_of: Optional[dict[int, Hashable]] = None,
) -> DependencyQueue:
    """Extract the dependency queue from sampled trace trees.

    ``profile_of`` maps trace ids to request profiles (e.g. the KOOZA
    network state of the request); without it a single global sequence
    is mined.  The modal sequence per profile wins — occasional
    divergent orderings (overlapping replica activity, lost spans) are
    treated as noise.
    """
    if not trees:
        raise ValueError("no trace trees to mine")
    per_profile: dict[Hashable, Counter] = {}
    overall: Counter = Counter()
    for tree in trees:
        sequence = tuple(
            name
            for name in tree.stage_sequence()
            if name not in _OPTIONAL_STAGES
        )
        if not sequence:
            continue
        overall[sequence] += 1
        if profile_of is not None and tree.trace_id in profile_of:
            profile = profile_of[tree.trace_id]
            per_profile.setdefault(profile, Counter())[sequence] += 1
    if not overall:
        raise ValueError("all traces were empty after filtering")
    default = overall.most_common(1)[0][0]
    sequences = {}
    supports = {}
    for profile, counter in per_profile.items():
        sequences[profile], supports[profile] = counter.most_common(1)[0]
    return DependencyQueue(sequences, supports, default)
