"""Per-request joint feature vectors assembled from subsystem traces.

The Dapper-style global request id ties every subsystem record to its
originating request ("the model relies on ... a unique global
identifier that ties each message to the originating request"), which
is what lets KOOZA learn *joint* per-request behaviour — the
correlations between individual subsystem models the paper highlights
(§5) — rather than four unrelated marginals.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, Mapping, Optional

import numpy as np

from ..tracing import TraceSource, build_trace_trees
from ..tracing.columnar import StringColumn

__all__ = [
    "RequestFeatures",
    "extract_request_features",
    "request_feature_columns",
]

#: Servers whose records are control-plane, not data-path.
_CONTROL_SERVERS = ("master",)


@dataclass
class RequestFeatures:
    """Joint per-request features across the four subsystems."""

    request_id: int
    request_class: str  # ground-truth label, used only for evaluation
    server: str
    arrival_time: float
    latency: float
    network_bytes: int
    cpu_lookup_busy: float
    cpu_aggregate_busy: float
    memory_op: str
    memory_bytes: int
    memory_bank: int
    storage_op: str
    storage_bytes: int
    storage_lbn: int
    storage_delta: int = 0  # seek gap vs the previous request on this server
    stage_sequence: Optional[list[str]] = None

    @property
    def cpu_busy(self) -> float:
        return self.cpu_lookup_busy + self.cpu_aggregate_busy

    @property
    def cpu_utilization(self) -> float:
        """Fraction of one core busy over the request lifetime."""
        return self.cpu_busy / self.latency if self.latency > 0 else 0.0


def extract_request_features(
    source: Optional[TraceSource] = None,
    *,
    traces: Optional[TraceSource] = None,
) -> list[RequestFeatures]:
    """Assemble per-request feature vectors, sorted by arrival time.

    Accepts any :class:`~repro.tracing.TraceSource` — an in-memory
    :class:`~repro.tracing.TraceSet`, a lazy
    :class:`repro.store.ShardStore`, or a
    :class:`~repro.tracing.FlatTraceDump` — and folds over its streams
    without requiring list attributes.  Control-plane records (master
    lookups) are excluded from the data-path features.  Requests
    missing any subsystem record (e.g. cut off at simulation end) are
    dropped.

    The ``traces=`` keyword is a deprecated alias for the first
    positional argument and will be removed one release after 0.3.
    """
    if traces is not None:
        if source is not None:
            raise TypeError("pass either 'source' or 'traces', not both")
        warnings.warn(
            "extract_request_features(traces=...) is deprecated; pass the "
            "trace source positionally or as source=...",
            DeprecationWarning,
            stacklevel=2,
        )
        source = traces
    if source is None:
        raise TypeError("extract_request_features() missing a trace source")
    storage_by_request: dict[int, list] = {}
    for r in source.iter_records("storage"):
        storage_by_request.setdefault(r.request_id, []).append(r)
    memory_by_request: dict[int, list] = {}
    for r in source.iter_records("memory"):
        memory_by_request.setdefault(r.request_id, []).append(r)
    cpu_by_request: dict[int, list] = {}
    for r in source.iter_records("cpu"):
        if r.server not in _CONTROL_SERVERS:
            cpu_by_request.setdefault(r.request_id, []).append(r)
    network_by_request: dict[int, list] = {}
    for r in source.iter_records("network"):
        if r.server not in _CONTROL_SERVERS:
            network_by_request.setdefault(r.request_id, []).append(r)
    stage_by_request: dict[int, list[str]] = {}
    for tree in build_trace_trees(list(source.iter_records("spans"))):
        stage_by_request[tree.trace_id] = tree.stage_sequence()

    completed = (
        r
        for r in source.iter_records("requests")
        if r.completion_time > r.arrival_time
    )
    features = []
    for record in completed:
        rid = record.request_id
        storage = sorted(
            storage_by_request.get(rid, []), key=lambda r: r.timestamp
        )
        memory = sorted(memory_by_request.get(rid, []), key=lambda r: r.timestamp)
        cpu = cpu_by_request.get(rid, [])
        network = network_by_request.get(rid, [])
        if not storage or not memory or not cpu or not network:
            continue
        lookup = sum(r.busy_seconds for r in cpu if r.phase == "lookup")
        aggregate = sum(r.busy_seconds for r in cpu if r.phase != "lookup")
        features.append(
            RequestFeatures(
                request_id=rid,
                request_class=record.request_class,
                server=record.server,
                arrival_time=record.arrival_time,
                latency=record.latency,
                network_bytes=max(r.size_bytes for r in network),
                cpu_lookup_busy=lookup,
                cpu_aggregate_busy=aggregate,
                memory_op=memory[0].op,
                memory_bytes=sum(r.size_bytes for r in memory),
                memory_bank=memory[0].bank,
                storage_op=storage[0].op,
                storage_bytes=sum(r.size_bytes for r in storage),
                storage_lbn=storage[0].lbn,
                stage_sequence=stage_by_request.get(rid),
            )
        )
    features.sort(key=lambda f: f.arrival_time)

    # Seek deltas between consecutive requests on the same server.
    block = 4096
    last_end: dict[str, int] = {}
    for f in features:
        blocks = max(1, -(-f.storage_bytes // block))
        if f.server in last_end:
            f.storage_delta = f.storage_lbn - last_end[f.server]
        f.storage_delta = int(f.storage_delta)
        last_end[f.server] = f.storage_lbn + blocks
    return features


def _group_boundaries(sorted_ids: np.ndarray) -> np.ndarray:
    """Start offsets of each run in an id-sorted array."""
    if sorted_ids.size == 0:
        return np.zeros(0, dtype=np.int64)
    return np.flatnonzero(
        np.concatenate(([True], sorted_ids[1:] != sorted_ids[:-1]))
    )


def _membership(sorted_unique: np.ndarray, ids: np.ndarray) -> np.ndarray:
    """Boolean mask: which ``ids`` appear in ``sorted_unique``."""
    if sorted_unique.size == 0:
        return np.zeros(ids.size, dtype=bool)
    pos = np.minimum(
        np.searchsorted(sorted_unique, ids), sorted_unique.size - 1
    )
    return sorted_unique[pos] == ids


def request_feature_columns(
    streams: Mapping[str, Mapping[str, Any]],
) -> dict[str, Any]:
    """Vectorized :func:`extract_request_features` over column dicts.

    ``streams`` maps stream name → (shifted) column dict for
    ``storage``, ``memory``, ``cpu``, ``network`` and ``requests``;
    the result holds one column per feature the downstream statistics
    consume (``request_class``, ``arrival_time``, ``latency``,
    ``network_bytes``, ``cpu_utilization``, ``memory_op``,
    ``memory_bytes``, ``storage_op``, ``storage_bytes``), rows in the
    same arrival-sorted order the record path produces.

    Equivalence to the record path is exact, not approximate: integer
    sums/maxima are order-free; the CPU lookup/aggregate busy sums use
    ``np.add.at``, which performs the same scalar float adds in the
    same stream order as the per-record ``sum``; first-by-timestamp
    selections replicate Python's stable sort tie-breaking; and the
    final ordering is a stable argsort on arrival time over rows in
    requests-stream order — the record path's ``list.sort``.
    (``storage_delta`` and ``stage_sequence`` are not assembled here:
    no feature statistic consumes them.)
    """
    storage = streams["storage"]
    memory = streams["memory"]
    cpu = streams["cpu"]
    network = streams["network"]
    requests = streams["requests"]

    # storage / memory: group by request id, first record by timestamp
    # (stable on stream order), integer byte sums.
    def first_and_sum(cols: Mapping[str, Any]):
        rid = np.asarray(cols["request_id"])
        ts = np.asarray(cols["timestamp"])
        order = np.lexsort((np.arange(rid.size), ts, rid))
        sorted_rid = rid[order]
        starts = _group_boundaries(sorted_rid)
        uniq = sorted_rid[starts]
        first = order[starts]
        sums = (
            np.add.reduceat(cols["size_bytes"][order], starts)
            if starts.size
            else np.zeros(0, dtype=np.int64)
        )
        return uniq, first, sums

    sto_uniq, sto_first, sto_sums = first_and_sum(storage)
    mem_uniq, mem_first, mem_sums = first_and_sum(memory)

    # network: data-path records only; per-request max message size.
    net_keep = ~network["server"].mask_in(_CONTROL_SERVERS)
    net_rid = np.asarray(network["request_id"])[net_keep]
    net_size = np.asarray(network["size_bytes"])[net_keep]
    net_order = np.argsort(net_rid, kind="stable")
    net_sorted = net_rid[net_order]
    net_starts = _group_boundaries(net_sorted)
    net_uniq = net_sorted[net_starts]
    net_max = (
        np.maximum.reduceat(net_size[net_order], net_starts)
        if net_starts.size
        else np.zeros(0, dtype=np.int64)
    )

    # cpu: data-path records only; lookup/aggregate busy sums folded
    # with np.add.at in stream order (bit-identical to Python's sum).
    cpu_keep = ~cpu["server"].mask_in(_CONTROL_SERVERS)
    cpu_rid = np.asarray(cpu["request_id"])[cpu_keep]
    cpu_busy = np.asarray(cpu["busy_seconds"])[cpu_keep]
    cpu_lookup = cpu["phase"].mask("lookup")[cpu_keep]
    cpu_uniq, cpu_inverse = np.unique(cpu_rid, return_inverse=True)
    lookup_sums = np.zeros(cpu_uniq.size)
    np.add.at(lookup_sums, cpu_inverse[cpu_lookup], cpu_busy[cpu_lookup])
    aggregate_sums = np.zeros(cpu_uniq.size)
    np.add.at(
        aggregate_sums, cpu_inverse[~cpu_lookup], cpu_busy[~cpu_lookup]
    )

    # requests: completed, present in all four subsystem groups.
    req_rid = np.asarray(requests["request_id"])
    arrival = np.asarray(requests["arrival_time"])
    completion = np.asarray(requests["completion_time"])
    keep = (
        (completion > arrival)
        & _membership(sto_uniq, req_rid)
        & _membership(mem_uniq, req_rid)
        & _membership(cpu_uniq, req_rid)
        & _membership(net_uniq, req_rid)
    )
    kept = np.flatnonzero(keep)
    final = kept[np.argsort(arrival[kept], kind="stable")]
    rid_final = req_rid[final]

    latency = (completion - arrival)[final]
    sto_at = np.searchsorted(sto_uniq, rid_final)
    mem_at = np.searchsorted(mem_uniq, rid_final)
    cpu_at = np.searchsorted(cpu_uniq, rid_final)
    net_at = np.searchsorted(net_uniq, rid_final)
    busy = lookup_sums[cpu_at] + aggregate_sums[cpu_at]
    with np.errstate(divide="ignore", invalid="ignore"):
        utilization = np.where(latency > 0, busy / latency, 0.0)

    mem_op = memory["op"]
    sto_op = storage["op"]
    return {
        "n": int(final.size),
        "request_class": requests["request_class"].take(final),
        "arrival_time": arrival[final],
        "latency": latency,
        "network_bytes": net_max[net_at],
        "cpu_utilization": utilization,
        "memory_op": StringColumn(
            mem_op.codes[mem_first[mem_at]], mem_op.values
        ),
        "memory_bytes": mem_sums[mem_at],
        "storage_op": StringColumn(
            sto_op.codes[sto_first[sto_at]], sto_op.values
        ),
        "storage_bytes": sto_sums[sto_at],
    }
