"""Per-request joint feature vectors assembled from subsystem traces.

The Dapper-style global request id ties every subsystem record to its
originating request ("the model relies on ... a unique global
identifier that ties each message to the originating request"), which
is what lets KOOZA learn *joint* per-request behaviour — the
correlations between individual subsystem models the paper highlights
(§5) — rather than four unrelated marginals.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional

from ..tracing import TraceSource, build_trace_trees

__all__ = ["RequestFeatures", "extract_request_features"]

#: Servers whose records are control-plane, not data-path.
_CONTROL_SERVERS = ("master",)


@dataclass
class RequestFeatures:
    """Joint per-request features across the four subsystems."""

    request_id: int
    request_class: str  # ground-truth label, used only for evaluation
    server: str
    arrival_time: float
    latency: float
    network_bytes: int
    cpu_lookup_busy: float
    cpu_aggregate_busy: float
    memory_op: str
    memory_bytes: int
    memory_bank: int
    storage_op: str
    storage_bytes: int
    storage_lbn: int
    storage_delta: int = 0  # seek gap vs the previous request on this server
    stage_sequence: Optional[list[str]] = None

    @property
    def cpu_busy(self) -> float:
        return self.cpu_lookup_busy + self.cpu_aggregate_busy

    @property
    def cpu_utilization(self) -> float:
        """Fraction of one core busy over the request lifetime."""
        return self.cpu_busy / self.latency if self.latency > 0 else 0.0


def extract_request_features(
    source: Optional[TraceSource] = None,
    *,
    traces: Optional[TraceSource] = None,
) -> list[RequestFeatures]:
    """Assemble per-request feature vectors, sorted by arrival time.

    Accepts any :class:`~repro.tracing.TraceSource` — an in-memory
    :class:`~repro.tracing.TraceSet`, a lazy
    :class:`repro.store.ShardStore`, or a
    :class:`~repro.tracing.FlatTraceDump` — and folds over its streams
    without requiring list attributes.  Control-plane records (master
    lookups) are excluded from the data-path features.  Requests
    missing any subsystem record (e.g. cut off at simulation end) are
    dropped.

    The ``traces=`` keyword is a deprecated alias for the first
    positional argument and will be removed one release after 0.3.
    """
    if traces is not None:
        if source is not None:
            raise TypeError("pass either 'source' or 'traces', not both")
        warnings.warn(
            "extract_request_features(traces=...) is deprecated; pass the "
            "trace source positionally or as source=...",
            DeprecationWarning,
            stacklevel=2,
        )
        source = traces
    if source is None:
        raise TypeError("extract_request_features() missing a trace source")
    storage_by_request: dict[int, list] = {}
    for r in source.iter_records("storage"):
        storage_by_request.setdefault(r.request_id, []).append(r)
    memory_by_request: dict[int, list] = {}
    for r in source.iter_records("memory"):
        memory_by_request.setdefault(r.request_id, []).append(r)
    cpu_by_request: dict[int, list] = {}
    for r in source.iter_records("cpu"):
        if r.server not in _CONTROL_SERVERS:
            cpu_by_request.setdefault(r.request_id, []).append(r)
    network_by_request: dict[int, list] = {}
    for r in source.iter_records("network"):
        if r.server not in _CONTROL_SERVERS:
            network_by_request.setdefault(r.request_id, []).append(r)
    stage_by_request: dict[int, list[str]] = {}
    for tree in build_trace_trees(list(source.iter_records("spans"))):
        stage_by_request[tree.trace_id] = tree.stage_sequence()

    completed = (
        r
        for r in source.iter_records("requests")
        if r.completion_time > r.arrival_time
    )
    features = []
    for record in completed:
        rid = record.request_id
        storage = sorted(
            storage_by_request.get(rid, []), key=lambda r: r.timestamp
        )
        memory = sorted(memory_by_request.get(rid, []), key=lambda r: r.timestamp)
        cpu = cpu_by_request.get(rid, [])
        network = network_by_request.get(rid, [])
        if not storage or not memory or not cpu or not network:
            continue
        lookup = sum(r.busy_seconds for r in cpu if r.phase == "lookup")
        aggregate = sum(r.busy_seconds for r in cpu if r.phase != "lookup")
        features.append(
            RequestFeatures(
                request_id=rid,
                request_class=record.request_class,
                server=record.server,
                arrival_time=record.arrival_time,
                latency=record.latency,
                network_bytes=max(r.size_bytes for r in network),
                cpu_lookup_busy=lookup,
                cpu_aggregate_busy=aggregate,
                memory_op=memory[0].op,
                memory_bytes=sum(r.size_bytes for r in memory),
                memory_bank=memory[0].bank,
                storage_op=storage[0].op,
                storage_bytes=sum(r.size_bytes for r in storage),
                storage_lbn=storage[0].lbn,
                stage_sequence=stage_by_request.get(rid),
            )
        )
    features.sort(key=lambda f: f.arrival_time)

    # Seek deltas between consecutive requests on the same server.
    block = 4096
    last_end: dict[str, int] = {}
    for f in features:
        blocks = max(1, -(-f.storage_bytes // block))
        if f.server in last_end:
            f.storage_delta = f.storage_lbn - last_end[f.server]
        f.storage_delta = int(f.storage_delta)
        last_end[f.server] = f.storage_lbn + blocks
    return features
