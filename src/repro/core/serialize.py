"""KOOZA model persistence.

Trained models serialize to JSON so trace collection, training and
synthesis can run as separate jobs (the deployment the paper assumes:
traces are collected on the cluster, models are built and shipped to
wherever server-configuration studies run).
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Any

import numpy as np

from ..markov import HierarchicalMarkovChain, MarkovChain, QuantileDiscretizer
from ..queueing import FittedDistribution
from .dependency import DependencyQueue
from .model import CpuBinStats, KoozaConfig, KoozaModel, SubsystemCoupler

__all__ = ["load_model", "model_from_dict", "model_to_dict", "save_model"]

_FORMAT_VERSION = 1


def _encode_state(state: Any) -> Any:
    """States are ints, strings, or tuples thereof; tuples become lists."""
    if isinstance(state, tuple):
        return [_encode_state(s) for s in state]
    if isinstance(state, (np.integer,)):
        return int(state)
    return state


def _decode_state(state: Any) -> Any:
    if isinstance(state, list):
        return tuple(_decode_state(s) for s in state)
    return state


def _chain_to_dict(chain: MarkovChain) -> dict:
    return {
        "states": [_encode_state(s) for s in chain.states],
        "transition_matrix": chain.transition_matrix.tolist(),
        "initial_distribution": chain.initial_distribution.tolist(),
    }


def _chain_from_dict(data: dict) -> MarkovChain:
    return MarkovChain(
        [_decode_state(s) for s in data["states"]],
        np.array(data["transition_matrix"]),
        np.array(data["initial_distribution"]),
    )


def _discretizer_to_dict(d: QuantileDiscretizer) -> dict:
    return {
        "n_bins": d.n_bins,
        "edges": d.edges_.tolist(),
        "representatives": d.representatives_.tolist(),
    }


def _discretizer_from_dict(data: dict) -> QuantileDiscretizer:
    d = QuantileDiscretizer(data["n_bins"])
    d.edges_ = np.array(data["edges"])
    d.representatives_ = np.array(data["representatives"])
    return d


def _coupler_to_dict(coupler: SubsystemCoupler) -> list:
    return [
        [_encode_state(net), _encode_state(state), count]
        for net, bucket in coupler._counts.items()
        for state, count in bucket.items()
    ]


def _coupler_from_dict(rows: list) -> SubsystemCoupler:
    coupler = SubsystemCoupler()
    for net, state, count in rows:
        bucket = coupler._counts.setdefault(_decode_state(net), {})
        bucket[_decode_state(state)] = float(count)
    return coupler


def model_to_dict(model: KoozaModel) -> dict:
    """Serialize a fitted model to a JSON-safe dictionary."""
    if not model.is_fitted():
        raise ValueError("cannot serialize an unfitted model")
    data: dict[str, Any] = {
        "format_version": _FORMAT_VERSION,
        "config": asdict(model.config),
        "n_training_requests": model.n_training_requests,
        "memory_interleave": model.memory_interleave,
        "network_sizes": _discretizer_to_dict(model.network_sizes),
        "network_chain": _chain_to_dict(model.network_chain),
        "storage_sizes": _discretizer_to_dict(model.storage_sizes),
        "storage_seeks": _discretizer_to_dict(model.storage_seeks),
        "storage_chain": _chain_to_dict(model.storage_chain),
        "memory_sizes": _discretizer_to_dict(model.memory_sizes),
        "memory_chain": _chain_to_dict(model.memory_chain),
        "cpu_utilization": _discretizer_to_dict(model.cpu_utilization),
        "cpu_chain": _chain_to_dict(model.cpu_chain),
        "cpu_bin_stats": {
            str(state): [s.mean_lookup_busy, s.mean_aggregate_busy]
            for state, s in model.cpu_bin_stats.items()
        },
        "arrival_gaps": model.arrival_gaps.tolist(),
        "arrival_fit": (
            {
                "family": model.arrival_fit.family,
                "params": list(model.arrival_fit.params),
                "ks_statistic": model.arrival_fit.ks_statistic,
                "ks_pvalue": model.arrival_fit.ks_pvalue,
                "log_likelihood": model.arrival_fit.log_likelihood,
            }
            if model.arrival_fit is not None
            else None
        ),
        "couplers": {
            name: _coupler_to_dict(coupler)
            for name, coupler in model.couplers.items()
        },
        "dependency_queue": {
            "sequences": [
                [_encode_state(profile), list(sequence)]
                for profile, sequence in model.dependency_queue.sequences.items()
            ],
            "supports": [
                [_encode_state(profile), count]
                for profile, count in model.dependency_queue.supports.items()
            ],
            "default": list(model.dependency_queue.default),
        },
    }
    if model.storage_hierarchy is not None:
        data["storage_hierarchy"] = {
            "group_chain": _chain_to_dict(model.storage_hierarchy.group_chain),
            "sub_chains": [
                [_encode_state(group), _chain_to_dict(chain)]
                for group, chain in model.storage_hierarchy.sub_chains.items()
            ],
        }
    return data


def model_from_dict(data: dict) -> KoozaModel:
    """Rebuild a fitted model from :func:`model_to_dict` output."""
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported model format version {version!r}")
    model = KoozaModel(KoozaConfig(**data["config"]))
    model.n_training_requests = data["n_training_requests"]
    model.memory_interleave = data["memory_interleave"]
    model.network_sizes = _discretizer_from_dict(data["network_sizes"])
    model.network_chain = _chain_from_dict(data["network_chain"])
    model.storage_sizes = _discretizer_from_dict(data["storage_sizes"])
    model.storage_seeks = _discretizer_from_dict(data["storage_seeks"])
    model.storage_chain = _chain_from_dict(data["storage_chain"])
    model.memory_sizes = _discretizer_from_dict(data["memory_sizes"])
    model.memory_chain = _chain_from_dict(data["memory_chain"])
    model.cpu_utilization = _discretizer_from_dict(data["cpu_utilization"])
    model.cpu_chain = _chain_from_dict(data["cpu_chain"])
    model.cpu_bin_stats = {
        int(state): CpuBinStats(lookup, aggregate)
        for state, (lookup, aggregate) in data["cpu_bin_stats"].items()
    }
    model.arrival_gaps = np.array(data["arrival_gaps"])
    if data["arrival_fit"] is not None:
        fit = data["arrival_fit"]
        model.arrival_fit = FittedDistribution(
            family=fit["family"],
            params=tuple(fit["params"]),
            ks_statistic=fit["ks_statistic"],
            ks_pvalue=fit["ks_pvalue"],
            log_likelihood=fit["log_likelihood"],
        )
    model.couplers = {
        name: _coupler_from_dict(rows)
        for name, rows in data["couplers"].items()
    }
    queue = data["dependency_queue"]
    model.dependency_queue = DependencyQueue(
        sequences={
            _decode_state(profile): tuple(sequence)
            for profile, sequence in queue["sequences"]
        },
        supports={
            _decode_state(profile): count
            for profile, count in queue["supports"]
        },
        default=tuple(queue["default"]),
    )
    if "storage_hierarchy" in data:
        hierarchy = data["storage_hierarchy"]
        model.storage_hierarchy = HierarchicalMarkovChain(
            _chain_from_dict(hierarchy["group_chain"]),
            {
                _decode_state(group): _chain_from_dict(chain)
                for group, chain in hierarchy["sub_chains"]
            },
        )
    return model


def save_model(model: KoozaModel, path: str | Path) -> Path:
    """Write a fitted model to a JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(model_to_dict(model)))
    return path


def load_model(path: str | Path) -> KoozaModel:
    """Read a model previously written by :func:`save_model`."""
    return model_from_dict(json.loads(Path(path).read_text()))
