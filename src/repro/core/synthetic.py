"""Synthetic workload representation shared by all modeling techniques.

A :class:`SyntheticRequest` is an arrival time plus an ordered list of
:class:`Stage` activations with concrete parameters — exactly what the
replay harness needs to exercise a simulated server, and what the
validation framework compares against original trace features.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..tracing import READ

__all__ = ["Stage", "SyntheticRequest"]

#: Stage kinds the replay harness understands.
STAGE_KINDS = ("network_rx", "cpu", "memory", "storage", "network_tx")

#: Header-message size used for the non-data direction.
HEADER_BYTES = 256


@dataclass(slots=True)
class Stage:
    """One subsystem activation of a synthetic request."""

    kind: str
    # Parameters by kind:
    #   network_rx / network_tx: size_bytes
    #   cpu: busy_seconds
    #   memory: op, size_bytes, address
    #   storage: op, size_bytes, lbn
    size_bytes: int = 0
    busy_seconds: float = 0.0
    op: str = READ
    address: int = 0
    lbn: int = 0

    def __post_init__(self) -> None:
        if self.kind not in STAGE_KINDS:
            raise ValueError(f"unknown stage kind {self.kind!r}")


@dataclass(slots=True)
class SyntheticRequest:
    """A generated request: arrival time + ordered stage activations."""

    arrival_time: float
    stages: list[Stage]
    label: str = ""  # generator's own profile tag (diagnostic only)

    @property
    def storage_stage(self) -> Optional[Stage]:
        for stage in self.stages:
            if stage.kind == "storage":
                return stage
        return None

    @property
    def memory_stage(self) -> Optional[Stage]:
        for stage in self.stages:
            if stage.kind == "memory":
                return stage
        return None

    @property
    def network_bytes(self) -> int:
        """The data payload: the larger of the rx/tx message sizes."""
        sizes = [
            s.size_bytes
            for s in self.stages
            if s.kind in ("network_rx", "network_tx")
        ]
        return max(sizes) if sizes else 0

    @property
    def cpu_busy_seconds(self) -> float:
        return sum(s.busy_seconds for s in self.stages if s.kind == "cpu")

    def stage_order(self) -> list[str]:
        """The stage-kind sequence (the request's structure)."""
        return [s.kind for s in self.stages]
