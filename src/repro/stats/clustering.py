"""Clustering: k-means and Gaussian-mixture EM with BIC selection.

Li's two-phase grid-workload pipeline starts with *Model-Based
Clustering* (Gaussian mixtures chosen by BIC) before distribution
fitting; Abrahao et al. cluster CPU-utilization patterns after PCA.
Both algorithms are implemented from scratch on numpy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

__all__ = ["GaussianMixture", "KMeans", "select_components_bic"]


class KMeans:
    """Lloyd's algorithm with k-means++ initialization."""

    def __init__(
        self,
        n_clusters: int,
        rng: np.random.Generator,
        n_init: int = 4,
        max_iter: int = 200,
        tol: float = 1e-7,
    ):
        if n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
        self.n_clusters = n_clusters
        self.rng = rng
        self.n_init = n_init
        self.max_iter = max_iter
        self.tol = tol
        self.centers_: Optional[np.ndarray] = None
        self.inertia_: float = float("inf")

    def _init_centers(self, X: np.ndarray) -> np.ndarray:
        n = X.shape[0]
        centers = [X[self.rng.integers(n)]]
        for _ in range(1, self.n_clusters):
            d2 = np.min(
                ((X[:, None, :] - np.array(centers)[None, :, :]) ** 2).sum(-1),
                axis=1,
            )
            total = d2.sum()
            if total <= 0:
                centers.append(X[self.rng.integers(n)])
                continue
            probs = d2 / total
            centers.append(X[self.rng.choice(n, p=probs)])
        return np.array(centers)

    def _run_once(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray, float]:
        centers = self._init_centers(X)
        labels = np.zeros(X.shape[0], dtype=int)
        for _ in range(self.max_iter):
            distances = ((X[:, None, :] - centers[None, :, :]) ** 2).sum(-1)
            labels = distances.argmin(axis=1)
            new_centers = centers.copy()
            for k in range(self.n_clusters):
                members = X[labels == k]
                if members.size:
                    new_centers[k] = members.mean(axis=0)
            shift = float(np.abs(new_centers - centers).max())
            centers = new_centers
            if shift < self.tol:
                break
        inertia = float(
            ((X - centers[labels]) ** 2).sum()
        )
        return centers, labels, inertia

    def fit(self, X: Sequence[Sequence[float]]) -> "KMeans":
        """Fit on (n_samples, n_features); keeps the best of n_init runs."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if X.shape[0] < self.n_clusters:
            raise ValueError(
                f"{X.shape[0]} samples < {self.n_clusters} clusters"
            )
        best = None
        for _ in range(self.n_init):
            centers, labels, inertia = self._run_once(X)
            if best is None or inertia < best[2]:
                best = (centers, labels, inertia)
        self.centers_, self.labels_, self.inertia_ = best
        return self

    def predict(self, X: Sequence[Sequence[float]]) -> np.ndarray:
        """Nearest-center labels for new data."""
        if self.centers_ is None:
            raise RuntimeError("KMeans is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        distances = ((X[:, None, :] - self.centers_[None, :, :]) ** 2).sum(-1)
        return distances.argmin(axis=1)


@dataclass
class GaussianMixture:
    """Diagonal-covariance Gaussian mixture fitted by EM."""

    n_components: int
    rng: np.random.Generator
    max_iter: int = 200
    tol: float = 1e-6
    reg_covar: float = 1e-9

    def __post_init__(self) -> None:
        if self.n_components < 1:
            raise ValueError(
                f"n_components must be >= 1, got {self.n_components}"
            )
        self.weights_: Optional[np.ndarray] = None
        self.means_: Optional[np.ndarray] = None
        self.variances_: Optional[np.ndarray] = None
        self.log_likelihood_: float = float("-inf")

    def _log_prob(self, X: np.ndarray) -> np.ndarray:
        """(n, k) log of weight_k * N(x | mu_k, var_k)."""
        n, d = X.shape
        out = np.empty((n, self.n_components))
        for k in range(self.n_components):
            var = self.variances_[k]
            log_norm = -0.5 * (d * np.log(2 * np.pi) + np.log(var).sum())
            quad = -0.5 * (((X - self.means_[k]) ** 2) / var).sum(axis=1)
            out[:, k] = np.log(self.weights_[k] + 1e-300) + log_norm + quad
        return out

    def fit(self, X: Sequence[Sequence[float]]) -> "GaussianMixture":
        """Run EM from a k-means++ style initialization."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        n, d = X.shape
        if n < self.n_components:
            raise ValueError(f"{n} samples < {self.n_components} components")
        km = KMeans(self.n_components, self.rng, n_init=1)
        km.fit(X)
        self.means_ = km.centers_.copy()
        self.weights_ = np.full(self.n_components, 1.0 / self.n_components)
        global_var = X.var(axis=0) + self.reg_covar
        self.variances_ = np.tile(global_var, (self.n_components, 1))

        previous = float("-inf")
        for _ in range(self.max_iter):
            log_prob = self._log_prob(X)
            log_total = np.logaddexp.reduce(log_prob, axis=1)
            log_likelihood = float(log_total.sum())
            resp = np.exp(log_prob - log_total[:, None])
            nk = resp.sum(axis=0) + 1e-12
            self.weights_ = nk / n
            self.means_ = (resp.T @ X) / nk[:, None]
            for k in range(self.n_components):
                diff2 = (X - self.means_[k]) ** 2
                self.variances_[k] = (
                    (resp[:, k][:, None] * diff2).sum(axis=0) / nk[k]
                    + self.reg_covar
                )
            if abs(log_likelihood - previous) < self.tol * max(1.0, abs(previous)):
                previous = log_likelihood
                break
            previous = log_likelihood
        self.log_likelihood_ = previous
        return self

    @property
    def n_parameters(self) -> int:
        """Free parameters: weights + means + diagonal variances."""
        d = self.means_.shape[1]
        return (self.n_components - 1) + 2 * self.n_components * d

    def bic(self, X: Sequence[Sequence[float]]) -> float:
        """Bayesian information criterion (lower is better)."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        log_prob = self._log_prob(X)
        log_likelihood = float(np.logaddexp.reduce(log_prob, axis=1).sum())
        return -2.0 * log_likelihood + self.n_parameters * np.log(X.shape[0])

    def predict(self, X: Sequence[Sequence[float]]) -> np.ndarray:
        """Most-responsible component per sample."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return self._log_prob(X).argmax(axis=1)

    def sample(self, n: int) -> np.ndarray:
        """Draw ``n`` synthetic samples from the fitted mixture."""
        if self.means_ is None:
            raise RuntimeError("mixture is not fitted")
        components = self.rng.choice(
            self.n_components, size=n, p=self.weights_ / self.weights_.sum()
        )
        out = np.empty((n, self.means_.shape[1]))
        for k in range(self.n_components):
            mask = components == k
            count = int(mask.sum())
            if count:
                out[mask] = self.rng.normal(
                    self.means_[k], np.sqrt(self.variances_[k]), (count, self.means_.shape[1])
                )
        return out


def select_components_bic(
    X: Sequence[Sequence[float]],
    rng: np.random.Generator,
    max_components: int = 8,
) -> GaussianMixture:
    """Model-based clustering: fit 1..max mixtures, return the BIC winner.

    This is the first phase of Li's two-phase workload-modeling
    pipeline.
    """
    X = np.atleast_2d(np.asarray(X, dtype=float))
    best: Optional[tuple[float, GaussianMixture]] = None
    for k in range(1, max_components + 1):
        if X.shape[0] < 2 * k:
            break
        gm = GaussianMixture(k, rng)
        gm.fit(X)
        score = gm.bic(X)
        if best is None or score < best[0]:
            best = (score, gm)
    if best is None:
        raise ValueError("not enough samples to fit any mixture")
    return best[1]
