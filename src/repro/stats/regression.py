"""Linear regression (ordinary least squares with ridge option).

§4 lists "regression analysis" among the feature-space reduction
techniques; Patwardhan's throughput model and the KCCA pipeline both
want a plain linear predictor as a baseline.  Implemented on numpy's
least-squares solver with an optional ridge penalty.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = ["LinearRegression"]


class LinearRegression:
    """OLS / ridge linear model: y = X @ coef + intercept."""

    def __init__(self, ridge: float = 0.0):
        if ridge < 0:
            raise ValueError(f"ridge penalty must be >= 0, got {ridge}")
        self.ridge = ridge
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0

    def fit(
        self, X: Sequence[Sequence[float]], y: Sequence[float]
    ) -> "LinearRegression":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] != y.size:
            raise ValueError(f"X/y mismatch: {X.shape[0]} vs {y.size}")
        if X.shape[0] < 2:
            raise ValueError("need >= 2 samples")
        x_mean = X.mean(axis=0)
        y_mean = y.mean()
        Xc = X - x_mean
        yc = y - y_mean
        if self.ridge > 0:
            n_features = X.shape[1]
            gram = Xc.T @ Xc + self.ridge * np.eye(n_features)
            self.coef_ = np.linalg.solve(gram, Xc.T @ yc)
        else:
            self.coef_, *_ = np.linalg.lstsq(Xc, yc, rcond=None)
        self.intercept_ = float(y_mean - x_mean @ self.coef_)
        return self

    def predict(self, X: Sequence[Sequence[float]]) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("model is not fitted; call fit() first")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return X @ self.coef_ + self.intercept_

    def r_squared(
        self, X: Sequence[Sequence[float]], y: Sequence[float]
    ) -> float:
        """Coefficient of determination on a dataset."""
        y = np.asarray(y, dtype=float).ravel()
        residual = y - self.predict(X)
        total = y - y.mean()
        denom = float(total @ total)
        if denom == 0:
            return 1.0 if float(residual @ residual) == 0 else 0.0
        return 1.0 - float(residual @ residual) / denom
