"""Mergeable one-pass accumulators for streaming workload analysis.

The scaling counterpart of the batch statistics in this package: every
class here folds records one at a time in O(1) (or bounded) state and
supports ``merge`` with an accumulator built over a *later* slice of
the same stream, so N shards can be folded in parallel and reduced to
one result without materializing the data.

Merge semantics fall into three groups:

* **order-free** — :class:`MomentsAccumulator` (Chan et al.'s parallel
  mean/variance update), :class:`CoMomentsAccumulator`,
  :class:`FixedHistogram`, :class:`CategoricalCounter`,
  :class:`WindowedCounter`, :class:`ExactQuantiles`.  Any merge order
  yields the same result up to floating-point associativity.
* **seam-aware** — :class:`InterarrivalStats` and :class:`SeekStats`
  depend on *consecutive-record* differences, so each accumulator
  remembers its first and last boundary elements and ``merge`` folds
  the one gap that spans the seam.  Merging is exact **only** when the
  right-hand accumulator covers the records immediately following the
  left's — which is precisely the order shard stitching guarantees.
* **approximate** — :class:`P2Quantile` (single-stream, no merge) and
  :class:`ReservoirQuantile` (bounded memory, deterministic seeded
  merge) trade exactness for O(1)/O(k) state; use
  :class:`ExactQuantiles` when the equality contract matters.

Floating-point tolerance contract: batch numpy reductions use pairwise
summation while these accumulators fold sequentially, so merged results
match the batch path to ~1e-12 relative error, not bit-for-bit.  The
repository-wide contract (``docs/streaming_analysis.md``) is relative
agreement within 1e-9.

All accumulators are plain-attribute objects, so they pickle across
process pools as-is.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Iterable, Optional, Sequence

import numpy as np

__all__ = [
    "CategoricalCounter",
    "CoMomentsAccumulator",
    "ExactQuantiles",
    "FixedHistogram",
    "InterarrivalStats",
    "MomentsAccumulator",
    "P2Quantile",
    "ReservoirQuantile",
    "SeekStats",
    "WindowedCounter",
]


class MomentsAccumulator:
    """Streaming count / mean / variance / extrema (Welford + Chan).

    ``add`` is Welford's online update; ``merge`` is Chan, Golub & LeVeque's
    parallel combination of two partial (mean, M2) pairs.
    """

    __slots__ = ("n", "mean", "m2", "min", "max")

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self.m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float) -> None:
        value = float(value)
        self.n += 1
        delta = value - self.mean
        self.mean += delta / self.n
        self.m2 += delta * (value - self.mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def add_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def merge(self, other: "MomentsAccumulator") -> "MomentsAccumulator":
        if other.n == 0:
            return self
        if self.n == 0:
            self.n = other.n
            self.mean = other.mean
            self.m2 = other.m2
            self.min = other.min
            self.max = other.max
            return self
        n = self.n + other.n
        delta = other.mean - self.mean
        self.m2 += other.m2 + delta * delta * (self.n * other.n / n)
        self.mean += delta * (other.n / n)
        self.n = n
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self

    @property
    def sum(self) -> float:
        return self.mean * self.n

    def variance(self, ddof: int = 0) -> float:
        """Variance with ``ddof`` delta degrees of freedom (numpy convention)."""
        if self.n - ddof <= 0:
            return 0.0
        return self.m2 / (self.n - ddof)

    def std(self, ddof: int = 0) -> float:
        return math.sqrt(self.variance(ddof))


class CoMomentsAccumulator:
    """Streaming Pearson correlation between two paired series.

    Tracks the co-moment ``C = sum((x - mean_x)(y - mean_y))`` alongside
    both marginal M2s; ``merge`` uses the pairwise co-moment update.
    ``correlation`` returns 0.0 when either marginal is constant,
    matching :func:`repro.stats.cross_correlation`.
    """

    __slots__ = ("n", "mean_x", "mean_y", "m2x", "m2y", "cxy")

    def __init__(self) -> None:
        self.n = 0
        self.mean_x = 0.0
        self.mean_y = 0.0
        self.m2x = 0.0
        self.m2y = 0.0
        self.cxy = 0.0

    def add(self, x: float, y: float) -> None:
        x, y = float(x), float(y)
        self.n += 1
        dx = x - self.mean_x
        dy = y - self.mean_y
        self.mean_x += dx / self.n
        self.mean_y += dy / self.n
        self.m2x += dx * (x - self.mean_x)
        self.m2y += dy * (y - self.mean_y)
        self.cxy += dx * (y - self.mean_y)

    def merge(self, other: "CoMomentsAccumulator") -> "CoMomentsAccumulator":
        if other.n == 0:
            return self
        if self.n == 0:
            for name in self.__slots__:
                setattr(self, name, getattr(other, name))
            return self
        n = self.n + other.n
        dx = other.mean_x - self.mean_x
        dy = other.mean_y - self.mean_y
        scale = self.n * other.n / n
        self.m2x += other.m2x + dx * dx * scale
        self.m2y += other.m2y + dy * dy * scale
        self.cxy += other.cxy + dx * dy * scale
        self.mean_x += dx * (other.n / n)
        self.mean_y += dy * (other.n / n)
        self.n = n
        return self

    @property
    def correlation(self) -> float:
        if self.n < 2 or self.m2x <= 0.0 or self.m2y <= 0.0:
            return 0.0
        return float(self.cxy / math.sqrt(self.m2x * self.m2y))


class FixedHistogram:
    """Counting histogram over caller-fixed bin edges.

    Fixing the edges up front is what makes the merge exact: two
    histograms over the same edges sum bin-wise.  Values outside the
    edge range land in ``underflow``/``overflow``; a value exactly on
    the last edge counts into the last bin (numpy's convention).
    """

    def __init__(self, edges: Sequence[float]):
        edges = [float(e) for e in edges]
        if len(edges) < 2 or any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError("need >= 2 strictly increasing edges")
        self.edges = edges
        self.counts = [0] * (len(edges) - 1)
        self.underflow = 0
        self.overflow = 0

    def add(self, value: float, weight: int = 1) -> None:
        value = float(value)
        if value < self.edges[0]:
            self.underflow += weight
            return
        if value > self.edges[-1]:
            self.overflow += weight
            return
        index = bisect_right(self.edges, value) - 1
        if index == len(self.counts):  # value == last edge
            index -= 1
        self.counts[index] += weight

    def merge(self, other: "FixedHistogram") -> "FixedHistogram":
        if self.edges != other.edges:
            raise ValueError("cannot merge histograms with different edges")
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.underflow += other.underflow
        self.overflow += other.overflow
        return self

    @property
    def total(self) -> int:
        return sum(self.counts) + self.underflow + self.overflow

    def quantile(self, q: float) -> float:
        """Approximate quantile by linear interpolation inside bins.

        Only in-range values participate; raises on an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        in_range = sum(self.counts)
        if in_range == 0:
            raise ValueError("empty histogram")
        target = q * in_range
        seen = 0
        for index, count in enumerate(self.counts):
            if seen + count >= target and count > 0:
                left, right = self.edges[index], self.edges[index + 1]
                inside = (target - seen) / count
                return left + (right - left) * inside
            seen += count
        return self.edges[-1]


class ExactQuantiles:
    """Exact quantiles from a kept value buffer (the unbounded baseline).

    Stores every value (one float each, *not* whole trace records), so
    quantiles and two-sample tests computed from it are exactly the
    batch numbers.  Merge is list concatenation — exact for any merge
    order since quantiles are order-free.  Swap in :class:`P2Quantile`
    or :class:`ReservoirQuantile` when O(n) floats is too much.
    """

    def __init__(self) -> None:
        self.values: list[float] = []

    def add(self, value: float) -> None:
        self.values.append(float(value))

    def add_many(self, values: Iterable[float]) -> None:
        self.values.extend(float(v) for v in values)

    def merge(self, other: "ExactQuantiles") -> "ExactQuantiles":
        self.values.extend(other.values)
        return self

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        """``np.mean`` over the kept buffer — bit-identical to batch."""
        if not self.values:
            raise ValueError("no values accumulated")
        return float(np.mean(self.values))

    def array(self) -> np.ndarray:
        return np.asarray(self.values, dtype=float)

    def quantile(self, q: float) -> float:
        if not self.values:
            raise ValueError("no values accumulated")
        return float(np.percentile(self.values, q * 100.0))


class P2Quantile:
    """Jain & Chlamtac's P² single-quantile estimator (O(1) state).

    Maintains five markers whose heights approximate the ``p``-quantile
    without storing observations.  Single-stream only: P² marker
    positions cannot be combined exactly, so ``merge`` raises — use
    :class:`ReservoirQuantile` or :class:`ExactQuantiles` for sharded
    folds.
    """

    def __init__(self, p: float):
        if not 0.0 < p < 1.0:
            raise ValueError(f"p must be in (0, 1), got {p}")
        self.p = p
        self.n = 0
        self._initial: list[float] = []
        self._heights: list[float] = []
        self._positions: list[float] = []
        self._desired: list[float] = []
        self._increments = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]

    def add(self, value: float) -> None:
        value = float(value)
        self.n += 1
        if not self._heights:
            self._initial.append(value)
            if len(self._initial) == 5:
                self._initial.sort()
                self._heights = list(self._initial)
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._desired = [
                    1.0,
                    1.0 + 2.0 * self.p,
                    1.0 + 4.0 * self.p,
                    3.0 + 2.0 * self.p,
                    5.0,
                ]
            return
        q, pos, des = self._heights, self._positions, self._desired
        if value < q[0]:
            q[0] = value
            cell = 0
        elif value >= q[4]:
            q[4] = value
            cell = 3
        else:
            cell = 0
            while value >= q[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            pos[i] += 1.0
        for i in range(5):
            des[i] += self._increments[i]
        for i in (1, 2, 3):
            d = des[i] - pos[i]
            if (d >= 1.0 and pos[i + 1] - pos[i] > 1.0) or (
                d <= -1.0 and pos[i - 1] - pos[i] < -1.0
            ):
                step = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if q[i - 1] < candidate < q[i + 1]:
                    q[i] = candidate
                else:
                    q[i] = self._linear(i, step)
                pos[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        q, pos = self._heights, self._positions
        return q[i] + step / (pos[i + 1] - pos[i - 1]) * (
            (pos[i] - pos[i - 1] + step)
            * (q[i + 1] - q[i])
            / (pos[i + 1] - pos[i])
            + (pos[i + 1] - pos[i] - step)
            * (q[i] - q[i - 1])
            / (pos[i] - pos[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        q, pos = self._heights, self._positions
        j = i + int(step)
        return q[i] + step * (q[j] - q[i]) / (pos[j] - pos[i])

    def merge(self, other: "P2Quantile") -> "P2Quantile":
        raise NotImplementedError(
            "P2Quantile is single-stream; use ReservoirQuantile or "
            "ExactQuantiles for mergeable quantile estimates"
        )

    @property
    def value(self) -> float:
        if self.n == 0:
            raise ValueError("no values accumulated")
        if not self._heights:  # fewer than 5 observations
            return float(np.percentile(self._initial, self.p * 100.0))
        return self._heights[2]


class ReservoirQuantile:
    """Bounded-memory quantiles from a deterministic uniform reservoir.

    Algorithm R with a seeded generator: the reservoir (and therefore
    every quantile) is a pure function of the seed and the exact add /
    merge sequence.  ``merge`` subsamples the two reservoirs in
    proportion to how many values each has seen, so merged estimates
    stay uniform over the union; results are approximate (rank error
    ~O(1/sqrt(capacity))), unlike :class:`ExactQuantiles`.
    """

    def __init__(self, capacity: int = 4096, seed: int = 0):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.seed = seed
        self.n_seen = 0
        self.values: list[float] = []
        self._rng = np.random.default_rng(seed)

    def add(self, value: float) -> None:
        value = float(value)
        self.n_seen += 1
        if len(self.values) < self.capacity:
            self.values.append(value)
            return
        slot = int(self._rng.integers(0, self.n_seen))
        if slot < self.capacity:
            self.values[slot] = value

    def merge(self, other: "ReservoirQuantile") -> "ReservoirQuantile":
        if other.n_seen == 0:
            return self
        if self.n_seen == 0:
            self.n_seen = other.n_seen
            self.values = list(other.values)
            return self
        mine = list(self.values)
        theirs = list(other.values)
        total = self.n_seen + other.n_seen
        merged: list[float] = []
        size = min(self.capacity, len(mine) + len(theirs))
        weight = self.n_seen / total
        for _ in range(size):
            take_mine = mine and (
                not theirs or self._rng.random() < weight
            )
            pool = mine if take_mine else theirs
            merged.append(pool.pop(int(self._rng.integers(0, len(pool)))))
        self.values = merged
        self.n_seen = total
        return self

    def quantile(self, q: float) -> float:
        if not self.values:
            raise ValueError("no values accumulated")
        return float(np.percentile(self.values, q * 100.0))


class CategoricalCounter:
    """Streaming category counts with batch-compatible modal selection."""

    def __init__(self) -> None:
        self.counts: dict[str, int] = {}

    def add(self, key: str, weight: int = 1) -> None:
        self.counts[key] = self.counts.get(key, 0) + weight

    def merge(self, other: "CategoricalCounter") -> "CategoricalCounter":
        for key, count in other.counts.items():
            self.counts[key] = self.counts.get(key, 0) + count
        return self

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def modal(self) -> str:
        """Most frequent key; ties break to the lexicographically
        smallest, matching ``np.unique`` + ``argmax`` on a value list."""
        if not self.counts:
            raise ValueError("no categories accumulated")
        best = max(self.counts.values())
        return min(k for k, v in self.counts.items() if v == best)

    def fraction(self, key: str) -> float:
        total = self.total
        return self.counts.get(key, 0) / total if total else 0.0


class WindowedCounter:
    """Weighted counts in fixed-width windows anchored at ``origin``.

    Window ``k`` covers ``[origin + k*w, origin + (k+1)*w)`` using the
    same truncation arithmetic as the batch helpers
    (:func:`repro.breadth.utilization_series`,
    :func:`repro.stats.arrivals_to_counts` with an explicit origin), so
    a merged fold bins every event into exactly the window the batch
    pass does.  ``series`` folds any trailing windows past the caller's
    end bound into the final window — the batch clamp.
    """

    def __init__(self, window: float, origin: float = 0.0):
        if window <= 0:
            raise ValueError(f"window must be > 0, got {window}")
        self.window = window
        self.origin = origin
        self.bins: dict[int, float] = {}
        self.n = 0
        self.t_min: Optional[float] = None
        self.t_max: Optional[float] = None
        self.end: Optional[float] = None

    def add(self, t: float, weight: float = 1.0, advance: float = 0.0) -> None:
        """Count ``weight`` into ``t``'s window.

        ``advance`` extends the tracked stream end past ``t`` (e.g. a
        CPU burst's busy time), mirroring the batch pass's
        ``end = max(t + busy)``.
        """
        if t < self.origin:
            raise ValueError(f"timestamp {t} precedes origin {self.origin}")
        index = int((t - self.origin) / self.window)
        self.bins[index] = self.bins.get(index, 0.0) + weight
        self.n += 1
        self.t_min = t if self.t_min is None else min(self.t_min, t)
        self.t_max = t if self.t_max is None else max(self.t_max, t)
        tip = t + advance
        self.end = tip if self.end is None else max(self.end, tip)

    def merge(self, other: "WindowedCounter") -> "WindowedCounter":
        if self.window != other.window or self.origin != other.origin:
            raise ValueError("cannot merge counters with different windows")
        for index, weight in other.bins.items():
            self.bins[index] = self.bins.get(index, 0.0) + weight
        self.n += other.n
        if other.t_min is not None:
            self.t_min = (
                other.t_min if self.t_min is None else min(self.t_min, other.t_min)
            )
            self.t_max = (
                other.t_max if self.t_max is None else max(self.t_max, other.t_max)
            )
            self.end = (
                other.end if self.end is None else max(self.end, other.end)
            )
        return self

    def series(self, end: Optional[float] = None) -> np.ndarray:
        """Materialize the window array from ``origin`` to ``end``.

        ``end`` defaults to the tracked stream end; events binned past
        the last window (e.g. one landing exactly on ``end``) fold into
        it, matching the batch clamp.
        """
        if self.n == 0:
            raise ValueError("no events accumulated")
        if end is None:
            end = self.end
        n_windows = max(
            1, int(math.ceil((end - self.origin) / self.window))
        )
        series = np.zeros(n_windows)
        for index, weight in self.bins.items():
            series[min(index, n_windows - 1)] += weight
        return series


class InterarrivalStats:
    """Gap statistics over an ordered timestamp stream, seam-mergeable.

    Feeds two moment sets: ``all_gaps`` (every consecutive difference,
    zeros included — the storage-profile convention) and
    ``positive_gaps`` (zeros dropped — the arrival-process convention).
    ``merge(other)`` requires ``other`` to cover the records immediately
    following this accumulator's; the single seam gap
    ``other.first - self.last`` is folded so the union is exactly the
    full-stream gap sequence.
    """

    def __init__(self) -> None:
        self.first: Optional[float] = None
        self.last: Optional[float] = None
        self.all_gaps = MomentsAccumulator()
        self.positive_gaps = MomentsAccumulator()

    def _fold(self, gap: float) -> None:
        self.all_gaps.add(gap)
        if gap > 0:
            self.positive_gaps.add(gap)

    def add(self, t: float) -> None:
        t = float(t)
        if self.first is None:
            self.first = t
        if self.last is not None:
            self._fold(t - self.last)
        self.last = t

    def merge(self, other: "InterarrivalStats") -> "InterarrivalStats":
        if other.first is None:
            return self
        if self.last is None:
            self.first = other.first
            self.last = other.last
            self.all_gaps = other.all_gaps
            self.positive_gaps = other.positive_gaps
            return self
        self._fold(other.first - self.last)
        self.all_gaps.merge(other.all_gaps)
        self.positive_gaps.merge(other.positive_gaps)
        self.last = other.last
        return self

    @property
    def n(self) -> int:
        """Timestamps seen (gaps observed + 1, or 0 when empty)."""
        return 0 if self.first is None else self.all_gaps.n + 1

    @property
    def span(self) -> float:
        """``last - first`` (0.0 when fewer than two timestamps)."""
        if self.first is None or self.last is None:
            return 0.0
        return self.last - self.first

    def cov(self) -> float:
        """CoV of positive gaps (sample std), the burstiness metric."""
        gaps = self.positive_gaps
        if gaps.n < 2:
            raise ValueError(f"need >= 2 positive gaps, got {gaps.n}")
        if gaps.mean <= 0:
            raise ValueError("mean interarrival must be positive")
        return gaps.std(ddof=1) / gaps.mean


class SeekStats:
    """Storage seek-distance statistics over an ordered I/O stream.

    Measures each gap from the *end* of the previous I/O (LBN plus its
    block-rounded length), exactly like
    :func:`repro.breadth.seek_distances`.  Integer sums keep the merged
    sequential fraction and mean absolute seek exact.  Like
    :class:`InterarrivalStats`, ``merge`` is seam-aware and assumes
    ``other`` continues this accumulator's stream.
    """

    BLOCK = 4096

    def __init__(self) -> None:
        self.n = 0
        self.first_lbn: Optional[int] = None
        self.first_end: Optional[int] = None
        self.last_end: Optional[int] = None
        self.n_gaps = 0
        self.n_sequential = 0
        self.sum_abs = 0

    def _fold(self, gap: int) -> None:
        self.n_gaps += 1
        if gap == 0:
            self.n_sequential += 1
        self.sum_abs += abs(gap)

    def add(self, lbn: int, size_bytes: int) -> None:
        if self.first_lbn is None:
            self.first_lbn = lbn
        if self.last_end is not None:
            self._fold(lbn - self.last_end)
        self.last_end = lbn + max(1, -(-size_bytes // self.BLOCK))
        if self.first_end is None:
            self.first_end = self.last_end
        self.n += 1

    def merge(self, other: "SeekStats") -> "SeekStats":
        if other.n == 0:
            return self
        if self.n == 0:
            for name in (
                "n", "first_lbn", "first_end", "last_end",
                "n_gaps", "n_sequential", "sum_abs",
            ):
                setattr(self, name, getattr(other, name))
            return self
        self._fold(other.first_lbn - self.last_end)
        self.n += other.n
        self.n_gaps += other.n_gaps
        self.n_sequential += other.n_sequential
        self.sum_abs += other.sum_abs
        self.last_end = other.last_end
        return self

    @property
    def sequential_fraction(self) -> float:
        return self.n_sequential / self.n_gaps if self.n_gaps else 0.0

    @property
    def mean_abs_seek(self) -> float:
        return self.sum_abs / self.n_gaps if self.n_gaps else 0.0
