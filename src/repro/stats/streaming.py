"""Mergeable one-pass accumulators for streaming workload analysis.

The scaling counterpart of the batch statistics in this package: every
class here folds records one at a time in O(1) (or bounded) state and
supports ``merge`` with an accumulator built over a *later* slice of
the same stream, so N shards can be folded in parallel and reduced to
one result without materializing the data.

Merge semantics fall into three groups:

* **order-free** — :class:`MomentsAccumulator` (Chan et al.'s parallel
  mean/variance update), :class:`CoMomentsAccumulator`,
  :class:`FixedHistogram`, :class:`CategoricalCounter`,
  :class:`WindowedCounter`, :class:`ExactQuantiles`.  Any merge order
  yields the same result up to floating-point associativity.
* **seam-aware** — :class:`InterarrivalStats` and :class:`SeekStats`
  depend on *consecutive-record* differences, so each accumulator
  remembers its first and last boundary elements and ``merge`` folds
  the one gap that spans the seam.  Merging is exact **only** when the
  right-hand accumulator covers the records immediately following the
  left's — which is precisely the order shard stitching guarantees.
* **approximate** — :class:`P2Quantile` (single-stream, no merge) and
  :class:`ReservoirQuantile` (bounded memory, deterministic seeded
  merge) trade exactness for O(1)/O(k) state; use
  :class:`ExactQuantiles` when the equality contract matters.

Floating-point tolerance contract: batch numpy reductions use pairwise
summation while these accumulators fold sequentially, so merged results
match the batch path to ~1e-12 relative error, not bit-for-bit.  The
repository-wide contract (``docs/streaming_analysis.md``) is relative
agreement within 1e-9.

All accumulators are plain-attribute objects, so they pickle across
process pools as-is.  Each one additionally carries a versioned
``state()`` / ``from_state()`` pair producing a JSON-able snapshot:
``from_state(a.state())`` is behaviorally identical to ``a`` (same
future adds, merges and results), which is what lets the incremental
re-analysis cache persist per-shard accumulator state beside a trace
store and fold it back in later sessions.  Snapshots follow the
repository-wide protocol in :mod:`repro.snapshot` and embed
:data:`~repro.snapshot.SNAPSHOT_VERSION`; a snapshot newer than the
running code raises ``ValueError`` so stale caches are skipped, not
misread.

The protocol pieces formerly defined here — ``STREAMING_STATE_VERSION``
and ``check_state`` — now live in :mod:`repro.snapshot` as
``SNAPSHOT_VERSION`` and ``check_state``.  The old names still import
from this module but emit ``DeprecationWarning`` and will be removed
one release after 1.0.
"""

from __future__ import annotations

import math
import warnings
from bisect import bisect_right
from typing import Any, Iterable, Mapping, Optional, Sequence

import numpy as np

from ..snapshot import SNAPSHOT_VERSION as _SNAPSHOT_VERSION
from ..snapshot import check_state as _check_state

__all__ = [
    "STREAMING_STATE_VERSION",
    "CategoricalCounter",
    "CoMomentsAccumulator",
    "ExactQuantiles",
    "FixedHistogram",
    "InterarrivalStats",
    "MomentsAccumulator",
    "P2Quantile",
    "ReservoirQuantile",
    "SeekStats",
    "SlidingWindowCounter",
    "WindowedCounter",
]

#: Deprecated names now living in :mod:`repro.snapshot`, served lazily
#: through module ``__getattr__`` so importing them warns exactly once
#: per site without penalizing the package import itself.
_MOVED_TO_SNAPSHOT = {
    "STREAMING_STATE_VERSION": _SNAPSHOT_VERSION,
    "check_state": _check_state,
}


def __getattr__(name: str) -> Any:
    if name in _MOVED_TO_SNAPSHOT:
        replacement = (
            "SNAPSHOT_VERSION" if name == "STREAMING_STATE_VERSION" else name
        )
        warnings.warn(
            f"repro.stats.streaming.{name} is deprecated; use "
            f"repro.snapshot.{replacement} instead. The alias will be "
            "removed one release after 1.0.",
            DeprecationWarning,
            stacklevel=2,
        )
        return _MOVED_TO_SNAPSHOT[name]
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class MomentsAccumulator:
    """Streaming count / mean / variance / extrema (Welford + Chan).

    ``add`` is Welford's online update; ``merge`` is Chan, Golub & LeVeque's
    parallel combination of two partial (mean, M2) pairs.
    """

    __slots__ = ("n", "mean", "m2", "min", "max")

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self.m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float) -> None:
        value = float(value)
        self.n += 1
        delta = value - self.mean
        self.mean += delta / self.n
        self.m2 += delta * (value - self.mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def add_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def update_batch(self, values) -> None:
        """Fold a whole array in one vectorized step.

        Computes the batch's (n, mean, M2) with numpy reductions and
        Chan-combines them into the running state — same contract as
        ``merge``: results match repeated ``add`` within the 1e-9
        relative tolerance, not bit-for-bit.  Extrema are exact and
        NaN-transparent (a NaN value poisons mean/M2 exactly as a
        sequential ``add`` would, but never moves min/max).
        """
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            return
        n = int(values.size)
        mean = float(values.mean())
        m2 = float(((values - mean) ** 2).sum())
        if self.n == 0:
            self.n, self.mean, self.m2 = n, mean, m2
        else:
            total = self.n + n
            delta = mean - self.mean
            self.m2 += m2 + delta * delta * (self.n * n / total)
            self.mean += delta * (n / total)
            self.n = total
        finite = values[~np.isnan(values)]
        if finite.size:
            self.min = min(self.min, float(finite.min()))
            self.max = max(self.max, float(finite.max()))

    def merge(self, other: "MomentsAccumulator") -> "MomentsAccumulator":
        if other.n == 0:
            return self
        if self.n == 0:
            self.n = other.n
            self.mean = other.mean
            self.m2 = other.m2
            self.min = other.min
            self.max = other.max
            return self
        n = self.n + other.n
        delta = other.mean - self.mean
        self.m2 += other.m2 + delta * delta * (self.n * other.n / n)
        self.mean += delta * (other.n / n)
        self.n = n
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self

    def state(self) -> dict[str, Any]:
        return {
            "kind": "moments",
            "version": _SNAPSHOT_VERSION,
            "n": self.n,
            "mean": self.mean,
            "m2": self.m2,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "MomentsAccumulator":
        _check_state(state, "moments")
        acc = cls()
        acc.n = int(state["n"])
        acc.mean = float(state["mean"])
        acc.m2 = float(state["m2"])
        acc.min = float(state["min"])
        acc.max = float(state["max"])
        return acc

    @property
    def sum(self) -> float:
        return self.mean * self.n

    def variance(self, ddof: int = 0) -> float:
        """Variance with ``ddof`` delta degrees of freedom (numpy convention)."""
        if self.n - ddof <= 0:
            return 0.0
        return self.m2 / (self.n - ddof)

    def std(self, ddof: int = 0) -> float:
        return math.sqrt(self.variance(ddof))


class CoMomentsAccumulator:
    """Streaming Pearson correlation between two paired series.

    Tracks the co-moment ``C = sum((x - mean_x)(y - mean_y))`` alongside
    both marginal M2s; ``merge`` uses the pairwise co-moment update.
    ``correlation`` returns 0.0 when either marginal is constant,
    matching :func:`repro.stats.cross_correlation`.
    """

    __slots__ = ("n", "mean_x", "mean_y", "m2x", "m2y", "cxy")

    def __init__(self) -> None:
        self.n = 0
        self.mean_x = 0.0
        self.mean_y = 0.0
        self.m2x = 0.0
        self.m2y = 0.0
        self.cxy = 0.0

    def add(self, x: float, y: float) -> None:
        x, y = float(x), float(y)
        self.n += 1
        dx = x - self.mean_x
        dy = y - self.mean_y
        self.mean_x += dx / self.n
        self.mean_y += dy / self.n
        self.m2x += dx * (x - self.mean_x)
        self.m2y += dy * (y - self.mean_y)
        self.cxy += dx * (y - self.mean_y)

    def update_batch(self, xs, ys) -> None:
        """Fold two paired arrays in one vectorized step (Chan combine)."""
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        if xs.size != ys.size:
            raise ValueError("paired batches must have equal length")
        if xs.size == 0:
            return
        n = int(xs.size)
        mean_x = float(xs.mean())
        mean_y = float(ys.mean())
        dx = xs - mean_x
        dy = ys - mean_y
        m2x = float((dx * dx).sum())
        m2y = float((dy * dy).sum())
        cxy = float((dx * dy).sum())
        if self.n == 0:
            self.n = n
            self.mean_x, self.mean_y = mean_x, mean_y
            self.m2x, self.m2y, self.cxy = m2x, m2y, cxy
            return
        total = self.n + n
        ddx = mean_x - self.mean_x
        ddy = mean_y - self.mean_y
        scale = self.n * n / total
        self.m2x += m2x + ddx * ddx * scale
        self.m2y += m2y + ddy * ddy * scale
        self.cxy += cxy + ddx * ddy * scale
        self.mean_x += ddx * (n / total)
        self.mean_y += ddy * (n / total)
        self.n = total

    def merge(self, other: "CoMomentsAccumulator") -> "CoMomentsAccumulator":
        if other.n == 0:
            return self
        if self.n == 0:
            for name in self.__slots__:
                setattr(self, name, getattr(other, name))
            return self
        n = self.n + other.n
        dx = other.mean_x - self.mean_x
        dy = other.mean_y - self.mean_y
        scale = self.n * other.n / n
        self.m2x += other.m2x + dx * dx * scale
        self.m2y += other.m2y + dy * dy * scale
        self.cxy += other.cxy + dx * dy * scale
        self.mean_x += dx * (other.n / n)
        self.mean_y += dy * (other.n / n)
        self.n = n
        return self

    def state(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "kind": "co-moments",
            "version": _SNAPSHOT_VERSION,
        }
        for name in self.__slots__:
            data[name] = getattr(self, name)
        return data

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "CoMomentsAccumulator":
        _check_state(state, "co-moments")
        acc = cls()
        acc.n = int(state["n"])
        for name in ("mean_x", "mean_y", "m2x", "m2y", "cxy"):
            setattr(acc, name, float(state[name]))
        return acc

    @property
    def correlation(self) -> float:
        if self.n < 2 or self.m2x <= 0.0 or self.m2y <= 0.0:
            return 0.0
        return float(self.cxy / math.sqrt(self.m2x * self.m2y))


class FixedHistogram:
    """Counting histogram over caller-fixed bin edges.

    Fixing the edges up front is what makes the merge exact: two
    histograms over the same edges sum bin-wise.  Values outside the
    edge range land in ``underflow``/``overflow``; a value exactly on
    the last edge counts into the last bin (numpy's convention).
    """

    def __init__(self, edges: Sequence[float]):
        edges = [float(e) for e in edges]
        if len(edges) < 2 or any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError("need >= 2 strictly increasing edges")
        self.edges = edges
        self.counts = [0] * (len(edges) - 1)
        self.underflow = 0
        self.overflow = 0

    def add(self, value: float, weight: int = 1) -> None:
        value = float(value)
        if value < self.edges[0]:
            self.underflow += weight
            return
        if value > self.edges[-1]:
            self.overflow += weight
            return
        index = bisect_right(self.edges, value) - 1
        if index == len(self.counts):  # value == last edge
            index -= 1
        self.counts[index] += weight

    def update_batch(self, values, weight: int = 1) -> None:
        """Bin a whole array at once — exactly ``add`` per value.

        ``np.searchsorted(side="right")`` places every value (including
        NaN, which sorts past the last edge and clamps into the last
        bin) in the same bin ``bisect_right`` does, and counts are
        integers, so this fold is bit-identical to the sequential path.
        """
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            return
        edges = np.asarray(self.edges)
        under = values < edges[0]
        over = values > edges[-1]
        self.underflow += int(under.sum()) * weight
        self.overflow += int(over.sum()) * weight
        in_range = values[~(under | over)]
        if in_range.size == 0:
            return
        index = np.searchsorted(edges, in_range, side="right") - 1
        index = np.minimum(index, len(self.counts) - 1)
        for i, count in enumerate(
            np.bincount(index, minlength=len(self.counts)).tolist()
        ):
            if count:
                self.counts[i] += count * weight

    def merge(self, other: "FixedHistogram") -> "FixedHistogram":
        if self.edges != other.edges:
            raise ValueError("cannot merge histograms with different edges")
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.underflow += other.underflow
        self.overflow += other.overflow
        return self

    def state(self) -> dict[str, Any]:
        return {
            "kind": "fixed-histogram",
            "version": _SNAPSHOT_VERSION,
            "edges": list(self.edges),
            "counts": list(self.counts),
            "underflow": self.underflow,
            "overflow": self.overflow,
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "FixedHistogram":
        _check_state(state, "fixed-histogram")
        hist = cls(state["edges"])
        hist.counts = [int(c) for c in state["counts"]]
        if len(hist.counts) != len(hist.edges) - 1:
            raise ValueError("histogram state counts do not match edges")
        hist.underflow = int(state["underflow"])
        hist.overflow = int(state["overflow"])
        return hist

    @property
    def total(self) -> int:
        return sum(self.counts) + self.underflow + self.overflow

    def quantile(self, q: float) -> float:
        """Approximate quantile by linear interpolation inside bins.

        Only in-range values participate; raises on an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        in_range = sum(self.counts)
        if in_range == 0:
            raise ValueError("empty histogram")
        target = q * in_range
        seen = 0
        for index, count in enumerate(self.counts):
            if seen + count >= target and count > 0:
                left, right = self.edges[index], self.edges[index + 1]
                inside = (target - seen) / count
                return left + (right - left) * inside
            seen += count
        return self.edges[-1]


class ExactQuantiles:
    """Exact quantiles from a kept value buffer (the unbounded baseline).

    Stores every value (one float each, *not* whole trace records), so
    quantiles and two-sample tests computed from it are exactly the
    batch numbers.  Merge is list concatenation — exact for any merge
    order since quantiles are order-free.  Swap in :class:`P2Quantile`
    or :class:`ReservoirQuantile` when O(n) floats is too much.

    ``max_values`` bounds the buffer for long incremental runs: once
    more than ``max_values`` values have been seen, the accumulator
    transparently degrades to a :class:`ReservoirQuantile` of that
    capacity (warning once per accumulator).  After degradation
    quantiles and :meth:`array` are approximate (uniform sample of the
    stream) while ``n`` and ``mean`` stay exact — the mean is tracked
    through a :class:`MomentsAccumulator` from the degradation point
    on.  The default ``max_values=None`` keeps the historical unbounded
    exact behavior.
    """

    def __init__(self, max_values: Optional[int] = None) -> None:
        if max_values is not None and max_values < 1:
            raise ValueError(f"max_values must be >= 1, got {max_values}")
        self.max_values = max_values
        self.values: list[float] = []
        self._reservoir: Optional["ReservoirQuantile"] = None
        self._moments: Optional[MomentsAccumulator] = None

    @property
    def degraded(self) -> bool:
        """Whether the exact buffer has been replaced by a reservoir."""
        return self._reservoir is not None

    def _degrade(self) -> None:
        warnings.warn(
            f"ExactQuantiles exceeded max_values={self.max_values}; "
            "degrading to a bounded ReservoirQuantile — quantiles become "
            "approximate (means and counts stay exact)",
            RuntimeWarning,
            stacklevel=3,
        )
        reservoir = ReservoirQuantile(capacity=self.max_values, seed=0)
        moments = MomentsAccumulator()
        for value in self.values:
            reservoir.add(value)
            moments.add(value)
        self._reservoir = reservoir
        self._moments = moments
        self.values = []

    def add(self, value: float) -> None:
        if self._reservoir is not None:
            value = float(value)
            self._reservoir.add(value)
            self._moments.add(value)
            return
        self.values.append(float(value))
        if self.max_values is not None and len(self.values) > self.max_values:
            self._degrade()

    def add_many(self, values: Iterable[float]) -> None:
        if self.max_values is None and self._reservoir is None:
            self.values.extend(float(v) for v in values)
            return
        for value in values:
            self.add(value)

    def update_batch(self, values) -> None:
        """Fold an array of values — bit-identical to repeated ``add``.

        Unbounded accumulators extend the buffer in order (``tolist``
        yields the same Python floats ``float(v)`` would); bounded or
        degraded ones fall back to the sequential path so the reservoir
        RNG consumes the exact same draw sequence.
        """
        values = np.asarray(values, dtype=float)
        if self.max_values is None and self._reservoir is None:
            self.values.extend(values.tolist())
            return
        for value in values.tolist():
            self.add(value)

    def merge(self, other: "ExactQuantiles") -> "ExactQuantiles":
        if other._reservoir is not None:
            # Exactness is already lost on the other side; degrade this
            # side (if it has a bound) and combine the reservoirs.
            if self._reservoir is None:
                if self.max_values is None:
                    self.max_values = other.max_values
                self._degrade()
            self._reservoir.merge(other._reservoir)
            self._moments.merge(other._moments)
            return self
        if self._reservoir is not None:
            for value in other.values:
                self._reservoir.add(value)
                self._moments.add(value)
            return self
        self.values.extend(other.values)
        if self.max_values is not None and len(self.values) > self.max_values:
            self._degrade()
        return self

    @property
    def n(self) -> int:
        if self._moments is not None:
            return self._moments.n
        return len(self.values)

    @property
    def mean(self) -> float:
        """``np.mean`` over the kept buffer — bit-identical to batch.

        After degradation: the exact streaming mean of every value seen
        (Welford, within the 1e-9 relative contract of batch numpy).
        """
        if self._moments is not None:
            if self._moments.n == 0:
                raise ValueError("no values accumulated")
            return self._moments.mean
        if not self.values:
            raise ValueError("no values accumulated")
        return float(np.mean(self.values))

    def array(self) -> np.ndarray:
        if self._reservoir is not None:
            return np.asarray(self._reservoir.values, dtype=float)
        return np.asarray(self.values, dtype=float)

    def quantile(self, q: float) -> float:
        if self._reservoir is not None:
            return self._reservoir.quantile(q)
        if not self.values:
            raise ValueError("no values accumulated")
        return float(np.percentile(self.values, q * 100.0))

    def state(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "kind": "exact-quantiles",
            "version": _SNAPSHOT_VERSION,
            "max_values": self.max_values,
        }
        if self._reservoir is not None:
            data["reservoir"] = self._reservoir.state()
            data["moments"] = self._moments.state()
        else:
            data["values"] = list(self.values)
        return data

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "ExactQuantiles":
        _check_state(state, "exact-quantiles")
        max_values = state.get("max_values")
        acc = cls(max_values=None if max_values is None else int(max_values))
        if "reservoir" in state:
            acc._reservoir = ReservoirQuantile.from_state(state["reservoir"])
            acc._moments = MomentsAccumulator.from_state(state["moments"])
        else:
            acc.values = [float(v) for v in state["values"]]
        return acc


class P2Quantile:
    """Jain & Chlamtac's P² single-quantile estimator (O(1) state).

    Maintains five markers whose heights approximate the ``p``-quantile
    without storing observations.  Single-stream only: P² marker
    positions cannot be combined exactly, so ``merge`` raises — use
    :class:`ReservoirQuantile` or :class:`ExactQuantiles` for sharded
    folds.
    """

    def __init__(self, p: float):
        if not 0.0 < p < 1.0:
            raise ValueError(f"p must be in (0, 1), got {p}")
        self.p = p
        self.n = 0
        self._initial: list[float] = []
        self._heights: list[float] = []
        self._positions: list[float] = []
        self._desired: list[float] = []
        self._increments = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]

    def add(self, value: float) -> None:
        value = float(value)
        self.n += 1
        if not self._heights:
            self._initial.append(value)
            if len(self._initial) == 5:
                self._initial.sort()
                self._heights = list(self._initial)
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._desired = [
                    1.0,
                    1.0 + 2.0 * self.p,
                    1.0 + 4.0 * self.p,
                    3.0 + 2.0 * self.p,
                    5.0,
                ]
            return
        q, pos, des = self._heights, self._positions, self._desired
        if value < q[0]:
            q[0] = value
            cell = 0
        elif value >= q[4]:
            q[4] = value
            cell = 3
        else:
            cell = 0
            while value >= q[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            pos[i] += 1.0
        for i in range(5):
            des[i] += self._increments[i]
        for i in (1, 2, 3):
            d = des[i] - pos[i]
            if (d >= 1.0 and pos[i + 1] - pos[i] > 1.0) or (
                d <= -1.0 and pos[i - 1] - pos[i] < -1.0
            ):
                step = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if q[i - 1] < candidate < q[i + 1]:
                    q[i] = candidate
                else:
                    q[i] = self._linear(i, step)
                pos[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        q, pos = self._heights, self._positions
        return q[i] + step / (pos[i + 1] - pos[i - 1]) * (
            (pos[i] - pos[i - 1] + step)
            * (q[i + 1] - q[i])
            / (pos[i + 1] - pos[i])
            + (pos[i + 1] - pos[i] - step)
            * (q[i] - q[i - 1])
            / (pos[i] - pos[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        q, pos = self._heights, self._positions
        j = i + int(step)
        return q[i] + step * (q[j] - q[i]) / (pos[j] - pos[i])

    def update_batch(self, values) -> None:
        """Fold an array of values.

        P² marker updates are inherently sequential (each observation
        moves the markers the next one lands between), so this is the
        per-value loop — provided for interface parity, bit-identical
        to repeated ``add``.
        """
        for value in np.asarray(values, dtype=float).tolist():
            self.add(value)

    def merge(self, other: "P2Quantile") -> "P2Quantile":
        raise NotImplementedError(
            "P2Quantile is single-stream; use ReservoirQuantile or "
            "ExactQuantiles for mergeable quantile estimates"
        )

    @property
    def value(self) -> float:
        if self.n == 0:
            raise ValueError("no values accumulated")
        if not self._heights:  # fewer than 5 observations
            return float(np.percentile(self._initial, self.p * 100.0))
        return self._heights[2]

    def state(self) -> dict[str, Any]:
        return {
            "kind": "p2-quantile",
            "version": _SNAPSHOT_VERSION,
            "p": self.p,
            "n": self.n,
            "initial": list(self._initial),
            "heights": list(self._heights),
            "positions": list(self._positions),
            "desired": list(self._desired),
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "P2Quantile":
        _check_state(state, "p2-quantile")
        acc = cls(float(state["p"]))
        acc.n = int(state["n"])
        acc._initial = [float(v) for v in state["initial"]]
        acc._heights = [float(v) for v in state["heights"]]
        acc._positions = [float(v) for v in state["positions"]]
        acc._desired = [float(v) for v in state["desired"]]
        return acc


class ReservoirQuantile:
    """Bounded-memory quantiles from a deterministic uniform reservoir.

    Algorithm R with a seeded generator: the reservoir (and therefore
    every quantile) is a pure function of the seed and the exact add /
    merge sequence.  ``merge`` subsamples the two reservoirs in
    proportion to how many values each has seen, so merged estimates
    stay uniform over the union; results are approximate (rank error
    ~O(1/sqrt(capacity))), unlike :class:`ExactQuantiles`.
    """

    def __init__(self, capacity: int = 4096, seed: int = 0):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.seed = seed
        self.n_seen = 0
        self.values: list[float] = []
        self._rng = np.random.default_rng(seed)

    def add(self, value: float) -> None:
        value = float(value)
        self.n_seen += 1
        if len(self.values) < self.capacity:
            self.values.append(value)
            return
        slot = int(self._rng.integers(0, self.n_seen))
        if slot < self.capacity:
            self.values[slot] = value

    def update_batch(self, values) -> None:
        """Fold an array of values — bit-identical to repeated ``add``.

        The reservoir is a pure function of the seeded RNG's draw
        sequence, so batching must not reorder or batch the draws;
        this is the sequential loop by design.
        """
        for value in np.asarray(values, dtype=float).tolist():
            self.add(value)

    def merge(self, other: "ReservoirQuantile") -> "ReservoirQuantile":
        if other.n_seen == 0:
            return self
        if self.n_seen == 0:
            self.n_seen = other.n_seen
            self.values = list(other.values)
            return self
        mine = list(self.values)
        theirs = list(other.values)
        total = self.n_seen + other.n_seen
        merged: list[float] = []
        size = min(self.capacity, len(mine) + len(theirs))
        weight = self.n_seen / total
        for _ in range(size):
            take_mine = mine and (
                not theirs or self._rng.random() < weight
            )
            pool = mine if take_mine else theirs
            merged.append(pool.pop(int(self._rng.integers(0, len(pool)))))
        self.values = merged
        self.n_seen = total
        return self

    def quantile(self, q: float) -> float:
        if not self.values:
            raise ValueError("no values accumulated")
        return float(np.percentile(self.values, q * 100.0))

    def state(self) -> dict[str, Any]:
        # The bit-generator state is a JSON-able dict of Python ints, so
        # a restored reservoir continues the exact same random sequence
        # — snapshot/restore is invisible to future adds and merges.
        return {
            "kind": "reservoir-quantile",
            "version": _SNAPSHOT_VERSION,
            "capacity": self.capacity,
            "seed": self.seed,
            "n_seen": self.n_seen,
            "values": list(self.values),
            "rng": self._rng.bit_generator.state,
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "ReservoirQuantile":
        _check_state(state, "reservoir-quantile")
        acc = cls(capacity=int(state["capacity"]), seed=int(state["seed"]))
        acc.n_seen = int(state["n_seen"])
        acc.values = [float(v) for v in state["values"]]
        acc._rng.bit_generator.state = state["rng"]
        return acc


class CategoricalCounter:
    """Streaming category counts with batch-compatible modal selection."""

    def __init__(self) -> None:
        self.counts: dict[str, int] = {}

    def add(self, key: str, weight: int = 1) -> None:
        self.counts[key] = self.counts.get(key, 0) + weight

    def update_batch(self, keys, weight: int = 1) -> None:
        """Fold a batch of keys — exact (integer counts).

        Accepts either a plain sequence of strings or a
        dictionary-encoded column (anything with ``codes``/``values``
        attributes, e.g. :class:`repro.tracing.columnar.StringColumn`),
        which folds via one ``bincount`` instead of a Python loop.
        """
        codes = getattr(keys, "codes", None)
        table = getattr(keys, "values", None)
        if codes is not None and table is not None:
            counts = np.bincount(codes, minlength=len(table))
            for key, count in zip(table, counts.tolist()):
                if count:
                    self.add(key, count * weight)
            return
        for key in keys:
            self.add(key, weight)

    def merge(self, other: "CategoricalCounter") -> "CategoricalCounter":
        for key, count in other.counts.items():
            self.counts[key] = self.counts.get(key, 0) + count
        return self

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def modal(self) -> str:
        """Most frequent key; ties break to the lexicographically
        smallest, matching ``np.unique`` + ``argmax`` on a value list."""
        if not self.counts:
            raise ValueError("no categories accumulated")
        best = max(self.counts.values())
        return min(k for k, v in self.counts.items() if v == best)

    def fraction(self, key: str) -> float:
        total = self.total
        return self.counts.get(key, 0) / total if total else 0.0

    def state(self) -> dict[str, Any]:
        return {
            "kind": "categorical-counter",
            "version": _SNAPSHOT_VERSION,
            "counts": dict(self.counts),
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "CategoricalCounter":
        _check_state(state, "categorical-counter")
        acc = cls()
        acc.counts = {str(k): int(v) for k, v in state["counts"].items()}
        return acc


class WindowedCounter:
    """Weighted counts in fixed-width windows anchored at ``origin``.

    Window ``k`` covers ``[origin + k*w, origin + (k+1)*w)`` using the
    same truncation arithmetic as the batch helpers
    (:func:`repro.breadth.utilization_series`,
    :func:`repro.stats.arrivals_to_counts` with an explicit origin), so
    a merged fold bins every event into exactly the window the batch
    pass does.  ``series`` folds any trailing windows past the caller's
    end bound into the final window — the batch clamp.
    """

    def __init__(self, window: float, origin: float = 0.0):
        if window <= 0:
            raise ValueError(f"window must be > 0, got {window}")
        self.window = window
        self.origin = origin
        self.bins: dict[int, float] = {}
        self.n = 0
        self.t_min: Optional[float] = None
        self.t_max: Optional[float] = None
        self.end: Optional[float] = None

    def add(self, t: float, weight: float = 1.0, advance: float = 0.0) -> None:
        """Count ``weight`` into ``t``'s window.

        ``advance`` extends the tracked stream end past ``t`` (e.g. a
        CPU burst's busy time), mirroring the batch pass's
        ``end = max(t + busy)``.
        """
        if t < self.origin:
            raise ValueError(f"timestamp {t} precedes origin {self.origin}")
        index = int((t - self.origin) / self.window)
        self.bins[index] = self.bins.get(index, 0.0) + weight
        self.n += 1
        self.t_min = t if self.t_min is None else min(self.t_min, t)
        self.t_max = t if self.t_max is None else max(self.t_max, t)
        tip = t + advance
        self.end = tip if self.end is None else max(self.end, tip)

    #: Widest dense scratch array ``update_batch`` will allocate; batches
    #: spanning more window indices fall back to the sequential loop.
    _MAX_DENSE_SPAN = 1 << 22

    def update_batch(self, times, weights=None, advance=None) -> None:
        """Fold arrays of timestamps (and weights) — bit-identical.

        Batch indices are computed with the same truncation arithmetic
        as ``add``, and weights are folded with ``np.add.at``, which
        applies one unbuffered scalar add per event in input order —
        the exact floating-point sequence the per-record loop performs,
        so bins match the sequential path bit for bit.

        ``weights``/``advance`` may be scalars or arrays matching
        ``times``.  Raises (before mutating) if any timestamp precedes
        ``origin``.
        """
        times = np.asarray(times, dtype=float)
        if times.size == 0:
            return
        t_min = float(times.min())
        if t_min < self.origin:
            raise ValueError(
                f"timestamp {t_min} precedes origin {self.origin}"
            )
        weight_arr = np.broadcast_to(
            np.asarray(1.0 if weights is None else weights, dtype=float),
            times.shape,
        )
        advance_arr = np.broadcast_to(
            np.asarray(0.0 if advance is None else advance, dtype=float),
            times.shape,
        )
        index = ((times - self.origin) / self.window).astype(np.int64)
        lo = int(index.min())
        span = int(index.max()) - lo + 1
        if span > self._MAX_DENSE_SPAN:
            for t, w, a in zip(
                times.tolist(), weight_arr.tolist(), advance_arr.tolist()
            ):
                self.add(t, weight=w, advance=a)
            return
        # Seed the scratch slots that will receive adds with their
        # current bin values: np.add.at then performs the identical
        # scalar-add sequence the per-record loop would.
        scratch = np.zeros(span)
        touched = np.unique(index).tolist()
        for k in touched:
            if k in self.bins:
                scratch[k - lo] = self.bins[k]
        np.add.at(scratch, index - lo, weight_arr)
        for k in touched:
            self.bins[k] = float(scratch[k - lo])
        self.n += int(times.size)
        t_max = float(times.max())
        self.t_min = t_min if self.t_min is None else min(self.t_min, t_min)
        self.t_max = t_max if self.t_max is None else max(self.t_max, t_max)
        tip = float((times + advance_arr).max())
        self.end = tip if self.end is None else max(self.end, tip)

    def merge(self, other: "WindowedCounter") -> "WindowedCounter":
        if self.window != other.window or self.origin != other.origin:
            raise ValueError("cannot merge counters with different windows")
        for index, weight in other.bins.items():
            self.bins[index] = self.bins.get(index, 0.0) + weight
        self.n += other.n
        if other.t_min is not None:
            self.t_min = (
                other.t_min if self.t_min is None else min(self.t_min, other.t_min)
            )
            self.t_max = (
                other.t_max if self.t_max is None else max(self.t_max, other.t_max)
            )
            self.end = (
                other.end if self.end is None else max(self.end, other.end)
            )
        return self

    def series(self, end: Optional[float] = None) -> np.ndarray:
        """Materialize the window array from ``origin`` to ``end``.

        ``end`` defaults to the tracked stream end; events binned past
        the last window (e.g. one landing exactly on ``end``) fold into
        it, matching the batch clamp.
        """
        if self.n == 0:
            raise ValueError("no events accumulated")
        if end is None:
            end = self.end
        n_windows = max(
            1, int(math.ceil((end - self.origin) / self.window))
        )
        series = np.zeros(n_windows)
        for index, weight in self.bins.items():
            series[min(index, n_windows - 1)] += weight
        return series

    def state(self) -> dict[str, Any]:
        # JSON object keys must be strings; window indices round-trip
        # through str(int).
        return {
            "kind": "windowed-counter",
            "version": _SNAPSHOT_VERSION,
            "window": self.window,
            "origin": self.origin,
            "bins": {str(k): v for k, v in self.bins.items()},
            "n": self.n,
            "t_min": self.t_min,
            "t_max": self.t_max,
            "end": self.end,
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "WindowedCounter":
        _check_state(state, "windowed-counter")
        acc = cls(window=float(state["window"]), origin=float(state["origin"]))
        acc.bins = {int(k): float(v) for k, v in state["bins"].items()}
        acc.n = int(state["n"])
        for name in ("t_min", "t_max", "end"):
            value = state[name]
            setattr(acc, name, None if value is None else float(value))
        return acc


class SlidingWindowCounter:
    """Recent-horizon event counts: fixed-width windows with eviction.

    The live-drift counterpart of :class:`WindowedCounter`: same window
    arithmetic (window ``k`` covers ``[origin + k*w, origin + (k+1)*w)``),
    but bounded — only the ``keep`` most recent windows are retained,
    so a long-running daemon's rate window stays O(keep) no matter how
    much traffic flows through it.  Adding an event in a new window
    evicts windows older than ``keep`` behind the newest;
    :meth:`evict_before` drops windows explicitly.  Evicted totals are
    remembered only as scalars (``n_evicted`` / ``weight_evicted``),
    which is why this is a separate class: :class:`WindowedCounter`
    stays append-only and merge-exact for the batch-equality path,
    while this one trades history for a bounded footprint.  There is
    deliberately no ``merge`` — a sliding horizon has no seam-exact
    combination.
    """

    def __init__(self, window: float, keep: int, origin: float = 0.0):
        if window <= 0:
            raise ValueError(f"window must be > 0, got {window}")
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.window = float(window)
        self.keep = int(keep)
        self.origin = float(origin)
        self.bins: dict[int, float] = {}
        self.counts: dict[int, int] = {}
        self.latest: Optional[int] = None
        #: Window of the first event ever seen — the horizon cannot
        #: extend before it, so a counter fed from mid-timeline (a
        #: daemon attaching to a long-lived store) reports rates over
        #: windows it actually observed, not over empty prehistory.
        self.first_seen: Optional[int] = None
        self.n_evicted = 0
        self.weight_evicted = 0.0

    def _index(self, t: float) -> int:
        return int((t - self.origin) // self.window)

    def _evict_below(self, floor_index: int) -> None:
        for k in [k for k in self.bins if k < floor_index]:
            self.n_evicted += self.counts.pop(k)
            self.weight_evicted += self.bins.pop(k)

    def add(self, t: float, weight: float = 1.0) -> None:
        t = float(t)
        if t < self.origin:
            raise ValueError(f"timestamp {t} precedes origin {self.origin}")
        k = self._index(t)
        if self.latest is not None and k < self.latest - self.keep + 1:
            # Late event older than the kept horizon: count it straight
            # into the evicted tally rather than resurrecting its window.
            self.n_evicted += 1
            self.weight_evicted += float(weight)
            return
        self.bins[k] = self.bins.get(k, 0.0) + float(weight)
        self.counts[k] = self.counts.get(k, 0) + 1
        if self.first_seen is None or k < self.first_seen:
            self.first_seen = k
        if self.latest is None or k > self.latest:
            self.latest = k
            self._evict_below(k - self.keep + 1)

    def update_batch(self, times, weight: float = 1.0) -> None:
        for t in np.asarray(times, dtype=float):
            self.add(float(t), weight)

    def evict_before(self, t: float) -> None:
        """Drop windows that end at or before ``t`` (horizon trim)."""
        self._evict_below(self._index(max(float(t), self.origin)))

    # -- introspection -------------------------------------------------------

    @property
    def n_active(self) -> int:
        """Events currently inside the kept horizon."""
        return sum(self.counts.values())

    @property
    def weight_active(self) -> float:
        return float(sum(self.bins.values()))

    @property
    def n_windows(self) -> int:
        """Windows the kept horizon currently covers (incl. empty ones)."""
        if self.latest is None:
            return 0
        first = self.latest - self.keep + 1
        if self.first_seen is not None:
            first = max(first, self.first_seen)
        return self.latest - max(first, 0) + 1

    @property
    def span(self) -> float:
        """Seconds the kept horizon currently covers."""
        return self.n_windows * self.window

    def rate(self) -> float:
        """Mean event rate (events/sec) over the kept horizon."""
        return self.n_active / self.span if self.n_windows else 0.0

    def series(self) -> np.ndarray:
        """Per-window weights over the kept horizon, oldest first."""
        if self.latest is None:
            return np.zeros(0, dtype=float)
        first = self.latest - self.n_windows + 1
        return np.array(
            [self.bins.get(k, 0.0) for k in range(first, self.latest + 1)],
            dtype=float,
        )

    # -- snapshots -----------------------------------------------------------

    def state(self) -> dict[str, Any]:
        return {
            "kind": "sliding-window-counter",
            "version": _SNAPSHOT_VERSION,
            "window": self.window,
            "keep": self.keep,
            "origin": self.origin,
            "bins": {str(k): v for k, v in self.bins.items()},
            "counts": {str(k): v for k, v in self.counts.items()},
            "latest": self.latest,
            "first_seen": self.first_seen,
            "n_evicted": self.n_evicted,
            "weight_evicted": self.weight_evicted,
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "SlidingWindowCounter":
        _check_state(state, "sliding-window-counter")
        acc = cls(
            window=float(state["window"]),
            keep=int(state["keep"]),
            origin=float(state["origin"]),
        )
        acc.bins = {int(k): float(v) for k, v in state["bins"].items()}
        acc.counts = {int(k): int(v) for k, v in state["counts"].items()}
        latest = state["latest"]
        acc.latest = None if latest is None else int(latest)
        first_seen = state.get("first_seen")
        acc.first_seen = None if first_seen is None else int(first_seen)
        acc.n_evicted = int(state["n_evicted"])
        acc.weight_evicted = float(state["weight_evicted"])
        return acc


class InterarrivalStats:
    """Gap statistics over an ordered timestamp stream, seam-mergeable.

    Feeds two moment sets: ``all_gaps`` (every consecutive difference,
    zeros included — the storage-profile convention) and
    ``positive_gaps`` (zeros dropped — the arrival-process convention).
    ``merge(other)`` requires ``other`` to cover the records immediately
    following this accumulator's; the single seam gap
    ``other.first - self.last`` is folded so the union is exactly the
    full-stream gap sequence.
    """

    def __init__(self) -> None:
        self.first: Optional[float] = None
        self.last: Optional[float] = None
        self.all_gaps = MomentsAccumulator()
        self.positive_gaps = MomentsAccumulator()

    def _fold(self, gap: float) -> None:
        self.all_gaps.add(gap)
        if gap > 0:
            self.positive_gaps.add(gap)

    def add(self, t: float) -> None:
        t = float(t)
        if self.first is None:
            self.first = t
        if self.last is not None:
            self._fold(t - self.last)
        self.last = t

    def update_batch(self, times) -> None:
        """Fold an ordered timestamp array in one vectorized step.

        Gap values (``np.diff``) are the identical elementwise
        subtractions the sequential path performs; the gaps then fold
        through :meth:`MomentsAccumulator.update_batch`, so moments
        match repeated ``add`` within the 1e-9 relative contract.
        """
        times = np.asarray(times, dtype=float)
        if times.size == 0:
            return
        if self.last is None:
            self.first = float(times[0])
            gaps = np.diff(times)
        else:
            gaps = np.diff(np.concatenate(([self.last], times)))
        if gaps.size:
            self.all_gaps.update_batch(gaps)
            positive = gaps[gaps > 0]
            if positive.size:
                self.positive_gaps.update_batch(positive)
        self.last = float(times[-1])

    def merge(self, other: "InterarrivalStats") -> "InterarrivalStats":
        if other.first is None:
            return self
        if self.last is None:
            self.first = other.first
            self.last = other.last
            self.all_gaps = other.all_gaps
            self.positive_gaps = other.positive_gaps
            return self
        self._fold(other.first - self.last)
        self.all_gaps.merge(other.all_gaps)
        self.positive_gaps.merge(other.positive_gaps)
        self.last = other.last
        return self

    @property
    def n(self) -> int:
        """Timestamps seen (gaps observed + 1, or 0 when empty)."""
        return 0 if self.first is None else self.all_gaps.n + 1

    @property
    def span(self) -> float:
        """``last - first`` (0.0 when fewer than two timestamps)."""
        if self.first is None or self.last is None:
            return 0.0
        return self.last - self.first

    def cov(self) -> float:
        """CoV of positive gaps (sample std), the burstiness metric."""
        gaps = self.positive_gaps
        if gaps.n < 2:
            raise ValueError(f"need >= 2 positive gaps, got {gaps.n}")
        if gaps.mean <= 0:
            raise ValueError("mean interarrival must be positive")
        return gaps.std(ddof=1) / gaps.mean

    def state(self) -> dict[str, Any]:
        return {
            "kind": "interarrival-stats",
            "version": _SNAPSHOT_VERSION,
            "first": self.first,
            "last": self.last,
            "all_gaps": self.all_gaps.state(),
            "positive_gaps": self.positive_gaps.state(),
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "InterarrivalStats":
        _check_state(state, "interarrival-stats")
        acc = cls()
        acc.first = None if state["first"] is None else float(state["first"])
        acc.last = None if state["last"] is None else float(state["last"])
        acc.all_gaps = MomentsAccumulator.from_state(state["all_gaps"])
        acc.positive_gaps = MomentsAccumulator.from_state(state["positive_gaps"])
        return acc


class SeekStats:
    """Storage seek-distance statistics over an ordered I/O stream.

    Measures each gap from the *end* of the previous I/O (LBN plus its
    block-rounded length), exactly like
    :func:`repro.breadth.seek_distances`.  Integer sums keep the merged
    sequential fraction and mean absolute seek exact.  Like
    :class:`InterarrivalStats`, ``merge`` is seam-aware and assumes
    ``other`` continues this accumulator's stream.
    """

    BLOCK = 4096

    def __init__(self) -> None:
        self.n = 0
        self.first_lbn: Optional[int] = None
        self.first_end: Optional[int] = None
        self.last_end: Optional[int] = None
        self.n_gaps = 0
        self.n_sequential = 0
        self.sum_abs = 0

    def _fold(self, gap: int) -> None:
        self.n_gaps += 1
        if gap == 0:
            self.n_sequential += 1
        self.sum_abs += abs(gap)

    def add(self, lbn: int, size_bytes: int) -> None:
        if self.first_lbn is None:
            self.first_lbn = lbn
        if self.last_end is not None:
            self._fold(lbn - self.last_end)
        self.last_end = lbn + max(1, -(-size_bytes // self.BLOCK))
        if self.first_end is None:
            self.first_end = self.last_end
        self.n += 1

    def update_batch(self, lbns, sizes) -> None:
        """Fold ordered LBN/size arrays in one vectorized step — exact.

        Everything here is integer arithmetic (numpy floor division
        matches Python's for the ceil-div trick), so counts and sums
        are bit-identical to repeated ``add``.
        """
        lbns = np.asarray(lbns, dtype=np.int64)
        sizes = np.asarray(sizes, dtype=np.int64)
        if lbns.size != sizes.size:
            raise ValueError("lbn/size batches must have equal length")
        if lbns.size == 0:
            return
        ends = lbns + np.maximum(1, -(-sizes // self.BLOCK))
        if self.last_end is None:
            self.first_lbn = int(lbns[0])
            self.first_end = int(ends[0])
            gaps = lbns[1:] - ends[:-1]
        else:
            gaps = lbns - np.concatenate(([self.last_end], ends[:-1]))
        self.n_gaps += int(gaps.size)
        self.n_sequential += int((gaps == 0).sum())
        self.sum_abs += int(np.abs(gaps).sum())
        self.last_end = int(ends[-1])
        self.n += int(lbns.size)

    def merge(self, other: "SeekStats") -> "SeekStats":
        if other.n == 0:
            return self
        if self.n == 0:
            for name in (
                "n", "first_lbn", "first_end", "last_end",
                "n_gaps", "n_sequential", "sum_abs",
            ):
                setattr(self, name, getattr(other, name))
            return self
        self._fold(other.first_lbn - self.last_end)
        self.n += other.n
        self.n_gaps += other.n_gaps
        self.n_sequential += other.n_sequential
        self.sum_abs += other.sum_abs
        self.last_end = other.last_end
        return self

    @property
    def sequential_fraction(self) -> float:
        return self.n_sequential / self.n_gaps if self.n_gaps else 0.0

    @property
    def mean_abs_seek(self) -> float:
        return self.sum_abs / self.n_gaps if self.n_gaps else 0.0

    _STATE_FIELDS = (
        "n", "first_lbn", "first_end", "last_end",
        "n_gaps", "n_sequential", "sum_abs",
    )

    def state(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "kind": "seek-stats",
            "version": _SNAPSHOT_VERSION,
        }
        for name in self._STATE_FIELDS:
            data[name] = getattr(self, name)
        return data

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "SeekStats":
        _check_state(state, "seek-stats")
        acc = cls()
        for name in cls._STATE_FIELDS:
            value = state[name]
            setattr(acc, name, None if value is None else int(value))
        return acc
