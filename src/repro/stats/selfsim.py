"""Self-similarity estimation: Hurst exponent of arrival streams.

Feitelson's survey lists self-similarity among the defining features of
DC request arrivals.  Two classical estimators over arrival-count
series are provided: rescaled range (R/S) and aggregated variance.
``H ~ 0.5`` means short-range dependence (Poisson-like); ``H -> 1``
means strong long-range dependence.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["arrivals_to_counts", "hurst_aggregated_variance", "hurst_rs"]


def arrivals_to_counts(
    arrival_times: Sequence[float],
    bin_width: float,
    origin: float | None = None,
) -> np.ndarray:
    """Bucket arrival timestamps into equal-width count bins.

    ``origin`` anchors the first bin edge; the default (None) keeps the
    historical behavior of anchoring at the first arrival.  With an
    explicit origin the binning uses plain truncation arithmetic
    (``floor((t - origin) / width)``, last-bin clamped), which is the
    exact arithmetic :class:`repro.stats.streaming.WindowedCounter`
    applies — so batch and streaming counts agree bin for bin.
    """
    times = np.sort(np.asarray(arrival_times, dtype=float))
    if times.size == 0:
        raise ValueError("no arrivals")
    if bin_width <= 0:
        raise ValueError(f"bin_width must be > 0, got {bin_width}")
    if origin is None:
        span = times[-1] - times[0]
        n_bins = max(1, int(np.ceil(span / bin_width)))
        counts, _ = np.histogram(
            times, bins=n_bins, range=(times[0], times[0] + n_bins * bin_width)
        )
        return counts.astype(float)
    if times[0] < origin:
        raise ValueError(f"arrival {times[0]} precedes origin {origin}")
    n_bins = max(1, int(np.ceil((times[-1] - origin) / bin_width)))
    indices = ((times - origin) / bin_width).astype(int)
    counts = np.bincount(np.minimum(indices, n_bins - 1), minlength=n_bins)
    return counts.astype(float)


def _rs_statistic(series: np.ndarray) -> float:
    deviations = series - series.mean()
    cumulative = np.cumsum(deviations)
    r = cumulative.max() - cumulative.min()
    s = series.std()
    if s == 0:
        return 0.0
    return r / s


def hurst_rs(counts: Sequence[float], min_block: int = 8) -> float:
    """Rescaled-range (R/S) Hurst estimate over a count series."""
    series = np.asarray(counts, dtype=float)
    if series.size < 4 * min_block:
        raise ValueError(f"need >= {4 * min_block} bins, got {series.size}")
    sizes = []
    block = min_block
    while block <= series.size // 4:
        sizes.append(block)
        block *= 2
    log_n, log_rs = [], []
    for size in sizes:
        n_blocks = series.size // size
        values = [
            _rs_statistic(series[i * size : (i + 1) * size])
            for i in range(n_blocks)
        ]
        values = [v for v in values if v > 0]
        if not values:
            continue
        log_n.append(np.log(size))
        log_rs.append(np.log(np.mean(values)))
    if len(log_n) < 2:
        raise ValueError("series too degenerate for R/S estimation")
    slope = np.polyfit(log_n, log_rs, 1)[0]
    return float(np.clip(slope, 0.0, 1.0))


def hurst_aggregated_variance(
    counts: Sequence[float], min_block: int = 2
) -> float:
    """Aggregated-variance Hurst estimate over a count series.

    Variance of m-aggregated series decays as m^(2H-2); the slope of
    log-variance vs log-m gives H.
    """
    series = np.asarray(counts, dtype=float)
    if series.size < 8 * min_block:
        raise ValueError(f"need >= {8 * min_block} bins, got {series.size}")
    sizes = []
    block = min_block
    while block <= series.size // 8:
        sizes.append(block)
        block *= 2
    log_m, log_var = [], []
    for size in sizes:
        n_blocks = series.size // size
        aggregated = series[: n_blocks * size].reshape(n_blocks, size).mean(axis=1)
        variance = aggregated.var()
        if variance <= 0:
            continue
        log_m.append(np.log(size))
        log_var.append(np.log(variance))
    if len(log_m) < 2:
        raise ValueError("series too degenerate for aggregated-variance estimation")
    slope = np.polyfit(log_m, log_var, 1)[0]
    return float(np.clip(1.0 + slope / 2.0, 0.0, 1.0))
