"""Principal component analysis for feature-space reduction.

The paper proposes reducing the model's feature-space dimensionality
"using techniques like PCA, SVD, sampling, or regression analysis"
(§4); Abrahao et al. use PCA to categorize large CPU-trace datasets.
Implemented from scratch on numpy (no sklearn on the box): centering +
SVD, with transform / inverse-transform and explained variance.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = ["PCA"]


class PCA:
    """Fit/transform PCA via singular value decomposition.

    Components are rows of ``components_`` (like sklearn), sorted by
    explained variance.
    """

    def __init__(self, n_components: Optional[int] = None):
        if n_components is not None and n_components < 1:
            raise ValueError(f"n_components must be >= 1, got {n_components}")
        self.n_components = n_components
        self.mean_: Optional[np.ndarray] = None
        self.components_: Optional[np.ndarray] = None
        self.explained_variance_: Optional[np.ndarray] = None
        self.explained_variance_ratio_: Optional[np.ndarray] = None

    def fit(self, X: Sequence[Sequence[float]]) -> "PCA":
        """Learn components from an (n_samples, n_features) matrix."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"expected 2-D data, got shape {X.shape}")
        n_samples, n_features = X.shape
        if n_samples < 2:
            raise ValueError(f"need >= 2 samples, got {n_samples}")
        k = self.n_components or min(n_samples, n_features)
        if k > min(n_samples, n_features):
            raise ValueError(
                f"n_components={k} exceeds min(n_samples, n_features)="
                f"{min(n_samples, n_features)}"
            )
        self.mean_ = X.mean(axis=0)
        centered = X - self.mean_
        _, singular_values, vt = np.linalg.svd(centered, full_matrices=False)
        variances = singular_values**2 / (n_samples - 1)
        total = variances.sum()
        self.components_ = vt[:k]
        self.explained_variance_ = variances[:k]
        self.explained_variance_ratio_ = (
            variances[:k] / total if total > 0 else np.zeros(k)
        )
        return self

    def _check_fitted(self) -> None:
        if self.components_ is None:
            raise RuntimeError("PCA is not fitted; call fit() first")

    def transform(self, X: Sequence[Sequence[float]]) -> np.ndarray:
        """Project data onto the learned components."""
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        return (X - self.mean_) @ self.components_.T

    def fit_transform(self, X: Sequence[Sequence[float]]) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, Z: Sequence[Sequence[float]]) -> np.ndarray:
        """Reconstruct (approximately) original features from projections."""
        self._check_fitted()
        Z = np.asarray(Z, dtype=float)
        return Z @ self.components_ + self.mean_

    def reconstruction_error(self, X: Sequence[Sequence[float]]) -> float:
        """Mean squared reconstruction error of ``X`` through the PCA."""
        X = np.asarray(X, dtype=float)
        reconstructed = self.inverse_transform(self.transform(X))
        return float(np.mean((X - reconstructed) ** 2))
