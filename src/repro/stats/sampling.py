"""Trace sampling strategies.

The paper lists sampling among the dimensionality-reduction techniques
for model training; Dapper and GWP both rely on it for overhead
control.  Reservoir sampling (uniform over an unbounded stream) and
systematic 1-in-k sampling are the two regimes used here.
"""

from __future__ import annotations

from typing import Iterable, Sequence, TypeVar

import numpy as np

__all__ = ["reservoir_sample", "systematic_sample"]

T = TypeVar("T")


def reservoir_sample(
    stream: Iterable[T], k: int, rng: np.random.Generator
) -> list[T]:
    """Uniform sample of ``k`` items from a stream of unknown length.

    Algorithm R: every item of the stream ends up in the sample with
    equal probability, using O(k) memory.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    reservoir: list[T] = []
    for i, item in enumerate(stream):
        if i < k:
            reservoir.append(item)
        else:
            j = int(rng.integers(0, i + 1))
            if j < k:
                reservoir[j] = item
    return reservoir


def systematic_sample(items: Sequence[T], every: int, offset: int = 0) -> list[T]:
    """Every ``every``-th item starting at ``offset`` (Dapper's 1-in-N)."""
    if every < 1:
        raise ValueError(f"every must be >= 1, got {every}")
    if not 0 <= offset < every:
        raise ValueError(f"offset must be in [0, {every}), got {offset}")
    return list(items[offset::every])
