"""Autocorrelation and periodicity analysis.

Li's grid-workload modeling pipeline fits distributions *and* matches
autocorrelation of the real data; Abrahao et al. classify CPU
utilization as periodic / noisy / spiky.  This module supplies the
shared machinery: ACF, dominant-period detection, and the
periodic/noisy/spiky classifier.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = [
    "acf",
    "classify_utilization_pattern",
    "cross_correlation",
    "dominant_period",
]


def acf(series: Sequence[float], max_lag: int) -> np.ndarray:
    """Sample autocorrelation at lags ``0..max_lag`` (biased estimator)."""
    data = np.asarray(series, dtype=float)
    if data.size < 2:
        raise ValueError(f"need >= 2 points, got {data.size}")
    if not 0 < max_lag < data.size:
        raise ValueError(f"max_lag must be in (0, {data.size}), got {max_lag}")
    centered = data - data.mean()
    denom = float(np.dot(centered, centered))
    if denom == 0:
        # Constant series is perfectly correlated with itself.
        return np.ones(max_lag + 1)
    values = np.empty(max_lag + 1)
    values[0] = 1.0
    for lag in range(1, max_lag + 1):
        values[lag] = float(np.dot(centered[:-lag], centered[lag:])) / denom
    return values


def cross_correlation(
    a: Sequence[float], b: Sequence[float]
) -> float:
    """Pearson correlation between two equal-length feature series.

    The "correlations between different aspects of the workload" that
    in-breadth multi-subsystem models expose (paper §3.1).
    """
    x = np.asarray(a, dtype=float)
    y = np.asarray(b, dtype=float)
    if x.size != y.size:
        raise ValueError(f"length mismatch: {x.size} vs {y.size}")
    if x.size < 2:
        raise ValueError("need >= 2 points")
    if x.std() == 0 or y.std() == 0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


def dominant_period(
    series: Sequence[float], min_period: int = 2
) -> Optional[int]:
    """Dominant period of a series via the FFT periodogram.

    Returns None when no frequency carries at least twice the median
    spectral power (i.e. the series has no clear periodicity).
    """
    data = np.asarray(series, dtype=float)
    if data.size < 2 * min_period:
        raise ValueError(f"need >= {2 * min_period} points, got {data.size}")
    centered = data - data.mean()
    if np.allclose(centered, 0):
        return None
    power = np.abs(np.fft.rfft(centered)) ** 2
    power[0] = 0.0
    if power.size < 2:
        return None
    best = int(np.argmax(power))
    if best == 0:
        return None
    median = float(np.median(power[1:]))
    if median > 0 and power[best] < 10.0 * median:
        return None
    period = int(round(data.size / best))
    if period < min_period or period > data.size // 2:
        return None
    return period


def classify_utilization_pattern(
    series: Sequence[float],
    spiky_p99_ratio: float = 3.0,
    noisy_cov: float = 0.25,
) -> str:
    """Classify a utilization series as periodic / spiky / noisy / flat.

    Follows Abrahao et al.'s taxonomy for CPU-utilization patterns on
    shared clusters.  Precedence: a detectable period wins; otherwise a
    p99/median ratio above ``spiky_p99_ratio`` is spiky; otherwise a
    CoV above ``noisy_cov`` is noisy; else flat.
    """
    data = np.asarray(series, dtype=float)
    if data.size < 8:
        raise ValueError(f"need >= 8 points, got {data.size}")
    if dominant_period(data) is not None:
        return "periodic"
    median = float(np.median(data))
    p99 = float(np.percentile(data, 99))
    if median > 0 and p99 / median >= spiky_p99_ratio:
        return "spiky"
    mean = data.mean()
    if mean > 0 and data.std() / mean >= noisy_cov:
        return "noisy"
    return "flat"
