"""Multi-dimensional histograms of workload parameter vectors (VU-lists).

Luthi's histogram-based characterization models job parameters as
collections of parameter vectors with associated frequencies rather
than independent marginals — preserving cross-feature correlation.
:class:`VUList` supports building from samples, querying frequencies,
marginalizing, and sampling synthetic vectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

__all__ = ["VUList"]


@dataclass(frozen=True)
class _Cell:
    indices: tuple[int, ...]
    count: int


class VUList:
    """A sparse multi-dimensional histogram over feature vectors."""

    def __init__(self, feature_names: Sequence[str], bins_per_feature: int = 16):
        if not feature_names:
            raise ValueError("need at least one feature")
        if bins_per_feature < 1:
            raise ValueError(f"bins_per_feature must be >= 1, got {bins_per_feature}")
        self.feature_names = list(feature_names)
        self.bins_per_feature = bins_per_feature
        self._edges: Optional[list[np.ndarray]] = None
        self._cells: dict[tuple[int, ...], int] = {}
        self._total = 0

    def fit(self, X: Sequence[Sequence[float]]) -> "VUList":
        """Build the histogram from an (n_samples, n_features) matrix."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if X.shape[1] != len(self.feature_names):
            raise ValueError(
                f"expected {len(self.feature_names)} features, got {X.shape[1]}"
            )
        self._edges = []
        for j in range(X.shape[1]):
            low, high = X[:, j].min(), X[:, j].max()
            if low == high:
                high = low + 1.0
            self._edges.append(np.linspace(low, high, self.bins_per_feature + 1))
        self._cells.clear()
        self._total = 0
        for row in X:
            key = self._key(row)
            self._cells[key] = self._cells.get(key, 0) + 1
            self._total += 1
        return self

    def _check_fitted(self) -> None:
        if self._edges is None:
            raise RuntimeError("VUList is not fitted; call fit() first")

    def _key(self, row: np.ndarray) -> tuple[int, ...]:
        indices = []
        for j, edges in enumerate(self._edges):
            idx = int(np.searchsorted(edges, row[j], side="right") - 1)
            indices.append(int(np.clip(idx, 0, self.bins_per_feature - 1)))
        return tuple(indices)

    @property
    def n_cells(self) -> int:
        """Number of occupied histogram cells."""
        return len(self._cells)

    @property
    def total(self) -> int:
        """Number of vectors the histogram was built from."""
        return self._total

    def frequency(self, vector: Sequence[float]) -> float:
        """Empirical probability of the cell containing ``vector``."""
        self._check_fitted()
        if self._total == 0:
            return 0.0
        key = self._key(np.asarray(vector, dtype=float))
        return self._cells.get(key, 0) / self._total

    def marginal(self, feature: str) -> tuple[np.ndarray, np.ndarray]:
        """(bin_centers, probabilities) of one feature's marginal."""
        self._check_fitted()
        j = self.feature_names.index(feature)
        probs = np.zeros(self.bins_per_feature)
        for key, count in self._cells.items():
            probs[key[j]] += count
        if self._total:
            probs /= self._total
        edges = self._edges[j]
        centers = (edges[:-1] + edges[1:]) / 2.0
        return centers, probs

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw synthetic vectors: pick a cell by frequency, then a
        uniform point inside it (correlation-preserving, unlike
        sampling each marginal independently)."""
        self._check_fitted()
        if self._total == 0:
            raise RuntimeError("histogram is empty")
        keys = list(self._cells.keys())
        probs = np.array([self._cells[k] for k in keys], dtype=float)
        probs /= probs.sum()
        chosen = rng.choice(len(keys), size=n, p=probs)
        out = np.empty((n, len(self.feature_names)))
        for i, cell_index in enumerate(chosen):
            key = keys[int(cell_index)]
            for j, edges in enumerate(self._edges):
                low, high = edges[key[j]], edges[key[j] + 1]
                out[i, j] = rng.uniform(low, high)
        return out
