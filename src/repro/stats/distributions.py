"""Descriptive statistics and tail analysis for trace features.

The characterization primitives the surveyed papers apply to request
streams: moment summaries, empirical CDF comparison (two-sample KS),
and the Hill estimator for heavy-tail detection (Feitelson's "heavy
tails" feature of DC request distributions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats

__all__ = ["SampleSummary", "hill_estimator", "ks_two_sample", "summarize"]


@dataclass(frozen=True)
class SampleSummary:
    """Moment and quantile summary of one feature's samples."""

    count: int
    mean: float
    std: float
    minimum: float
    p50: float
    p95: float
    p99: float
    maximum: float

    @property
    def cov(self) -> float:
        """Coefficient of variation (std over mean)."""
        return self.std / self.mean if self.mean != 0 else float("inf")


def summarize(samples: Sequence[float]) -> SampleSummary:
    """Compute a :class:`SampleSummary`; rejects empty input."""
    data = np.asarray(samples, dtype=float)
    if data.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return SampleSummary(
        count=int(data.size),
        mean=float(data.mean()),
        std=float(data.std(ddof=1)) if data.size > 1 else 0.0,
        minimum=float(data.min()),
        p50=float(np.percentile(data, 50)),
        p95=float(np.percentile(data, 95)),
        p99=float(np.percentile(data, 99)),
        maximum=float(data.max()),
    )


def ks_two_sample(a: Sequence[float], b: Sequence[float]) -> tuple[float, float]:
    """Two-sample Kolmogorov-Smirnov test: (statistic, p-value).

    The fidelity metric used throughout the validation framework to
    compare original and synthetic feature distributions.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.size == 0 or b.size == 0:
        raise ValueError("both samples must be non-empty")
    result = stats.ks_2samp(a, b)
    return float(result.statistic), float(result.pvalue)


def hill_estimator(samples: Sequence[float], tail_fraction: float = 0.1) -> float:
    """Hill estimate of the tail index alpha from the upper tail.

    Values of alpha below ~2 indicate the heavy (infinite-variance)
    tails SURGE found in web object sizes.  Uses the top
    ``tail_fraction`` of order statistics.
    """
    data = np.asarray(samples, dtype=float)
    data = data[data > 0]
    if not 0 < tail_fraction <= 0.5:
        raise ValueError(f"tail_fraction must be in (0, 0.5], got {tail_fraction}")
    k = max(2, int(data.size * tail_fraction))
    if data.size < k + 1:
        raise ValueError(f"need > {k + 1} positive samples, got {data.size}")
    tail = np.sort(data)[-k - 1:]
    logs = np.log(tail)
    gamma = float(np.mean(logs[1:] - logs[0]))
    if gamma <= 0:
        return float("inf")
    return 1.0 / gamma
