"""Statistics toolkit for workload characterization and modeling.

Implements the analysis machinery the surveyed modeling papers rely
on: distribution summaries and heavy-tail detection, self-similarity
(Hurst) estimation, burstiness and stationarity metrics, ACF and
utilization-pattern classification, PCA, k-means / Gaussian-mixture
clustering with BIC selection, VU-list histograms, and sampling.
"""

from .burstiness import (
    index_of_dispersion,
    interarrival_cov,
    peak_to_mean,
    stationarity_pvalue,
)
from .clustering import GaussianMixture, KMeans, select_components_bic
from .correlation import (
    acf,
    classify_utilization_pattern,
    cross_correlation,
    dominant_period,
)
from .distributions import SampleSummary, hill_estimator, ks_two_sample, summarize
from .histogram import VUList
from .pca import PCA
from .regression import LinearRegression
from .sampling import reservoir_sample, systematic_sample
from .selfsim import arrivals_to_counts, hurst_aggregated_variance, hurst_rs

# Quiet compatibility alias: the canonical constant is
# repro.snapshot.SNAPSHOT_VERSION (the repro.stats.streaming attribute of
# the old name still works but warns).
from ..snapshot import SNAPSHOT_VERSION as STREAMING_STATE_VERSION
from .streaming import (
    CategoricalCounter,
    CoMomentsAccumulator,
    ExactQuantiles,
    FixedHistogram,
    InterarrivalStats,
    MomentsAccumulator,
    P2Quantile,
    ReservoirQuantile,
    SeekStats,
    SlidingWindowCounter,
    WindowedCounter,
)

__all__ = [
    "CategoricalCounter",
    "CoMomentsAccumulator",
    "ExactQuantiles",
    "FixedHistogram",
    "GaussianMixture",
    "InterarrivalStats",
    "KMeans",
    "LinearRegression",
    "MomentsAccumulator",
    "P2Quantile",
    "PCA",
    "ReservoirQuantile",
    "SampleSummary",
    "STREAMING_STATE_VERSION",
    "SeekStats",
    "SlidingWindowCounter",
    "VUList",
    "WindowedCounter",
    "acf",
    "arrivals_to_counts",
    "classify_utilization_pattern",
    "cross_correlation",
    "dominant_period",
    "hill_estimator",
    "hurst_aggregated_variance",
    "hurst_rs",
    "index_of_dispersion",
    "interarrival_cov",
    "ks_two_sample",
    "peak_to_mean",
    "reservoir_sample",
    "select_components_bic",
    "stationarity_pvalue",
    "summarize",
    "systematic_sample",
]
