"""Burstiness and stationarity metrics for request streams.

Feitelson's feature list for DC arrivals — stationarity, burstiness —
realized as: coefficient of variation of interarrivals, index of
dispersion for counts (IDC), peak-to-mean ratio, and a simple
split-half stationarity test.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy import stats

from .selfsim import arrivals_to_counts

__all__ = [
    "index_of_dispersion",
    "interarrival_cov",
    "peak_to_mean",
    "stationarity_pvalue",
]


def interarrival_cov(interarrivals: Sequence[float]) -> float:
    """Coefficient of variation of interarrival times.

    1.0 for Poisson; substantially above 1 indicates burstiness.
    """
    gaps = np.asarray(interarrivals, dtype=float)
    if gaps.size < 2:
        raise ValueError(f"need >= 2 interarrivals, got {gaps.size}")
    mean = gaps.mean()
    if mean <= 0:
        raise ValueError("mean interarrival must be positive")
    return float(gaps.std(ddof=1) / mean)


def index_of_dispersion(
    arrival_times: Sequence[float],
    bin_width: float,
    origin: float | None = None,
) -> float:
    """IDC: variance over mean of per-bin arrival counts.

    1.0 for Poisson at any timescale; grows with timescale for
    self-similar traffic.  ``origin`` anchors the count bins (see
    :func:`repro.stats.arrivals_to_counts`).
    """
    counts = arrivals_to_counts(arrival_times, bin_width, origin=origin)
    mean = counts.mean()
    if mean <= 0:
        raise ValueError("no arrivals in the binned window")
    return float(counts.var() / mean)


def peak_to_mean(
    arrival_times: Sequence[float],
    bin_width: float,
    origin: float | None = None,
) -> float:
    """Peak-bin rate over mean rate — the provisioning headroom metric."""
    counts = arrivals_to_counts(arrival_times, bin_width, origin=origin)
    mean = counts.mean()
    if mean <= 0:
        raise ValueError("no arrivals in the binned window")
    return float(counts.max() / mean)


def stationarity_pvalue(series: Sequence[float]) -> float:
    """Welch test p-value for a mean shift between the series' halves.

    Small p-values reject stationarity (the non-stationary diurnal
    patterns Tang et al. model explicitly).  This is a deliberately
    simple screen, not a substitute for a full unit-root test.
    """
    data = np.asarray(series, dtype=float)
    if data.size < 8:
        raise ValueError(f"need >= 8 points, got {data.size}")
    half = data.size // 2
    first, second = data[:half], data[half:]
    if first.std() == 0 and second.std() == 0:
        return 1.0 if np.isclose(first.mean(), second.mean()) else 0.0
    result = stats.ttest_ind(first, second, equal_var=False)
    return float(result.pvalue)
