"""Command-line interface: collect / merge / train / describe / validate / characterize.

Mirrors the deployment the paper assumes — trace collection on the
cluster, model training offline, validation and studies anywhere:

    repro collect --app gfs --requests 2000 --out traces/
    repro collect --app gfs --replicas 8 --workers 4 --out traces/
    repro collect --app gfs --replicas 2 --sweep-rate 10,25,40 --out sweep/
    repro merge traces/ --out traces/merged
    repro train traces/ --model model.json
    repro train traces/ --per-class --workers 4 --model classes.json
    repro describe model.json
    repro validate traces/ --model model.json
    repro characterize traces/

Multi-replica collection persists a *sharded* store (one
``shard-<idx>/`` per replica, written as each replica completes, with
manifests instead of in-memory merging — see ``docs/trace_store.md``);
every trace-consuming command reads flat dumps and shard stores alike
through one loader.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

__all__ = ["build_parser", "main"]


def _cmd_collect(args: argparse.Namespace) -> int:
    from .datacenter import (
        FleetSpec,
        collect_fleet,
        collect_fleet_to_store,
        run_gfs_workload,
        run_mapreduce_jobs,
        run_webapp_workload,
        sweep_replica_specs,
    )
    from .tracing import save_traces

    if args.replicas < 1:
        raise SystemExit(f"--replicas must be >= 1, got {args.replicas}")
    rate = None if args.app == "mapreduce" else args.rate
    sweep_rates = None
    if args.sweep_rate:
        try:
            sweep_rates = [float(r) for r in args.sweep_rate.split(",") if r]
        except ValueError:
            raise SystemExit(f"bad --sweep-rate list: {args.sweep_rate!r}")
        if not sweep_rates:
            raise SystemExit("--sweep-rate needs at least one rate")
    if (args.replicas > 1 or sweep_rates) and not args.flat:
        # Sharded fleet streamed straight to an on-disk store: each
        # replica writes shard-<idx>/ as it completes and only the
        # manifest crosses the process pool.  The stitched merge
        # depends only on (app, replicas, seed, ...), never on the
        # worker count.
        spec = FleetSpec(
            app=args.app,
            replicas=args.replicas,
            seed=args.seed,
            n_requests=args.requests,
            arrival_rate=rate,
        )
        replica_specs = None
        if sweep_rates:
            replica_specs = sweep_replica_specs(
                spec, [{"arrival_rate": r} for r in sweep_rates]
            )
            spec = None

        def report(index: int, manifest) -> None:
            print(
                f"shard {index} persisted: {manifest.n_records} records "
                f"({manifest.duration:.2f}s simulated)"
            )

        result = collect_fleet_to_store(
            spec,
            directory=args.out,
            workers=args.workers,
            compress=args.gzip,
            replica_specs=replica_specs,
            on_shard=report,
        )
        n_shards = len(result.manifests)
        print(
            f"saved shard store to {args.out} ({n_shards} shards, "
            f"{result.n_records} records; {n_shards} replicas x "
            f"{args.workers} workers in {result.elapsed_seconds:.2f}s wall)"
        )
        return 0
    if args.replicas > 1 or sweep_rates:
        # --flat: legacy path — merge in memory, save one flat dump.
        if sweep_rates:
            spec = FleetSpec(
                app=args.app,
                replicas=args.replicas,
                seed=args.seed,
                n_requests=args.requests,
                arrival_rate=rate,
            )
            from .datacenter import collect_replicas, merge_replicas

            specs = sweep_replica_specs(
                spec, [{"arrival_rate": r} for r in sweep_rates]
            )
            traces = merge_replicas(collect_replicas(specs, args.workers))
            extra = f"; swept {len(sweep_rates)} rates"
        else:
            result = collect_fleet(
                app=args.app,
                replicas=args.replicas,
                seed=args.seed,
                n_requests=args.requests,
                arrival_rate=rate,
                workers=args.workers,
            )
            traces = result.traces
            extra = (
                f"; {args.replicas} replicas x {args.workers} workers "
                f"in {result.elapsed_seconds:.2f}s wall"
            )
    elif args.app == "gfs":
        traces = run_gfs_workload(
            n_requests=args.requests, seed=args.seed, arrival_rate=args.rate
        ).traces
        extra = ""
    elif args.app == "webapp":
        traces = run_webapp_workload(
            n_requests=args.requests, seed=args.seed, arrival_rate=args.rate
        )
        extra = ""
    elif args.app == "mapreduce":
        traces, _ = run_mapreduce_jobs(seed=args.seed)
        extra = ""
    else:
        raise SystemExit(f"unknown app {args.app!r}")
    save_traces(traces, args.out, compress=args.gzip)
    summary = ", ".join(f"{k}={v}" for k, v in traces.summary().items())
    print(f"saved traces to {args.out} ({summary}{extra})")
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    from .store import ShardStore

    try:
        store = ShardStore(args.store)
    except FileNotFoundError as error:
        raise SystemExit(str(error))
    out = args.out if args.out is not None else args.store / "merged"
    store.save_merged(out, compress=args.gzip)
    summary = ", ".join(f"{k}={v}" for k, v in store.summary().items())
    print(
        f"stitched {len(store)} shards from {args.store} into {out} ({summary})"
    )
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from .core import KoozaConfig, KoozaTrainer, save_model
    from .tracing import load_traces

    config = KoozaConfig(
        network_size_bins=args.network_bins,
        storage_size_bins=args.storage_bins,
        memory_size_bins=args.memory_bins,
        cpu_utilization_bins=args.cpu_bins,
        hierarchical_storage=args.hierarchical,
    )
    if args.per_class:
        from .store import is_shard_store, save_per_class_models, train_per_class

        if not is_shard_store(args.traces):
            raise SystemExit(
                f"{args.traces} is not a shard store; --per-class trains "
                "from shards (collect with --replicas > 1)"
            )
        fit = train_per_class(args.traces, config, workers=args.workers)
        if not fit.models:
            raise SystemExit(
                f"no request class reached the trainable minimum; "
                f"skipped: {fit.skipped}"
            )
        save_per_class_models(fit.models, args.model)
        skipped = (
            f", skipped {sorted(fit.skipped)}" if fit.skipped else ""
        )
        print(
            f"trained {fit.n_classes} per-class models across "
            f"{args.workers} workers in {fit.elapsed_seconds:.2f}s wall"
            f"{skipped}; written to {args.model}"
        )
        return 0
    traces = load_traces(args.traces)
    model = KoozaTrainer(config).fit(traces)
    save_model(model, args.model)
    print(
        f"trained on {model.n_training_requests} requests "
        f"({model.n_parameters} parameters); model written to {args.model}"
    )
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    from .core import load_model

    print(load_model(args.model).describe())
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .core import (
        KoozaTrainer,
        ReplayHarness,
        compare_workloads,
        load_model,
    )
    from .tracing import load_traces

    traces = load_traces(args.traces)
    if args.model:
        model = load_model(args.model)
    else:
        model = KoozaTrainer().fit(traces)
    n = len(traces.completed_requests())
    synthetic = model.synthesize(n, np.random.default_rng(args.seed))
    replayed = ReplayHarness(seed=args.seed + 1).replay(synthetic)
    try:
        report = compare_workloads(traces, replayed)
    except ValueError as error:
        # E.g. a model trained on a different workload: no common
        # request profiles at all — the strongest possible mismatch.
        print(f"validation failed: {error}")
        return 1
    print(report.to_table())
    print(
        f"worst feature deviation: {report.worst_feature_deviation_pct:.2f}%  "
        f"worst latency deviation: {report.worst_latency_deviation_pct:.2f}%"
    )
    return 0 if report.worst_feature_deviation_pct < args.feature_limit else 1


def _cmd_characterize(args: argparse.Namespace) -> int:
    from .breadth import (
        NetworkTrafficModel,
        StorageProfile,
        utilization_series,
    )
    from .stats import classify_utilization_pattern
    from .tracing import load_traces

    traces = load_traces(args.traces)
    if traces.storage:
        profile = StorageProfile.characterize(traces.storage)
        print(
            f"storage: {profile.n_ios} I/Os, read fraction "
            f"{profile.read_fraction:.2f}, mean size "
            f"{profile.mean_size / 1024:.1f} KiB, sequential "
            f"{profile.sequential_fraction:.2f}"
        )
    if traces.cpu:
        series = utilization_series(traces.cpu, window=args.window, cores=8)
        print(
            f"cpu: {series.size} windows, mean utilization "
            f"{series.mean() * 100:.1f}%, pattern "
            f"{classify_utilization_pattern(series)}"
        )
    if traces.network:
        model = NetworkTrafficModel().fit(traces.network)
        ch = model.characterization
        print(
            f"network: {ch.n_messages} arrivals at {ch.mean_rate:.1f}/s, "
            f"CoV {ch.interarrival_cov:.2f}, best fit "
            f"{ch.best_fit_family} (KS {ch.ks_statistic:.3f})"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Datacenter workload modeling: in-breadth, in-depth, KOOZA",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    collect = sub.add_parser("collect", help="run a workload, save traces")
    collect.add_argument(
        "--app", choices=("gfs", "webapp", "mapreduce"), default="gfs"
    )
    collect.add_argument("--requests", type=int, default=2000)
    collect.add_argument("--seed", type=int, default=0)
    collect.add_argument("--rate", type=float, default=25.0)
    collect.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="independent workload replicas to run and merge (default 1)",
    )
    collect.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the replica fleet; 0 = all cores "
        "(merged traces are identical for any worker count)",
    )
    collect.add_argument(
        "--sweep-rate",
        default=None,
        metavar="R1,R2,...",
        help="sweep arrival rate across replicas: each listed rate gets "
        "--replicas repetitions, recorded in shard manifests",
    )
    collect.add_argument(
        "--flat",
        action="store_true",
        help="merge replicas in memory and save one flat dump instead of "
        "a sharded store",
    )
    collect.add_argument(
        "--gzip", action="store_true", help="gzip trace stream files"
    )
    collect.add_argument("--out", type=Path, required=True)
    collect.set_defaults(func=_cmd_collect)

    merge = sub.add_parser(
        "merge", help="stitch a sharded trace store into one flat dump"
    )
    merge.add_argument("store", type=Path)
    merge.add_argument(
        "--out",
        type=Path,
        default=None,
        help="output directory (default: <store>/merged)",
    )
    merge.add_argument(
        "--gzip", action="store_true", help="gzip the merged stream files"
    )
    merge.set_defaults(func=_cmd_merge)

    train = sub.add_parser("train", help="train KOOZA from saved traces")
    train.add_argument("traces", type=Path)
    train.add_argument("--model", type=Path, required=True)
    train.add_argument("--network-bins", type=int, default=8)
    train.add_argument("--storage-bins", type=int, default=6)
    train.add_argument("--memory-bins", type=int, default=6)
    train.add_argument("--cpu-bins", type=int, default=8)
    train.add_argument("--hierarchical", action="store_true")
    train.add_argument(
        "--per-class",
        action="store_true",
        help="fit one model per request class, fanned over shards",
    )
    train.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for --per-class fits; 0 = all cores",
    )
    train.set_defaults(func=_cmd_train)

    describe = sub.add_parser("describe", help="print a trained model")
    describe.add_argument("model", type=Path)
    describe.set_defaults(func=_cmd_describe)

    validate = sub.add_parser(
        "validate", help="synthesize, replay and compare against traces"
    )
    validate.add_argument("traces", type=Path)
    validate.add_argument("--model", type=Path, default=None)
    validate.add_argument("--seed", type=int, default=42)
    validate.add_argument("--feature-limit", type=float, default=1.0)
    validate.set_defaults(func=_cmd_validate)

    characterize = sub.add_parser(
        "characterize", help="in-breadth summary of saved traces"
    )
    characterize.add_argument("traces", type=Path)
    characterize.add_argument("--window", type=float, default=0.25)
    characterize.set_defaults(func=_cmd_characterize)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
