"""Command-line interface: collect / merge / train / describe / validate / characterize.

Mirrors the deployment the paper assumes — trace collection on the
cluster, model training offline, validation and studies anywhere:

    repro collect --app gfs --requests 2000 --out traces/
    repro collect --app gfs --replicas 8 --workers 4 --out traces/
    repro collect --app gfs --replicas 2 --sweep-rate 10,25,40 --out sweep/
    repro collect --app gfs --replicas 8 --windows 4 --out traces/
    repro resume --out traces/ --workers 4
    repro append --app gfs --replicas 4 --workers 4 --out traces/
    repro collect --app gfs --replicas 4 --codec columnar --out traces/
    repro convert --in traces/ --out traces-col/ --codec columnar
    repro compact --in traces/
    repro merge --in traces/ --out traces/merged
    repro train --in traces/ --per-class --workers 4 --model classes.json
    repro describe model.json
    repro validate --in traces/ --per-class --workers 4
    repro characterize --in traces/
    repro verify --in traces/
    repro plan --in traces/ --scale 0.5:100:17 --validate-at 1,2
    repro serve --in traces/ --port 9090 --model classes.json

Every trace-consuming command takes a uniform ``--in PATH`` that
auto-detects shard stores vs flat dumps (the pre-0.3 positional path
still works as a hidden alias).  Shard stores are analyzed by the
streaming engine — one accumulator set per shard, merged — so
``characterize`` and ``validate`` never materialize the merged trace
timeline (see ``docs/streaming_analysis.md``).

Analysis commands over a shard store default to the persistent
per-shard cache (``--no-cache`` disables it); cache statistics go to
stderr so cached and uncached runs print byte-identical stdout.

``repro serve`` turns the same pipeline into a long-lived daemon:
watch-folds appended rounds, optionally ingests live records over a
socket, and serves ``/profile`` / ``/validate`` / ``/drift`` /
``/metrics`` over HTTP (see ``docs/serving.md``).  ``Ctrl-C`` exits
any command with status 130 after flushing open shard writers.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading
from pathlib import Path

import numpy as np

__all__ = ["build_parser", "main"]


def _input_path(args: argparse.Namespace, attr: str) -> Path:
    """Resolve the uniform ``--in PATH`` with its hidden positional alias."""
    positional = getattr(args, attr, None)
    if args.in_path is not None and positional is not None:
        raise SystemExit("pass the input either via --in or positionally, not both")
    path = args.in_path if args.in_path is not None else positional
    if path is None:
        raise SystemExit("no input given: pass --in PATH")
    return path


def _open_source(path: Path):
    """Auto-detect and open a trace source, with clear failure messages."""
    from .store import ShardStore, is_shard_store
    from .tracing import load_traces

    try:
        source = load_traces(path)
    except FileNotFoundError as error:
        raise SystemExit(str(error))
    if isinstance(source, ShardStore):
        n_records = sum(source.counts().values())
    else:
        n_records = sum(source.summary().values())
    if n_records == 0:
        kind = "shard store" if is_shard_store(path) else "trace dump"
        raise SystemExit(
            f"{kind} at {path} is empty (0 records); "
            "collect traces into it first (repro collect --out)"
        )
    return source


def _cmd_collect(args: argparse.Namespace) -> int:
    profile_path = getattr(args, "profile", None)
    if profile_path is None:
        return _collect(args)
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        return _collect(args)
    finally:
        profiler.disable()
        profile_path.parent.mkdir(parents=True, exist_ok=True)
        profiler.dump_stats(profile_path)
        stats = pstats.Stats(profiler)
        total = stats.total_tt  # type: ignore[attr-defined]
        print(
            f"profile: {stats.total_calls} calls in {total:.2f}s CPU "
            f"dumped to {profile_path} (inspect with python -m pstats, "
            "or snakeviz if installed)"
        )


def _collect(args: argparse.Namespace) -> int:
    from .datacenter import (
        FleetSpec,
        collect_fleet,
        collect_fleet_to_store,
        run_gfs_workload,
        run_mapreduce_jobs,
        run_webapp_workload,
        sweep_replica_specs,
    )
    from .tracing import save_traces

    if args.replicas < 1:
        raise SystemExit(f"--replicas must be >= 1, got {args.replicas}")
    if args.append and args.flat:
        raise SystemExit(
            "--append adds a round to a shard store; it cannot combine "
            "with --flat"
        )
    if args.codec == "columnar" and args.gzip:
        raise SystemExit(
            "--gzip applies to jsonl stream files; columnar column "
            "buffers are raw binary and cannot combine with it"
        )
    if args.codec == "columnar" and args.flat:
        raise SystemExit(
            "--flat writes a jsonl dump; collect into a shard store to "
            "use --codec columnar"
        )
    if args.windows < 1:
        raise SystemExit(f"--windows must be >= 1, got {args.windows}")
    windowed = args.windows > 1 or args.checkpoint_dir is not None
    if windowed and args.flat:
        raise SystemExit(
            "--windows/--checkpoint-dir stream window shards to a store; "
            "they cannot combine with --flat"
        )
    rate = None if args.app == "mapreduce" else args.rate
    sweep_rates = None
    if args.sweep_rate:
        try:
            sweep_rates = [float(r) for r in args.sweep_rate.split(",") if r]
        except ValueError:
            raise SystemExit(f"bad --sweep-rate list: {args.sweep_rate!r}")
        if not sweep_rates:
            raise SystemExit("--sweep-rate needs at least one rate")
    use_store = (
        args.replicas > 1
        or sweep_rates
        or args.append
        or args.codec != "jsonl"
        or windowed
    )
    if use_store and not args.flat:
        # Sharded fleet streamed straight to an on-disk store: each
        # replica writes shard-<idx>/ as it completes and only the
        # manifest crosses the process pool.  The stitched merge
        # depends only on (app, replicas, seed, ...), never on the
        # worker count.
        spec = FleetSpec(
            app=args.app,
            replicas=args.replicas,
            seed=args.seed,
            n_requests=args.requests,
            arrival_rate=rate,
        )
        replica_specs = None
        if sweep_rates:
            replica_specs = sweep_replica_specs(
                spec, [{"arrival_rate": r} for r in sweep_rates]
            )
            spec = None

        def report(index: int, manifest) -> None:
            print(
                f"shard {index} persisted: {manifest.n_records} records "
                f"({manifest.duration:.2f}s simulated)"
            )

        try:
            result = collect_fleet_to_store(
                spec,
                directory=args.out,
                workers=args.workers,
                compress=args.gzip,
                replica_specs=replica_specs,
                on_shard=report,
                append=args.append,
                codec=args.codec,
                windows=args.windows,
                checkpoint_dir=args.checkpoint_dir,
            )
        except (FileExistsError, FileNotFoundError) as error:
            raise SystemExit(str(error))
        n_shards = len(result.manifests)
        n_replicas = sum(1 for m in result.manifests if not m.continues)
        verb = (
            f"appended round {result.round} to" if args.append else "saved"
        )
        print(
            f"{verb} shard store at {args.out} ({n_shards} shards, "
            f"{result.n_records} records; {n_replicas} replicas x "
            f"{args.workers} workers in {result.elapsed_seconds:.2f}s wall)"
        )
        return 0
    if args.replicas > 1 or sweep_rates:
        # --flat: legacy path — merge in memory, save one flat dump.
        if sweep_rates:
            spec = FleetSpec(
                app=args.app,
                replicas=args.replicas,
                seed=args.seed,
                n_requests=args.requests,
                arrival_rate=rate,
            )
            from .datacenter import collect_replicas, merge_replicas

            specs = sweep_replica_specs(
                spec, [{"arrival_rate": r} for r in sweep_rates]
            )
            traces = merge_replicas(collect_replicas(specs, args.workers))
            extra = f"; swept {len(sweep_rates)} rates"
        else:
            result = collect_fleet(
                app=args.app,
                replicas=args.replicas,
                seed=args.seed,
                n_requests=args.requests,
                arrival_rate=rate,
                workers=args.workers,
            )
            traces = result.traces
            extra = (
                f"; {args.replicas} replicas x {args.workers} workers "
                f"in {result.elapsed_seconds:.2f}s wall"
            )
    elif args.app == "gfs":
        traces = run_gfs_workload(
            n_requests=args.requests, seed=args.seed, arrival_rate=args.rate
        ).traces
        extra = ""
    elif args.app == "webapp":
        traces = run_webapp_workload(
            n_requests=args.requests, seed=args.seed, arrival_rate=args.rate
        )
        extra = ""
    elif args.app == "mapreduce":
        traces, _ = run_mapreduce_jobs(seed=args.seed)
        extra = ""
    else:
        raise SystemExit(f"unknown app {args.app!r}")
    save_traces(traces, args.out, compress=args.gzip)
    summary = ", ".join(f"{k}={v}" for k, v in traces.summary().items())
    print(f"saved traces to {args.out} ({summary}{extra})")
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    from .datacenter import resume_fleet_collection
    from .snapshot import SnapshotError

    def report(index: int, manifest) -> None:
        print(
            f"shard {index} persisted: {manifest.n_records} records "
            f"({manifest.duration:.2f}s simulated)"
        )

    try:
        result = resume_fleet_collection(
            args.out,
            checkpoint_dir=args.checkpoint_dir,
            workers=args.workers,
            on_shard=report,
        )
    except (FileNotFoundError, SnapshotError) as error:
        raise SystemExit(str(error))
    n_shards = len(result.manifests)
    n_replicas = sum(1 for m in result.manifests if not m.continues)
    print(
        f"resumed shard store at {args.out} ({n_shards} shards, "
        f"{result.n_records} records; {n_replicas} replicas x "
        f"{args.workers} workers in {result.elapsed_seconds:.2f}s wall)"
    )
    return 0


def _print_cache_stats(hits: int, misses: int) -> None:
    """Report cache effectiveness on stderr.

    stderr, not stdout: a warm run and a ``--no-cache`` run must print
    byte-identical stdout (the equality CI pins down with a diff).
    """
    print(f"cache: {hits} hits, {misses} misses", file=sys.stderr)


def _cmd_convert(args: argparse.Namespace) -> int:
    from .store import is_shard_store
    from .store.convert import convert_flat_dump, convert_store

    path = _input_path(args, "traces")
    if args.codec == "columnar" and args.gzip:
        raise SystemExit(
            "--gzip applies to jsonl stream files; it cannot combine "
            "with --codec columnar"
        )
    try:
        if is_shard_store(path):
            manifests = convert_store(
                path, args.out, args.codec, compress=args.gzip
            )
            n_records = sum(m.n_records for m in manifests)
            print(
                f"converted {len(manifests)} shards from {path} to "
                f"{args.codec} at {args.out} ({n_records} records)"
            )
        else:
            convert_flat_dump(path, args.out, args.codec, compress=args.gzip)
            print(f"converted flat dump {path} to {args.codec} at {args.out}")
    except (FileNotFoundError, FileExistsError, ValueError) as error:
        raise SystemExit(str(error))
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    from .store import compact_store, is_shard_store

    path = _input_path(args, "store")
    if not is_shard_store(path):
        raise SystemExit(f"{path} is not a shard store")
    index = compact_store(path)
    n_shards = sum(len(v) for v in index.rounds.values())
    print(
        f"compacted {path}: {len(index.rounds)} rounds, {n_shards} shards "
        f"indexed"
    )
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    from .store import ShardStore

    path = _input_path(args, "store")
    try:
        store = ShardStore(path)
    except FileNotFoundError as error:
        raise SystemExit(str(error))
    out = args.out if args.out is not None else path / "merged"
    store.save_merged(out, compress=args.gzip)
    summary = ", ".join(f"{k}={v}" for k, v in store.summary().items())
    print(
        f"stitched {len(store)} shards from {path} into {out} ({summary})"
    )
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from .core import KoozaConfig, KoozaTrainer, save_model

    path = _input_path(args, "traces")
    config = KoozaConfig(
        network_size_bins=args.network_bins,
        storage_size_bins=args.storage_bins,
        memory_size_bins=args.memory_bins,
        cpu_utilization_bins=args.cpu_bins,
        hierarchical_storage=args.hierarchical,
    )
    source = _open_source(path)
    if args.per_class:
        from .store import ShardStore, save_per_class_models, train_per_class

        use_cache = args.cache and isinstance(source, ShardStore)
        fit = train_per_class(
            source, config, workers=args.workers, cache=use_cache
        )
        if use_cache:
            _print_cache_stats(fit.cache_hits, fit.cache_misses)
        if not fit.models:
            raise SystemExit(
                f"no request class reached the trainable minimum; "
                f"skipped: {fit.skipped}"
            )
        save_per_class_models(fit.models, args.model)
        skipped = (
            f", skipped {sorted(fit.skipped)}" if fit.skipped else ""
        )
        print(
            f"trained {fit.n_classes} per-class models across "
            f"{args.workers} workers in {fit.elapsed_seconds:.2f}s wall"
            f"{skipped}; written to {args.model}"
        )
        return 0
    model = KoozaTrainer(config).fit(source)
    save_model(model, args.model)
    print(
        f"trained on {model.n_training_requests} requests "
        f"({model.n_parameters} parameters); model written to {args.model}"
    )
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    from .core import load_model

    path = _input_path(args, "model")
    if Path(path).is_dir():
        # Pointed at traces rather than a model file: auto-detect the
        # source and describe its streaming workload profile instead of
        # failing on a JSON parse of a directory.
        from .store import characterize_source

        source = _open_source(path)
        print(characterize_source(source, workers=args.workers).describe())
        return 0
    print(load_model(path).describe())
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .core import (
        KoozaTrainer,
        ReplayHarness,
        WorkloadFeatureStats,
        compare_feature_stats,
        load_model,
    )
    from .store import ShardStore, analyze_source

    path = _input_path(args, "traces")
    source = _open_source(path)
    use_cache = args.cache and isinstance(source, ShardStore)
    if args.per_class:
        from .store import load_per_class_models, validate_per_class

        models = load_per_class_models(args.model) if args.model else None
        result = validate_per_class(
            source,
            models=models,
            seed=args.seed,
            workers=args.workers,
            cache=use_cache,
        )
        if use_cache:
            _print_cache_stats(result.cache_hits, result.cache_misses)
        print(result.to_table())
        if result.n_validated == 0:
            print("validation failed: no request class could be compared")
            return 1
        worst = result.worst_feature_deviation_pct
        print(
            f"classes validated: {result.n_validated}/{len(result.classes)}  "
            f"worst feature deviation: {worst:.2f}%"
        )
        return 0 if worst < args.feature_limit else 1
    if isinstance(source, ShardStore):
        # Streaming accumulation, one worker per shard — the merged
        # TraceSet is never built.
        analysis = analyze_source(
            source, workers=args.workers, cache=use_cache
        )
        if use_cache:
            _print_cache_stats(analysis.cache_hits, analysis.cache_misses)
        original = analysis.features
    else:
        original = WorkloadFeatureStats.from_source(source)
    if args.model:
        model = load_model(args.model)
    else:
        model = KoozaTrainer().fit(source)
    synthetic = model.synthesize(original.n, np.random.default_rng(args.seed))
    replayed = ReplayHarness(seed=args.seed + 1).replay(synthetic)
    try:
        report = compare_feature_stats(
            original, WorkloadFeatureStats.from_source(replayed)
        )
    except ValueError as error:
        # E.g. a model trained on a different workload: no common
        # request profiles at all — the strongest possible mismatch.
        print(f"validation failed: {error}")
        return 1
    print(report.to_table())
    print(
        f"worst feature deviation: {report.worst_feature_deviation_pct:.2f}%  "
        f"worst latency deviation: {report.worst_latency_deviation_pct:.2f}%"
    )
    return 0 if report.worst_feature_deviation_pct < args.feature_limit else 1


def _cmd_characterize(args: argparse.Namespace) -> int:
    from .store import ShardStore, analyze_source

    path = _input_path(args, "traces")
    source = _open_source(path)
    use_cache = args.cache and isinstance(source, ShardStore)
    analysis = analyze_source(
        source,
        window=args.window,
        workers=args.workers,
        cache=use_cache,
        max_quantile_values=args.max_quantile_values,
    )
    if use_cache:
        _print_cache_stats(analysis.cache_hits, analysis.cache_misses)
    print(analysis.profile.describe())
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from .store import ShardStore, is_shard_store

    path = _input_path(args, "store")
    if not is_shard_store(path):
        raise SystemExit(f"{path} is not a shard store")
    store = ShardStore(path)
    bad = store.verify()
    if not bad:
        print(f"store at {path} verified: {len(store)} shard(s) intact")
        return 0
    for index, streams in sorted(bad.items()):
        print(f"shard {index}: content mismatch in {', '.join(streams)}")
    print(f"verification FAILED: {len(bad)} of {len(store)} shard(s) corrupt")
    return 1


def _plan_validation_spec(args: argparse.Namespace, source):
    """Derive the 1x simulation operating point for --validate-at.

    A shard store remembers what produced it (app, seed, arrival rate
    in the shard manifests); a flat dump or bare model file falls back
    to ``--app`` and the app's default rate.
    """
    from .datacenter import FleetSpec
    from .store import ShardStore

    app = args.app
    rate = None
    if isinstance(source, ShardStore):
        manifest = min(source.manifests, key=lambda m: m.index)
        app = manifest.app
        rate = manifest.params.get("arrival_rate")
    if app == "mapreduce":
        raise SystemExit(
            "--validate-at needs a rate-scalable app; mapreduce runs a "
            "fixed job mix with no arrival rate"
        )
    return FleetSpec(
        app=app,
        replicas=args.validate_replicas,
        seed=args.seed,
        n_requests=args.validate_requests,
        arrival_rate=rate,
    )


def _cmd_plan(args: argparse.Namespace) -> int:
    import json

    from .queueing.plan import (
        cross_validate,
        fit_cluster_model,
        parse_multipliers,
        plan_sweep,
        validation_table,
    )

    path = _input_path(args, "source")
    try:
        multipliers = parse_multipliers(args.scale)
        validate_at = (
            parse_multipliers(args.validate_at) if args.validate_at else []
        )
    except ValueError as error:
        raise SystemExit(str(error))
    customers = args.customers if args.solver == "mva" else None
    spec = None
    if Path(path).is_dir():
        from .store import ShardStore, load_per_class_models

        source = _open_source(path)
        use_cache = args.cache and isinstance(source, ShardStore)
        models = None
        if args.model is not None:
            try:
                models = load_per_class_models(args.model)
            except (OSError, ValueError) as error:
                raise SystemExit(f"cannot load model {args.model}: {error}")
        try:
            cluster = fit_cluster_model(
                source,
                models=models,
                base_rate=args.rate,
                seed=args.seed,
                max_per_class=args.max_per_class,
                workers=args.workers,
                cache=use_cache,
            )
        except ValueError as error:
            raise SystemExit(str(error))
        if validate_at:
            spec = _plan_validation_spec(args, source)
    else:
        from .store import load_per_class_models

        try:
            models = load_per_class_models(path)
        except (OSError, ValueError) as error:
            raise SystemExit(f"cannot load model {path}: {error}")
        if args.rate is None:
            raise SystemExit(
                "a bare model file carries no arrival rates; pass --rate"
            )
        try:
            cluster = fit_cluster_model(
                models=models,
                base_rate=args.rate,
                seed=args.seed,
                max_per_class=args.max_per_class,
            )
        except ValueError as error:
            raise SystemExit(str(error))
        if validate_at:
            spec = _plan_validation_spec(args, None)
    try:
        plan = plan_sweep(
            cluster,
            multipliers,
            solver=args.solver,
            think_time=args.think_time,
            customers=customers,
        )
        validation = (
            cross_validate(
                cluster,
                validate_at,
                spec,
                solver=args.solver,
                think_time=args.think_time,
                customers=customers,
                workers=args.workers,
            )
            if validate_at
            else []
        )
    except ValueError as error:
        raise SystemExit(str(error))
    if args.json:
        payload = {
            "plan": plan.to_dict(),
            "validation": [p.to_dict() for p in validation],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(plan.to_text())
    if validation:
        print("cross-validation (analytic vs targeted simulation):")
        print(validation_table(validation))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import DriftThresholds, ServeConfig, ServeDaemon, ServeError

    path = _input_path(args, "store")
    config = ServeConfig(
        host=args.host,
        port=args.port,
        poll_interval=args.poll_interval,
        window=args.window,
        max_quantile_values=args.max_quantile_values,
        cache=args.cache,
        complete_rounds_only=not args.partial_rounds,
        model_path=args.model,
        checkpoint_path=args.checkpoint,
        ingest_port=args.ingest_port,
        ingest_host=args.host,
        ingest_socket=args.ingest_socket,
        drift_window_requests=args.drift_window,
        thresholds=DriftThresholds(
            ks=args.drift_ks_threshold,
            mix=args.drift_mix_threshold,
            rate_sigmas=args.drift_rate_sigmas,
        ),
    )
    daemon = ServeDaemon(path, config)
    try:
        daemon.start()
    except ServeError as error:
        raise SystemExit(str(error))
    host, port = daemon.http_address
    print(f"serving {path} on http://{host}:{port}", flush=True)
    if daemon.ingest is not None:
        print(f"ingest listening on {daemon.ingest.address}", flush=True)
    stop = threading.Event()
    previous = signal.signal(signal.SIGTERM, lambda signum, frame: stop.set())
    try:
        while not stop.wait(0.5):
            pass
        return 0
    finally:
        signal.signal(signal.SIGTERM, previous)
        # Runs on SIGTERM and KeyboardInterrupt alike: stops listeners,
        # commits any half-open ingest shard, writes the checkpoint.
        daemon.shutdown()


def build_parser() -> argparse.ArgumentParser:
    from ._version import tool_version

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Datacenter workload modeling: in-breadth, in-depth, KOOZA",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "checkpoint flags (one vocabulary across commands):\n"
            "  serve   --checkpoint PATH      one daemon-state snapshot file,\n"
            "                                 written after folds and at shutdown\n"
            "  collect --windows N            split each replica into N window\n"
            "                                 shards, engine-checkpointing at\n"
            "                                 every window boundary\n"
            "  collect --checkpoint-dir DIR   where those per-replica engine\n"
            "                                 checkpoints live (default\n"
            "                                 <out>/_checkpoints)\n"
            "  resume  --checkpoint-dir DIR   read the same directory to finish\n"
            "                                 an interrupted windowed collect\n"
            "All snapshot files share the repro.snapshot versioned format."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {tool_version()}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_input(cmd: argparse.ArgumentParser, attr: str) -> None:
        # Uniform input: `--in PATH` auto-detects shard stores vs flat
        # dumps; the pre-0.3 positional form stays as a hidden alias.
        cmd.add_argument(attr, type=Path, nargs="?", help=argparse.SUPPRESS)
        cmd.add_argument(
            "--in",
            dest="in_path",
            type=Path,
            default=None,
            metavar="PATH",
            help="input traces: a shard store or flat dump (auto-detected)",
        )

    def add_cache_flag(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument(
            "--cache",
            action=argparse.BooleanOptionalAction,
            default=True,
            help="reuse / persist per-shard analysis caches under "
            "<store>/_cache (shard stores only; default on)",
        )

    def add_collect_args(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument(
            "--app", choices=("gfs", "webapp", "mapreduce"), default="gfs"
        )
        cmd.add_argument("--requests", type=int, default=2000)
        cmd.add_argument("--seed", type=int, default=0)
        cmd.add_argument("--rate", type=float, default=25.0)
        cmd.add_argument(
            "--replicas",
            type=int,
            default=1,
            help="independent workload replicas to run and merge (default 1)",
        )
        cmd.add_argument(
            "--workers",
            type=int,
            default=1,
            help="worker processes for the replica fleet; 0 = all cores "
            "(merged traces are identical for any worker count)",
        )
        cmd.add_argument(
            "--sweep-rate",
            default=None,
            metavar="R1,R2,...",
            help="sweep arrival rate across replicas: each listed rate gets "
            "--replicas repetitions, recorded in shard manifests",
        )
        cmd.add_argument(
            "--gzip", action="store_true", help="gzip trace stream files"
        )
        cmd.add_argument(
            "--codec",
            choices=("jsonl", "columnar"),
            default="jsonl",
            help="shard stream layout: jsonl line files (default) or the "
            "binary columnar struct-of-arrays layout (vectorized "
            "analysis reads whole column buffers)",
        )
        cmd.add_argument(
            "--windows",
            type=int,
            default=1,
            help="split each replica into N window shards, checkpointing "
            "its engine at every boundary so a killed worker resumes "
            "from the last window (repro resume); the finished store "
            "merges identically to a single-shot collect (default 1)",
        )
        cmd.add_argument(
            "--checkpoint-dir",
            type=Path,
            default=None,
            help="directory for per-replica engine checkpoints (default "
            "<out>/_checkpoints; implies windowed collection)",
        )
        cmd.add_argument("--out", type=Path, required=True)
        cmd.add_argument(
            "--profile",
            type=Path,
            default=None,
            metavar="PATH",
            help="profile the collection under cProfile and dump pstats "
            "to PATH (load with python -m pstats PATH; with --workers > "
            "1 only the coordinating process is profiled — use "
            "--workers 1 to profile replica simulation itself)",
        )

    collect = sub.add_parser("collect", help="run a workload, save traces")
    add_collect_args(collect)
    collect.add_argument(
        "--flat",
        action="store_true",
        help="merge replicas in memory and save one flat dump instead of "
        "a sharded store",
    )
    collect.add_argument(
        "--append",
        action="store_true",
        help="add a collection round to an existing shard store instead "
        "of requiring a fresh --out directory",
    )
    collect.set_defaults(func=_cmd_collect)

    append = sub.add_parser(
        "append",
        help="add a collection round to an existing shard store "
        "(collect --append)",
    )
    add_collect_args(append)
    append.set_defaults(func=_cmd_collect, append=True, flat=False)

    resume = sub.add_parser(
        "resume",
        help="finish an interrupted windowed collect from its engine "
        "checkpoints (collect --windows)",
    )
    resume.add_argument(
        "--out",
        type=Path,
        required=True,
        help="the shard store an interrupted collect --windows was "
        "writing",
    )
    resume.add_argument(
        "--checkpoint-dir",
        type=Path,
        default=None,
        help="where that collect kept its engine checkpoints (default "
        "<out>/_checkpoints)",
    )
    resume.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes; 0 = all cores (the resumed store is "
        "identical for any worker count)",
    )
    resume.set_defaults(func=_cmd_resume)

    compact = sub.add_parser(
        "compact",
        help="fold a store's per-round manifests into one index.json",
    )
    add_input(compact, "store")
    compact.set_defaults(func=_cmd_compact)

    convert = sub.add_parser(
        "convert",
        help="rewrite a store or flat dump under another stream codec",
    )
    add_input(convert, "traces")
    convert.add_argument("--out", type=Path, required=True)
    convert.add_argument(
        "--codec", choices=("jsonl", "columnar"), required=True,
        help="target stream layout",
    )
    convert.add_argument(
        "--gzip", action="store_true",
        help="gzip the rewritten jsonl stream files",
    )
    convert.set_defaults(func=_cmd_convert)

    merge = sub.add_parser(
        "merge", help="stitch a sharded trace store into one flat dump"
    )
    add_input(merge, "store")
    merge.add_argument(
        "--out",
        type=Path,
        default=None,
        help="output directory (default: <store>/merged)",
    )
    merge.add_argument(
        "--gzip", action="store_true", help="gzip the merged stream files"
    )
    merge.set_defaults(func=_cmd_merge)

    train = sub.add_parser("train", help="train KOOZA from saved traces")
    add_input(train, "traces")
    train.add_argument("--model", type=Path, required=True)
    train.add_argument("--network-bins", type=int, default=8)
    train.add_argument("--storage-bins", type=int, default=6)
    train.add_argument("--memory-bins", type=int, default=6)
    train.add_argument("--cpu-bins", type=int, default=8)
    train.add_argument("--hierarchical", action="store_true")
    train.add_argument(
        "--per-class",
        action="store_true",
        help="fit one model per request class, fanned over shards",
    )
    train.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for --per-class fits; 0 = all cores",
    )
    add_cache_flag(train)
    train.set_defaults(func=_cmd_train)

    describe = sub.add_parser(
        "describe",
        help="print a trained model (or the profile of a trace directory)",
    )
    add_input(describe, "model")
    describe.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes when describing a shard store; 0 = all cores",
    )
    describe.set_defaults(func=_cmd_describe)

    validate = sub.add_parser(
        "validate", help="synthesize, replay and compare against traces"
    )
    add_input(validate, "traces")
    validate.add_argument(
        "--model",
        type=Path,
        default=None,
        help="trained model JSON (per-class table with --per-class); "
        "trained from the input traces when omitted",
    )
    validate.add_argument("--seed", type=int, default=42)
    validate.add_argument("--feature-limit", type=float, default=1.0)
    validate.add_argument(
        "--per-class",
        action="store_true",
        help="replay each request class's model and report Table-2 "
        "deviations per class plus the cross-class mix",
    )
    validate.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for streaming analysis over a shard "
        "store; 0 = all cores",
    )
    add_cache_flag(validate)
    validate.set_defaults(func=_cmd_validate)

    characterize = sub.add_parser(
        "characterize", help="in-breadth summary of saved traces"
    )
    add_input(characterize, "traces")
    characterize.add_argument("--window", type=float, default=0.25)
    characterize.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for streaming analysis over a shard "
        "store; 0 = all cores",
    )
    characterize.add_argument(
        "--max-quantile-values",
        type=int,
        default=None,
        metavar="N",
        help="bound every exact-quantile buffer at N values; beyond the "
        "bound quantiles degrade to reservoir estimates (default: exact)",
    )
    add_cache_flag(characterize)
    characterize.set_defaults(func=_cmd_characterize)

    verify = sub.add_parser(
        "verify",
        help="re-hash a store's stream files against its manifests",
    )
    add_input(verify, "store")
    verify.set_defaults(func=_cmd_verify)

    plan = sub.add_parser(
        "plan",
        help="analytic capacity plan: load sweep, saturation knee, "
        "simulation cross-validation",
    )
    add_input(plan, "source")
    plan.add_argument(
        "--model",
        type=Path,
        default=None,
        help="per-class model JSON (repro train --per-class); trained "
        "from the input traces when omitted",
    )
    plan.add_argument(
        "--scale",
        default="0.5:100:17",
        metavar="GRID",
        help="load-multiplier grid: LOW:HIGH:POINTS (geometric) or an "
        "explicit M1,M2,... list (default 0.5:100:17)",
    )
    plan.add_argument(
        "--validate-at",
        default=None,
        metavar="M1,M2,...",
        help="multipliers to cross-validate by targeted sharded "
        "simulation (same grid syntax as --scale)",
    )
    plan.add_argument(
        "--validate-requests",
        type=int,
        default=300,
        help="requests per replica in each validation run (default 300)",
    )
    plan.add_argument(
        "--validate-replicas",
        type=int,
        default=2,
        help="replicas per validation run (default 2)",
    )
    plan.add_argument(
        "--solver",
        choices=("jackson", "mva"),
        default="jackson",
        help="open Jackson network (default) or closed MVA with "
        "--customers interactive users",
    )
    plan.add_argument(
        "--customers",
        type=int,
        default=16,
        help="base closed population at 1x for --solver mva (default 16)",
    )
    plan.add_argument(
        "--think-time",
        type=float,
        default=0.0,
        help="think time in seconds between requests for --solver mva",
    )
    plan.add_argument(
        "--rate",
        type=float,
        default=None,
        help="base arrival rate (req/s) at 1x; required for a bare "
        "model file, overrides the profiled rate for traces",
    )
    plan.add_argument(
        "--app",
        choices=("gfs", "webapp"),
        default="gfs",
        help="app to simulate for --validate-at when the input is not "
        "a shard store (stores remember their own app)",
    )
    plan.add_argument("--seed", type=int, default=42)
    plan.add_argument(
        "--max-per-class",
        type=int,
        default=256,
        help="synthetic requests replayed per class to measure service "
        "demands (default 256)",
    )
    plan.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for analysis and validation fleets; "
        "0 = all cores",
    )
    plan.add_argument(
        "--json",
        action="store_true",
        help="emit the plan and validation points as JSON",
    )
    add_cache_flag(plan)
    plan.set_defaults(func=_cmd_plan)

    serve = sub.add_parser(
        "serve",
        help="serve live characterization of a (growing) shard store "
        "over HTTP",
    )
    add_input(serve, "store")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=9090,
        help="HTTP port for /healthz /metrics /profile /validate /drift "
        "(0 = ephemeral; default 9090)",
    )
    serve.add_argument(
        "--model",
        type=Path,
        default=None,
        help="per-class model JSON (repro train --per-class); enables "
        "/validate and model-based drift baselines",
    )
    serve.add_argument(
        "--poll-interval",
        type=float,
        default=2.0,
        help="seconds between store polls for appended rounds "
        "(<= 0 disables watching; default 2)",
    )
    serve.add_argument(
        "--checkpoint",
        type=Path,
        default=None,
        help="daemon state file: written after folds and at shutdown, "
        "restored at startup when it matches the store",
    )
    serve.add_argument(
        "--ingest-port",
        type=int,
        default=None,
        help="TCP port accepting line-delimited JSON records "
        "(0 = ephemeral; off by default)",
    )
    serve.add_argument(
        "--ingest-socket",
        type=Path,
        default=None,
        help="Unix socket path accepting line-delimited JSON records",
    )
    serve.add_argument("--window", type=float, default=0.25)
    serve.add_argument(
        "--max-quantile-values",
        type=int,
        default=None,
        metavar="N",
        help="bound every exact-quantile buffer at N values (must match "
        "the batch runs /profile should be byte-equal with)",
    )
    serve.add_argument(
        "--partial-rounds",
        action="store_true",
        help="fold complete shards as they appear instead of waiting "
        "for whole recorded rounds",
    )
    serve.add_argument(
        "--drift-window",
        type=int,
        default=256,
        help="recent completed requests judged for drift (default 256)",
    )
    serve.add_argument(
        "--drift-ks-threshold",
        type=float,
        default=0.25,
        help="KS distance that trips the latency drift alarm",
    )
    serve.add_argument(
        "--drift-mix-threshold",
        type=float,
        default=0.35,
        help="total-variation distance that trips the class-mix alarm",
    )
    serve.add_argument(
        "--drift-rate-sigmas",
        type=float,
        default=4.0,
        help="request-rate z-score that trips the rate alarm",
    )
    add_cache_flag(serve)
    serve.set_defaults(func=_cmd_serve)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        # Fleet workers / shard writers clean up via their context
        # managers (aborted shards leave no manifest); the serve path
        # additionally flushes ingest and checkpoints in its finally.
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
