"""Command-line interface: collect / train / describe / validate / characterize.

Mirrors the deployment the paper assumes — trace collection on the
cluster, model training offline, validation and studies anywhere:

    repro collect --app gfs --requests 2000 --out traces/
    repro collect --app gfs --replicas 8 --workers 4 --out traces/
    repro train traces/ --model model.json
    repro describe model.json
    repro validate traces/ --model model.json
    repro characterize traces/
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

__all__ = ["build_parser", "main"]


def _cmd_collect(args: argparse.Namespace) -> int:
    from .datacenter import (
        collect_fleet,
        run_gfs_workload,
        run_mapreduce_jobs,
        run_webapp_workload,
    )
    from .tracing import save_traces

    if args.replicas < 1:
        raise SystemExit(f"--replicas must be >= 1, got {args.replicas}")
    if args.replicas > 1:
        # Sharded fleet: N independent replicas fanned across worker
        # processes, merged onto one monotonic timeline.  The merged
        # traces depend only on (app, replicas, seed, ...), never on
        # the worker count.
        result = collect_fleet(
            app=args.app,
            replicas=args.replicas,
            seed=args.seed,
            n_requests=args.requests,
            arrival_rate=None if args.app == "mapreduce" else args.rate,
            workers=args.workers,
        )
        traces = result.traces
        extra = (
            f"; {args.replicas} replicas x {args.workers} workers "
            f"in {result.elapsed_seconds:.2f}s wall"
        )
    elif args.app == "gfs":
        traces = run_gfs_workload(
            n_requests=args.requests, seed=args.seed, arrival_rate=args.rate
        ).traces
        extra = ""
    elif args.app == "webapp":
        traces = run_webapp_workload(
            n_requests=args.requests, seed=args.seed, arrival_rate=args.rate
        )
        extra = ""
    elif args.app == "mapreduce":
        traces, _ = run_mapreduce_jobs(seed=args.seed)
        extra = ""
    else:
        raise SystemExit(f"unknown app {args.app!r}")
    save_traces(traces, args.out)
    summary = ", ".join(f"{k}={v}" for k, v in traces.summary().items())
    print(f"saved traces to {args.out} ({summary}{extra})")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from .core import KoozaConfig, KoozaTrainer, save_model
    from .tracing import load_traces

    traces = load_traces(args.traces)
    config = KoozaConfig(
        network_size_bins=args.network_bins,
        storage_size_bins=args.storage_bins,
        memory_size_bins=args.memory_bins,
        cpu_utilization_bins=args.cpu_bins,
        hierarchical_storage=args.hierarchical,
    )
    model = KoozaTrainer(config).fit(traces)
    save_model(model, args.model)
    print(
        f"trained on {model.n_training_requests} requests "
        f"({model.n_parameters} parameters); model written to {args.model}"
    )
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    from .core import load_model

    print(load_model(args.model).describe())
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .core import (
        KoozaTrainer,
        ReplayHarness,
        compare_workloads,
        load_model,
    )
    from .tracing import load_traces

    traces = load_traces(args.traces)
    if args.model:
        model = load_model(args.model)
    else:
        model = KoozaTrainer().fit(traces)
    n = len(traces.completed_requests())
    synthetic = model.synthesize(n, np.random.default_rng(args.seed))
    replayed = ReplayHarness(seed=args.seed + 1).replay(synthetic)
    try:
        report = compare_workloads(traces, replayed)
    except ValueError as error:
        # E.g. a model trained on a different workload: no common
        # request profiles at all — the strongest possible mismatch.
        print(f"validation failed: {error}")
        return 1
    print(report.to_table())
    print(
        f"worst feature deviation: {report.worst_feature_deviation_pct:.2f}%  "
        f"worst latency deviation: {report.worst_latency_deviation_pct:.2f}%"
    )
    return 0 if report.worst_feature_deviation_pct < args.feature_limit else 1


def _cmd_characterize(args: argparse.Namespace) -> int:
    from .breadth import (
        NetworkTrafficModel,
        StorageProfile,
        utilization_series,
    )
    from .stats import classify_utilization_pattern
    from .tracing import load_traces

    traces = load_traces(args.traces)
    if traces.storage:
        profile = StorageProfile.characterize(traces.storage)
        print(
            f"storage: {profile.n_ios} I/Os, read fraction "
            f"{profile.read_fraction:.2f}, mean size "
            f"{profile.mean_size / 1024:.1f} KiB, sequential "
            f"{profile.sequential_fraction:.2f}"
        )
    if traces.cpu:
        series = utilization_series(traces.cpu, window=args.window, cores=8)
        print(
            f"cpu: {series.size} windows, mean utilization "
            f"{series.mean() * 100:.1f}%, pattern "
            f"{classify_utilization_pattern(series)}"
        )
    if traces.network:
        model = NetworkTrafficModel().fit(traces.network)
        ch = model.characterization
        print(
            f"network: {ch.n_messages} arrivals at {ch.mean_rate:.1f}/s, "
            f"CoV {ch.interarrival_cov:.2f}, best fit "
            f"{ch.best_fit_family} (KS {ch.ks_statistic:.3f})"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Datacenter workload modeling: in-breadth, in-depth, KOOZA",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    collect = sub.add_parser("collect", help="run a workload, save traces")
    collect.add_argument(
        "--app", choices=("gfs", "webapp", "mapreduce"), default="gfs"
    )
    collect.add_argument("--requests", type=int, default=2000)
    collect.add_argument("--seed", type=int, default=0)
    collect.add_argument("--rate", type=float, default=25.0)
    collect.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="independent workload replicas to run and merge (default 1)",
    )
    collect.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the replica fleet; 0 = all cores "
        "(merged traces are identical for any worker count)",
    )
    collect.add_argument("--out", type=Path, required=True)
    collect.set_defaults(func=_cmd_collect)

    train = sub.add_parser("train", help="train KOOZA from saved traces")
    train.add_argument("traces", type=Path)
    train.add_argument("--model", type=Path, required=True)
    train.add_argument("--network-bins", type=int, default=8)
    train.add_argument("--storage-bins", type=int, default=6)
    train.add_argument("--memory-bins", type=int, default=6)
    train.add_argument("--cpu-bins", type=int, default=8)
    train.add_argument("--hierarchical", action="store_true")
    train.set_defaults(func=_cmd_train)

    describe = sub.add_parser("describe", help="print a trained model")
    describe.add_argument("model", type=Path)
    describe.set_defaults(func=_cmd_describe)

    validate = sub.add_parser(
        "validate", help="synthesize, replay and compare against traces"
    )
    validate.add_argument("traces", type=Path)
    validate.add_argument("--model", type=Path, default=None)
    validate.add_argument("--seed", type=int, default=42)
    validate.add_argument("--feature-limit", type=float, default=1.0)
    validate.set_defaults(func=_cmd_validate)

    characterize = sub.add_parser(
        "characterize", help="in-breadth summary of saved traces"
    )
    characterize.add_argument("traces", type=Path)
    characterize.add_argument("--window", type=float, default=0.25)
    characterize.set_defaults(func=_cmd_characterize)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
