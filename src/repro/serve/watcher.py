"""Store watcher: fold newly appended shards into resident accumulators.

Polls :func:`repro.store.take_snapshot` and folds whatever complete,
contiguous shards appeared beyond the resident prefix.  Per-shard
results go through the *same* analysis cache as the batch path — same
``analysis_key("profile", ...)`` parameters, same save format — so:

* a daemon restart warm-loads every previously analyzed shard from
  cache instead of re-reading stream files, and
* a batch ``repro characterize`` run after the daemon (or vice versa)
  hits the cache entries the other one populated.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from ..store.analyze import ShardAnalysisTask, analyze_shard
from ..store.cache import (
    analysis_key,
    load_analysis_cache,
    save_analysis_cache,
    shard_content_hash,
)
from ..store.manifest import ShardManifest
from ..store.watch import StoreSnapshot, take_snapshot
from .state import ResidentAnalysis

__all__ = ["PollResult", "StoreWatcher"]


class StoreShrunkError(RuntimeError):
    """The watched store lost shards the daemon already folded."""


@dataclass
class PollResult:
    """What one watcher poll changed."""

    snapshot: StoreSnapshot
    folded: list[ShardManifest] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    elapsed_seconds: float = 0.0

    @property
    def n_new_records(self) -> int:
        return sum(m.n_records for m in self.folded)


class StoreWatcher:
    """Folds a store's growing shard prefix into a resident analysis."""

    def __init__(
        self,
        directory: str | Path,
        cache: bool = True,
        complete_rounds_only: bool = True,
    ):
        self.directory = Path(directory)
        self.cache = cache
        self.complete_rounds_only = complete_rounds_only

    def key(self, resident: ResidentAnalysis) -> str:
        """The cache key — identical to ``analyze_source``'s."""
        return analysis_key(
            "profile",
            {
                "window": resident.window,
                "cores": resident.cores,
                "max_quantile_values": resident.max_quantile_values,
            },
        )

    def poll(
        self,
        resident: ResidentAnalysis,
        on_fold: Optional[Callable[[ShardManifest, StoreSnapshot], None]] = None,
    ) -> PollResult:
        """Fold every newly visible shard beyond the resident prefix.

        ``on_fold(manifest, snapshot)`` fires after each shard merges —
        the daemon uses it to feed the drift window and metrics.
        """
        start = time.perf_counter()
        snapshot = take_snapshot(
            self.directory, complete_rounds_only=self.complete_rounds_only
        )
        if snapshot.n_shards < len(resident.folded):
            raise StoreShrunkError(
                f"store {self.directory} has {snapshot.n_shards} foldable "
                f"shards but {len(resident.folded)} are already resident"
            )
        result = PollResult(snapshot=snapshot)
        key = self.key(resident)
        for manifest in snapshot.manifests[len(resident.folded):]:
            shard_dir = snapshot.dirs[manifest.index]
            offsets = snapshot.offsets[manifest.index]
            content_hash = shard_content_hash(shard_dir)
            entry = None
            if self.cache:
                entry = load_analysis_cache(
                    self.directory,
                    shard_dir.name,
                    key,
                    content_hash,
                    offsets,
                    codec=manifest.codec,
                )
            if entry is not None:
                result.cache_hits += 1
                shard_builder, shard_features, shard_classes = entry
            else:
                result.cache_misses += 1
                shard_builder, shard_features, shard_classes = analyze_shard(
                    ShardAnalysisTask(
                        directory=str(self.directory),
                        shard_index=manifest.index,
                        offsets=offsets,
                        window=resident.window,
                        cores=resident.cores,
                        max_quantile_values=resident.max_quantile_values,
                    )
                )
                if self.cache:
                    save_analysis_cache(
                        self.directory,
                        shard_dir.name,
                        key,
                        content_hash,
                        offsets,
                        shard_builder,
                        shard_features,
                        shard_classes,
                        compress=manifest.compress,
                        codec=manifest.codec,
                    )
            resident.fold(manifest, shard_builder, shard_features, shard_classes)
            result.folded.append(manifest)
            if on_fold is not None:
                on_fold(manifest, snapshot)
        result.elapsed_seconds = time.perf_counter() - start
        return result
