"""Online characterization: the ``repro serve`` subsystem.

Turns the batch collect→characterize→validate pipeline into a
long-lived service.  A :class:`ServeDaemon` watches a shard store for
appended rounds (:class:`StoreWatcher`), optionally ingests live
records over a socket (:class:`IngestServer` → normal store rounds),
keeps resident streaming accumulators equal to a batch re-analysis
(:class:`ResidentAnalysis`), checkpoints them between restarts
(:class:`ServeState`), and serves profile / validation / drift /
metrics endpoints over HTTP.  See ``docs/serving.md``.
"""

from .daemon import ServeConfig, ServeDaemon, ServeError
from .drift import Alarm, DriftBaseline, DriftMonitor, DriftReport, DriftThresholds
from .ingest import IngestError, IngestServer, IngestSink
from .metrics import Counter, Gauge, MetricsRegistry, parse_exposition
# Quiet compatibility alias: the canonical constant is
# repro.snapshot.SNAPSHOT_VERSION (the repro.serve.state attribute of the
# old name still works but warns).
from ..snapshot import SNAPSHOT_VERSION as SERVE_STATE_VERSION
from .state import (
    SERVE_STATE_FORMAT,
    FoldedShard,
    ResidentAnalysis,
    ServeState,
)
from .watcher import PollResult, StoreWatcher

__all__ = [
    "Alarm",
    "Counter",
    "DriftBaseline",
    "DriftMonitor",
    "DriftReport",
    "DriftThresholds",
    "FoldedShard",
    "Gauge",
    "IngestError",
    "IngestServer",
    "IngestSink",
    "MetricsRegistry",
    "PollResult",
    "ResidentAnalysis",
    "SERVE_STATE_FORMAT",
    "SERVE_STATE_VERSION",
    "ServeConfig",
    "ServeDaemon",
    "ServeError",
    "ServeState",
    "StoreWatcher",
    "parse_exposition",
]
