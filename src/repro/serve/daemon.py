"""The ``repro serve`` daemon: characterization as a service.

One long-lived process tying the serve subsystem together:

* verifies the store's content hashes at startup (a corrupt store is
  refused, same check as ``repro verify``),
* restores resident accumulators from a :class:`ServeState` checkpoint
  when one matches the store, else cold-folds through the shared
  analysis cache,
* polls :class:`~repro.serve.watcher.StoreWatcher` so appended rounds
  fold in while the daemon runs (and feed the drift window),
* optionally ingests live records over a socket
  (:mod:`repro.serve.ingest`), each commit becoming a normal store
  round the next poll folds,
* serves ``/healthz``, ``/metrics``, ``/profile``, ``/validate`` and
  ``/drift`` from a threaded stdlib HTTP server.

``/profile?format=text`` returns exactly what batch
``repro characterize`` prints for the same store and parameters — the
equality the tests and the CI smoke job diff byte-for-byte.
"""

from __future__ import annotations

import dataclasses
import json
import threading
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Optional
from urllib.parse import parse_qs, urlparse

from .._version import tool_version
from ..store.analyze import validate_per_class
from ..store.shards import ShardStore, is_shard_store, shifter_for
from ..store.training import load_per_class_models
from .drift import DriftBaseline, DriftMonitor, DriftThresholds
from .ingest import IngestServer, IngestSink
from .metrics import MetricsRegistry
from .state import ResidentAnalysis, ServeState
from .watcher import PollResult, StoreWatcher

__all__ = ["ServeConfig", "ServeDaemon", "ServeError"]


class ServeError(RuntimeError):
    """The daemon cannot (or refuses to) start."""


@dataclass
class ServeConfig:
    """Everything ``repro serve`` can tune."""

    host: str = "127.0.0.1"
    port: int = 9090
    #: Seconds between store polls; <= 0 disables the poll thread
    #: (polls then only happen via :meth:`ServeDaemon.poll_once`).
    poll_interval: float = 2.0
    #: Analysis parameters — must match the batch run you want
    #: ``/profile`` to be byte-equal with.
    window: float = 0.25
    cores: int = 8
    max_quantile_values: Optional[int] = None
    cache: bool = True
    #: Fold only whole recorded rounds (see ``repro.store.watch``).
    complete_rounds_only: bool = True
    #: Trained per-class KOOZA models (``repro train --per-class``);
    #: enables ``/validate`` and model-based drift baselines.
    model_path: Optional[Path] = None
    checkpoint_path: Optional[Path] = None
    #: Live-ingest listeners (either, both, or neither).
    ingest_port: Optional[int] = None
    ingest_host: str = "127.0.0.1"
    ingest_socket: Optional[Path] = None
    ingest_codec: str = "jsonl"
    #: Drift window: last N completed requests, rate over keep×window s.
    drift_window_requests: int = 256
    drift_rate_window: float = 1.0
    drift_rate_keep: int = 60
    drift_seed: int = 42
    thresholds: DriftThresholds = field(default_factory=DriftThresholds)


class ServeDaemon:
    """Owns the resident analysis and every serving thread."""

    def __init__(self, directory: str | Path, config: Optional[ServeConfig] = None):
        self.directory = Path(directory)
        self.config = config or ServeConfig()
        self.registry = MetricsRegistry()
        self._lock = threading.RLock()
        self.resident: ResidentAnalysis = ResidentAnalysis(
            window=self.config.window,
            cores=self.config.cores,
            max_quantile_values=self.config.max_quantile_values,
        )
        self.watcher = StoreWatcher(
            self.directory,
            cache=self.config.cache,
            complete_rounds_only=self.config.complete_rounds_only,
        )
        self.models: Optional[dict[str, Any]] = None
        self.monitor: Optional[DriftMonitor] = None
        self.restored_from_checkpoint = False
        self._http: Optional[ThreadingHTTPServer] = None
        self._http_thread: Optional[threading.Thread] = None
        self._poll_thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self.ingest: Optional[IngestServer] = None
        self._validation_cache: Optional[tuple[int, Any]] = None
        self._init_metrics()

    # -- startup -------------------------------------------------------------

    def start(self) -> "ServeDaemon":
        """Verify, warm-load, baseline, then start all serving threads."""
        config = self.config
        if not is_shard_store(self.directory):
            raise ServeError(f"{self.directory} is not a shard store")
        store = ShardStore(self.directory)
        bad = store.verify()
        if bad:
            detail = "; ".join(
                f"shard {index}: {', '.join(streams)}"
                for index, streams in sorted(bad.items())
            )
            raise ServeError(
                f"refusing to serve {self.directory}: content-hash "
                f"verification failed ({detail}) — see `repro verify`"
            )
        if config.model_path is not None:
            try:
                self.models = load_per_class_models(config.model_path)
            except (OSError, ValueError) as error:
                raise ServeError(f"cannot load models: {error}") from error
        self._restore_checkpoint()
        self.poll_once()  # cold-fold (or top up) the current prefix
        self._build_monitor()
        self._http = ThreadingHTTPServer(
            (config.host, config.port), _EndpointHandler
        )
        self._http.daemon_ref = self  # type: ignore[attr-defined]
        self._http.daemon_threads = True
        self._http_thread = threading.Thread(
            target=self._http.serve_forever, name="repro-serve-http", daemon=True
        )
        self._http_thread.start()
        if config.ingest_port is not None or config.ingest_socket is not None:
            sink = IngestSink(
                self.directory, codec=config.ingest_codec
            )
            self.ingest = IngestServer(
                sink,
                host=config.ingest_host,
                port=config.ingest_port,
                socket_path=config.ingest_socket,
                on_record=self._on_ingest_record,
                on_commit=self._on_ingest_commit,
            )
            self.ingest.start()
        if config.poll_interval > 0:
            self._poll_thread = threading.Thread(
                target=self._poll_loop, name="repro-serve-poll", daemon=True
            )
            self._poll_thread.start()
        return self

    def _restore_checkpoint(self) -> None:
        path = self.config.checkpoint_path
        if path is None or not Path(path).exists():
            return
        try:
            state = ServeState.load(path)
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            return  # unreadable/stale checkpoint: cold-fold instead
        resident = state.resident
        if (
            resident.window != self.config.window
            or resident.cores != self.config.cores
            or resident.max_quantile_values != self.config.max_quantile_values
        ):
            return
        from ..store.watch import take_snapshot

        snapshot = take_snapshot(
            self.directory,
            complete_rounds_only=self.config.complete_rounds_only,
        )
        if not resident.matches_prefix(snapshot.manifests):
            return
        with self._lock:
            self.resident = resident
            self.restored_from_checkpoint = True
            self._drift_state = state.drift

    def _make_baseline(self) -> DriftBaseline:
        """Drift baseline from the loaded models or the folded history.

        Caller holds the lock.
        """
        resident = self.resident
        counts = dict(resident.builder.class_counts.counts)
        total = sum(counts.values())
        extent = resident.builder.max_extent
        mean_rate = total / extent if extent > 0 else 0.0
        if self.models:
            return DriftBaseline.from_models(
                self.models, counts, mean_rate, seed=self.config.drift_seed
            )
        return DriftBaseline.from_resident(resident)

    def _build_monitor(self) -> None:
        config = self.config
        with self._lock:
            self.monitor = DriftMonitor(
                self._make_baseline(),
                window_requests=config.drift_window_requests,
                rate_window=config.drift_rate_window,
                rate_keep=config.drift_rate_keep,
                thresholds=config.thresholds,
            )
            drift_state = getattr(self, "_drift_state", None)
            if drift_state is not None:
                try:
                    self.monitor.restore(drift_state)
                except (ValueError, KeyError, TypeError):
                    pass  # incompatible window: start the window empty

    # -- folding / polling ---------------------------------------------------

    def poll_once(self) -> PollResult:
        """One watcher poll: fold new shards, feed drift, update metrics."""
        with self._lock:
            result = self.watcher.poll(self.resident)
            if result.folded:
                # A daemon started on an empty (or request-free) store
                # baselined against zero latencies; rebuild from the
                # now-folded history so drift can ever become ready.
                if (
                    self.monitor is not None
                    and self.monitor.baseline.latencies.size == 0
                ):
                    self.monitor.baseline = self._make_baseline()
                self._feed_drift(result)
                self._validation_cache = None
            self._update_metrics(result)
        if result.folded and self.config.checkpoint_path is not None:
            self.checkpoint()
        return result

    def _feed_drift(self, result: PollResult) -> None:
        if self.monitor is None:
            return
        store = ShardStore(self.directory)
        for manifest in result.folded:
            offsets = result.snapshot.offsets[manifest.index]
            shift = shifter_for("requests", offsets)
            for record in store.iter_shard_stream(manifest, "requests"):
                self.monitor.observe(shift(record))
        report = self.monitor.check()
        self._publish_drift(report)

    def _poll_loop(self) -> None:
        while not self._stop.wait(self.config.poll_interval):
            try:
                self.poll_once()
            except Exception:  # noqa: BLE001 - keep serving on poll errors
                self.registry.counter(
                    "repro_poll_errors_total", "Store polls that raised."
                ).inc()

    def _on_ingest_record(self, stream: str) -> None:
        self._ingest_records.inc(stream=stream or "unknown")

    def _on_ingest_commit(self, manifest) -> None:
        self._ingest_commits.inc()
        # Fold the committed round immediately rather than on the next
        # poll tick, so an ingest client's commit ack means "visible".
        try:
            self.poll_once()
        except Exception:  # noqa: BLE001
            pass

    # -- metrics -------------------------------------------------------------

    def _init_metrics(self) -> None:
        registry = self.registry
        registry.gauge(
            "repro_build_info", "Daemon build metadata.", ("version",)
        ).set(1.0, version=tool_version())
        self._records = registry.counter(
            "repro_records_total",
            "Records folded into the resident profile, by stream.",
            ("stream",),
        )
        self._requests = registry.counter(
            "repro_requests_total",
            "Completed requests folded, by request class.",
            ("request_class",),
        )
        self._rate = registry.gauge(
            "repro_request_rate_per_second",
            "Mean completed-request rate over the folded history.",
        )
        self._class_rate = registry.gauge(
            "repro_request_class_rate_per_second",
            "Mean completed-request rate per class over the folded history.",
            ("request_class",),
        )
        self._folds = registry.counter(
            "repro_folds_total", "Watcher polls that folded new shards."
        )
        self._fold_seconds = registry.counter(
            "repro_fold_seconds_total", "Wall seconds spent folding shards."
        )
        self._shards = registry.gauge(
            "repro_shards_folded", "Shards in the resident prefix."
        )
        self._generation = registry.gauge(
            "repro_profile_generation", "Fold generation of the profile."
        )
        self._cache_hits = registry.counter(
            "repro_cache_hits_total", "Per-shard analysis cache hits."
        )
        self._cache_misses = registry.counter(
            "repro_cache_misses_total", "Per-shard analysis cache misses."
        )
        self._http_requests = registry.counter(
            "repro_http_requests_total", "HTTP requests served.", ("path",)
        )
        self._ingest_records = registry.counter(
            "repro_ingest_records_total",
            "Records accepted over the ingest socket, by stream.",
            ("stream",),
        )
        self._ingest_commits = registry.counter(
            "repro_ingest_commits_total", "Ingest rounds committed."
        )
        self._drift_ks = registry.gauge(
            "repro_drift_ks", "KS distance, drift window vs baseline."
        )
        self._drift_mix = registry.gauge(
            "repro_drift_mix_distance",
            "Total-variation distance of the class mix vs baseline.",
        )
        self._drift_rate_z = registry.gauge(
            "repro_drift_rate_zscore", "Request-rate z-score vs baseline."
        )
        self._drift_alarm = registry.gauge(
            "repro_drift_alarm", "Drift alarm state (1 firing).", ("signal",)
        )

    def _update_metrics(self, result: PollResult) -> None:
        for manifest in result.folded:
            for stream, count in manifest.counts.items():
                if count:
                    self._records.inc(count, stream=stream)
            for cls_name, count in manifest.request_classes.items():
                self._requests.inc(count, request_class=cls_name)
        if result.folded:
            self._folds.inc()
        self._fold_seconds.inc(result.elapsed_seconds)
        self._cache_hits.inc(result.cache_hits)
        self._cache_misses.inc(result.cache_misses)
        self._shards.set(len(self.resident.folded))
        self._generation.set(self.resident.generation)
        builder = self.resident.builder
        extent = builder.max_extent
        if extent > 0:
            counts = builder.class_counts.counts
            self._rate.set(sum(counts.values()) / extent)
            for cls_name, count in counts.items():
                self._class_rate.set(count / extent, request_class=cls_name)

    def _publish_drift(self, report) -> None:
        self._drift_ks.set(report.ks)
        self._drift_mix.set(report.mix_distance)
        self._drift_rate_z.set(report.rate_zscore)
        for signal, firing in report.alarms.items():
            self._drift_alarm.set(1.0 if firing else 0.0, signal=signal)

    # -- endpoint payloads (handler calls these under no extra lock) ---------

    def healthz(self) -> dict[str, Any]:
        with self._lock:
            return {
                "status": "ok",
                "version": tool_version(),
                "store": str(self.directory),
                "shards": len(self.resident.folded),
                "generation": self.resident.generation,
                "requests": self.resident.n_requests,
                "ingest": self.ingest is not None,
                "restored_from_checkpoint": self.restored_from_checkpoint,
            }

    def profile_text(self) -> str:
        with self._lock:
            return self.resident.profile().describe() + "\n"

    def profile_json(self) -> dict[str, Any]:
        with self._lock:
            profile = self.resident.profile()
            return {
                "generation": self.resident.generation,
                "shards": len(self.resident.folded),
                "profile": dataclasses.asdict(profile),
                "describe": profile.describe(),
            }

    def validation(self):
        if not self.models:
            raise ServeError("no per-class model loaded (start with --model)")
        with self._lock:
            generation = self.resident.generation
            if (
                self._validation_cache is not None
                and self._validation_cache[0] == generation
            ):
                return self._validation_cache[1]
            result = validate_per_class(
                None,
                models=self.models,
                seed=self.config.drift_seed,
                analysis=self.resident.analysis(),
            )
            self._validation_cache = (generation, result)
            return result

    def drift_report(self):
        with self._lock:
            if self.monitor is None:
                raise ServeError("drift monitoring is not initialized")
            report = self.monitor.check()
            self._publish_drift(report)
            return report

    # -- lifecycle -----------------------------------------------------------

    @property
    def http_address(self) -> tuple[str, int]:
        if self._http is None:
            raise ServeError("daemon not started")
        host, port = self._http.server_address[:2]
        return str(host), int(port)

    def checkpoint(self) -> Optional[Path]:
        path = self.config.checkpoint_path
        if path is None:
            return None
        with self._lock:
            state = ServeState(
                resident=self.resident,
                drift=self.monitor.state() if self.monitor else None,
                tool_version=tool_version(),
                store=str(self.directory),
            )
            return state.save(path)

    def shutdown(self) -> None:
        """Stop threads, flush pending ingest, write the checkpoint."""
        self._stop.set()
        if self._poll_thread is not None:
            self._poll_thread.join(timeout=10.0)
            self._poll_thread = None
        if self.ingest is not None:
            self.ingest.stop()
            manifest = self.ingest.sink.close()
            if manifest is not None:
                try:
                    self.poll_once()  # fold the flushed round
                except Exception:  # noqa: BLE001
                    pass
            self.ingest = None
        if self._http is not None:
            self._http.shutdown()
            self._http.server_close()
            if self._http_thread is not None:
                self._http_thread.join(timeout=5.0)
                self._http_thread = None
            self._http = None
        self.checkpoint()


class _EndpointHandler(BaseHTTPRequestHandler):
    """Routes GETs to the daemon's payload methods."""

    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # metrics carry the request counts; stderr stays quiet

    def _send(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: Any) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        self._send(status, body, "application/json")

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        self._send(status, text.encode(), content_type)

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        daemon: ServeDaemon = self.server.daemon_ref  # type: ignore[attr-defined]
        parsed = urlparse(self.path)
        path = parsed.path.rstrip("/") or "/"
        query = parse_qs(parsed.query)
        as_text = query.get("format", [""])[0] == "text"
        daemon._http_requests.inc(path=path)
        try:
            if path in ("/", "/healthz"):
                self._send_json(200, daemon.healthz())
            elif path == "/metrics":
                self._send_text(
                    200,
                    daemon.registry.render(),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif path == "/profile":
                if as_text:
                    self._send_text(
                        200, daemon.profile_text(), "text/plain; charset=utf-8"
                    )
                else:
                    self._send_json(200, daemon.profile_json())
            elif path == "/validate":
                result = daemon.validation()
                if as_text:
                    self._send_text(
                        200,
                        result.to_table() + "\n",
                        "text/plain; charset=utf-8",
                    )
                else:
                    self._send_json(
                        200,
                        {
                            "table": result.to_table(),
                            "n_validated": result.n_validated,
                            "classes": [
                                {
                                    "request_class": c.request_class,
                                    "n_original": c.n_original,
                                    "n_synthetic": c.n_synthetic,
                                    "error": c.error,
                                }
                                for c in result.classes
                            ],
                        },
                    )
            elif path == "/drift":
                self._send_json(200, daemon.drift_report().to_dict())
            else:
                self._send_json(404, {"error": f"unknown path {path!r}"})
        except ServeError as error:
            self._send_json(503, {"error": str(error)})
        except Exception as error:  # noqa: BLE001 - keep the daemon alive
            self._send_json(500, {"error": f"{type(error).__name__}: {error}"})
