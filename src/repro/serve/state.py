"""Daemon state: resident accumulators and checkpoint/restore.

:class:`ResidentAnalysis` is the daemon's long-lived mirror of one
:func:`repro.store.analyze_source` reduction — the same fresh
``WorkloadProfileBuilder`` / ``WorkloadFeatureStats`` / per-class dict,
folded with the same sequential left-merge in shard-index order.  That
sameness is the whole point: folding appended shards one poll at a time
lands on accumulators *equal* to a batch re-analysis of the full store,
so ``/profile`` can promise byte-equality with ``repro characterize``.

:class:`ServeState` wraps the resident accumulators (plus the drift
monitor's window) in a versioned JSON checkpoint.  On restart the
daemon restores it, validates the folded-shard ledger against what is
on disk (combined content hashes from the manifests — no re-hashing of
stream files), and resumes; a stale or mismatched checkpoint is
discarded and the store is cold-folded through the analysis cache
instead, which is merely slower, never wrong.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional

from ..store.analyze import SourceAnalysis
from ..store.manifest import ShardManifest

__all__ = [
    "SERVE_STATE_FORMAT",
    "SERVE_STATE_VERSION",
    "FoldedShard",
    "ResidentAnalysis",
    "ServeState",
]

SERVE_STATE_FORMAT = "repro-serve-state"
SERVE_STATE_VERSION = 1


@dataclass(frozen=True)
class FoldedShard:
    """Ledger entry: one shard the resident accumulators have absorbed."""

    index: int
    #: Combined content digest, from the manifest's per-stream hashes.
    digest: str
    round: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {"index": self.index, "digest": self.digest, "round": self.round}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FoldedShard":
        return cls(
            index=int(data["index"]),
            digest=str(data["digest"]),
            round=int(data.get("round", 0)),
        )


def manifest_digest(manifest: ShardManifest) -> str:
    """The shard's combined content digest ("" for hashless v1 shards)."""
    from ..store.cache import combine_hashes

    return (
        combine_hashes(manifest.content_hashes)
        if manifest.content_hashes
        else ""
    )


class ResidentAnalysis:
    """Live merged accumulators over a contiguous folded-shard prefix."""

    def __init__(
        self,
        window: float = 0.25,
        cores: int = 8,
        max_quantile_values: Optional[int] = None,
    ):
        from ..core import WorkloadFeatureStats, WorkloadProfileBuilder

        self.window = window
        self.cores = cores
        self.max_quantile_values = max_quantile_values
        self.builder = WorkloadProfileBuilder(
            window=window, cores=cores, max_quantile_values=max_quantile_values
        )
        self.features = WorkloadFeatureStats()
        self.per_class: dict[str, Any] = {}
        self.folded: list[FoldedShard] = []
        #: Bumped on every fold; endpoint caches key on it.
        self.generation = 0

    @property
    def next_index(self) -> int:
        """The only shard index :meth:`fold` will accept next."""
        return len(self.folded)

    @property
    def n_requests(self) -> int:
        return self.features.n

    def fold(self, manifest: ShardManifest, shard_builder, shard_features,
             shard_classes: Mapping[str, Any]) -> None:
        """Left-merge one shard's accumulators, exactly like the batch
        reduce in :func:`repro.store.analyze_source` (same order, same
        adopt-or-merge per-class rule)."""
        if manifest.index != self.next_index:
            raise ValueError(
                f"fold out of order: expected shard {self.next_index}, "
                f"got {manifest.index}"
            )
        self.builder.merge(shard_builder)
        self.features.merge(shard_features)
        for cls, stats in shard_classes.items():
            if cls in self.per_class:
                self.per_class[cls].merge(stats)
            else:
                self.per_class[cls] = stats
        self.folded.append(
            FoldedShard(
                index=manifest.index,
                digest=manifest_digest(manifest),
                round=manifest.round,
            )
        )
        self.generation += 1

    def profile(self):
        return self.builder.profile()

    def analysis(self) -> SourceAnalysis:
        """The batch-shaped view, accepted by ``validate_per_class``."""
        return SourceAnalysis(
            profile=self.builder.profile(),
            features=self.features,
            per_class=dict(sorted(self.per_class.items())),
        )

    def matches_prefix(self, manifests) -> bool:
        """Whether the folded ledger equals the store's current prefix."""
        if len(manifests) < len(self.folded):
            return False
        return all(
            entry.index == manifest.index
            and entry.digest == manifest_digest(manifest)
            for entry, manifest in zip(self.folded, manifests)
        )

    # -- snapshots -----------------------------------------------------------

    def state(self) -> dict[str, Any]:
        return {
            "kind": "resident-analysis",
            "version": SERVE_STATE_VERSION,
            "window": self.window,
            "cores": self.cores,
            "max_quantile_values": self.max_quantile_values,
            "builder": self.builder.state(),
            "features": self.features.state(),
            "per_class": [
                [cls, stats.state()]
                for cls, stats in sorted(self.per_class.items())
            ],
            "folded": [entry.to_dict() for entry in self.folded],
            "generation": self.generation,
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "ResidentAnalysis":
        from ..core import WorkloadFeatureStats, WorkloadProfileBuilder

        if state.get("kind") != "resident-analysis":
            raise ValueError(f"not a resident-analysis state: {state.get('kind')!r}")
        version = state.get("version")
        if not isinstance(version, int) or version > SERVE_STATE_VERSION:
            raise ValueError(f"unsupported resident-analysis version {version!r}")
        max_quantile_values = state.get("max_quantile_values")
        resident = cls(
            window=float(state["window"]),
            cores=int(state["cores"]),
            max_quantile_values=(
                None if max_quantile_values is None else int(max_quantile_values)
            ),
        )
        resident.builder = WorkloadProfileBuilder.from_state(state["builder"])
        resident.features = WorkloadFeatureStats.from_state(state["features"])
        resident.per_class = {
            str(name): WorkloadFeatureStats.from_state(stats)
            for name, stats in state["per_class"]
        }
        resident.folded = [
            FoldedShard.from_dict(entry) for entry in state["folded"]
        ]
        resident.generation = int(state.get("generation", len(resident.folded)))
        return resident


@dataclass
class ServeState:
    """Versioned daemon checkpoint: resident analysis + drift window."""

    resident: ResidentAnalysis
    drift: Optional[dict[str, Any]] = None
    tool_version: str = ""
    store: str = ""
    extra: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "format": SERVE_STATE_FORMAT,
            "version": SERVE_STATE_VERSION,
            "tool_version": self.tool_version,
            "store": self.store,
            "resident": self.resident.state(),
            "drift": self.drift,
            "extra": self.extra,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServeState":
        fmt = data.get("format")
        if fmt != SERVE_STATE_FORMAT:
            raise ValueError(f"not a serve checkpoint (format {fmt!r})")
        version = data.get("version")
        if not isinstance(version, int) or version > SERVE_STATE_VERSION:
            raise ValueError(f"unsupported serve checkpoint version {version!r}")
        return cls(
            resident=ResidentAnalysis.from_state(data["resident"]),
            drift=data.get("drift"),
            tool_version=str(data.get("tool_version", "")),
            store=str(data.get("store", "")),
            extra=dict(data.get("extra", {})),
        )

    def save(self, path: str | Path) -> Path:
        """Atomic write (unique temp + rename).

        The temp file is unique per call (not a fixed ``<name>.tmp``),
        so concurrent saves from different threads each publish a whole
        checkpoint via ``os.replace`` — last writer wins, never a torn
        file.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=path.name + ".", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(json.dumps(self.to_dict(), sort_keys=True) + "\n")
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    @classmethod
    def load(cls, path: str | Path) -> "ServeState":
        return cls.from_dict(json.loads(Path(path).read_text()))
