"""Daemon state: resident accumulators and checkpoint/restore.

:class:`ResidentAnalysis` is the daemon's long-lived mirror of one
:func:`repro.store.analyze_source` reduction — the same fresh
``WorkloadProfileBuilder`` / ``WorkloadFeatureStats`` / per-class dict,
folded with the same sequential left-merge in shard-index order.  That
sameness is the whole point: folding appended shards one poll at a time
lands on accumulators *equal* to a batch re-analysis of the full store,
so ``/profile`` can promise byte-equality with ``repro characterize``.

:class:`ServeState` wraps the resident accumulators (plus the drift
monitor's window) in a versioned JSON checkpoint following the
repository-wide :mod:`repro.snapshot` protocol.  On restart the daemon
restores it, validates the folded-shard ledger against what is on disk
(combined content hashes from the manifests — no re-hashing of stream
files), and resumes; a stale or mismatched checkpoint is discarded and
the store is cold-folded through the analysis cache instead, which is
merely slower, never wrong.

``SERVE_STATE_VERSION`` is now an alias of
:data:`repro.snapshot.SNAPSHOT_VERSION`; importing it from here still
works but emits ``DeprecationWarning`` (removed one release after 1.0).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional

from ..snapshot import (
    SNAPSHOT_VERSION as _SNAPSHOT_VERSION,
    SnapshotFormatError,
    check_state as _check_state,
    load_snapshot,
    save_snapshot,
)
from ..store.analyze import SourceAnalysis
from ..store.manifest import ShardManifest

__all__ = [
    "SERVE_STATE_FORMAT",
    "SERVE_STATE_VERSION",
    "FoldedShard",
    "ResidentAnalysis",
    "ServeState",
]

SERVE_STATE_FORMAT = "repro-serve-state"

_MOVED_TO_SNAPSHOT = {"SERVE_STATE_VERSION": _SNAPSHOT_VERSION}


def __getattr__(name: str) -> Any:
    if name in _MOVED_TO_SNAPSHOT:
        warnings.warn(
            f"repro.serve.state.{name} is deprecated; use "
            "repro.snapshot.SNAPSHOT_VERSION instead. The alias will be "
            "removed one release after 1.0.",
            DeprecationWarning,
            stacklevel=2,
        )
        return _MOVED_TO_SNAPSHOT[name]
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass(frozen=True)
class FoldedShard:
    """Ledger entry: one shard the resident accumulators have absorbed."""

    index: int
    #: Combined content digest, from the manifest's per-stream hashes.
    digest: str
    round: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {"index": self.index, "digest": self.digest, "round": self.round}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FoldedShard":
        return cls(
            index=int(data["index"]),
            digest=str(data["digest"]),
            round=int(data.get("round", 0)),
        )


def manifest_digest(manifest: ShardManifest) -> str:
    """The shard's combined content digest ("" for hashless v1 shards)."""
    from ..store.cache import combine_hashes

    return (
        combine_hashes(manifest.content_hashes)
        if manifest.content_hashes
        else ""
    )


class ResidentAnalysis:
    """Live merged accumulators over a contiguous folded-shard prefix."""

    def __init__(
        self,
        window: float = 0.25,
        cores: int = 8,
        max_quantile_values: Optional[int] = None,
    ):
        from ..core import WorkloadFeatureStats, WorkloadProfileBuilder

        self.window = window
        self.cores = cores
        self.max_quantile_values = max_quantile_values
        self.builder = WorkloadProfileBuilder(
            window=window, cores=cores, max_quantile_values=max_quantile_values
        )
        self.features = WorkloadFeatureStats()
        self.per_class: dict[str, Any] = {}
        self.folded: list[FoldedShard] = []
        #: Bumped on every fold; endpoint caches key on it.
        self.generation = 0

    @property
    def next_index(self) -> int:
        """The only shard index :meth:`fold` will accept next."""
        return len(self.folded)

    @property
    def n_requests(self) -> int:
        return self.features.n

    def fold(self, manifest: ShardManifest, shard_builder, shard_features,
             shard_classes: Mapping[str, Any]) -> None:
        """Left-merge one shard's accumulators, exactly like the batch
        reduce in :func:`repro.store.analyze_source` (same order, same
        adopt-or-merge per-class rule)."""
        if manifest.index != self.next_index:
            raise ValueError(
                f"fold out of order: expected shard {self.next_index}, "
                f"got {manifest.index}"
            )
        self.builder.merge(shard_builder)
        self.features.merge(shard_features)
        for cls, stats in shard_classes.items():
            if cls in self.per_class:
                self.per_class[cls].merge(stats)
            else:
                self.per_class[cls] = stats
        self.folded.append(
            FoldedShard(
                index=manifest.index,
                digest=manifest_digest(manifest),
                round=manifest.round,
            )
        )
        self.generation += 1

    def profile(self):
        return self.builder.profile()

    def analysis(self) -> SourceAnalysis:
        """The batch-shaped view, accepted by ``validate_per_class``."""
        return SourceAnalysis(
            profile=self.builder.profile(),
            features=self.features,
            per_class=dict(sorted(self.per_class.items())),
        )

    def matches_prefix(self, manifests) -> bool:
        """Whether the folded ledger equals the store's current prefix."""
        if len(manifests) < len(self.folded):
            return False
        return all(
            entry.index == manifest.index
            and entry.digest == manifest_digest(manifest)
            for entry, manifest in zip(self.folded, manifests)
        )

    # -- snapshots -----------------------------------------------------------

    def state(self) -> dict[str, Any]:
        return {
            "kind": "resident-analysis",
            "version": _SNAPSHOT_VERSION,
            "window": self.window,
            "cores": self.cores,
            "max_quantile_values": self.max_quantile_values,
            "builder": self.builder.state(),
            "features": self.features.state(),
            "per_class": [
                [cls, stats.state()]
                for cls, stats in sorted(self.per_class.items())
            ],
            "folded": [entry.to_dict() for entry in self.folded],
            "generation": self.generation,
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "ResidentAnalysis":
        from ..core import WorkloadFeatureStats, WorkloadProfileBuilder

        _check_state(state, "resident-analysis")
        max_quantile_values = state.get("max_quantile_values")
        resident = cls(
            window=float(state["window"]),
            cores=int(state["cores"]),
            max_quantile_values=(
                None if max_quantile_values is None else int(max_quantile_values)
            ),
        )
        resident.builder = WorkloadProfileBuilder.from_state(state["builder"])
        resident.features = WorkloadFeatureStats.from_state(state["features"])
        resident.per_class = {
            str(name): WorkloadFeatureStats.from_state(stats)
            for name, stats in state["per_class"]
        }
        resident.folded = [
            FoldedShard.from_dict(entry) for entry in state["folded"]
        ]
        resident.generation = int(state.get("generation", len(resident.folded)))
        return resident


@dataclass
class ServeState:
    """Versioned daemon checkpoint: resident analysis + drift window."""

    resident: ResidentAnalysis
    drift: Optional[dict[str, Any]] = None
    tool_version: str = ""
    store: str = ""
    extra: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "format": SERVE_STATE_FORMAT,
            "version": _SNAPSHOT_VERSION,
            "tool_version": self.tool_version,
            "store": self.store,
            "resident": self.resident.state(),
            "drift": self.drift,
            "extra": self.extra,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServeState":
        fmt = data.get("format") if isinstance(data, Mapping) else None
        if fmt != SERVE_STATE_FORMAT:
            raise SnapshotFormatError(f"not a serve checkpoint (format {fmt!r})")
        _check_state(data, SERVE_STATE_FORMAT, kind_key="format")
        return cls(
            resident=ResidentAnalysis.from_state(data["resident"]),
            drift=data.get("drift"),
            tool_version=str(data.get("tool_version", "")),
            store=str(data.get("store", "")),
            extra=dict(data.get("extra", {})),
        )

    # ``state``/``from_state`` complete the Snapshotable protocol; the
    # historic ``to_dict``/``from_dict`` names remain the primary spelling
    # inside the serve subsystem.
    def state(self) -> dict[str, Any]:
        return self.to_dict()

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "ServeState":
        return cls.from_dict(state)

    def save(self, path: str | Path) -> Path:
        """Atomic write via :func:`repro.snapshot.save_snapshot`."""
        return save_snapshot(self.to_dict(), path)

    @classmethod
    def load(cls, path: str | Path) -> "ServeState":
        return cls.from_dict(load_snapshot(path))
