"""Minimal Prometheus metrics: stdlib-only registry + text exposition.

The daemon publishes counters and gauges in the Prometheus text
exposition format (version 0.0.4) without depending on the official
client library — the format is line-oriented and small enough that the
~150 lines here buy zero dependencies.  :func:`parse_exposition` is the
inverse, used by the tests and the CI smoke job to assert that what the
daemon serves actually parses as valid exposition text rather than
merely "looks right".
"""

from __future__ import annotations

import math
import re
import threading
from typing import Iterable, Mapping, Optional

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "parse_exposition",
    "render_exposition",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Metric:
    """One metric family: a name, help text, and labeled samples."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Iterable[str] = (),
        lock: Optional[threading.Lock] = None,
    ):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.labelnames = tuple(labelnames)
        for label in self.labelnames:
            if not _LABEL_RE.match(label) or label.startswith("__"):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help = help
        self.samples: dict[tuple[str, ...], float] = {}
        self._lock = lock or threading.Lock()

    def _key(self, labels: Mapping[str, str]) -> tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def value(self, **labels: str) -> float:
        with self._lock:
            return self.samples.get(self._key(labels), 0.0)

    def render(self) -> str:
        lines = [
            f"# HELP {self.name} {_escape_help(self.help)}",
            f"# TYPE {self.name} {self.kind}",
        ]
        with self._lock:
            items = sorted(self.samples.items())
        for key, value in items:
            if key:
                labels = ",".join(
                    f'{name}="{_escape_label_value(val)}"'
                    for name, val in zip(self.labelnames, key)
                )
                lines.append(f"{self.name}{{{labels}}} {_format_value(value)}")
            else:
                lines.append(f"{self.name} {_format_value(value)}")
        return "\n".join(lines) + "\n"


class Counter(_Metric):
    """Monotonically non-decreasing samples."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        key = self._key(labels)
        with self._lock:
            self.samples[key] = self.samples.get(key, 0.0) + float(amount)


class Gauge(_Metric):
    """Samples that may move in either direction."""

    kind = "gauge"

    def set(self, value: float, **labels: str) -> None:
        with self._lock:
            self.samples[self._key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            self.samples[key] = self.samples.get(key, 0.0) + float(amount)


class MetricsRegistry:
    """Thread-safe family registry with deterministic rendering."""

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def _register(self, cls, name: str, help: str, labelnames) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.labelnames != tuple(
                    labelnames
                ):
                    raise ValueError(
                        f"metric {name!r} already registered with a "
                        "different kind or label set"
                    )
                return existing
            metric = cls(name, help, labelnames)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str, labelnames=()) -> Counter:
        return self._register(Counter, name, help, labelnames)  # type: ignore[return-value]

    def gauge(self, name: str, help: str, labelnames=()) -> Gauge:
        return self._register(Gauge, name, help, labelnames)  # type: ignore[return-value]

    def get(self, name: str, **labels: str) -> float:
        """Current sample value (0.0 when never touched) — test hook."""
        with self._lock:
            metric = self._metrics[name]
        return metric.value(**labels)

    def render(self) -> str:
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
        return "".join(metric.render() for metric in metrics)


def render_exposition(registry: MetricsRegistry) -> str:
    """Alias for ``registry.render()`` kept for symmetry with the parser."""
    return registry.render()


# -- parsing (validation for tests and the CI smoke job) ---------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"[ \t]+(?P<value>\S+)"
    r"(?:[ \t]+(?P<timestamp>-?\d+))?[ \t]*$"
)

_VALID_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def _parse_labels(text: str) -> tuple[tuple[str, str], ...]:
    """Parse ``name="value",...`` handling escaped quotes in values."""
    labels: list[tuple[str, str]] = []
    i = 0
    n = len(text)
    while i < n:
        match = re.match(r'\s*([a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*"', text[i:])
        if not match:
            raise ValueError(f"malformed label pair at {text[i:]!r}")
        name = match.group(1)
        i += match.end()
        value_chars: list[str] = []
        while i < n:
            ch = text[i]
            if ch == "\\":
                if i + 1 >= n:
                    raise ValueError("dangling escape in label value")
                nxt = text[i + 1]
                value_chars.append(
                    {"n": "\n", "\\": "\\", '"': '"'}.get(nxt, "\\" + nxt)
                )
                i += 2
            elif ch == '"':
                i += 1
                break
            else:
                value_chars.append(ch)
                i += 1
        else:
            raise ValueError("unterminated label value")
        labels.append((name, "".join(value_chars)))
        rest = text[i:]
        stripped = rest.lstrip()
        if not stripped:
            break
        if not stripped.startswith(","):
            raise ValueError(f"junk after label value: {rest!r}")
        i = len(text) - len(stripped) + 1  # consume up to and incl. the comma
    return tuple(labels)


def _parse_value(text: str) -> float:
    special = {"+Inf": math.inf, "-Inf": -math.inf, "Inf": math.inf, "NaN": math.nan}
    if text in special:
        return special[text]
    return float(text)  # raises ValueError on malformed numbers


def parse_exposition(
    text: str,
) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """Parse Prometheus text exposition; raise ``ValueError`` when invalid.

    Returns ``{(metric_name, ((label, value), ...)): sample_value}``.
    Validates ``# TYPE`` lines, metric/label name charsets, label-value
    escaping, sample values, and that every typed family's samples use
    its declared name.
    """
    samples: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    types: dict[str, str] = {}
    for lineno, line in enumerate(text.split("\n"), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                continue  # plain comment
            name = parts[2]
            if not _NAME_RE.match(name):
                raise ValueError(f"line {lineno}: invalid metric name {name!r}")
            if parts[1] == "TYPE":
                if len(parts) < 4 or parts[3] not in _VALID_TYPES:
                    raise ValueError(f"line {lineno}: invalid TYPE line {line!r}")
                if name in types:
                    raise ValueError(f"line {lineno}: duplicate TYPE for {name!r}")
                types[name] = parts[3]
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        labels = _parse_labels(match.group("labels") or "")
        key = (match.group("name"), labels)
        if key in samples:
            raise ValueError(f"line {lineno}: duplicate sample {key!r}")
        samples[key] = _parse_value(match.group("value"))
    return samples
