"""Live drift detection: a sliding request window vs a trained baseline.

Three independent signals, each with its own hysteresis alarm:

* **latency** — two-sample KS distance (:func:`repro.stats.ks_two_sample`)
  between the window's latencies and the baseline's.  The same statistic
  the paper's Table-2 validation uses, pointed at time instead of at a
  synthetic replay.
* **mix** — total-variation distance between the window's request-class
  fractions and the baseline mix (½ Σ|p−q| over the class union).
* **rate** — z-score of the windowed request count against the expected
  per-window count, through the existing
  :class:`repro.depth.anomaly.StageProfile` z-score machinery with a
  Poisson-width prior (σ = √mean).

The baseline comes either from a trained per-class KOOZA model
(synthesize + replay, mirroring ``validate_per_class``) or, when no
model is loaded, from the store's own resident history — "drift against
the model" degrades gracefully to "drift against the past".

Alarms latch with hysteresis: they trip when a signal exceeds its
threshold and clear only once it falls below ``clear_ratio`` of it, so
a signal hovering *at* the threshold cannot flap the alarm.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

import numpy as np

from ..depth.anomaly import StageProfile
from ..stats import SlidingWindowCounter, ks_two_sample

__all__ = [
    "Alarm",
    "DriftBaseline",
    "DriftMonitor",
    "DriftReport",
    "DriftThresholds",
]

#: Standard-normal quantile at 0.99 (norm.ppf(0.99)).  The old
#: ``mean + 3*std`` bound was the ~p99.87 point mislabeled as p99.
_P99_Z = 2.3263478740408408


@dataclass(frozen=True)
class DriftThresholds:
    """Trip levels for the three drift signals."""

    ks: float = 0.25
    mix: float = 0.35
    rate_sigmas: float = 4.0
    #: An alarm clears only below ``threshold * clear_ratio``.
    clear_ratio: float = 0.8
    #: Windows thinner than this are not judged at all.
    min_window: int = 32

    def to_dict(self) -> dict[str, float]:
        return {
            "ks": self.ks,
            "mix": self.mix,
            "rate_sigmas": self.rate_sigmas,
            "clear_ratio": self.clear_ratio,
            "min_window": self.min_window,
        }


class Alarm:
    """A latched two-threshold (hysteresis) comparator."""

    def __init__(self, name: str, high: float, low: float):
        if low > high:
            raise ValueError(f"alarm {name!r}: low {low} exceeds high {high}")
        self.name = name
        self.high = high
        self.low = low
        self.firing = False
        self.value: Optional[float] = None
        #: Fire/clear edges seen — the flap counter the tests assert on.
        self.transitions = 0

    def update(self, value: float) -> bool:
        self.value = float(value)
        if self.firing:
            if self.value < self.low:
                self.firing = False
                self.transitions += 1
        elif self.value > self.high:
            self.firing = True
            self.transitions += 1
        return self.firing

    def state(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "high": self.high,
            "low": self.low,
            "firing": self.firing,
            "value": self.value,
            "transitions": self.transitions,
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "Alarm":
        alarm = cls(str(state["name"]), float(state["high"]), float(state["low"]))
        alarm.firing = bool(state["firing"])
        value = state.get("value")
        alarm.value = None if value is None else float(value)
        alarm.transitions = int(state.get("transitions", 0))
        return alarm


@dataclass
class DriftBaseline:
    """What "no drift" looks like: latencies, class mix, request rate."""

    latencies: np.ndarray
    mix: dict[str, float]
    #: Mean completed-request rate, requests per second.
    mean_rate: float
    source: str = "history"

    @classmethod
    def from_resident(cls, resident) -> "DriftBaseline":
        """Baseline from the daemon's own folded history."""
        latencies = np.asarray(resident.features.latencies.array(), dtype=float)
        counts = dict(resident.builder.class_counts.counts)
        total = sum(counts.values())
        mix = {c: n / total for c, n in sorted(counts.items())} if total else {}
        extent = resident.builder.max_extent
        mean_rate = total / extent if extent > 0 else 0.0
        return cls(latencies=latencies, mix=mix, mean_rate=mean_rate,
                   source="history")

    @classmethod
    def from_models(
        cls,
        models: Mapping[str, Any],
        class_counts: Mapping[str, int],
        mean_rate: float,
        seed: int = 42,
        max_per_class: int = 512,
    ) -> "DriftBaseline":
        """Baseline replayed from trained per-class KOOZA models.

        Same synthesize→replay recipe as ``validate_per_class`` (same
        per-class RNG spawning), truncated to ``max_per_class`` requests
        per class so startup stays fast on huge stores.  The mix and
        rate still come from the observed class counts — KOOZA models a
        class's feature distributions, not the inter-class mix.
        """
        from ..store.analyze import class_rng, class_seed
        from ..core import ReplayHarness

        latencies: list[float] = []
        counts = {c: int(n) for c, n in class_counts.items() if c in models}
        for cls_name in sorted(counts):
            n = min(counts[cls_name], max_per_class)
            if n <= 0:
                continue
            synthetic = models[cls_name].synthesize(n, class_rng(seed, cls_name))
            replayed = ReplayHarness(
                seed=class_seed(seed + 1, cls_name)
            ).replay(synthetic)
            for record in replayed.requests:
                if record.completion_time > record.arrival_time:
                    latencies.append(record.latency)
        total = sum(class_counts.values())
        mix = (
            {c: n / total for c, n in sorted(class_counts.items())}
            if total
            else {}
        )
        return cls(
            latencies=np.asarray(latencies, dtype=float),
            mix=mix,
            mean_rate=float(mean_rate),
            source="model",
        )

    def rate_profile(self, span: float) -> StageProfile:
        """Expected request count over ``span`` seconds, Poisson width.

        ``p99`` is the normal-approximation 99th percentile of the
        windowed count (z = 2.326, not the 3-sigma ~p99.87 point).
        """
        expected = self.mean_rate * span
        std = float(np.sqrt(expected)) if expected > 0 else 0.0
        return StageProfile(
            stage="request_rate",
            count=len(self.latencies),
            mean=expected,
            std=std,
            p99=expected + _P99_Z * std,
        )


@dataclass(frozen=True)
class DriftReport:
    """One drift check over the current window."""

    window_n: int
    ready: bool
    ks: float = 0.0
    mix_distance: float = 0.0
    rate: float = 0.0
    rate_zscore: float = 0.0
    alarms: dict[str, bool] = field(default_factory=dict)
    baseline_source: str = "history"
    #: Baseline latency sample size; 0 means the baseline is empty and
    #: the monitor can never become ready until it is rebuilt.
    baseline_n: int = 0
    thresholds: dict[str, float] = field(default_factory=dict)

    @property
    def firing(self) -> bool:
        return any(self.alarms.values())

    def to_dict(self) -> dict[str, Any]:
        return {
            "window_n": self.window_n,
            "ready": self.ready,
            "ks": self.ks,
            "mix_distance": self.mix_distance,
            "rate": self.rate,
            "rate_zscore": self.rate_zscore,
            "alarms": dict(self.alarms),
            "firing": self.firing,
            "baseline_source": self.baseline_source,
            "baseline_n": self.baseline_n,
            "thresholds": dict(self.thresholds),
        }


def mix_distance(p: Mapping[str, float], q: Mapping[str, float]) -> float:
    """Total-variation distance between two class mixes."""
    keys = set(p) | set(q)
    return 0.5 * sum(abs(p.get(k, 0.0) - q.get(k, 0.0)) for k in keys)


class DriftMonitor:
    """Sliding recent-request window judged against a fixed baseline."""

    def __init__(
        self,
        baseline: DriftBaseline,
        window_requests: int = 256,
        rate_window: float = 1.0,
        rate_keep: int = 60,
        thresholds: DriftThresholds = DriftThresholds(),
    ):
        if window_requests < 1:
            raise ValueError(f"window_requests must be >= 1, got {window_requests}")
        self.baseline = baseline
        self.window_requests = int(window_requests)
        self.thresholds = thresholds
        #: (completion_time, latency, request_class) of recent requests.
        self.window: deque = deque(maxlen=self.window_requests)
        self.rate_counter = SlidingWindowCounter(
            window=rate_window, keep=rate_keep
        )
        self.n_observed = 0
        self.alarms = {
            "latency_ks": Alarm(
                "latency_ks", thresholds.ks, thresholds.ks * thresholds.clear_ratio
            ),
            "class_mix": Alarm(
                "class_mix", thresholds.mix, thresholds.mix * thresholds.clear_ratio
            ),
            "request_rate": Alarm(
                "request_rate",
                thresholds.rate_sigmas,
                thresholds.rate_sigmas * thresholds.clear_ratio,
            ),
        }

    def observe(self, record) -> None:
        """Feed one completed request record (incomplete ones ignored)."""
        if record.completion_time <= record.arrival_time:
            return
        self.n_observed += 1
        self.window.append(
            (record.completion_time, record.latency, record.request_class)
        )
        self.rate_counter.add(record.completion_time)

    def check(self) -> DriftReport:
        """Judge the current window; updates (and may latch) the alarms."""
        n = len(self.window)
        rate = self.rate_counter.rate()
        if n < self.thresholds.min_window or self.baseline.latencies.size == 0:
            return DriftReport(
                window_n=n,
                ready=False,
                rate=rate,
                alarms={name: a.firing for name, a in self.alarms.items()},
                baseline_source=self.baseline.source,
                baseline_n=int(self.baseline.latencies.size),
                thresholds=self.thresholds.to_dict(),
            )
        latencies = np.array([lat for _, lat, _ in self.window], dtype=float)
        ks, _ = ks_two_sample(latencies, self.baseline.latencies)
        classes: dict[str, int] = {}
        for _, _, cls_name in self.window:
            classes[cls_name] = classes.get(cls_name, 0) + 1
        window_mix = {c: k / n for c, k in classes.items()}
        mix = mix_distance(window_mix, self.baseline.mix)
        span = self.rate_counter.span
        observed = self.rate_counter.n_active
        zscore = (
            self.baseline.rate_profile(span).zscore(float(observed))
            if span > 0
            else 0.0
        )
        self.alarms["latency_ks"].update(ks)
        self.alarms["class_mix"].update(mix)
        self.alarms["request_rate"].update(abs(zscore))
        return DriftReport(
            window_n=n,
            ready=True,
            ks=float(ks),
            mix_distance=float(mix),
            rate=rate,
            rate_zscore=float(zscore),
            alarms={name: a.firing for name, a in self.alarms.items()},
            baseline_source=self.baseline.source,
            baseline_n=int(self.baseline.latencies.size),
            thresholds=self.thresholds.to_dict(),
        )

    # -- snapshots -----------------------------------------------------------

    def state(self) -> dict[str, Any]:
        """Checkpointable window state (the baseline is rebuilt, not saved)."""
        return {
            "kind": "drift-monitor",
            "window_requests": self.window_requests,
            "window": [list(entry) for entry in self.window],
            "rate_counter": self.rate_counter.state(),
            "n_observed": self.n_observed,
            "alarms": {name: a.state() for name, a in self.alarms.items()},
        }

    def restore(self, state: Mapping[str, Any]) -> None:
        """Restore the window/alarm latches saved by :meth:`state`."""
        if state.get("kind") != "drift-monitor":
            raise ValueError(f"not a drift-monitor state: {state.get('kind')!r}")
        if int(state["window_requests"]) != self.window_requests:
            raise ValueError("drift window size changed; discarding state")
        self.window = deque(
            (
                (float(t), float(lat), str(cls_name))
                for t, lat, cls_name in state["window"]
            ),
            maxlen=self.window_requests,
        )
        self.rate_counter = SlidingWindowCounter.from_state(state["rate_counter"])
        self.n_observed = int(state["n_observed"])
        for name, alarm_state in state.get("alarms", {}).items():
            if name in self.alarms:
                self.alarms[name] = Alarm.from_state(alarm_state)
