"""Live record ingest: line-delimited JSON sockets → store rounds.

Protocol (one JSON object per line, UTF-8):

* ``{"stream": "requests", "record": {...}}`` — append one record.
  ``stream`` is any trace stream name (``network``, ``cpu``,
  ``memory``, ``storage``, ``requests``, ``spans``) and ``record`` its
  ``to_dict`` form; decoding goes through the stream's ``from_dict``,
  so a malformed record is rejected per-line without killing the
  connection.
* ``{"commit": true}`` (optionally ``{"commit": true, "duration": T}``)
  — finalize the open shard as its own collection round.  The server
  acks ``{"ok": true, "shard": i, "round": r, "records": n}``.
* ``{"ping": true}`` — liveness ack.

Ingested traffic lands in the store through the ordinary
:class:`repro.store.ShardWriter` — manifest, content hashes, round
file and all — so the watcher folds it exactly like an appended
``repro append`` round and batch tools never know the difference.

Concurrency: the sink serializes its own connections (records and
commits) under one lock, and shard/round slots are re-scanned from the
manifests at every shard open, so ingest interleaved with batch
``repro append`` rounds that complete *between* ingest shards is safe.
A batch append racing an ingest shard that is already **open** is not
coordinated — both writers may claim the same round number.  Round
files merge rather than overwrite, so neither writer's shards are
delisted, but avoid running ``repro append`` against a store while a
daemon is actively ingesting into it.
"""

from __future__ import annotations

import json
import socketserver
import threading
from pathlib import Path
from typing import Any, Callable, Mapping, Optional

from ..store.manifest import ShardManifest, shard_manifest_paths, write_round_file
from ..store.writer import ShardWriter, shard_dirname
from ..tracing.store import STREAM_TYPES

__all__ = ["IngestError", "IngestServer", "IngestSink"]


class IngestError(ValueError):
    """A rejected ingest line (bad stream, malformed record, ...)."""


class IngestSink:
    """Serializes ingested records into one store round per commit.

    Thread-safe: concurrent connections interleave records into the
    same open shard; ``commit`` finalizes it atomically and the next
    record opens a fresh shard in a fresh round.
    """

    def __init__(
        self,
        directory: str | Path,
        app: str = "ingest",
        compress: bool = False,
        codec: str = "jsonl",
        seed: int = 0,
    ):
        self.directory = Path(directory)
        self.app = app
        self.compress = compress
        self.codec = codec
        self.seed = seed
        self._lock = threading.Lock()
        self._writer: Optional[ShardWriter] = None
        self._pending = 0
        # Monotonic floors for slot allocation: a shard index / round is
        # never reused even if a manifest scan transiently misses the
        # shard that claimed it (e.g. a manifest mid-finalize).
        self._reserved_index = 0
        self._reserved_round = 0

    @property
    def pending_records(self) -> int:
        """Records written since the last commit."""
        with self._lock:
            return self._pending

    def _next_slots(self) -> tuple[int, int]:
        """Next free (shard index, round index), caller holds the lock.

        Re-scanned at each shard open so batch ``repro append`` rounds
        completed *between* ingest shards are accounted for, floored by
        the sink's own reservations so an ingest slot is never handed
        out twice.  A batch append racing an *open* ingest shard is not
        coordinated here (see the module docstring); the round-file
        merge in :func:`repro.store.manifest.write_round_file` keeps
        even that case from delisting either writer's shards.
        """
        max_index = -1
        max_round = -1
        for path in shard_manifest_paths(self.directory):
            manifest = ShardManifest.load(path)
            max_index = max(max_index, manifest.index)
            max_round = max(max_round, manifest.round)
        index = max(max_index + 1, self._reserved_index)
        round_index = max(max_round + 1, self._reserved_round)
        self._reserved_index = index + 1
        self._reserved_round = round_index + 1
        return index, round_index

    def _ensure_writer(self) -> ShardWriter:
        if self._writer is None:
            index, round_index = self._next_slots()
            self._writer = ShardWriter(
                self.directory / shard_dirname(index),
                index=index,
                app=self.app,
                seed=self.seed,
                params={"source": "ingest"},
                compress=self.compress,
                round=round_index,
                codec=self.codec,
            )
        return self._writer

    def write_record(self, stream: str, data: Mapping[str, Any]) -> None:
        """Decode and append one record (raises :class:`IngestError`)."""
        record_cls = STREAM_TYPES.get(stream)
        if record_cls is None:
            raise IngestError(
                f"unknown stream {stream!r} "
                f"(expected one of {sorted(STREAM_TYPES)})"
            )
        try:
            record = record_cls.from_dict(dict(data))
        except (TypeError, ValueError, KeyError) as error:
            raise IngestError(f"malformed {stream} record: {error}") from error
        with self._lock:
            self._ensure_writer().write(stream, record)
            self._pending += 1

    def commit(self, duration: float = 0.0) -> Optional[ShardManifest]:
        """Finalize the open shard as its own round (None if empty).

        The sink lock is held across ``finalize`` and the round-file
        write: until the finalizing shard's manifest is on disk, a
        concurrent :meth:`write_record` re-scanning manifests would
        otherwise allocate the *same* shard index and open a second
        writer on the directory still being closed and hashed.  Commits
        are rare; blocking writers for one finalize is the cheap,
        correct trade.
        """
        with self._lock:
            writer = self._writer
            if writer is None:
                return None
            self._writer = None
            self._pending = 0
            manifest = writer.finalize(max(duration, writer.extent))
            write_round_file(self.directory, manifest.round, [manifest.index])
        return manifest

    def close(self) -> Optional[ShardManifest]:
        """Commit whatever is pending (the daemon-shutdown flush)."""
        return self.commit()


class _IngestHandler(socketserver.StreamRequestHandler):
    """One connection: read lines, apply them, ack commits and errors."""

    def _reply(self, payload: Mapping[str, Any]) -> None:
        self.wfile.write((json.dumps(payload) + "\n").encode())
        self.wfile.flush()

    def handle(self) -> None:
        server: "IngestServer" = self.server.ingest_server  # type: ignore[attr-defined]
        for raw in self.rfile:
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            try:
                message = json.loads(line)
                if not isinstance(message, dict):
                    raise IngestError("each line must be a JSON object")
                if "record" in message or "stream" in message:
                    server.sink.write_record(
                        str(message.get("stream", "")), message.get("record") or {}
                    )
                    server.notify_record(str(message.get("stream", "")))
                elif message.get("commit"):
                    raw_duration = message.get("duration", 0.0)
                    try:
                        duration = float(raw_duration)
                    except (TypeError, ValueError) as error:
                        # Reject *before* committing: a malformed commit
                        # must not run the commit and then die without
                        # an ack (the client would retry a commit that
                        # already happened).
                        raise IngestError(
                            f"bad commit duration {raw_duration!r}"
                        ) from error
                    manifest = server.sink.commit(duration)
                    server.notify_commit(manifest)
                    self._reply(
                        {
                            "ok": True,
                            "shard": manifest.index if manifest else None,
                            "round": manifest.round if manifest else None,
                            "records": manifest.n_records if manifest else 0,
                        }
                    )
                elif message.get("ping"):
                    self._reply({"ok": True})
                else:
                    raise IngestError(
                        "expected a record, commit, or ping message"
                    )
            except (
                IngestError,
                TypeError,
                ValueError,
                json.JSONDecodeError,
            ) as error:
                try:
                    self._reply({"error": str(error)})
                except OSError:
                    return  # peer vanished mid-error; nothing to do


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


if hasattr(socketserver, "ThreadingUnixStreamServer"):

    class _UnixServer(socketserver.ThreadingUnixStreamServer):  # type: ignore[name-defined]
        daemon_threads = True

else:  # pragma: no cover - non-Unix platforms
    _UnixServer = None  # type: ignore[assignment]


class IngestServer:
    """Socket front-end over an :class:`IngestSink`.

    TCP when ``port`` is given, a Unix domain socket when
    ``socket_path`` is; ``port=0`` binds an ephemeral port (the actual
    address is in :attr:`address` after :meth:`start`).
    """

    def __init__(
        self,
        sink: IngestSink,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        socket_path: Optional[str | Path] = None,
        on_record: Optional[Callable[[str], None]] = None,
        on_commit: Optional[Callable[[Optional[ShardManifest]], None]] = None,
    ):
        if (port is None) == (socket_path is None):
            raise ValueError("exactly one of port / socket_path is required")
        self.sink = sink
        self.on_record = on_record
        self.on_commit = on_commit
        if port is not None:
            self._server: socketserver.BaseServer = _TCPServer(
                (host, port), _IngestHandler
            )
            self.address: Any = self._server.server_address
        else:
            if _UnixServer is None:  # pragma: no cover - non-Unix platforms
                raise ValueError("unix-socket ingest unsupported on this platform")
            path = Path(socket_path)
            if path.exists():
                path.unlink()
            self._server = _UnixServer(str(path), _IngestHandler)
            self.address = str(path)
        self._server.ingest_server = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    def notify_record(self, stream: str) -> None:
        if self.on_record is not None:
            self.on_record(stream)

    def notify_commit(self, manifest: Optional[ShardManifest]) -> None:
        if self.on_commit is not None:
            self.on_commit(manifest)

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-ingest",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if isinstance(self.address, str) and Path(self.address).exists():
            Path(self.address).unlink()
