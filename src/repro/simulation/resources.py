"""Shared resources for the simulation engine.

Provides the capacity-limited :class:`Resource` (FIFO or priority
ordered), the message-passing :class:`Store`, and utilization accounting
used by the device models to report busy fractions — the raw material of
the CPU-utilization traces the paper's processor model consumes.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Optional

from .engine import Environment, Event, SimulationError

__all__ = ["Request", "Resource", "Store", "UtilizationMeter"]


class Request(Event):
    """A pending claim on a :class:`Resource` slot.

    Succeeds when the resource grants a slot.  Usable as a context
    manager so the slot is always released::

        with resource.request() as req:
            yield req
            ... hold the resource ...
    """

    __slots__ = ("resource", "priority", "submit_time", "grant_time", "_cancelled")

    def __init__(self, resource: "Resource", priority: float = 0.0):
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        self.submit_time = resource.env.now
        self.grant_time: Optional[float] = None
        self._cancelled = False

    @property
    def wait_time(self) -> float:
        """Queueing delay experienced before the slot was granted."""
        if self.grant_time is None:
            raise SimulationError("request not yet granted")
        return self.grant_time - self.submit_time

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.resource.release(self)


class UtilizationMeter:
    """Tracks the time-integral of busy slots for a capacity resource.

    ``utilization(t0, t1)`` returns the mean fraction of capacity in use
    over the window — exactly the per-interval CPU utilization metric the
    in-breadth processor models are trained on.
    """

    def __init__(self, env: Environment, capacity: int):
        self.env = env
        self.capacity = capacity
        self._busy = 0
        self._created_at = env.now
        self._last_change = env.now
        self._integral = 0.0

    def _account(self) -> None:
        now = self.env.now
        self._integral += self._busy * (now - self._last_change)
        self._last_change = now

    def acquire(self) -> None:
        self._account()
        self._busy += 1

    def release(self) -> None:
        self._account()
        self._busy -= 1

    @property
    def busy(self) -> int:
        return self._busy

    def busy_time(self) -> float:
        """Total busy slot-time accumulated so far."""
        self._account()
        return self._integral

    def utilization(self, since: float = 0.0) -> float:
        """Mean utilization over ``[since, now]`` as a capacity fraction.

        The meter keeps one running integral (no history), so only
        windows starting at the meter's creation time are supported;
        for sliding windows, diff :meth:`busy_time` checkpoints.
        """
        if since != self._created_at:
            raise ValueError(
                "utilization() windows must start at the meter's creation "
                f"time ({self._created_at}); diff busy_time() checkpoints "
                "for sliding windows"
            )
        self._account()
        span = self.env.now - since
        if span <= 0:
            return 0.0
        return self._integral / (span * self.capacity)


class Resource:
    """A resource with finite ``capacity`` and a request queue.

    Requests are granted FIFO by default; pass distinct ``priority``
    values to :meth:`request` for priority ordering (lower first, ties
    FIFO).  Utilization is tracked via an embedded
    :class:`UtilizationMeter`.
    """

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.meter = UtilizationMeter(env, capacity)
        self._users: set[Request] = set()
        self._queue: list[tuple[float, int, Request]] = []
        self._seq = 0
        self.total_requests = 0
        self.total_wait = 0.0

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    def request(self, priority: float = 0.0) -> Request:
        """Queue a claim for one slot; the returned event fires on grant."""
        req = Request(self, priority)
        self.total_requests += 1
        self._seq += 1
        heapq.heappush(self._queue, (priority, self._seq, req))
        self._grant()
        return req

    def release(self, request: Request) -> None:
        """Return a slot.  Releasing an ungranted request cancels it."""
        if request in self._users:
            self._users.discard(request)
            self.meter.release()
            self._grant()
        else:
            # Cancel a queued request (e.g. context-manager exit after an
            # interrupt): mark it so _grant skips it.
            request._cancelled = True

    def _grant(self) -> None:
        while self._queue and len(self._users) < self.capacity:
            _, _, req = heapq.heappop(self._queue)
            if req._cancelled or req.triggered:
                continue
            req.grant_time = self.env.now
            self.total_wait += req.wait_time
            self._users.add(req)
            self.meter.acquire()
            req.succeed(req)

    def utilization(self, since: float = 0.0) -> float:
        """Mean fraction of capacity busy since ``since``."""
        return self.meter.utilization(since)


class Store:
    """An unbounded FIFO buffer of items for producer/consumer processes.

    ``put`` never blocks; ``get`` returns an event that fires when an
    item is available.  This is the message-queue primitive used for RPC
    channels between simulated servers.
    """

    def __init__(self, env: Environment):
        self.env = env
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit ``item``, waking one waiting consumer if any."""
        while self._getters:
            getter = self._getters.popleft()
            if getter.triggered:
                continue
            getter.succeed(item)
            return
        self._items.append(item)

    def get(self) -> Event:
        """Event that fires with the next available item."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event
