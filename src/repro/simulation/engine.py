"""Discrete-event simulation engine.

A compact, dependency-free, generator-based discrete-event kernel in the
style of SimPy.  Simulation *processes* are Python generators that yield
:class:`Event` objects; the :class:`Environment` advances virtual time and
resumes processes when the events they wait on are triggered.

The engine is deliberately small but complete enough to drive the
datacenter substrate used throughout this repository: timeouts, process
joining, condition events (``AllOf`` / ``AnyOf``), failure propagation and
process interruption are all supported.

The kernel is the collection hot path (every trace record costs a
handful of events), so the event hierarchy is ``__slots__``-only, the
schedule push is inlined at every trigger site, and the ``step``/``run``
loops work on bound locals.  None of this may move a byte of output:
event ids, step counts and timestamps are the replay clock that
checkpoint digests (:mod:`repro.simulation.checkpoint`) verify, and the
golden-store tests pin ``repro collect`` output bytes across kernel
changes.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "SimulationError",
]

#: Scheduling priorities (lower value pops first at equal timestamps).
URGENT = 0
NORMAL = 1


class SimulationError(RuntimeError):
    """Raised for illegal engine operations (double trigger, bad yield...)."""


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    The interrupting cause is available as :attr:`cause`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """An occurrence at a point in simulated time.

    Events start *untriggered*.  Calling :meth:`succeed` or :meth:`fail`
    triggers them, which schedules their callbacks to run at the current
    simulation time.  Processes wait on events by ``yield``-ing them.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        #: True once a waiter (or ``run(until=...)``) owns this event's
        #: failure; an undefused failure propagates out of ``step()``.
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception if it failed)."""
        if self._ok is None:
            raise SimulationError("event not yet triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional ``value``."""
        if self._ok is not None:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        env = self.env
        env._eid += 1
        heappush(env._queue, (env._now, NORMAL, env._eid, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception to be thrown into waiters."""
        if self._ok is not None:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        env = self.env
        env._eid += 1
        heappush(env._queue, (env._now, NORMAL, env._eid, self))
        return self

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        for callback in callbacks:
            callback(self)


class Timeout(Event):
    """An event that fires automatically after ``delay`` time units."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        env._eid += 1
        heappush(env._queue, (env._now + delay, NORMAL, env._eid, self))


class Initialize(Event):
    """Internal event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        self.env = env
        self.callbacks = [process._resume]
        self._value = None
        self._ok = True
        self._defused = False
        env._eid += 1
        heappush(env._queue, (env._now, URGENT, env._eid, self))


class Process(Event):
    """A running simulation process wrapping a generator.

    A process is itself an event that triggers when the generator
    terminates — other processes can therefore ``yield`` a process to
    join on it.  The generator's ``return`` value becomes the event value.
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "send"):
            raise TypeError(f"process requires a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not terminated."""
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._ok is not None:
            raise SimulationError("cannot interrupt a terminated process")
        if self is self.env._active_process:
            raise SimulationError("a process cannot interrupt itself")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)

        def deliver(evt: Event) -> None:
            # Detach at fire time (the process may have moved on since the
            # interrupt was scheduled) and drop the interrupt entirely if
            # the process terminated in the meantime.
            if self._ok is not None:
                evt._defused = True
                return
            if self._target is not None and self._target.callbacks is not None:
                try:
                    self._target.callbacks.remove(self._resume)
                except ValueError:
                    pass
            self._target = None
            self._resume(evt)

        event.callbacks.append(deliver)
        env = self.env
        env._eid += 1
        heappush(env._queue, (env._now, URGENT, env._eid, event))

    def _resume(self, event: Event) -> None:
        env = self.env
        env._active_process = self
        self._target = None
        generator = self._generator
        send = generator.send
        while True:
            try:
                if event._ok:
                    next_event = send(event._value)
                else:
                    # Mark the failure as handled: the waiting process
                    # receives the exception and may catch it.
                    event._defused = True
                    next_event = generator.throw(event._value)
            except StopIteration as exc:
                self._ok = True
                self._value = exc.value
                env._eid += 1
                heappush(env._queue, (env._now, NORMAL, env._eid, self))
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                env._eid += 1
                heappush(env._queue, (env._now, NORMAL, env._eid, self))
                break
            if next_event.__class__ is Timeout:
                # Fast path: a fresh Timeout is always pending (it was
                # scheduled at creation and cannot have been processed
                # mid-resume), so skip the generic dispatch below.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break
            if not isinstance(next_event, Event):
                exc = SimulationError(
                    f"process yielded a non-event: {next_event!r}"
                )
                try:
                    generator.throw(exc)
                except BaseException as err:
                    self._ok = False
                    self._value = err
                    env._eid += 1
                    heappush(env._queue, (env._now, NORMAL, env._eid, self))
                break
            if next_event.callbacks is not None:
                # Event pending: wait for it.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break
            # Event already processed: continue immediately with its value.
            event = next_event
        env._active_process = None


class Condition(Event):
    """Base for composite events over several sub-events.

    Completion is tracked with a countdown (:attr:`_remaining`) updated
    once per sub-event trigger — O(1) per callback where re-scanning
    every sub-event would make wide fan-ins quadratic.
    """

    __slots__ = ("_events", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        events = list(events)
        self._events = events
        for event in events:
            if event.env is not env:
                raise SimulationError("events from mixed environments")
        if not events:
            # An empty condition is vacuously satisfied.  Triggering it
            # at creation (as SimPy does) matters most for AnyOf, where
            # ``any([]) is False`` would otherwise leave the condition
            # pending forever and deadlock the yielding process.
            self._finish()
            return
        self._remaining = len(events)
        check = self._check
        for event in events:
            if event.callbacks is None:
                check(event)
            else:
                event.callbacks.append(check)

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _finish(self) -> None:
        results = {
            i: e._value
            for i, e in enumerate(self._events)
            if e.callbacks is None and e._ok
        }
        self.succeed(results)

    def _check(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(Condition):
    """Triggers once *all* sub-events have fired successfully."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return all(e.processed and e._ok for e in self._events)

    def _check(self, event: Event) -> None:
        if self._ok is not None:
            return
        if event._ok is False:
            event._defused = True
            self.fail(event._value)
        else:
            self._remaining -= 1
            if self._remaining == 0:
                self._finish()


class AnyOf(Condition):
    """Triggers once *any* sub-event has fired successfully."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return any(e.processed and e._ok for e in self._events)

    def _check(self, event: Event) -> None:
        if self._ok is not None:
            return
        if event._ok is False:
            event._defused = True
            self.fail(event._value)
        else:
            self._finish()


def _defuse(event: Event) -> None:
    """Callback marking an event's failure as owned by ``run(until=...)``."""
    event._defused = True


class Environment:
    """The simulation environment: clock plus event queue.

    Example::

        env = Environment()

        def worker(env):
            yield env.timeout(5.0)
            return "done"

        proc = env.process(worker(env))
        env.run()
        assert env.now == 5.0
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._eid = 0
        self._steps = 0
        self._active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def steps(self) -> int:
        """Events processed so far — the engine's replay clock.

        A deterministic simulation's entire history is indexed by this
        counter: re-running the same program and stepping the same
        number of times lands on the identical state, which is what
        checkpoint restore (:mod:`repro.simulation.checkpoint`) replays
        against.
        """
        return self._steps

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- event factories -------------------------------------------------

    def event(self) -> Event:
        """Create a new untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` time units."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new process from a generator function call."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when any of ``events`` has succeeded."""
        return AnyOf(self, events)

    # -- scheduling & execution ------------------------------------------

    def _schedule(self, event: Event, priority: int, delay: float = 0.0) -> None:
        self._eid += 1
        heappush(self._queue, (self._now + delay, priority, self._eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event.

        Raises :class:`SimulationError` when the queue is empty, and
        re-raises unhandled process failures.
        """
        queue = self._queue
        if not queue:
            raise SimulationError("no scheduled events")
        self._now, _, _, event = heappop(queue)
        self._steps += 1
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if event._ok is False and not event._defused:
            # A failure nobody handled: propagate to the caller of run().
            raise event._value

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until no events remain,
        * a number — run until the clock reaches that time,
        * an :class:`Event` — run until that event is processed and
          return its value (raising if it failed).

        The numeric bound is *inclusive*: events scheduled exactly at
        ``until`` are executed before returning, and the clock is left
        at ``until``.  Callers windowing a simulation with repeated
        ``run(until=...)`` calls should therefore treat each window as
        owning its right edge — a follow-up ``run(until=t)`` with the
        same ``t`` executes nothing further.

        When ``until`` is an event that fails, the failure is raised
        here exactly once: the event is marked defused the moment it is
        processed, so ``step()`` does not also propagate it as an
        unhandled failure.
        """
        if isinstance(until, Event):
            stop = until
            if stop.callbacks is not None:
                # Own the failure before it fires so step() defers to
                # the raise below instead of surfacing it a second time.
                stop.callbacks.append(_defuse)
                while stop.callbacks is not None:
                    if not self._queue:
                        raise SimulationError(
                            "simulation ran out of events before target "
                            "event fired"
                        )
                    self.step()
            if stop._ok:
                return stop._value
            stop._defused = True
            raise stop._value
        limit = float("inf") if until is None else float(until)
        if limit < self._now:
            raise ValueError(f"until={limit} is in the past (now={self._now})")
        # The hot loop: identical semantics to repeated step() calls,
        # with the heap, the pop and the step counter held in locals.
        queue = self._queue
        pop = heappop
        steps = self._steps
        try:
            while queue and queue[0][0] <= limit:
                self._now, _, _, event = pop(queue)
                steps += 1
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if event._ok is False and not event._defused:
                    self._steps = steps
                    raise event._value
        finally:
            self._steps = steps
        if limit != float("inf"):
            self._now = limit
        return None
