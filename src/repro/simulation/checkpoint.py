"""Engine checkpoint digests: validating a replayed simulation.

Simulation processes are live Python generators, which cannot be
serialized; an engine checkpoint is therefore a *replay recipe* — the
replica spec plus the engine's step count — and restore means
deterministically re-executing the program for that many steps (see
:class:`repro.datacenter.session.ReplicaSession`).  The functions here
make that honest: :func:`engine_digest` fingerprints the engine state
that a correct replay must land on (clock, event ids, step count, the
multiset of scheduled events), and :func:`verify_engine_digest` raises
a typed :class:`~repro.snapshot.SnapshotMismatchError` when a replay
drifts — which happens precisely when the code or inputs changed
between save and restore.
"""

from __future__ import annotations

import hashlib
from typing import Any, Mapping

from ..snapshot import SnapshotMismatchError
from .engine import Environment

__all__ = ["engine_digest", "verify_engine_digest"]


def _queue_sha(env: Environment) -> str:
    """Order-insensitive fingerprint of the scheduled-event multiset.

    Hashes the sorted ``(time, priority, eid)`` triples: two heaps with
    the same pending events always digest equal even though ``heapq``'s
    internal array layout depends on push/pop history.  Event payloads
    are excluded deliberately — they are functions of the deterministic
    program, so (time, priority, eid) identity pins them.
    """
    triples = sorted((time, priority, eid) for time, priority, eid, _ in env._queue)
    digest = hashlib.sha256()
    for time, priority, eid in triples:
        digest.update(f"{time!r}:{priority}:{eid};".encode())
    return digest.hexdigest()


def engine_digest(env: Environment) -> dict[str, Any]:
    """The JSON-able fingerprint a correct replay must reproduce."""
    return {
        "now": env.now,
        "steps": env.steps,
        "eid": env._eid,
        "queue_len": len(env._queue),
        "queue_sha": _queue_sha(env),
    }


def verify_engine_digest(
    env: Environment, expected: Mapping[str, Any], context: str = "engine"
) -> None:
    """Raise :class:`SnapshotMismatchError` unless ``env`` matches.

    ``now`` is compared exactly: checkpoint digests serialize floats
    via ``repr`` (JSON does the same), which round-trips IEEE doubles
    bit-for-bit.
    """
    actual = engine_digest(env)
    mismatched = {
        key: (expected.get(key), actual[key])
        for key in actual
        if expected.get(key) != actual[key]
    }
    if mismatched:
        details = ", ".join(
            f"{key}: recorded {want!r}, replayed {got!r}"
            for key, (want, got) in sorted(mismatched.items())
        )
        raise SnapshotMismatchError(
            f"{context} state diverged from checkpoint after replay ({details}); "
            "the code or inputs changed between save and restore"
        )
