"""Deterministic random-number streams.

Every stochastic component in the repository draws from a named
substream derived from one root seed, so simulations are exactly
reproducible and independent components never share a stream (changing
how many samples one device draws cannot perturb another device).
"""

from __future__ import annotations

import numpy as np

__all__ = ["RandomStreams"]


def _encode_path(path: tuple[str, ...]) -> list[int]:
    """Encode a stream path as an unambiguous flat key sequence.

    Each segment is rendered as its UTF-8 byte length followed by the
    byte values (a prefix code), so distinct paths can never flatten to
    the same key — ``("a", "b/c")`` encodes to ``[1, 97, 3, 98, 47, 99]``
    while ``("a/b", "c")`` encodes to ``[3, 97, 47, 98, 1, 99]``.  The
    naive per-character encoding this replaces collapsed both to the
    characters of ``"a/b/c"``, silently aliasing streams that sharded
    experiment replicas rely on being disjoint.
    """
    key: list[int] = []
    for segment in path:
        data = segment.encode("utf-8")
        key.append(len(data))
        key.extend(data)
    return key


class RandomStreams:
    """A factory of independent, named ``numpy.random.Generator`` streams.

    Streams are derived from ``(root_seed, path)`` so the same path
    always yields the same stream regardless of creation order::

        streams = RandomStreams(seed=7)
        disk_rng = streams.get("disk.0")
        net_rng = streams.get("network")

    Every ``spawn()`` / ``get()`` name is one opaque path *segment* —
    segment boundaries are part of the stream identity.  Consequently
    ``spawn("a").get("b/c")``, ``spawn("a/b").get("c")`` and
    ``get("a/b/c")`` are three mutually disjoint streams: a ``"/"``
    inside a name is just a character, not a namespace hop.
    """

    def __init__(self, seed: int = 0, prefix: str = ""):
        self.seed = int(seed)
        self._path: tuple[str, ...] = (prefix,) if prefix else ()
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def prefix(self) -> str:
        """Human-readable namespace path (diagnostic only)."""
        return "/".join(self._path)

    def get(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the stream for ``name``."""
        if name not in self._streams:
            key = [self.seed] + _encode_path(self._path + (name,))
            self._streams[name] = np.random.default_rng(np.random.SeedSequence(key))
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """A child factory whose streams are disjoint from this one's."""
        child = RandomStreams(self.seed)
        child._path = self._path + (name,)
        return child
