"""Deterministic random-number streams.

Every stochastic component in the repository draws from a named
substream derived from one root seed, so simulations are exactly
reproducible and independent components never share a stream (changing
how many samples one device draws cannot perturb another device).
"""

from __future__ import annotations

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """A factory of independent, named ``numpy.random.Generator`` streams.

    Streams are derived from ``(root_seed, name)`` so the same name
    always yields the same stream regardless of creation order::

        streams = RandomStreams(seed=7)
        disk_rng = streams.get("disk.0")
        net_rng = streams.get("network")
    """

    def __init__(self, seed: int = 0, prefix: str = ""):
        self.seed = int(seed)
        self.prefix = prefix
        self._streams: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the stream for ``name``."""
        full = f"{self.prefix}/{name}" if self.prefix else name
        if full not in self._streams:
            # Encode the name into deterministic spawn keys.
            key = [self.seed] + [ord(c) for c in full]
            self._streams[full] = np.random.default_rng(np.random.SeedSequence(key))
        return self._streams[full]

    def spawn(self, name: str) -> "RandomStreams":
        """A child factory whose streams are disjoint from this one's."""
        child_prefix = f"{self.prefix}/{name}" if self.prefix else name
        return RandomStreams(self.seed, prefix=child_prefix)
